// obs::log level gating.  These tests capture stderr, so they restore the
// default level before returning to keep the fixture-free suite order-proof.
#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mcopt::obs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelIsInfo) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(LogTest, SetLevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, InfoSuppressedAtErrorLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "should not appear %d", 1);
  log(LogLevel::kError, "must appear %d", 2);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
  EXPECT_NE(captured.find("must appear 2"), std::string::npos);
}

TEST(LogTest, DebugOnlyAtVerboseLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "quiet debug");
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("quiet debug"), std::string::npos);

  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "loud debug");
  captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("loud debug"), std::string::npos);
}

TEST(LogTest, FormatsArgumentsAndAppendsNewline) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "%s=%d", "answer", 42);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured, "answer=42\n");
}

}  // namespace
}  // namespace mcopt::obs
