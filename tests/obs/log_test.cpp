// obs::log level gating.  These tests capture stderr, so they restore the
// default level before returning to keep the fixture-free suite order-proof.
#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace mcopt::obs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelIsInfo) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(LogTest, SetLevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, InfoSuppressedAtErrorLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "should not appear %d", 1);
  log(LogLevel::kError, "must appear %d", 2);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
  EXPECT_NE(captured.find("must appear 2"), std::string::npos);
}

TEST(LogTest, DebugOnlyAtVerboseLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "quiet debug");
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("quiet debug"), std::string::npos);

  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "loud debug");
  captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("loud debug"), std::string::npos);
}

class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvVarGuard() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(LogTest, EnvVarSetsLevelByNameAndNumber) {
  LogLevelGuard guard;
  EnvVarGuard env{"MCOPT_LOG_LEVEL"};

  setenv("MCOPT_LOG_LEVEL", "debug", 1);
  EXPECT_TRUE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  setenv("MCOPT_LOG_LEVEL", "error", 1);
  EXPECT_TRUE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kError);

  setenv("MCOPT_LOG_LEVEL", "1", 1);
  EXPECT_TRUE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kInfo);

  setenv("MCOPT_LOG_LEVEL", "2", 1);
  EXPECT_TRUE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(LogTest, EnvVarUnsetOrMalformedLeavesLevelUntouched) {
  LogLevelGuard guard;
  EnvVarGuard env{"MCOPT_LOG_LEVEL"};
  set_log_level(LogLevel::kError);

  unsetenv("MCOPT_LOG_LEVEL");
  EXPECT_FALSE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kError);

  setenv("MCOPT_LOG_LEVEL", "loud", 1);
  EXPECT_FALSE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kError);

  setenv("MCOPT_LOG_LEVEL", "7", 1);
  EXPECT_FALSE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, FormatsArgumentsAndAppendsNewline) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "%s=%d", "answer", 42);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured, "answer=42\n");
}

}  // namespace
}  // namespace mcopt::obs
