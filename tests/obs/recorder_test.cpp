// Recorder semantics: off-by-default no-ops, sampling stride, per-restart
// derivation, and the metrics it tallies.
#include "obs/recorder.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <vector>

#include "obs/trace.hpp"

namespace mcopt::obs {
namespace {

std::vector<EventKind> kinds_of(const std::vector<Event>& events) {
  std::vector<EventKind> out;
  out.reserve(events.size());
  for (const Event& event : events) out.push_back(event.kind);
  return out;
}

TEST(RecorderTest, DefaultConstructedIsOffAndInert) {
  Recorder rec;
  EXPECT_FALSE(rec.on());
  EXPECT_FALSE(rec.tracing());
  EXPECT_FALSE(rec.collecting_metrics());

  RunMetrics metrics;
  rec.begin_run(&metrics, 6);
  rec.stage_begin(0, 0, 1.0, 1.0, StageReason::kStart);
  rec.proposal(0, 1, 2.0, 1.0, 1.0);
  rec.accept(0, 1, 2.0, 1.0, 1.0);
  rec.new_best(0, 1, 1.0);
  rec.patience_reset();
  rec.invariant_check(1.0);
  rec.end_run();
  EXPECT_FALSE(metrics.collected);
  EXPECT_TRUE(metrics.stages.empty());
}

TEST(RecorderTest, MetricsOnlyCollectsWithoutSink) {
  Recorder rec{nullptr, /*collect_metrics=*/true};
  EXPECT_TRUE(rec.on());
  EXPECT_FALSE(rec.tracing());
  EXPECT_TRUE(rec.collecting_metrics());

  RunMetrics metrics;
  rec.begin_run(&metrics, 2);
  rec.stage_begin(0, 0, 10.0, 10.0, StageReason::kStart);
  rec.proposal(0, 1, 9.0, 10.0, -1.0);
  rec.accept(0, 1, 9.0, 10.0, -1.0);
  rec.new_best(0, 1, 9.0);
  rec.proposal(0, 2, 11.0, 9.0, 2.0);
  rec.reject(0, 2, 11.0, 9.0);
  rec.end_run();

  EXPECT_TRUE(metrics.collected);
  EXPECT_EQ(metrics.new_bests, 1u);
  EXPECT_EQ(metrics.trace_events, 0u);  // nothing traced
  ASSERT_EQ(metrics.stages.size(), 2u);
  EXPECT_EQ(metrics.stages[0].proposals, 2u);
  EXPECT_EQ(metrics.stages[0].accepts, 1u);
  EXPECT_EQ(metrics.stages[0].rejects, 1u);
  EXPECT_EQ(metrics.stages[0].new_bests, 1u);
}

TEST(RecorderTest, TracesTypedEventsInOrder) {
  VectorSink sink;
  Recorder rec{&sink};
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.restart_begin(10.0);
  rec.stage_begin(0, 0, 10.0, 10.0, StageReason::kStart);
  rec.proposal(0, 1, 9.0, 10.0, -1.0);
  rec.accept(0, 1, 9.0, 10.0, -1.0);
  rec.new_best(0, 1, 9.0);
  rec.end_run();

  EXPECT_EQ(kinds_of(sink.events()),
            (std::vector<EventKind>{EventKind::kRestartBegin,
                                    EventKind::kStageBegin,
                                    EventKind::kProposal, EventKind::kAccept,
                                    EventKind::kNewBest}));
  EXPECT_EQ(metrics.trace_events, 5u);
}

TEST(RecorderTest, SamplingKeepsWholeTrios) {
  VectorSink sink;
  Recorder rec{&sink, /*collect_metrics=*/true, /*trace_sample=*/3};
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  for (std::uint64_t i = 1; i <= 9; ++i) {
    rec.proposal(0, i, 5.0, 5.0, 0.0);
    if (i % 2 == 0) {
      rec.accept(0, i, 5.0, 5.0, 0.0);
    } else {
      rec.reject(0, i, 5.0, 5.0);
    }
  }
  rec.end_run();

  // Proposals 3, 6, 9 pass the stride; their accept/reject follow along.
  const auto& events = sink.events();
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); i += 2) {
    EXPECT_EQ(events[i].kind, EventKind::kProposal);
    EXPECT_EQ(events[i].tick, events[i + 1].tick)
        << "outcome must ride with its sampled proposal";
  }
  // Metrics still count every proposal, not just sampled ones.
  EXPECT_EQ(metrics.stages[0].proposals, 9u);
  EXPECT_EQ(metrics.stages[0].accepts, 4u);
  EXPECT_EQ(metrics.stages[0].rejects, 5u);
}

TEST(RecorderTest, NewBestAlwaysEmittedEvenWhenSampledOut) {
  VectorSink sink;
  Recorder rec{&sink, true, /*trace_sample=*/1000};
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.proposal(0, 1, 4.0, 5.0, -1.0);
  rec.accept(0, 1, 4.0, 5.0, -1.0);
  rec.new_best(0, 1, 4.0);
  rec.end_run();
  EXPECT_EQ(kinds_of(sink.events()),
            (std::vector<EventKind>{EventKind::kNewBest}));
}

TEST(RecorderTest, ForRestartStampsIdentityAndResetsSampling) {
  VectorSink parent;
  Recorder root{&parent, true, /*trace_sample=*/2, /*run=*/7};
  VectorSink shard;
  Recorder rec = root.for_restart(41, 3, &shard);
  EXPECT_EQ(rec.run_id(), 7u);
  EXPECT_EQ(rec.restart_id(), 41u);

  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.worker_steal();
  rec.restart_begin(3.0);
  rec.proposal(0, 1, 2.0, 3.0, -1.0);  // step 1: sampled out (stride 2)
  rec.proposal(0, 2, 2.5, 3.0, 0.5);   // step 2: sampled
  rec.end_run();

  EXPECT_TRUE(parent.events().empty()) << "shard must not leak to parent";
  const auto& events = shard.events();
  ASSERT_EQ(events.size(), 3u);
  for (const Event& event : events) {
    EXPECT_EQ(event.run, 7u);
    EXPECT_EQ(event.restart, 41u);
    EXPECT_EQ(event.worker, 3u);
  }
  EXPECT_EQ(events[2].kind, EventKind::kProposal);
  EXPECT_EQ(events[2].tick, 2u);
}

TEST(RecorderTest, ForRestartNullShardKeepsParentSink) {
  VectorSink parent;
  const Recorder root{&parent};
  Recorder rec = root.for_restart(5, 0, nullptr);
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.restart_begin(1.0);
  rec.end_run();
  ASSERT_EQ(parent.events().size(), 1u);
  EXPECT_EQ(parent.events()[0].restart, 5u);
}

TEST(RecorderTest, ForRestartFromOffRootStaysOff) {
  const Recorder root;  // off
  VectorSink shard;
  const Recorder rec = root.for_restart(0, 1, &shard);
  EXPECT_FALSE(rec.on());
}

TEST(RecorderTest, WithRunRestampsRunId) {
  VectorSink sink;
  const Recorder base{&sink};
  Recorder rec = base.with_run(12);
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.restart_begin(0.0);
  rec.end_run();
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].run, 12u);
}

TEST(RecorderTest, PatienceAttributedToStageBeingLeft) {
  Recorder rec{nullptr, true};
  RunMetrics metrics;
  rec.begin_run(&metrics, 3);
  rec.stage_begin(0, 0, 5.0, 5.0, StageReason::kStart);
  rec.stage_begin(1, 10, 5.0, 5.0, StageReason::kPatience);
  rec.stage_begin(2, 20, 5.0, 5.0, StageReason::kSlice);
  rec.end_run();
  EXPECT_EQ(metrics.stages[0].patience_fires, 1u);
  EXPECT_EQ(metrics.stages[1].patience_fires, 0u);
  EXPECT_EQ(metrics.stages[2].patience_fires, 0u);
}

TEST(RecorderTest, CountersAndTimersAccumulate) {
  Recorder rec{nullptr, true};
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.patience_reset();
  rec.patience_reset();
  rec.descent_ticks(0, 25);
  rec.invariant_check(0.5);
  rec.invariant_check(0.25);
  rec.end_run();
  EXPECT_EQ(metrics.patience_resets, 2u);
  EXPECT_EQ(metrics.stages[0].ticks, 25u);
  EXPECT_EQ(metrics.invariant_checks, 2u);
  EXPECT_DOUBLE_EQ(metrics.invariant_seconds, 0.75);
  EXPECT_GE(metrics.wall_seconds, 0.0);
}

TEST(RecorderTest, StageVectorGrowsOnDemand) {
  Recorder rec{nullptr, true};
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  rec.proposal(4, 1, 1.0, 1.0, 0.0);
  rec.end_run();
  ASSERT_EQ(metrics.stages.size(), 5u);
  EXPECT_EQ(metrics.stages[4].proposals, 1u);
}

}  // namespace
}  // namespace mcopt::obs
