// ProfileTree structure, merges, re-rooting, and the ProfileScope RAII
// path through a Recorder.
#include "obs/profiler.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace mcopt::obs {
namespace {

TEST(ProfileTreeTest, FindOrAddCreatesOncePerParentNamePair) {
  ProfileTree tree;
  const std::int32_t a = tree.find_or_add(-1, "run");
  const std::int32_t b = tree.find_or_add(a, "sweep");
  const std::int32_t c = tree.find_or_add(a, "swap");
  EXPECT_EQ(tree.find_or_add(-1, "run"), a);
  EXPECT_EQ(tree.find_or_add(a, "sweep"), b);
  EXPECT_NE(b, c);
  // Same name under a different parent is a different node.
  EXPECT_NE(tree.find_or_add(b, "swap"), c);
  EXPECT_EQ(tree.nodes.size(), 4u);
  // Parent-before-child invariant (what one-pass merge relies on).
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    EXPECT_LT(tree.nodes[i].parent, static_cast<std::int32_t>(i));
  }
}

TEST(ProfileTreeTest, MergeAccumulatesSameShapeAndAddsNewBranches) {
  ProfileTree a;
  const std::int32_t run_a = a.find_or_add(-1, "run");
  a.nodes[static_cast<std::size_t>(run_a)].calls = 1;
  a.nodes[static_cast<std::size_t>(run_a)].ticks = 100;
  const std::int32_t sweep_a = a.find_or_add(run_a, "sweep");
  a.nodes[static_cast<std::size_t>(sweep_a)].ticks = 90;

  ProfileTree b;
  const std::int32_t run_b = b.find_or_add(-1, "run");
  b.nodes[static_cast<std::size_t>(run_b)].calls = 2;
  b.nodes[static_cast<std::size_t>(run_b)].ticks = 50;
  const std::int32_t swap_b = b.find_or_add(run_b, "swap");
  b.nodes[static_cast<std::size_t>(swap_b)].ticks = 7;

  a.merge(b);
  ASSERT_EQ(a.nodes.size(), 3u);
  EXPECT_EQ(a.nodes[static_cast<std::size_t>(run_a)].calls, 3u);
  EXPECT_EQ(a.nodes[static_cast<std::size_t>(run_a)].ticks, 150u);
  EXPECT_EQ(a.nodes[static_cast<std::size_t>(sweep_a)].ticks, 90u);
  EXPECT_EQ(a.nodes.back().name, "swap");
  EXPECT_EQ(a.nodes.back().ticks, 7u);
  EXPECT_EQ(a.nodes.back().parent, run_a);
}

TEST(ProfileTreeTest, NestUnderReRootsAndSumsChildWall) {
  ProfileTree tree;
  const std::int32_t r1 = tree.find_or_add(-1, "figure1");
  tree.nodes[static_cast<std::size_t>(r1)].wall_ns = 30;
  const std::int32_t child = tree.find_or_add(r1, "sweep");
  tree.nodes[static_cast<std::size_t>(child)].wall_ns = 10;

  tree.nest_under("multistart", 5, 1234);
  ASSERT_EQ(tree.nodes.size(), 3u);
  EXPECT_EQ(tree.nodes[0].name, "multistart");
  EXPECT_EQ(tree.nodes[0].parent, -1);
  EXPECT_EQ(tree.nodes[0].calls, 5u);
  EXPECT_EQ(tree.nodes[0].ticks, 1234u);
  // Only former roots contribute to the new root's wall time.
  EXPECT_EQ(tree.nodes[0].wall_ns, 30u);
  EXPECT_EQ(tree.nodes[1].name, "figure1");
  EXPECT_EQ(tree.nodes[1].parent, 0);
  EXPECT_EQ(tree.nodes[2].parent, 1);
}

TEST(ProfileTreeTest, ToJsonNestsChildrenAndCanDropWall) {
  ProfileTree tree;
  const std::int32_t run = tree.find_or_add(-1, "run");
  tree.nodes[static_cast<std::size_t>(run)].calls = 1;
  tree.nodes[static_cast<std::size_t>(run)].ticks = 10;
  tree.nodes[static_cast<std::size_t>(run)].wall_ns = 99;
  const std::int32_t sweep = tree.find_or_add(run, "sweep");
  tree.nodes[static_cast<std::size_t>(sweep)].calls = 4;
  tree.nodes[static_cast<std::size_t>(sweep)].ticks = 8;

  const std::string with_wall = tree.to_json(/*include_wall=*/true);
  EXPECT_NE(with_wall.find("\"wall_ns\": 99"), std::string::npos);
  EXPECT_NE(with_wall.find("\"children\": ["), std::string::npos);

  const std::string deterministic = tree.to_json(/*include_wall=*/false);
  EXPECT_EQ(deterministic.find("wall_ns"), std::string::npos);
  EXPECT_NE(deterministic.find("\"name\": \"run\""), std::string::npos);
  EXPECT_NE(deterministic.find("\"name\": \"sweep\""), std::string::npos);
}

TEST(ProfileScopeTest, RecorderBuildsTreeWithTicks) {
  RunMetrics metrics;
  Recorder rec{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
               /*run=*/0, /*collect_profile=*/true};
  EXPECT_TRUE(rec.profiling());
  rec.begin_run(&metrics, 1);
  {
    ProfileScope outer{rec, "run"};
    outer.add_ticks(5);
    {
      ProfileScope inner{rec, "sweep"};
      inner.add_ticks(3);
    }
    {
      MCOPT_PROFILE_SCOPE(rec, "sweep");
      rec.profile_add_ticks(2);
    }
  }
  rec.end_run();

  ASSERT_EQ(metrics.profile.nodes.size(), 2u);
  EXPECT_EQ(metrics.profile.nodes[0].name, "run");
  EXPECT_EQ(metrics.profile.nodes[0].calls, 1u);
  EXPECT_EQ(metrics.profile.nodes[0].ticks, 5u);
  EXPECT_EQ(metrics.profile.nodes[1].name, "sweep");
  EXPECT_EQ(metrics.profile.nodes[1].calls, 2u);
  EXPECT_EQ(metrics.profile.nodes[1].ticks, 5u);
  EXPECT_EQ(metrics.profile.nodes[1].parent, 0);
}

TEST(ProfileScopeTest, NoOpWhenProfilingOff) {
  RunMetrics metrics;
  Recorder rec{nullptr, /*collect_metrics=*/true};  // metrics, no profiler
  EXPECT_FALSE(rec.profiling());
  rec.begin_run(&metrics, 1);
  {
    ProfileScope scope{rec, "run"};
    scope.add_ticks(5);
  }
  rec.end_run();
  EXPECT_TRUE(metrics.profile.empty());

  Recorder off;
  EXPECT_FALSE(off.profile_enter("run"));
}

TEST(ProfileScopeTest, EndRunFailsafeClosesOpenScopes) {
  RunMetrics metrics;
  Recorder rec{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
               /*run=*/0, /*collect_profile=*/true};
  rec.begin_run(&metrics, 1);
  EXPECT_TRUE(rec.profile_enter("left_open"));
  rec.end_run();  // must not leave a dangling open scope
  ASSERT_EQ(metrics.profile.nodes.size(), 1u);
  EXPECT_EQ(metrics.profile.nodes[0].calls, 1u);

  // A fresh run on the same recorder starts with a clean scope stack.
  RunMetrics second;
  rec.begin_run(&second, 1);
  EXPECT_TRUE(rec.profile_enter("fresh"));
  rec.profile_exit();
  rec.end_run();
  ASSERT_EQ(second.profile.nodes.size(), 1u);
  EXPECT_EQ(second.profile.nodes[0].parent, -1);
  EXPECT_EQ(second.profile.nodes[0].name, "fresh");
}

std::uint64_t child_wall_sum(const ProfileTree& tree, std::int32_t parent) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (tree.nodes[i].parent == parent) sum += tree.nodes[i].wall_ns;
  }
  return sum;
}

void expect_child_sums_within_parents(const ProfileTree& tree) {
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    EXPECT_LE(child_wall_sum(tree, static_cast<std::int32_t>(i)),
              tree.nodes[i].wall_ns)
        << "children of '" << tree.nodes[i].name
        << "' carry more wall time than the parent's inclusive time";
  }
}

void spin_a_little() {
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 20000; ++i) sink = sink + static_cast<std::uint64_t>(i);
}

// The invariant the timeline export renders from: a node's children can
// never account for more wall time than the node itself — each child
// interval is a sub-interval of its parent's open interval.
TEST(ProfileScopeTest, ChildWallSumsNeverExceedParentInclusiveTime) {
  RunMetrics metrics;
  Recorder rec{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
               /*run=*/0, /*collect_profile=*/true};
  for (int repeat = 0; repeat < 3; ++repeat) {
    rec.begin_run(&metrics, 1);
    ProfileScope run{rec, "run"};
    {
      ProfileScope sweep{rec, "sweep"};
      {
        ProfileScope swap{rec, "swap"};
        spin_a_little();
      }
      spin_a_little();
    }
    {
      ProfileScope recount{rec, "recount"};
      spin_a_little();
    }
  }
  rec.end_run();
  ASSERT_EQ(metrics.profile.nodes.size(), 4u);
  EXPECT_GT(metrics.profile.nodes[0].wall_ns, 0u);
  expect_child_sums_within_parents(metrics.profile);

  // The invariant survives the aggregation pipeline the drivers run:
  // shard merge and nest_under re-rooting.
  ProfileTree merged = metrics.profile;
  merged.merge(metrics.profile);
  expect_child_sums_within_parents(merged);
  merged.nest_under("row", 1, 0);
  expect_child_sums_within_parents(merged);
}

// begin_run without end_run must not strand wall time: scopes still open
// are closed into the *old* run first, so exited children never out-weigh
// the parent they ran under.
TEST(ProfileScopeTest, BeginRunClosesScopesLeftOpenByThePreviousRun) {
  RunMetrics first;
  Recorder rec{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
               /*run=*/0, /*collect_profile=*/true};
  rec.begin_run(&first, 1);
  EXPECT_TRUE(rec.profile_enter("run"));
  EXPECT_TRUE(rec.profile_enter("sweep"));
  spin_a_little();
  rec.profile_exit();  // child accrues wall; parent still open

  RunMetrics second;
  rec.begin_run(&second, 1);  // no end_run: the failsafe path
  rec.end_run();

  ASSERT_EQ(first.profile.nodes.size(), 2u);
  EXPECT_GT(first.profile.nodes[0].wall_ns, 0u);
  expect_child_sums_within_parents(first.profile);
  EXPECT_TRUE(second.profile.empty());
}

}  // namespace
}  // namespace mcopt::obs
