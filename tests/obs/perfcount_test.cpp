// PerfCounterGroup against scripted backends: counter parsing, multiplex
// scaling, fd bookkeeping, and the forced-unavailable degradation path
// the drivers rely on when perf_event_open is denied.
#include "obs/perfcount.hpp"

#include <cerrno>
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace mcopt::obs {
namespace {

/// Refuses every counter, as a container with perf_event_paranoid > 2 or
/// a seccomp filter does.
class EnosysBackend final : public PerfBackend {
 public:
  int open_counter(PerfCounter /*which*/) override {
    ++open_calls;
    return -ENOSYS;
  }
  bool read_counter(int /*fd*/, PerfReading* /*out*/) override {
    return false;
  }
  void close_counter(int /*fd*/) override { ++close_calls; }

  int open_calls = 0;
  int close_calls = 0;
};

/// Hands out scripted readings keyed by fd and records lifecycle calls.
class ScriptedBackend final : public PerfBackend {
 public:
  int open_counter(PerfCounter which) override {
    const int fd = next_fd++;
    opened[fd] = which;
    return fd;
  }
  bool read_counter(int fd, PerfReading* out) override {
    *out = readings[fd];
    return true;
  }
  void close_counter(int fd) override { closed.push_back(fd); }

  int next_fd = 100;
  std::map<int, PerfCounter> opened;
  std::map<int, PerfReading> readings;
  std::vector<int> closed;
};

TEST(PerfCounterNamesTest, ParseAcceptsEveryKnownName) {
  for (const PerfCounter which : all_perf_counters()) {
    std::string error;
    const auto parsed = parse_perf_counters(perf_counter_name(which), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_EQ(parsed->front(), which);
  }
  std::string error;
  const auto list =
      parse_perf_counters("cycles,instructions,task-clock", &error);
  ASSERT_TRUE(list.has_value()) << error;
  EXPECT_EQ(list->size(), 3u);
}

TEST(PerfCounterNamesTest, ParseRejectsUnknownNamesByName) {
  std::string error;
  EXPECT_FALSE(parse_perf_counters("cycles,zeppelins", &error).has_value());
  EXPECT_NE(error.find("unknown counter 'zeppelins'"), std::string::npos);
  // The known vocabulary is spelled out so the user can self-correct.
  EXPECT_NE(error.find("task-clock"), std::string::npos);

  EXPECT_FALSE(parse_perf_counters("cycles,,task-clock", &error).has_value());
  EXPECT_NE(error.find("empty counter name"), std::string::npos);
}

TEST(PerfCounterGroupTest, AllRefusedReportsUnavailableWithReason) {
  EnosysBackend backend;
  PerfCounterGroup group{all_perf_counters(), &backend};
  EXPECT_FALSE(group.available());
  EXPECT_EQ(backend.open_calls, 6);
  EXPECT_TRUE(group.active_counters().empty());
  EXPECT_NE(group.unavailable_reason().find("ENOSYS"), std::string::npos);
  EXPECT_NE(group.unavailable_reason().find("perf_event_paranoid"),
            std::string::npos);
  PerfCounts counts;
  EXPECT_FALSE(group.read(&counts));
}

TEST(PerfCounterGroupTest, ClosesEveryOpenedFdOnDestruction) {
  ScriptedBackend backend;
  {
    PerfCounterGroup group{all_perf_counters(), &backend};
    EXPECT_TRUE(group.available());
    EXPECT_EQ(group.active_counters().size(), 6u);
    EXPECT_TRUE(backend.closed.empty());
  }
  EXPECT_EQ(backend.closed.size(), 6u);
}

TEST(PerfCounterGroupTest, ReadMapsCountersAndAppliesMultiplexScaling) {
  ScriptedBackend backend;
  PerfCounterGroup group{
      {PerfCounter::kCycles, PerfCounter::kInstructions,
       PerfCounter::kTaskClock},
      &backend};
  ASSERT_TRUE(group.available());
  // cycles ran half the enabled time: value is scaled x2.  instructions
  // ran the whole time: passes through.  The fake leaves task-clock's
  // clock pair zero: raw value passes through (fake-friendly contract).
  int fd = 100;
  backend.readings[fd++] = PerfReading{1000, 200, 100};
  backend.readings[fd++] = PerfReading{4000, 200, 200};
  backend.readings[fd++] = PerfReading{777, 0, 0};
  PerfCounts counts;
  ASSERT_TRUE(group.read(&counts));
  EXPECT_EQ(counts.cycles, 2000u);
  EXPECT_EQ(counts.instructions, 4000u);
  EXPECT_EQ(counts.task_clock_ns, 777u);
  EXPECT_EQ(counts.cache_refs, 0u);  // never requested
  EXPECT_TRUE(counts.any());
}

TEST(PerfCounterGroupTest, PartialAvailabilityKeepsTheCountersThatOpened) {
  // The container VM case: hardware events refused, task-clock opens.
  class SoftwareOnlyBackend final : public PerfBackend {
   public:
    int open_counter(PerfCounter which) override {
      return which == PerfCounter::kTaskClock ? 42 : -EPERM;
    }
    bool read_counter(int /*fd*/, PerfReading* out) override {
      *out = PerfReading{5000, 0, 0};
      return true;
    }
    void close_counter(int /*fd*/) override {}
  };
  SoftwareOnlyBackend backend;
  PerfCounterGroup group{all_perf_counters(), &backend};
  ASSERT_TRUE(group.available());
  ASSERT_EQ(group.active_counters().size(), 1u);
  EXPECT_EQ(group.active_counters().front(), PerfCounter::kTaskClock);
  PerfCounts counts;
  ASSERT_TRUE(group.read(&counts));
  EXPECT_EQ(counts.task_clock_ns, 5000u);
  EXPECT_EQ(counts.cycles, 0u);
}

TEST(PerfDeltaTest, SaturatesInsteadOfWrapping) {
  PerfCounts begin;
  begin.cycles = 100;
  begin.task_clock_ns = 50;
  PerfCounts end;
  end.cycles = 40;  // counter reset between reads
  end.task_clock_ns = 80;
  const PerfCounts delta = perf_delta(begin, end);
  EXPECT_EQ(delta.cycles, 0u);
  EXPECT_EQ(delta.task_clock_ns, 30u);
}

TEST(PerfDerivedTest, RatesGuardAgainstZeroDenominators) {
  PerfCounts counts;
  EXPECT_EQ(perf_ipc(counts), 0.0);
  EXPECT_EQ(perf_cache_miss_rate(counts), 0.0);
  counts.cycles = 1000;
  counts.instructions = 2500;
  counts.cache_refs = 200;
  counts.cache_misses = 30;
  EXPECT_DOUBLE_EQ(perf_ipc(counts), 2.5);
  EXPECT_DOUBLE_EQ(perf_cache_miss_rate(counts), 0.15);
}

RunMetrics profiled_run(Recorder& rec) {
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  {
    ProfileScope run{rec, "run"};
    run.add_ticks(7);
    ProfileScope sweep{rec, "sweep"};
    sweep.add_ticks(5);
  }
  rec.end_run();
  return metrics;
}

// The graceful-degradation contract the drivers rely on: with every
// counter refused, armed-but-unavailable sampling must leave all exports
// byte-identical to a recorder that never heard of perf counters.
TEST(PerfDegradationTest, RefusedCountersLeaveExportsByteIdentical) {
  Recorder plain{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
                 /*run=*/0, /*collect_profile=*/true};
  const RunMetrics baseline = profiled_run(plain);

  EnosysBackend backend;
  PerfCounterGroup group{all_perf_counters(), &backend};
  ASSERT_FALSE(group.available());
  Recorder armed{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
                 /*run=*/0, /*collect_profile=*/true};
  armed.set_perf_counters(&group);
  const RunMetrics degraded = profiled_run(armed);

  // Profile JSON: identical in both forms (no "perf" objects appear).
  EXPECT_EQ(baseline.profile.to_json(/*include_wall=*/false),
            degraded.profile.to_json(/*include_wall=*/false));
  const std::string wall = degraded.profile.to_json(/*include_wall=*/true);
  EXPECT_EQ(wall.find("\"perf\""), std::string::npos);

  // Registry exports: no mcopt_perf_* family materializes, so the
  // Prometheus text and JSON match a counter-free run except for the
  // nondeterministic wall-clock values, which the deterministic_only
  // filter removes.
  MetricsRegistry with_perf;
  with_perf.populate_from_run(degraded);
  const std::string prom = with_perf.to_prometheus();
  EXPECT_EQ(prom.find("mcopt_perf_"), std::string::npos);
  MetricsRegistry without_perf;
  without_perf.populate_from_run(baseline);
  EXPECT_EQ(without_perf.to_prometheus(/*deterministic_only=*/true),
            with_perf.to_prometheus(/*deterministic_only=*/true));
  EXPECT_EQ(without_perf.to_json(/*deterministic_only=*/true),
            with_perf.to_json(/*deterministic_only=*/true));
}

// With counters that do fire, the perf families appear as
// nondeterministic metrics: present in the full exposition, absent from
// the deterministic_only form the bit-identity tests compare.
TEST(PerfDegradationTest, FiringCountersStayOutOfDeterministicExports) {
  ScriptedBackend backend;
  PerfCounterGroup group{
      {PerfCounter::kCycles, PerfCounter::kInstructions}, &backend};
  // Monotonic script: 0 at the first read, 1000/4000 afterwards.
  backend.readings[100] = PerfReading{0, 0, 0};
  backend.readings[101] = PerfReading{0, 0, 0};
  Recorder rec{nullptr, /*collect_metrics=*/true, /*trace_sample=*/1,
               /*run=*/0, /*collect_profile=*/true};
  rec.set_perf_counters(&group);
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  {
    ProfileScope run{rec, "run"};
    run.add_ticks(7);
    backend.readings[100] = PerfReading{1000, 0, 0};
    backend.readings[101] = PerfReading{4000, 0, 0};
  }
  rec.end_run();

  ASSERT_EQ(metrics.profile.nodes.size(), 1u);
  EXPECT_EQ(metrics.profile.nodes[0].perf.cycles, 1000u);
  EXPECT_EQ(metrics.profile.nodes[0].perf.instructions, 4000u);
  const std::string wall = metrics.profile.to_json(/*include_wall=*/true);
  EXPECT_NE(wall.find("\"perf\": {\"cycles\": 1000"), std::string::npos);
  EXPECT_EQ(metrics.profile.to_json(/*include_wall=*/false).find("perf"),
            std::string::npos);

  MetricsRegistry registry;
  registry.populate_from_run(metrics);
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("mcopt_perf_cycles_total{scope=\"run\"} 1000"),
            std::string::npos);
  EXPECT_NE(prom.find("mcopt_perf_ipc{scope=\"run\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("mcopt_perf_cycles_per_tick{scope=\"run\"}"),
            std::string::npos);
  EXPECT_EQ(registry.to_prometheus(/*deterministic_only=*/true)
                .find("mcopt_perf_"),
            std::string::npos);
}

TEST(PerfCounterGroupTest, SystemBackendEitherWorksOrExplainsItself) {
  // Environment-dependent: the real backend may or may not open counters
  // here.  Both outcomes must be well-formed.
  PerfCounterGroup group{all_perf_counters()};
  if (group.available()) {
    PerfCounts a;
    PerfCounts b;
    ASSERT_TRUE(group.read(&a));
    // Burn a little user-space work so cumulative counts advance.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 200000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    ASSERT_TRUE(group.read(&b));
    const PerfCounts delta = perf_delta(a, b);
    EXPECT_TRUE(delta.any());
  } else {
    EXPECT_NE(group.unavailable_reason().find("perf_event_open failed"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mcopt::obs
