// RunMetrics / StageMetrics accumulation and serialization.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>
#include <string>

namespace mcopt::obs {
namespace {

TEST(StageMetricsTest, AccumulatesElementWise) {
  StageMetrics a;
  a.proposals = 10;
  a.accepts = 4;
  a.uphill_accepts = 1;
  a.rejects = 6;
  a.ticks = 10;
  StageMetrics b;
  b.proposals = 5;
  b.accepts = 5;
  b.new_bests = 2;
  b.patience_fires = 1;
  a += b;
  EXPECT_EQ(a.proposals, 15u);
  EXPECT_EQ(a.accepts, 9u);
  EXPECT_EQ(a.uphill_accepts, 1u);
  EXPECT_EQ(a.rejects, 6u);
  EXPECT_EQ(a.new_bests, 2u);
  EXPECT_EQ(a.patience_fires, 1u);
  EXPECT_EQ(a.ticks, 10u);
}

TEST(StageMetricsTest, AcceptanceRate) {
  StageMetrics m;
  EXPECT_EQ(m.acceptance_rate(), 0.0);
  m.proposals = 8;
  m.accepts = 2;
  EXPECT_DOUBLE_EQ(m.acceptance_rate(), 0.25);
}

TEST(RunMetricsTest, MergeSkipsUncollected) {
  RunMetrics a;
  a.collected = true;
  a.new_bests = 3;
  RunMetrics empty;  // collected == false
  empty.new_bests = 99;
  a.merge(empty);
  EXPECT_EQ(a.new_bests, 3u);
}

TEST(RunMetricsTest, MergeIntoUncollectedAdopts) {
  RunMetrics target;
  RunMetrics source;
  source.collected = true;
  source.restarts = 1;
  source.new_bests = 2;
  source.stages.resize(2);
  source.stages[1].proposals = 7;
  target.merge(source);
  EXPECT_TRUE(target.collected);
  EXPECT_EQ(target.restarts, 1u);
  EXPECT_EQ(target.new_bests, 2u);
  ASSERT_EQ(target.stages.size(), 2u);
  EXPECT_EQ(target.stages[1].proposals, 7u);
}

TEST(RunMetricsTest, MergeZeroPadsShorterStageVector) {
  RunMetrics a;
  a.collected = true;
  a.stages.resize(1);
  a.stages[0].proposals = 5;
  RunMetrics b;
  b.collected = true;
  b.stages.resize(3);
  b.stages[2].proposals = 11;
  a.merge(b);
  ASSERT_EQ(a.stages.size(), 3u);
  EXPECT_EQ(a.stages[0].proposals, 5u);
  EXPECT_EQ(a.stages[1].proposals, 0u);
  EXPECT_EQ(a.stages[2].proposals, 11u);
}

TEST(RunMetricsTest, MergeIsAssociativeOnCounters) {
  RunMetrics a, b, c;
  for (RunMetrics* m : {&a, &b, &c}) {
    m->collected = true;
    m->stages.resize(1);
  }
  a.new_bests = 1;
  b.new_bests = 2;
  c.new_bests = 4;
  a.stages[0].accepts = 1;
  b.stages[0].accepts = 2;
  c.stages[0].accepts = 4;

  RunMetrics left = a;
  left.merge(b);
  left.merge(c);
  RunMetrics bc = b;
  bc.merge(c);
  RunMetrics right = a;
  right.merge(bc);
  EXPECT_EQ(left.new_bests, right.new_bests);
  EXPECT_EQ(left.stages[0].accepts, right.stages[0].accepts);
}

TEST(RunMetricsTest, ToJsonHasStableShape) {
  RunMetrics m;
  m.collected = true;
  m.restarts = 2;
  m.new_bests = 5;
  m.stages.resize(1);
  m.stages[0].proposals = 4;
  m.stages[0].accepts = 1;
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"collected\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"restarts\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stages\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"acceptance_rate\": 0.25"), std::string::npos)
      << json;
  // Key order is part of the contract: collected leads, stages trail.
  EXPECT_LT(json.find("\"collected\""), json.find("\"restarts\""));
  EXPECT_LT(json.find("\"wall_seconds\""), json.find("\"stages\""));
}

TEST(RunMetricsTest, SummaryMentionsHeadlineCounters) {
  RunMetrics m;
  m.collected = true;
  m.restarts = 3;
  m.stages.resize(2);
  m.stages[0].proposals = 10;
  m.stages[0].accepts = 5;
  const std::string line = m.summary();
  EXPECT_NE(line.find("restarts=3"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;
}

}  // namespace
}  // namespace mcopt::obs
