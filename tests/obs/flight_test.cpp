// Flight recorder: the bounded last-N event store and its crash-dump
// path.  The ring's wraparound must keep the exact last N events in
// order, the signal-safe formatter must match the canonical JSONL writer
// byte for byte, and an aborting process must leave the dump file behind
// (death tests — the only way to exercise a real SIGABRT end to end).
#include "obs/flight.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/trace.hpp"

namespace mcopt::obs {
namespace {

Event numbered_event(std::uint64_t i) {
  Event event;
  event.kind = static_cast<EventKind>(i % 6);  // everything but kWorkerSteal
  event.reason =
      event.kind == EventKind::kStageBegin ? StageReason::kSlice
                                           : StageReason::kNone;
  event.stage = static_cast<std::uint32_t>(i % 5);
  event.run = 3;
  event.restart = i / 7;
  event.worker = i % 3;
  event.tick = i;
  event.cost = 1000.5 - static_cast<double>(i);
  event.best = 900.25 - static_cast<double>(i) / 3.0;
  return event;
}

std::string jsonl_of(const std::vector<Event>& events) {
  std::string out;
  for (const Event& event : events) append_jsonl(event, out);
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightTest, FormatJsonlMatchesAppendJsonlForEveryKind) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    Event event = numbered_event(i);
    if (i == 31) event.kind = EventKind::kWorkerSteal;
    std::string canonical;
    append_jsonl(event, canonical);
    char buf[256];
    const std::size_t len = format_jsonl(event, buf, sizeof buf);
    ASSERT_GT(len, 0u);
    EXPECT_EQ(std::string(buf, len), canonical) << "event " << i;
  }
}

TEST(FlightTest, FormatJsonlRejectsTinyBuffer) {
  char buf[8];
  EXPECT_EQ(format_jsonl(numbered_event(0), buf, sizeof buf), 0u);
}

TEST(FlightTest, RingWraparoundKeepsExactLastN) {
  constexpr std::size_t kCapacity = 8;
  RingBufferSink ring{kCapacity};
  constexpr std::uint64_t kTotal = 21;  // wraps the ring 2.6 times
  for (std::uint64_t i = 0; i < kTotal; ++i) ring.write(numbered_event(i));

  EXPECT_EQ(ring.size(), kCapacity);
  EXPECT_EQ(ring.dropped(), kTotal - kCapacity);
  const std::vector<Event> tail = ring.snapshot();
  ASSERT_EQ(tail.size(), kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(tail[i].tick, kTotal - kCapacity + i)
        << "snapshot must be the last " << kCapacity
        << " events, oldest first";
  }
}

TEST(FlightTest, CrashDumpWritesSnapshotBytesWithoutLocking) {
  RingBufferSink ring{5};
  for (std::uint64_t i = 0; i < 13; ++i) ring.write(numbered_event(i));

  const std::string path = testing::TempDir() + "crash_dump_test.jsonl";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ring.crash_dump(fd), 5u);
  ASSERT_EQ(::close(fd), 0);

  EXPECT_EQ(read_file(path), jsonl_of(ring.snapshot()));
  std::remove(path.c_str());
}

TEST(FlightTest, CrashDumpOfPartiallyFilledRingIsInOrder) {
  RingBufferSink ring{64};
  for (std::uint64_t i = 0; i < 3; ++i) ring.write(numbered_event(i));
  const std::string path = testing::TempDir() + "crash_dump_partial.jsonl";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ring.crash_dump(fd), 3u);
  ASSERT_EQ(::close(fd), 0);
  EXPECT_EQ(read_file(path), jsonl_of(ring.snapshot()));
  std::remove(path.c_str());
}

TEST(FlightTest, TeeSinkForwardsToBothChildren) {
  VectorSink a;
  RingBufferSink b{4};
  TeeSink tee{&a, &b};
  for (std::uint64_t i = 0; i < 6; ++i) tee.write(numbered_event(i));
  tee.flush();
  EXPECT_EQ(a.events().size(), 6u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.dropped(), 2u);
  EXPECT_EQ(b.snapshot().back().tick, 5u);
}

// Death tests fork the whole test; threadsafe style re-executes the binary
// so the child arms its own FlightRecorder singleton and the parent's
// process state (signal handlers included) is never disturbed.
class FlightDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

// Arms the process-wide recorder, feeds it, and dies the given way.  Runs
// inside the death-test child only.
[[noreturn]] void feed_and_die(const std::string& path, bool via_terminate) {
  FlightRecorder& flight = FlightRecorder::instance();
  flight.arm(/*capacity=*/4, path);
  flight.install_crash_handlers();
  for (std::uint64_t i = 0; i < 11; ++i) {
    flight.sink()->write(numbered_event(i));
  }
  if (via_terminate) std::terminate();
  std::abort();
}

TEST_F(FlightDeathTest, AbortDumpsLastNEventsToFile) {
  const std::string path = testing::TempDir() + "flight_abort.jsonl";
  std::remove(path.c_str());
  EXPECT_DEATH(feed_and_die(path, /*via_terminate=*/false),
               "flight recorder dumped event tail");

  // The child died on SIGABRT; its handler must have left the tail behind.
  std::vector<Event> expected;
  for (std::uint64_t i = 7; i < 11; ++i) {
    expected.push_back(numbered_event(i));
  }
  EXPECT_EQ(read_file(path), jsonl_of(expected));
  std::remove(path.c_str());
}

TEST_F(FlightDeathTest, TerminateHandlerDumpsToo) {
  const std::string path = testing::TempDir() + "flight_terminate.jsonl";
  std::remove(path.c_str());
  EXPECT_DEATH(feed_and_die(path, /*via_terminate=*/true),
               "flight recorder dumped event tail");
  EXPECT_FALSE(read_file(path).empty());
  std::remove(path.c_str());
}

TEST(FlightTest, DumpCleanWritesSnapshotThroughNormalIo) {
  // dump_clean is the non-crash spelling (tests, orderly shutdown paths);
  // it must produce the same bytes as the crash dump.  Uses a local ring
  // via the singleton only in death tests; here we can't re-arm the
  // global safely, so exercise the equivalence on RingBufferSink directly
  // plus the formatter pin above.
  RingBufferSink ring{6};
  for (std::uint64_t i = 0; i < 9; ++i) ring.write(numbered_event(i));
  const std::string path = testing::TempDir() + "flight_clean.jsonl";
  {
    std::ofstream out{path, std::ios::trunc};
    std::string text;
    for (const Event& event : ring.snapshot()) append_jsonl(event, text);
    out << text;
  }
  const int fd = ::open((path + ".crash").c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(ring.crash_dump(fd), 6u);
  ASSERT_EQ(::close(fd), 0);
  EXPECT_EQ(read_file(path), read_file(path + ".crash"));
  std::remove(path.c_str());
  std::remove((path + ".crash").c_str());
}

}  // namespace
}  // namespace mcopt::obs
