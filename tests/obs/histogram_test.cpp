// LogHistogram: exact power-of-two bucketing and order-invariant merges.
#include "obs/histogram.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

namespace mcopt::obs {
namespace {

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(LogHistogram::bucket_bound(0), 1u);
  EXPECT_EQ(LogHistogram::bucket_bound(1), 2u);
  EXPECT_EQ(LogHistogram::bucket_bound(2), 4u);
  EXPECT_EQ(LogHistogram::bucket_bound(10), 1024u);
  // The overflow bucket has no finite bound.
  EXPECT_EQ(LogHistogram::bucket_bound(LogHistogram::kNumBuckets - 1), 0u);
}

TEST(HistogramTest, BucketIndexMatchesBounds) {
  EXPECT_EQ(LogHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(0.5), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1.0), 1u);   // [1, 2)
  EXPECT_EQ(LogHistogram::bucket_index(1.9), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2.0), 2u);   // [2, 4)
  EXPECT_EQ(LogHistogram::bucket_index(3.0), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4.0), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(1024.0), 11u);
  // Negatives clamp to bucket 0 (callers record magnitudes).
  EXPECT_EQ(LogHistogram::bucket_index(-7.0), 0u);
  // Values past 2^38 land in the overflow bucket.
  EXPECT_EQ(LogHistogram::bucket_index(1e18),
            LogHistogram::kNumBuckets - 1);
}

TEST(HistogramTest, EveryFiniteBucketBoundaryIsExact) {
  // Each boundary value 2^(i-1) must land in bucket i, and the value just
  // below it (for integer deltas: 2^(i-1) - 1) in bucket i-1 or lower.
  for (std::size_t i = 2; i + 1 < LogHistogram::kNumBuckets; ++i) {
    const auto bound = static_cast<double>(LogHistogram::bucket_bound(i - 1));
    EXPECT_EQ(LogHistogram::bucket_index(bound), i) << "boundary " << bound;
    EXPECT_EQ(LogHistogram::bucket_index(bound - 1.0), i - 1)
        << "below boundary " << bound;
  }
}

TEST(HistogramTest, RecordAccumulatesCountSumAndBuckets) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  h.record(0.0);
  h.record(1.0);
  h.record(3.0);
  h.record(3.0);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.cumulative(0), 1u);
  EXPECT_EQ(h.cumulative(1), 2u);
  EXPECT_EQ(h.cumulative(2), 4u);
  EXPECT_EQ(h.cumulative(LogHistogram::kNumBuckets - 1), 4u);
}

// The shard-merge order-invariance contract: any merge order of any
// sharding of the same observations produces identical state.  This is
// what makes the registry exports thread-count invariant.
TEST(HistogramTest, MergeIsOrderInvariantAcrossShardings) {
  const std::vector<double> values{0.0, 1.0, 2.0,  5.0,  9.0, 17.0,
                                   33.0, 100.0, 1000.0, 7.0, 7.0, 64.0};

  auto shard_merge = [&](const std::vector<std::size_t>& order,
                         std::size_t num_shards) {
    std::vector<LogHistogram> shards(num_shards);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[i % num_shards].record(values[i]);
    }
    LogHistogram out;
    for (const std::size_t shard : order) out.merge(shards[shard]);
    return out;
  };

  std::vector<std::size_t> forward(4);
  std::iota(forward.begin(), forward.end(), 0u);
  std::vector<std::size_t> backward = forward;
  std::reverse(backward.begin(), backward.end());

  const LogHistogram a = shard_merge(forward, 4);
  const LogHistogram b = shard_merge(backward, 4);
  std::vector<std::size_t> one{0};
  const LogHistogram c = shard_merge(one, 1);

  std::string ja;
  std::string jb;
  std::string jc;
  a.append_json(ja);
  b.append_json(jb);
  c.append_json(jc);
  EXPECT_EQ(ja, jb) << "merge order changed the histogram";
  EXPECT_EQ(ja, jc) << "sharding changed the histogram";
}

TEST(HistogramTest, AppendJsonIsCumulativeAndStopsAtLastNonEmpty) {
  LogHistogram h;
  h.record(1.0);
  h.record(3.0);
  std::string json;
  h.append_json(json);
  EXPECT_EQ(json,
            "{\"count\": 2, \"sum\": 4, \"buckets\": "
            "[{\"le\": 1, \"count\": 0}, {\"le\": 2, \"count\": 1}, "
            "{\"le\": 4, \"count\": 2}, {\"le\": \"+Inf\", \"count\": 2}]}");
}

TEST(HistogramTest, EmptyHistogramJsonHasOnlyInfBucket) {
  LogHistogram h;
  std::string json;
  h.append_json(json);
  EXPECT_EQ(json,
            "{\"count\": 0, \"sum\": 0, \"buckets\": "
            "[{\"le\": \"+Inf\", \"count\": 0}]}");
}

}  // namespace
}  // namespace mcopt::obs
