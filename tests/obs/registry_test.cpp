// MetricsRegistry: merge semantics, RunMetrics flattening, and the two
// exporters (Prometheus text exposition, stable JSON).
#include "obs/registry.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <string>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace mcopt::obs {
namespace {

TEST(RegistryTest, CounterSumsGaugeMaxesHistogramMerges) {
  MetricsRegistry reg;
  reg.counter_add("mcopt_x_total", "x", 3);
  reg.counter_add("mcopt_x_total", "x", 4);
  reg.gauge_max("mcopt_peak", "p", 2.0);
  reg.gauge_max("mcopt_peak", "p", 1.0);  // lower: ignored
  LogHistogram h;
  h.record(3.0);
  reg.histogram_merge("mcopt_h", "h", h);
  reg.histogram_merge("mcopt_h", "h", h);

  const Metric* counter = reg.find("mcopt_x_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 7u);
  const Metric* gauge = reg.find("mcopt_peak");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->gauge, 2.0);
  const Metric* hist = reg.find("mcopt_h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count(), 2u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, RegistryMergeFollowsKindSemantics) {
  MetricsRegistry a;
  a.counter_add("mcopt_x_total", "x", 3);
  a.gauge_max("mcopt_peak", "p", 2.0);
  MetricsRegistry b;
  b.counter_add("mcopt_x_total", "x", 10);
  b.gauge_max("mcopt_peak", "p", 5.0);
  b.counter_add("mcopt_only_b_total", "b", 1);

  a.merge(b);
  EXPECT_EQ(a.find("mcopt_x_total")->value, 13u);
  EXPECT_DOUBLE_EQ(a.find("mcopt_peak")->gauge, 5.0);
  EXPECT_EQ(a.find("mcopt_only_b_total")->value, 1u);
}

TEST(RegistryTest, PopulateFromRunFlattensStagesWithLabels) {
  RunMetrics m;
  m.collected = true;
  m.restarts = 4;
  m.new_bests = 2;
  m.stages.resize(2);
  m.stages[1].proposals = 100;
  m.stages[1].accepts = 25;
  m.stages[1].uphill_proposals = 60;
  m.uphill_delta_proposed.record(8.0);

  MetricsRegistry reg;
  reg.populate_from_run(m);
  EXPECT_EQ(reg.find("mcopt_restarts_total")->value, 4u);
  const Metric* labeled = reg.find("mcopt_stage_proposals_total{stage=\"1\"}");
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->value, 100u);
  EXPECT_EQ(
      reg.find("mcopt_stage_uphill_proposals_total{stage=\"1\"}")->value,
      60u);
  const Metric* hist = reg.find("mcopt_uphill_delta_proposed");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count(), 1u);
  // Wall/scheduler observers are flagged out of the determinism contract.
  EXPECT_FALSE(reg.find("mcopt_wall_seconds")->deterministic);
  EXPECT_FALSE(reg.find("mcopt_worker_steals_total")->deterministic);
  EXPECT_FALSE(reg.find("mcopt_queue_peak")->deterministic);
  EXPECT_TRUE(reg.find("mcopt_restarts_total")->deterministic);
}

TEST(RegistryTest, PrometheusEmitsOneHeaderPerFamily) {
  RunMetrics m;
  m.collected = true;
  m.stages.resize(3);
  for (auto& s : m.stages) s.proposals = 10;
  MetricsRegistry reg;
  reg.populate_from_run(m);
  const std::string prom = reg.to_prometheus();

  // Three labeled samples, one HELP/TYPE pair for the family.
  std::size_t headers = 0;
  std::size_t samples = 0;
  for (std::size_t pos = 0;
       (pos = prom.find("mcopt_stage_proposals_total", pos)) !=
       std::string::npos;
       ++pos) {
    const bool header = pos >= 7 && (prom.compare(pos - 7, 7, "# HELP ") == 0 ||
                                     prom.compare(pos - 7, 7, "# TYPE ") == 0);
    (header ? headers : samples) += 1;
  }
  EXPECT_EQ(headers, 2u);
  EXPECT_EQ(samples, 3u);
  EXPECT_NE(prom.find("mcopt_stage_proposals_total{stage=\"2\"} 10\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mcopt_stage_proposals_total counter\n"),
            std::string::npos);
}

TEST(RegistryTest, PrometheusHistogramCarriesBucketSumCount) {
  MetricsRegistry reg;
  LogHistogram h;
  h.record(1.0);
  h.record(3.0);
  reg.histogram_merge("mcopt_h", "deltas", h);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE mcopt_h histogram\n"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_h_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_h_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_h_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_h_sum 4\n"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_h_count 2\n"), std::string::npos);
}

TEST(RegistryTest, DeterministicOnlyFilterDropsFlaggedMetrics) {
  MetricsRegistry reg;
  reg.counter_add("mcopt_det_total", "d", 1);
  reg.counter_add("mcopt_wall_total", "w", 1, /*deterministic=*/false);
  const std::string all = reg.to_prometheus();
  const std::string det = reg.to_prometheus(/*deterministic_only=*/true);
  EXPECT_NE(all.find("mcopt_wall_total"), std::string::npos);
  EXPECT_EQ(det.find("mcopt_wall_total"), std::string::npos);
  EXPECT_NE(det.find("mcopt_det_total"), std::string::npos);

  const std::string json = reg.to_json(/*deterministic_only=*/true);
  EXPECT_EQ(json.find("mcopt_wall_total"), std::string::npos);
  EXPECT_NE(json.find("mcopt_det_total"), std::string::npos);
}

TEST(RegistryTest, JsonExportIsSortedAndTyped) {
  MetricsRegistry reg;
  reg.counter_add("mcopt_z_total", "z", 1);
  reg.counter_add("mcopt_a_total", "a", 2);
  reg.gauge_max("mcopt_m_gauge", "m", 1.5);
  const std::string json = reg.to_json();
  const std::size_t a = json.find("mcopt_a_total");
  const std::size_t m = json.find("mcopt_m_gauge");
  const std::size_t z = json.find("mcopt_z_total");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
}

}  // namespace
}  // namespace mcopt::obs
