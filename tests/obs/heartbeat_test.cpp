// Heartbeat progress lines: pure formatting, interval gating, final tick.
#include "obs/heartbeat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/log.hpp"

namespace mcopt::obs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(HeartbeatTest, FormatsProgressLine) {
  EXPECT_EQ(format_progress_line(37, 100, "restarts", 60.0),
            "[progress] 37/100 restarts (37.0%) best=60");
  EXPECT_EQ(format_progress_line(1, 3, "jobs", std::nan("")),
            "[progress] 1/3 jobs (33.3%)");
  EXPECT_EQ(format_progress_line(5, 0, "jobs", std::nan("")),
            "[progress] 5/0 jobs (100.0%)");
}

TEST(HeartbeatTest, FormatsRateAndEtaFromElapsedSeconds) {
  EXPECT_EQ(format_progress_line(25, 100, "jobs", std::nan(""), 5.0),
            "[progress] 25/100 jobs (25.0%) [5.0/s, eta 15s]");
  // Finished: rate only, no ETA.
  EXPECT_EQ(format_progress_line(4, 4, "jobs", 42.0, 2.0),
            "[progress] 4/4 jobs (100.0%) best=42 [2.0/s]");
  // No elapsed time (or nothing done yet): no rate tail.
  EXPECT_EQ(format_progress_line(0, 4, "jobs", std::nan(""), 3.0),
            "[progress] 0/4 jobs (0.0%)");
}

TEST(HeartbeatTest, DisabledTicksEmitNothing) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  Heartbeat quiet;
  EXPECT_FALSE(quiet.enabled());
  testing::internal::CaptureStderr();
  quiet.tick(1, 2, 10.0);
  quiet.tick(2, 2, 10.0);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(HeartbeatTest, ZeroIntervalEmitsEveryTick) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  Heartbeat beat{"jobs", 0.0};
  EXPECT_TRUE(beat.enabled());
  testing::internal::CaptureStderr();
  beat.tick(1, 3, std::nan(""));
  beat.tick(2, 3, std::nan(""));
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[progress] 1/3 jobs"), std::string::npos);
  EXPECT_NE(captured.find("[progress] 2/3 jobs"), std::string::npos);
}

TEST(HeartbeatTest, LongIntervalStillEmitsFirstAndFinalTick) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  Heartbeat beat{"jobs", 3600.0};
  testing::internal::CaptureStderr();
  beat.tick(1, 4, std::nan(""));   // first tick always prints
  beat.tick(2, 4, std::nan(""));   // gated: interval not elapsed
  beat.tick(3, 4, std::nan(""));   // gated
  beat.tick(4, 4, 42.0);           // final tick always prints
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[progress] 1/4 jobs"), std::string::npos);
  EXPECT_EQ(captured.find("[progress] 2/4 jobs"), std::string::npos);
  EXPECT_EQ(captured.find("[progress] 3/4 jobs"), std::string::npos);
  EXPECT_NE(captured.find("[progress] 4/4 jobs (100.0%) best=42"),
            std::string::npos);
}

TEST(HeartbeatTest, EnableConfiguresADefaultInstance) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  Heartbeat beat;
  beat.enable("cells", 0.0);
  EXPECT_TRUE(beat.enabled());
  testing::internal::CaptureStderr();
  beat.tick(1, 1, std::nan(""));
  EXPECT_NE(testing::internal::GetCapturedStderr().find("1/1 cells"),
            std::string::npos);
}

}  // namespace
}  // namespace mcopt::obs
