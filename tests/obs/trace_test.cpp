// Sinks and the JSONL schema.  The golden-line tests below pin THE
// interchange format consumed by tools/trace_report.py — a change that
// breaks them must update the tool (and its --validate mode) in the same
// commit.
#include "obs/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>

#include <sstream>
#include <stdexcept>

namespace mcopt::obs {
namespace {

Event make_event(EventKind kind, std::uint64_t tick) {
  Event event;
  event.kind = kind;
  event.tick = tick;
  return event;
}

TEST(EventTest, KindNamesAreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::kStageBegin), "stage_begin");
  EXPECT_STREQ(event_kind_name(EventKind::kProposal), "proposal_sampled");
  EXPECT_STREQ(event_kind_name(EventKind::kAccept), "accept");
  EXPECT_STREQ(event_kind_name(EventKind::kReject), "reject");
  EXPECT_STREQ(event_kind_name(EventKind::kRestartBegin), "restart_begin");
  EXPECT_STREQ(event_kind_name(EventKind::kNewBest), "new_best");
  EXPECT_STREQ(event_kind_name(EventKind::kWorkerSteal), "worker_steal");
}

TEST(EventTest, ReasonNamesAreStable) {
  EXPECT_STREQ(stage_reason_name(StageReason::kNone), "none");
  EXPECT_STREQ(stage_reason_name(StageReason::kStart), "start");
  EXPECT_STREQ(stage_reason_name(StageReason::kSlice), "slice");
  EXPECT_STREQ(stage_reason_name(StageReason::kPatience), "patience");
  EXPECT_STREQ(stage_reason_name(StageReason::kEquilibrium), "equilibrium");
}

TEST(EventTest, GoldenJsonlLine) {
  Event event;
  event.kind = EventKind::kAccept;
  event.run = 3;
  event.restart = 14;
  event.worker = 2;
  event.tick = 1234;
  event.stage = 5;
  event.cost = 71.0;
  event.best = 68.5;
  std::string out;
  append_jsonl(event, out);
  EXPECT_EQ(out,
            "{\"event\":\"accept\",\"run\":3,\"restart\":14,\"worker\":2,"
            "\"tick\":1234,\"stage\":5,\"cost\":71,\"best\":68.5}\n");
}

TEST(EventTest, GoldenJsonlStageBeginCarriesReason) {
  Event event;
  event.kind = EventKind::kStageBegin;
  event.reason = StageReason::kPatience;
  event.stage = 2;
  event.cost = 80.0;
  event.best = 72.0;
  std::string out;
  append_jsonl(event, out);
  EXPECT_EQ(out,
            "{\"event\":\"stage_begin\",\"run\":0,\"restart\":0,\"worker\":0,"
            "\"tick\":0,\"stage\":2,\"cost\":80,\"best\":72,"
            "\"reason\":\"patience\"}\n");
}

TEST(EventTest, JsonlDoublesRoundTrip) {
  Event event;
  event.cost = 0.1;  // not exactly representable; %.17g must round-trip
  event.best = 1.0 / 3.0;
  std::string out;
  append_jsonl(event, out);
  EXPECT_NE(out.find("0.10000000000000001"), std::string::npos) << out;
}

TEST(VectorSinkTest, CollectsAndTakes) {
  VectorSink sink;
  sink.write(make_event(EventKind::kProposal, 1));
  sink.write(make_event(EventKind::kAccept, 2));
  ASSERT_EQ(sink.events().size(), 2u);
  const auto taken = sink.take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[1].tick, 2u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(RingBufferSinkTest, RejectsZeroCapacity) {
  EXPECT_THROW(RingBufferSink{0}, std::invalid_argument);
}

TEST(RingBufferSinkTest, KeepsMostRecentOldestFirst) {
  RingBufferSink sink{3};
  for (std::uint64_t tick = 1; tick <= 5; ++tick) {
    sink.write(make_event(EventKind::kProposal, tick));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].tick, 3u);
  EXPECT_EQ(events[1].tick, 4u);
  EXPECT_EQ(events[2].tick, 5u);
}

TEST(RingBufferSinkTest, PartialFillSnapshotsInOrder) {
  RingBufferSink sink{8};
  sink.write(make_event(EventKind::kProposal, 10));
  sink.write(make_event(EventKind::kProposal, 11));
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tick, 10u);
  EXPECT_EQ(events[1].tick, 11u);
}

TEST(JsonlFileSinkTest, WritesOneLinePerEventOnFlush) {
  std::ostringstream out;
  JsonlFileSink sink{out};
  sink.write(make_event(EventKind::kProposal, 1));
  sink.write(make_event(EventKind::kReject, 2));
  sink.flush();
  EXPECT_EQ(sink.written(), 2u);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"proposal_sampled\""), std::string::npos);
  EXPECT_NE(text.find("\"reject\""), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(JsonlFileSinkTest, DestructorFlushes) {
  std::ostringstream out;
  {
    JsonlFileSink sink{out};
    sink.write(make_event(EventKind::kNewBest, 7));
  }
  EXPECT_NE(out.str().find("\"new_best\""), std::string::npos);
}

TEST(JsonlFileSinkTest, BadPathThrows) {
  EXPECT_THROW(JsonlFileSink{"/nonexistent-dir-for-mcopt/trace.jsonl"},
               std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::obs
