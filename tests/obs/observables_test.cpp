// StageObservables: exact integer accumulators for the thermodynamic run
// diagnostics — moments, lag-k autocorrelation, the equilibrium detector —
// plus their merge algebra and the recorder feed that must be identical
// under any --trace-sample stride.
#include "obs/observables.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace mcopt::obs {
namespace {

StageObservables fed(const std::vector<std::int64_t>& samples) {
  StageObservables obs;
  for (const std::int64_t x : samples) obs.add_sample(x);
  return obs;
}

TEST(ObservablesTest, MomentsMatchNaiveComputation) {
  const std::vector<std::int64_t> xs{5, -3, 12, 0, 7, 7, -1, 30, 2, 2};
  const StageObservables obs = fed(xs);

  double sum = 0.0;
  for (const std::int64_t x : xs) sum += static_cast<double>(x);
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (const std::int64_t x : xs) {
    var += (static_cast<double>(x) - mean) * (static_cast<double>(x) - mean);
  }
  var /= static_cast<double>(xs.size());

  EXPECT_EQ(obs.samples, xs.size());
  EXPECT_DOUBLE_EQ(obs.mean(), mean);
  EXPECT_NEAR(obs.variance(), var, 1e-9);
}

TEST(ObservablesTest, EmptyAndSingletonAreWellDefined) {
  StageObservables empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  EXPECT_DOUBLE_EQ(empty.autocorrelation(1), 0.0);
  EXPECT_DOUBLE_EQ(empty.specific_heat(), 0.0);

  StageObservables one;
  one.add_sample(42);
  EXPECT_DOUBLE_EQ(one.mean(), 42.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
}

TEST(ObservablesTest, AlternatingSequenceIsAnticorrelatedAtLagOne) {
  StageObservables obs;
  for (int i = 0; i < 2000; ++i) obs.add_sample(i % 2 == 0 ? 10 : 12);
  // Perfectly alternating: rho_1 -> -1, rho_2 -> +1.
  EXPECT_NEAR(obs.autocorrelation(1), -1.0, 0.01);
  EXPECT_NEAR(obs.autocorrelation(2), 1.0, 0.01);
}

TEST(ObservablesTest, ConstantSequenceHasZeroVarianceAndAutocorr) {
  StageObservables obs;
  for (int i = 0; i < 100; ++i) obs.add_sample(7);
  EXPECT_DOUBLE_EQ(obs.variance(), 0.0);
  // Degenerate variance: the estimator returns 0, not NaN.
  EXPECT_DOUBLE_EQ(obs.autocorrelation(1), 0.0);
}

TEST(ObservablesTest, AutocorrelationLagBoundsReturnZero) {
  StageObservables obs;
  for (int i = 0; i < 64; ++i) obs.add_sample(i % 3);
  EXPECT_DOUBLE_EQ(obs.autocorrelation(0), 0.0);
  EXPECT_DOUBLE_EQ(
      obs.autocorrelation(StageObservables::kMaxLag + 1), 0.0);
}

TEST(ObservablesTest, SpecificHeatIsVarianceOverTemperatureSquared) {
  StageObservables obs = fed({1, 5, 1, 5, 1, 5, 1, 5});
  EXPECT_DOUBLE_EQ(obs.specific_heat(), 0.0) << "no temperature recorded";
  obs.temperature = 2.0;
  EXPECT_NEAR(obs.specific_heat(), obs.variance() / 4.0, 1e-12);
}

TEST(ObservablesTest, EquilibriumFiresOnFlatWindowPair) {
  StageObservables obs;
  const auto window = StageObservables::kEquilibriumWindow;
  for (std::uint64_t i = 0; i < 2 * window; ++i) obs.add_sample(100);
  EXPECT_EQ(obs.windows, 2u);
  EXPECT_EQ(obs.equilibrated_runs, 1u);
  // Flagged exactly when the second window completed.
  EXPECT_EQ(obs.first_equilibrated_sample, 2 * window);
}

TEST(ObservablesTest, EquilibriumIgnoresDriftingWindows) {
  StageObservables obs;
  const auto window = StageObservables::kEquilibriumWindow;
  // Strictly cooling chain: every window's sum drops by more than the
  // drift limit allows, so the detector must never fire.
  for (std::uint64_t i = 0; i < 6 * window; ++i) {
    obs.add_sample(10'000 - static_cast<std::int64_t>(2 * i));
  }
  EXPECT_EQ(obs.windows, 6u);
  EXPECT_EQ(obs.equilibrated_runs, 0u);
  EXPECT_EQ(obs.first_equilibrated_sample, 0u);
}

TEST(ObservablesTest, EquilibriumCountsOncePerRun) {
  StageObservables obs;
  const auto window = StageObservables::kEquilibriumWindow;
  for (std::uint64_t i = 0; i < 10 * window; ++i) obs.add_sample(5);
  EXPECT_EQ(obs.equilibrated_runs, 1u)
      << "a run equilibrates once; later flat windows must not recount";
  EXPECT_EQ(obs.first_equilibrated_sample, 2 * window);
}

TEST(ObservablesTest, MergeIsAssociativeOnExportedValues) {
  // Three independent "runs" (each its own accumulator), merged flat vs
  // grouped — the property run_method_row and the shard reduction rely on.
  const StageObservables a = fed({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const StageObservables b = fed({100, 90, 80, 70});
  const StageObservables c = fed({-5, -5, -5});

  StageObservables flat;
  flat.merge(a);
  flat.merge(b);
  flat.merge(c);

  StageObservables bc;
  bc.merge(b);
  bc.merge(c);
  StageObservables grouped;
  grouped.merge(a);
  grouped.merge(bc);

  EXPECT_EQ(flat.samples, grouped.samples);
  EXPECT_EQ(flat.samples, 17u);
  EXPECT_DOUBLE_EQ(flat.mean(), grouped.mean());
  EXPECT_DOUBLE_EQ(flat.variance(), grouped.variance());
  for (std::size_t lag = 1; lag <= StageObservables::kMaxLag; ++lag) {
    EXPECT_DOUBLE_EQ(flat.autocorrelation(lag), grouped.autocorrelation(lag))
        << "lag " << lag;
  }
  EXPECT_EQ(flat.windows, grouped.windows);
  EXPECT_EQ(flat.equilibrated_runs, grouped.equilibrated_runs);
}

TEST(ObservablesTest, MergeTakesMinFirstEquilibratedAndMaxTemperature) {
  StageObservables a;
  a.first_equilibrated_sample = 96;
  a.temperature = 1.5;
  StageObservables b;
  b.first_equilibrated_sample = 64;
  b.temperature = 0.0;
  StageObservables c;  // never equilibrated: zero must not win the min

  StageObservables merged;
  merged.merge(a);
  merged.merge(c);
  merged.merge(b);
  EXPECT_EQ(merged.first_equilibrated_sample, 64u);
  EXPECT_DOUBLE_EQ(merged.temperature, 1.5);
}

TEST(ObservablesTest, MergeDoesNotMixTransientWindowState) {
  // A half-filled window must not leak into the merge: only completed
  // exact counts travel.
  StageObservables partial;
  for (int i = 0; i < 5; ++i) partial.add_sample(1);
  StageObservables target;
  target.merge(partial);
  EXPECT_EQ(target.samples, 5u);
  EXPECT_EQ(target.windows, 0u);
  const auto window = StageObservables::kEquilibriumWindow;
  // Feeding the *merged* accumulator a full flat window pair still uses
  // its own (fresh) window, not the donor's partial one.
  for (std::uint64_t i = 0; i < 2 * window; ++i) target.add_sample(1);
  EXPECT_EQ(target.windows, 2u);
  EXPECT_EQ(target.equilibrated_runs, 1u);
}

// The satellite-1 contract: observables feed from the metrics path, before
// the trace-sampling stride, so any --trace-sample value yields the exact
// same accumulators.
TEST(ObservablesTest, RecorderFeedIsIdenticalUnderTraceSampling) {
  auto drive = [](std::uint64_t stride) {
    Recorder rec{nullptr, /*collect_metrics=*/true, stride};
    RunMetrics metrics;
    rec.begin_run(&metrics, 2);
    rec.stage_temperature(0, 3.0);
    rec.stage_temperature(1, 1.5);
    double cost = 500.0;
    for (std::uint64_t tick = 1; tick <= 200; ++tick) {
      const std::uint32_t stage = tick <= 120 ? 0u : 1u;
      const double delta = (tick % 3 == 0) ? -2.0 : 1.0;
      rec.proposal(stage, tick, cost + delta, cost, delta);
      if (delta < 0.0) {
        cost += delta;
        rec.accept(stage, tick, cost, cost, delta);
      } else {
        rec.reject(stage, tick, cost + delta, cost);
      }
    }
    rec.end_run();
    return metrics;
  };

  const RunMetrics dense = drive(1);
  for (const std::uint64_t stride : {2ull, 7ull, 1000ull}) {
    const RunMetrics sampled = drive(stride);
    ASSERT_EQ(sampled.observables.size(), dense.observables.size());
    for (std::size_t s = 0; s < dense.observables.size(); ++s) {
      const StageObservables& d = dense.observables[s];
      const StageObservables& o = sampled.observables[s];
      EXPECT_EQ(o.samples, d.samples) << "stride " << stride;
      EXPECT_DOUBLE_EQ(o.mean(), d.mean());
      EXPECT_DOUBLE_EQ(o.variance(), d.variance());
      EXPECT_DOUBLE_EQ(o.temperature, d.temperature);
      for (std::size_t lag = 1; lag <= StageObservables::kMaxLag; ++lag) {
        EXPECT_DOUBLE_EQ(o.autocorrelation(lag), d.autocorrelation(lag));
      }
      EXPECT_EQ(o.windows, d.windows);
      EXPECT_EQ(o.equilibrated_runs, d.equilibrated_runs);
      EXPECT_EQ(o.first_equilibrated_sample, d.first_equilibrated_sample);
    }
    // And the whole JSON export — the form CI diffs — is byte-identical
    // modulo the wall-clock field, which sampling legitimately changes.
    RunMetrics dense_copy = dense;
    RunMetrics sampled_copy = sampled;
    dense_copy.wall_seconds = sampled_copy.wall_seconds = 0.0;
    for (auto& s : dense_copy.stages) s.wall_seconds = 0.0;
    for (auto& s : sampled_copy.stages) s.wall_seconds = 0.0;
    EXPECT_EQ(dense_copy.to_json(), sampled_copy.to_json())
        << "stride " << stride;
  }
}

TEST(ObservablesTest, RecorderSamplesPreMoveCost) {
  Recorder rec{nullptr, /*collect_metrics=*/true};
  RunMetrics metrics;
  rec.begin_run(&metrics, 1);
  // proposal(cost, best, delta) carries the post-move cost; the chain
  // energy sampled must be the pre-move cost, cost - delta = 50.
  rec.proposal(0, 1, 47.0, 50.0, -3.0);
  rec.end_run();
  ASSERT_EQ(metrics.observables.size(), 1u);
  EXPECT_EQ(metrics.observables[0].samples, 1u);
  EXPECT_DOUBLE_EQ(metrics.observables[0].mean(), 50.0);
}

TEST(ObservablesTest, UphillRateCountsAcceptedUphillShare) {
  StageMetrics stage;
  EXPECT_DOUBLE_EQ(stage.uphill_rate(), 0.0);
  stage.uphill_proposals = 8;
  stage.uphill_accepts = 2;
  EXPECT_DOUBLE_EQ(stage.uphill_rate(), 0.25);
}

}  // namespace
}  // namespace mcopt::obs
