// TimelineBuilder: Chrome Trace Event emission, lane cursors, metadata
// dedup, and the synthetic-layout nesting guarantee.
#include "obs/timeline.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <string>

#include "obs/profiler.hpp"

namespace mcopt::obs {
namespace {

ProfileTree two_level_tree() {
  ProfileTree tree;
  const std::int32_t run = tree.find_or_add(-1, "run");
  tree.nodes[static_cast<std::size_t>(run)].calls = 2;
  tree.nodes[static_cast<std::size_t>(run)].ticks = 100;
  tree.nodes[static_cast<std::size_t>(run)].wall_ns = 10'000;
  const std::int32_t sweep = tree.find_or_add(run, "sweep");
  tree.nodes[static_cast<std::size_t>(sweep)].calls = 20;
  tree.nodes[static_cast<std::size_t>(sweep)].wall_ns = 6'000;
  const std::int32_t swap = tree.find_or_add(run, "swap");
  tree.nodes[static_cast<std::size_t>(swap)].calls = 40;
  tree.nodes[static_cast<std::size_t>(swap)].wall_ns = 3'000;
  return tree;
}

TEST(TimelineBuilderTest, EmptyBuilderAndEmptyTreeProduceNoSpans) {
  TimelineBuilder builder;
  EXPECT_TRUE(builder.empty());
  builder.add_tree(ProfileTree{}, 0, 0);
  EXPECT_TRUE(builder.empty());
  EXPECT_EQ(builder.num_events(), 0u);
  // Still a valid document.
  EXPECT_NE(builder.to_json().find("\"traceEvents\": []"),
            std::string::npos);
}

TEST(TimelineBuilderTest, MetadataRecordsAreDeduplicatedPerLane) {
  TimelineBuilder builder;
  builder.set_process_name(1, "workers");
  builder.set_process_name(1, "workers again");  // dropped
  builder.set_thread_name(1, 0, "caller thread");
  builder.set_thread_name(1, 0, "renamed");      // dropped
  builder.set_thread_name(1, 1, "worker 1");
  // process pid 1 and thread (1, 0) dedup independently: tid 0 of the
  // process-name record must not shadow the thread-name record.
  EXPECT_EQ(builder.num_events(), 3u);
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"workers\"}"), std::string::npos);
  EXPECT_EQ(json.find("workers again"), std::string::npos);
  EXPECT_EQ(json.find("renamed"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"worker 1\"}"), std::string::npos);
}

TEST(TimelineBuilderTest, ChildrenPackSequentiallyInsideTheParent) {
  TimelineBuilder builder;
  builder.add_tree(two_level_tree(), 0, 0);
  ASSERT_EQ(builder.num_events(), 3u);
  const std::string json = builder.to_json();
  // Parent spans [0, 10); children pack from the parent's start:
  // sweep [0, 6), swap [6, 9).  ts/dur are microseconds.
  EXPECT_NE(json.find("{\"name\": \"run\", \"ph\": \"X\", \"pid\": 0, "
                      "\"tid\": 0, \"cat\": \"profile\", \"ts\": 0.000, "
                      "\"dur\": 10.000"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"sweep\", \"ph\": \"X\", \"pid\": 0, "
                      "\"tid\": 0, \"cat\": \"profile\", \"ts\": 0.000, "
                      "\"dur\": 6.000"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"swap\", \"ph\": \"X\", \"pid\": 0, "
                      "\"tid\": 0, \"cat\": \"profile\", \"ts\": 6.000, "
                      "\"dur\": 3.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"calls\": 2, \"ticks\": 100}"),
            std::string::npos);
}

TEST(TimelineBuilderTest, LaneCursorAppendsTreesEndToEndPerLane) {
  TimelineBuilder builder;
  builder.add_tree(two_level_tree(), 1, 3);
  builder.add_tree(two_level_tree(), 1, 3);  // appends after the first
  builder.add_tree(two_level_tree(), 1, 4);  // separate lane: starts at 0
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("\"tid\": 3, \"cat\": \"profile\", \"ts\": 10.000, "
                      "\"dur\": 10.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\": 4, \"cat\": \"profile\", \"ts\": 0.000, "
                      "\"dur\": 10.000"),
            std::string::npos);
}

TEST(TimelineBuilderTest, PerfArgsAppearOnlyWhenCountersFired) {
  ProfileTree tree = two_level_tree();
  tree.nodes[0].perf.cycles = 1000;
  tree.nodes[0].perf.instructions = 2500;
  tree.nodes[0].perf.cache_refs = 200;
  tree.nodes[0].perf.cache_misses = 30;
  TimelineBuilder builder;
  builder.add_tree(tree, 0, 0);
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("\"ipc\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"cache_miss_rate\": 0.15"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": 1000"), std::string::npos);
  // Children carried no counts: exactly one span carries perf args.
  EXPECT_EQ(json.find("\"ipc\""), json.rfind("\"ipc\""));
}

TEST(TimelineBuilderTest, ScopeNamesAreJsonEscaped) {
  ProfileTree tree;
  const std::int32_t node = tree.find_or_add(-1, "we\"ird\\name");
  tree.nodes[static_cast<std::size_t>(node)].wall_ns = 1000;
  TimelineBuilder builder;
  builder.add_tree(tree, 0, 0);
  builder.set_process_name(0, "line\nbreak");
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

}  // namespace
}  // namespace mcopt::obs
