// Negative-compile fixture: reads a GUARDED_BY field without holding its
// mutex.  tests/negative/CMakeLists.txt try_compiles this twice — once
// plain (must succeed: the fixture is otherwise valid C++) and once under
// -Werror=thread-safety (must fail: the unlocked read below is exactly
// the bug class the annotations exist to stop).  Either expectation
// breaking fails the negative_compile_thread_safety ctest.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  mcopt::util::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.value;  // unlocked read of a guarded field
}
