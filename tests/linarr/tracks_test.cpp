#include "linarr/tracks.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>

#include <sstream>
#include <tuple>

#include "linarr/density.hpp"
#include "linarr/goto_heuristic.hpp"
#include "netlist/generator.hpp"

namespace mcopt::linarr {
namespace {

using netlist::Netlist;

TEST(TracksTest, SingleNetSingleTrack) {
  Netlist::Builder b{4};
  b.add_net({0, 3});
  const Netlist nl = b.build();
  const auto assignment = assign_tracks(nl, Arrangement{4});
  EXPECT_EQ(assignment.num_tracks, 1u);
  EXPECT_EQ(assignment.nets[0].lo, 0u);
  EXPECT_EQ(assignment.nets[0].hi, 3u);
  EXPECT_TRUE(is_valid_assignment(assignment));
}

TEST(TracksTest, AbuttingNetsShareATrack) {
  // [0,2] and [2,4]: one ends where the other begins; no boundary overlap,
  // so one track suffices (and density is 1).
  Netlist::Builder b{5};
  b.add_net({0, 2});
  b.add_net({2, 4});
  const Netlist nl = b.build();
  const auto assignment = assign_tracks(nl, Arrangement{5});
  EXPECT_EQ(assignment.num_tracks, 1u);
  EXPECT_EQ(assignment.nets[0].track, assignment.nets[1].track);
}

TEST(TracksTest, OverlappingNetsAreSeparated) {
  Netlist::Builder b{4};
  b.add_net({0, 2});
  b.add_net({1, 3});
  const Netlist nl = b.build();
  const auto assignment = assign_tracks(nl, Arrangement{4});
  EXPECT_EQ(assignment.num_tracks, 2u);
  EXPECT_NE(assignment.nets[0].track, assignment.nets[1].track);
  EXPECT_TRUE(is_valid_assignment(assignment));
}

TEST(TracksTest, ParallelNetsStack) {
  Netlist::Builder b{2};
  b.add_net({0, 1});
  b.add_net({0, 1});
  b.add_net({0, 1});
  const auto assignment = assign_tracks(b.build(), Arrangement{2});
  EXPECT_EQ(assignment.num_tracks, 3u);
}

TEST(TracksTest, ValidityDetectsBrokenAssignments) {
  Netlist::Builder b{4};
  b.add_net({0, 2});
  b.add_net({1, 3});
  auto assignment = assign_tracks(b.build(), Arrangement{4});
  ASSERT_TRUE(is_valid_assignment(assignment));
  assignment.nets[1].track = assignment.nets[0].track;  // force a conflict
  EXPECT_FALSE(is_valid_assignment(assignment));
  assignment = assign_tracks(b.build(), Arrangement{4});
  assignment.nets[0].track = 99;  // out of range
  EXPECT_FALSE(is_valid_assignment(assignment));
}

// The module's headline property: left-edge track count equals density,
// i.e. minimizing density minimizes the routed channel height.  Sweep over
// random instances, both net models, several arrangements each.
class TracksDensityTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(TracksDensityTest, TrackCountEqualsDensity) {
  const auto [seed, multi_pin] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(seed)};
  const Netlist nl =
      multi_pin
          ? netlist::random_nola(netlist::NolaParams{12, 40, 2, 5}, rng)
          : netlist::random_gola(netlist::GolaParams{12, 40}, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const Arrangement arr = trial == 0 ? goto_arrangement(nl)
                                       : Arrangement::random(12, rng);
    const auto assignment = assign_tracks(nl, arr);
    ASSERT_TRUE(is_valid_assignment(assignment));
    EXPECT_EQ(assignment.num_tracks,
              static_cast<std::size_t>(density_of(nl, arr)))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracksDensityTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

TEST(TracksTest, RenderShowsTracksAndPins) {
  Netlist::Builder b{4};
  b.add_net({0, 2});
  b.add_net({1, 3});
  const Netlist nl = b.build();
  const Arrangement arr{4};
  std::ostringstream os;
  render_channel(os, nl, arr, assign_tracks(nl, arr));
  const std::string text = os.str();
  EXPECT_NE(text.find("track 0 |"), std::string::npos);
  EXPECT_NE(text.find("track 1 |"), std::string::npos);
  EXPECT_NE(text.find("0-0"), std::string::npos);  // net 0 spans cols 0..2
  EXPECT_NE(text.find("1-1"), std::string::npos);  // net 1 spans cols 1..3
  EXPECT_NE(text.find("cells    0123"), std::string::npos);
}

}  // namespace
}  // namespace mcopt::linarr
