#include "linarr/density.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "netlist/generator.hpp"

namespace mcopt::linarr {
namespace {

using netlist::GolaParams;
using netlist::Netlist;
using netlist::NolaParams;

Netlist path_graph(std::size_t n) {
  Netlist::Builder b{n};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_net({static_cast<CellId>(i), static_cast<CellId>(i + 1)});
  }
  return b.build();
}

TEST(DensityTest, PathGraphIdentityHasDensityOne) {
  const Netlist nl = path_graph(5);
  DensityState state{nl, Arrangement{5}};
  EXPECT_EQ(state.density(), 1);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(state.cut_at(b), 1);
  EXPECT_EQ(state.total_span(), 4);
}

TEST(DensityTest, ReversedPathStillDensityOne) {
  const Netlist nl = path_graph(5);
  DensityState state{nl, Arrangement::from_order({4, 3, 2, 1, 0})};
  EXPECT_EQ(state.density(), 1);
}

TEST(DensityTest, ScrambledPathRaisesDensity) {
  // 0-1-2-3-4 path arranged 0 2 4 1 3: every edge spans >= 2 boundaries.
  const Netlist nl = path_graph(5);
  DensityState state{nl, Arrangement::from_order({0, 2, 4, 1, 3})};
  EXPECT_GT(state.density(), 1);
  EXPECT_TRUE(state.verify());
}

TEST(DensityTest, StarNetCrossesItsWholeSpan) {
  // One 4-pin net over cells {0,1,2,3} placed at positions 0..3 of 5.
  Netlist::Builder b{5};
  b.add_net({0, 1, 2, 3});
  const Netlist nl = b.build();
  DensityState state{nl, Arrangement{5}};
  EXPECT_EQ(state.cut_at(0), 1);
  EXPECT_EQ(state.cut_at(1), 1);
  EXPECT_EQ(state.cut_at(2), 1);
  EXPECT_EQ(state.cut_at(3), 0);  // net does not reach position 4
  EXPECT_EQ(state.density(), 1);
  EXPECT_EQ(state.total_span(), 3);
}

TEST(DensityTest, MultiPinNetSpanIsExtremaNotPairs) {
  // Net {0, 2} plus net {0, 1, 2}: both span positions 0..2 under identity.
  Netlist::Builder b{3};
  b.add_net({0, 2});
  b.add_net({0, 1, 2});
  DensityState state{b.build(), Arrangement{3}};
  EXPECT_EQ(state.cut_at(0), 2);
  EXPECT_EQ(state.cut_at(1), 2);
  EXPECT_EQ(state.density(), 2);
}

TEST(DensityTest, ParallelNetsStack) {
  Netlist::Builder b{2};
  b.add_net({0, 1});
  b.add_net({0, 1});
  b.add_net({0, 1});
  DensityState state{b.build(), Arrangement{2}};
  EXPECT_EQ(state.density(), 3);
}

TEST(DensityTest, RejectsSizeMismatch) {
  const Netlist nl = path_graph(4);
  EXPECT_THROW((DensityState{nl, Arrangement{5}}), std::invalid_argument);
}

TEST(DensityTest, SwapUpdatesDensity) {
  const Netlist nl = path_graph(4);  // identity density 1
  DensityState state{nl, Arrangement{4}};
  state.apply_swap(0, 3);  // 3 1 2 0: edges 0-1 and 2-3 now span widely
  EXPECT_TRUE(state.verify());
  EXPECT_GT(state.density(), 1);
  state.apply_swap(0, 3);  // undo
  EXPECT_EQ(state.density(), 1);
  EXPECT_TRUE(state.verify());
}

TEST(DensityTest, SwapSamePositionIsNoop) {
  const Netlist nl = path_graph(4);
  DensityState state{nl, Arrangement{4}};
  state.apply_swap(2, 2);
  EXPECT_EQ(state.density(), 1);
  EXPECT_TRUE(state.verify());
}

TEST(DensityTest, MoveUpdatesDensity) {
  const Netlist nl = path_graph(6);
  DensityState state{nl, Arrangement{6}};
  state.apply_move(0, 5);
  EXPECT_TRUE(state.verify());
  state.apply_move(5, 0);
  EXPECT_EQ(state.density(), 1);
  EXPECT_TRUE(state.verify());
}

TEST(DensityTest, ResetRecounts) {
  const Netlist nl = path_graph(5);
  DensityState state{nl, Arrangement::from_order({0, 2, 4, 1, 3})};
  const int scrambled = state.density();
  state.reset(Arrangement{5});
  EXPECT_EQ(state.density(), 1);
  EXPECT_LT(state.density(), scrambled);
  EXPECT_TRUE(state.verify());
}

TEST(DensityTest, MaxCutTightensAfterDecrease) {
  // Force the lazily-tracked max to shrink: create a high cut then remove it.
  Netlist::Builder b{4};
  b.add_net({0, 3});
  b.add_net({0, 3});
  b.add_net({1, 2});
  const Netlist nl = b.build();
  DensityState state{nl, Arrangement{4}};  // cuts: 2 3 2 -> density 3
  EXPECT_EQ(state.density(), 3);
  // Swap 1 and 3: order 0 3 2 1.  The two {0,3} nets now span one boundary.
  state.apply_swap(1, 3);
  EXPECT_TRUE(state.verify());
  EXPECT_EQ(state.density(), 2);
}

TEST(DensityOfTest, OneShotMatchesState) {
  const Netlist nl = path_graph(7);
  const Arrangement arr = Arrangement::from_order({3, 0, 6, 2, 5, 1, 4});
  DensityState state{nl, arr};
  EXPECT_EQ(density_of(nl, arr), state.density());
}

// Property sweep: after arbitrary interleavings of swaps and moves the
// incremental state must equal a from-scratch recount.  Parameterized over
// (instance seed, use NOLA multi-pin nets).
class DensityChurnTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DensityChurnTest, IncrementalAlwaysMatchesRecount) {
  const auto [seed, multi_pin] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(seed)};
  const Netlist nl =
      multi_pin ? random_nola(NolaParams{12, 60, 2, 6}, rng)
                : random_gola(GolaParams{12, 60}, rng);
  DensityState state{nl, Arrangement::random(12, rng)};
  ASSERT_TRUE(state.verify());
  for (int step = 0; step < 300; ++step) {
    const auto [a, b] = rng.next_distinct_pair(12);
    if (rng.next_bool(0.5)) {
      state.apply_swap(a, b);
    } else {
      state.apply_move(a, b);
    }
    if (step % 10 == 0) {
      ASSERT_TRUE(state.verify()) << "step " << step;
    }
    ASSERT_GE(state.density(), 0);
    ASSERT_LE(state.density(), static_cast<int>(nl.num_nets()));
  }
  EXPECT_TRUE(state.verify());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensityChurnTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Bool()));

// Density lower bound: the first boundary's cut equals the degree of the
// leftmost cell for two-pin nets, so density >= min degree.
TEST(DensityBoundTest, DensityAtLeastMinDegreeOnGraphs) {
  util::Rng rng{77};
  const Netlist nl = random_gola(GolaParams{10, 45}, rng);
  std::size_t min_degree = nl.degree(0);
  for (CellId c = 1; c < nl.num_cells(); ++c) {
    min_degree = std::min(min_degree, nl.degree(c));
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Arrangement arr = Arrangement::random(10, rng);
    EXPECT_GE(density_of(nl, arr), static_cast<int>(min_degree));
  }
}

// Speculation unit contract: speculate_* records the exact density/span of
// the candidate without touching the committed state; commit makes the
// candidate current; discard is a perfect no-op.  The apply path is the
// oracle.
TEST(DensitySpeculationTest, SwapSpeculationMatchesApplyOracle) {
  util::Rng rng{83};
  const Netlist nl = random_gola(GolaParams{12, 80}, rng);
  DensityState spec{nl, Arrangement::random(12, rng)};
  DensityState oracle{spec};
  for (int trial = 0; trial < 200; ++trial) {
    const auto p = static_cast<std::size_t>(rng.next() % 12);
    auto q = static_cast<std::size_t>(rng.next() % 11);
    if (q >= p) ++q;
    const int before_density = spec.density();
    const long long before_span = spec.total_span();
    spec.speculate_swap(p, q);
    oracle.apply_swap(p, q);
    ASSERT_EQ(spec.speculative_density(), oracle.density());
    ASSERT_EQ(spec.speculative_total_span(), oracle.total_span());
    // Committed state is untouched while speculating.
    ASSERT_EQ(spec.density(), before_density);
    ASSERT_EQ(spec.total_span(), before_span);
    if (trial % 2 == 0) {
      spec.commit_speculation();
      ASSERT_EQ(spec.density(), oracle.density());
      ASSERT_EQ(spec.arrangement().order(), oracle.arrangement().order());
    } else {
      spec.discard_speculation();
      oracle.apply_swap(p, q);  // self-inverse: undo the oracle
      ASSERT_EQ(spec.density(), before_density);
      ASSERT_EQ(spec.total_span(), before_span);
    }
    if (trial % 25 == 0) ASSERT_TRUE(spec.verify()) << "trial " << trial;
  }
  EXPECT_TRUE(spec.verify());
}

TEST(DensitySpeculationTest, MoveSpeculationMatchesApplyOracle) {
  util::Rng rng{87};
  const Netlist nl = random_gola(GolaParams{12, 80}, rng);
  DensityState spec{nl, Arrangement::random(12, rng)};
  DensityState oracle{spec};
  for (int trial = 0; trial < 200; ++trial) {
    const auto from = static_cast<std::size_t>(rng.next() % 12);
    auto to = static_cast<std::size_t>(rng.next() % 11);
    if (to >= from) ++to;
    const int before_density = spec.density();
    const long long before_span = spec.total_span();
    spec.speculate_move(from, to);
    oracle.apply_move(from, to);
    ASSERT_EQ(spec.speculative_density(), oracle.density());
    ASSERT_EQ(spec.speculative_total_span(), oracle.total_span());
    ASSERT_EQ(spec.density(), before_density);
    ASSERT_EQ(spec.total_span(), before_span);
    if (trial % 2 == 0) {
      spec.commit_speculation();
      ASSERT_EQ(spec.density(), oracle.density());
      ASSERT_EQ(spec.arrangement().order(), oracle.arrangement().order());
    } else {
      spec.discard_speculation();
      oracle.apply_move(to, from);  // inverse move undoes the oracle
      ASSERT_EQ(spec.density(), before_density);
      ASSERT_EQ(spec.total_span(), before_span);
    }
    if (trial % 25 == 0) ASSERT_TRUE(spec.verify()) << "trial " << trial;
  }
  EXPECT_TRUE(spec.verify());
}

// Clone regression: vector copies shrink capacity to size and the per-move
// scratch is empty between moves, so a defaulted copy would silently
// re-allocate on the worker's first hot-loop move.  The copy constructor
// and assignment must re-reserve everything.
TEST(DensityCopyTest, CopyAndAssignReReserveSpeculationScratch) {
  util::Rng rng{81};
  const Netlist nl = random_gola(GolaParams{15, 150}, rng);
  DensityState state{nl, Arrangement::random(15, rng)};
  ASSERT_TRUE(state.scratch_reserved());

  DensityState copied{state};
  EXPECT_TRUE(copied.scratch_reserved());

  DensityState assigned{nl, Arrangement::random(15, rng)};
  assigned = state;
  EXPECT_TRUE(assigned.scratch_reserved());
  EXPECT_EQ(assigned.density(), state.density());

  // The copy must also be a correct speculation substrate, not just a
  // reserved one.
  copied.speculate_swap(2, 9);
  const int candidate = copied.speculative_density();
  copied.commit_speculation();
  EXPECT_EQ(copied.density(), candidate);
  EXPECT_TRUE(copied.verify());
  EXPECT_TRUE(copied.scratch_reserved());
}

}  // namespace
}  // namespace mcopt::linarr
