#include "linarr/goto_heuristic.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include "linarr/density.hpp"
#include "netlist/generator.hpp"
#include "util/stats.hpp"

namespace mcopt::linarr {
namespace {

using netlist::GolaParams;
using netlist::Netlist;
using netlist::NolaParams;

Netlist path_graph(std::size_t n) {
  Netlist::Builder b{n};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_net({static_cast<CellId>(i), static_cast<CellId>(i + 1)});
  }
  return b.build();
}

TEST(GotoTest, ProducesValidArrangement) {
  util::Rng rng{1};
  const Netlist nl = netlist::random_gola(GolaParams{15, 150}, rng);
  const Arrangement arr = goto_arrangement(nl);
  EXPECT_EQ(arr.size(), 15u);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(GotoTest, SolvesPathGraphOptimally) {
  // A path has an arrangement of density 1 (its own order); the greedy
  // construction must find one.
  const Netlist nl = path_graph(8);
  const Arrangement arr = goto_arrangement(nl);
  EXPECT_EQ(density_of(nl, arr), 1);
}

TEST(GotoTest, StartsWithMostLightlyConnectedElement) {
  // Star: cell 0 connected to everyone; leaves have degree 1.  The seed
  // must be a leaf (the lowest-id one, cell 1).
  Netlist::Builder b{5};
  for (CellId leaf = 1; leaf < 5; ++leaf) b.add_net({0, leaf});
  const Arrangement arr = goto_arrangement(b.build());
  EXPECT_EQ(arr.cell_at(0), 1u);
}

TEST(GotoTest, IsDeterministic) {
  util::Rng rng{2};
  const Netlist nl = netlist::random_nola(NolaParams{15, 150, 2, 6}, rng);
  const Arrangement a = goto_arrangement(nl);
  const Arrangement b = goto_arrangement(nl);
  EXPECT_EQ(a.order(), b.order());
}

TEST(GotoTest, HandlesNetFreeNetlist) {
  netlist::Netlist::Builder b{4};
  const Arrangement arr = goto_arrangement(b.build());
  EXPECT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(GotoTest, HandlesMultiPinNets) {
  Netlist::Builder b{6};
  b.add_net({0, 1, 2});
  b.add_net({2, 3});
  b.add_net({3, 4, 5});
  const Netlist nl = b.build();
  const Arrangement arr = goto_arrangement(nl);
  EXPECT_TRUE(arr.is_consistent());
  // This "caterpillar" admits density 1; greedy should achieve <= 2.
  EXPECT_LE(density_of(nl, arr), 2);
}

TEST(GotoTest, BeatsRandomOnAverage) {
  // §4.2.2: Goto performs as well as the best Monte Carlo methods at small
  // budgets — it must crush the average random arrangement.
  util::Summary goto_density;
  util::Summary random_density;
  for (int i = 0; i < 10; ++i) {
    util::Rng rng{static_cast<std::uint64_t>(100 + i)};
    const Netlist nl = netlist::random_gola(GolaParams{15, 150}, rng);
    goto_density.add(density_of(nl, goto_arrangement(nl)));
    for (int r = 0; r < 5; ++r) {
      random_density.add(density_of(nl, Arrangement::random(15, rng)));
    }
  }
  EXPECT_LT(goto_density.mean(), random_density.mean());
  // The gap should be substantial (the paper reports ~20 per instance).
  EXPECT_LT(goto_density.mean(), random_density.mean() - 5.0);
}

TEST(GotoTest, EveryPrefixBoundaryMatchesGreedyChoice) {
  // White-box invariant: by construction the k-th boundary cut equals the
  // number of nets with pins on both sides of the first k cells; recompute
  // it directly and compare against the DensityState.
  util::Rng rng{3};
  const Netlist nl = netlist::random_gola(GolaParams{10, 40}, rng);
  const Arrangement arr = goto_arrangement(nl);
  DensityState state{nl, arr};
  for (std::size_t boundary = 0; boundary + 1 < 10; ++boundary) {
    int crossing = 0;
    for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
      bool left = false;
      bool right = false;
      for (const CellId c : nl.pins(net)) {
        (arr.position_of(c) <= boundary ? left : right) = true;
      }
      crossing += left && right;
    }
    EXPECT_EQ(state.cut_at(boundary), crossing) << "boundary " << boundary;
  }
}

}  // namespace
}  // namespace mcopt::linarr
