#include "linarr/cohoon.hpp"

#include <cstdint>
#include <gtest/gtest.h>

#include "linarr/goto_heuristic.hpp"
#include "netlist/generator.hpp"

namespace mcopt::linarr {
namespace {

using netlist::GolaParams;
using netlist::Netlist;

Netlist instance(std::uint64_t seed) {
  util::Rng rng{seed};
  return netlist::random_gola(GolaParams{15, 150}, rng);
}

TEST(CohoonTest, Figure1RunImproves) {
  const Netlist nl = instance(1);
  util::Rng rng{11};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const core::RunResult result =
      cohoon_sahni(problem, {.strategy = Strategy::kFigure1, .budget = 20000},
                   rng);
  EXPECT_LT(result.best_cost, result.initial_cost);
  EXPECT_EQ(result.proposals, 20000u);
}

TEST(CohoonTest, Figure2RunImproves) {
  const Netlist nl = instance(2);
  util::Rng rng{13};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const core::RunResult result =
      cohoon_sahni(problem, {.strategy = Strategy::kFigure2, .budget = 20000},
                   rng);
  EXPECT_LT(result.best_cost, result.initial_cost);
  EXPECT_GT(result.descent_steps, 0u);
}

TEST(CohoonTest, PublishedBestVariantRunsFromGotoStart) {
  // [COHO83a]'s best heuristic: Goto start + single exchange + Figure 2.
  const Netlist nl = instance(3);
  util::Rng rng{17};
  LinArrProblem problem{nl, goto_arrangement(nl), MoveKind::kSingleExchange};
  const core::RunResult result =
      cohoon_sahni(problem, {.strategy = Strategy::kFigure2, .budget = 20000},
                   rng);
  EXPECT_LE(result.best_cost, result.initial_cost);
}

TEST(CohoonTest, DeterministicGivenSeed) {
  const Netlist nl = instance(4);
  util::Rng r1{19};
  util::Rng r2{19};
  LinArrProblem p1{nl, Arrangement{15}};
  LinArrProblem p2{nl, Arrangement{15}};
  const auto a = cohoon_sahni(p1, {.budget = 5000}, r1);
  const auto b = cohoon_sahni(p2, {.budget = 5000}, r2);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_state, b.best_state);
}

}  // namespace
}  // namespace mcopt::linarr
