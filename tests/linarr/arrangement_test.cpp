#include "linarr/arrangement.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include <stdexcept>

namespace mcopt::linarr {
namespace {

TEST(ArrangementTest, IdentityLaysOutInOrder) {
  Arrangement arr{5};
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(arr.cell_at(p), p);
    EXPECT_EQ(arr.position_of(static_cast<CellId>(p)), p);
  }
  EXPECT_TRUE(arr.is_consistent());
}

TEST(ArrangementTest, RejectsEmpty) {
  EXPECT_THROW(Arrangement{0}, std::invalid_argument);
  EXPECT_THROW(Arrangement::from_order({}), std::invalid_argument);
}

TEST(ArrangementTest, FromOrderValidates) {
  EXPECT_THROW(Arrangement::from_order({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Arrangement::from_order({0, 3}), std::invalid_argument);
  const Arrangement arr = Arrangement::from_order({2, 0, 1});
  EXPECT_EQ(arr.cell_at(0), 2u);
  EXPECT_EQ(arr.position_of(1), 2u);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(ArrangementTest, SwapPositionsUpdatesBothMaps) {
  Arrangement arr{4};
  arr.swap_positions(0, 3);
  EXPECT_EQ(arr.cell_at(0), 3u);
  EXPECT_EQ(arr.cell_at(3), 0u);
  EXPECT_EQ(arr.position_of(0), 3u);
  EXPECT_EQ(arr.position_of(3), 0u);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(ArrangementTest, SwapIsSelfInverse) {
  util::Rng rng{1};
  Arrangement arr = Arrangement::random(8, rng);
  const auto before = arr.order();
  arr.swap_positions(2, 6);
  arr.swap_positions(2, 6);
  EXPECT_EQ(arr.order(), before);
}

TEST(ArrangementTest, MoveForwardShiftsIntermediates) {
  Arrangement arr{5};  // 0 1 2 3 4
  arr.move_position(1, 3);
  const std::vector<CellId> want{0, 2, 3, 1, 4};
  EXPECT_EQ(arr.order(), want);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(ArrangementTest, MoveBackwardShiftsIntermediates) {
  Arrangement arr{5};
  arr.move_position(3, 0);
  const std::vector<CellId> want{3, 0, 1, 2, 4};
  EXPECT_EQ(arr.order(), want);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(ArrangementTest, MoveIsUndoneByReverseMove) {
  util::Rng rng{2};
  Arrangement arr = Arrangement::random(9, rng);
  const auto before = arr.order();
  arr.move_position(2, 7);
  arr.move_position(7, 2);
  EXPECT_EQ(arr.order(), before);
}

TEST(ArrangementTest, MoveToSamePositionIsNoop) {
  Arrangement arr{4};
  arr.move_position(2, 2);
  EXPECT_EQ(arr.cell_at(2), 2u);
  EXPECT_TRUE(arr.is_consistent());
}

TEST(ArrangementTest, RandomIsUniformishOverPositions) {
  // Cell 0's position should hit every slot over many draws.
  std::vector<int> counts(6, 0);
  for (int trial = 0; trial < 600; ++trial) {
    util::Rng rng{static_cast<std::uint64_t>(trial)};
    const Arrangement arr = Arrangement::random(6, rng);
    ++counts[arr.position_of(0)];
  }
  for (const int c : counts) EXPECT_GT(c, 50);
}

class ArrangementPropertyTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(ArrangementPropertyTest, RandomMoveChurnPreservesConsistency) {
  const std::size_t n = GetParam();
  util::Rng rng{n * 31 + 7};
  Arrangement arr = Arrangement::random(n, rng);
  for (int step = 0; step < 500; ++step) {
    const auto [a, b] = rng.next_distinct_pair(n);
    if (rng.next_bool(0.5)) {
      arr.swap_positions(a, b);
    } else {
      arr.move_position(a, b);
    }
    ASSERT_TRUE(arr.is_consistent()) << "step " << step << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArrangementPropertyTest,
                         ::testing::Values(2, 3, 5, 15, 64));

}  // namespace
}  // namespace mcopt::linarr
