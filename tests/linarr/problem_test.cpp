#include "linarr/problem.hpp"

#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "netlist/generator.hpp"

namespace mcopt::linarr {
namespace {

using netlist::GolaParams;
using netlist::Netlist;
using netlist::NolaParams;

Netlist paper_instance(std::uint64_t seed = 1) {
  util::Rng rng{seed};
  return netlist::random_gola(GolaParams{15, 150}, rng);
}

TEST(LinArrProblemTest, CostIsDensity) {
  const Netlist nl = paper_instance();
  util::Rng rng{2};
  const Arrangement arr = Arrangement::random(15, rng);
  LinArrProblem problem{nl, arr};
  EXPECT_DOUBLE_EQ(problem.cost(), density_of(nl, arr));
}

TEST(LinArrProblemTest, TotalSpanObjective) {
  const Netlist nl = paper_instance();
  util::Rng rng{3};
  LinArrProblem problem{nl, Arrangement::random(15, rng),
                        MoveKind::kPairwiseInterchange,
                        Objective::kTotalSpan};
  EXPECT_DOUBLE_EQ(problem.cost(),
                   static_cast<double>(problem.state().total_span()));
}

TEST(LinArrProblemTest, RejectsTinyNetlist) {
  netlist::Netlist::Builder b{1};
  const Netlist nl = b.build();
  EXPECT_THROW((LinArrProblem{nl, Arrangement{1}}), std::invalid_argument);
}

TEST(LinArrProblemTest, ProposeReturnsPerturbedCost) {
  const Netlist nl = paper_instance();
  util::Rng rng{4};
  LinArrProblem problem{nl, Arrangement::random(15, rng),
                        MoveKind::kPairwiseInterchange, Objective::kDensity,
                        core::EvalPath::kApplyUndo};
  const double h_j = problem.propose(rng);
  EXPECT_DOUBLE_EQ(h_j, problem.cost());  // apply-undo: pending is visible
  problem.reject();
}

TEST(LinArrProblemTest, SpeculativeProposeLeavesCommittedCostVisible) {
  const Netlist nl = paper_instance();
  util::Rng rng{4};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  ASSERT_EQ(problem.eval_path(), core::EvalPath::kSpeculative);
  const double h_i = problem.cost();
  const double h_j = problem.propose(rng);
  // Speculative: nothing is committed until accept(), so cost() still
  // reports the current solution.
  EXPECT_DOUBLE_EQ(problem.cost(), h_i);
  problem.accept();
  EXPECT_DOUBLE_EQ(problem.cost(), h_j);
}

TEST(LinArrProblemTest, RejectRestoresExactState) {
  const Netlist nl = paper_instance();
  util::Rng rng{5};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const auto before_order = problem.arrangement().order();
  const double before_cost = problem.cost();
  for (int i = 0; i < 50; ++i) {
    (void)problem.propose(rng);
    problem.reject();
    ASSERT_EQ(problem.arrangement().order(), before_order);
    ASSERT_DOUBLE_EQ(problem.cost(), before_cost);
  }
  EXPECT_TRUE(problem.state().verify());
}

TEST(LinArrProblemTest, AcceptKeepsPerturbedState) {
  const Netlist nl = paper_instance();
  util::Rng rng{6};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const auto before_order = problem.arrangement().order();
  const double h_j = problem.propose(rng);
  problem.accept();
  EXPECT_NE(problem.arrangement().order(), before_order);
  EXPECT_DOUBLE_EQ(problem.cost(), h_j);
  EXPECT_TRUE(problem.state().verify());
}

TEST(LinArrProblemTest, DoubleProposeThrows) {
  const Netlist nl = paper_instance();
  util::Rng rng{7};
  LinArrProblem problem{nl, Arrangement{15}};
  (void)problem.propose(rng);
  EXPECT_THROW((void)problem.propose(rng), std::logic_error);
  problem.reject();
}

TEST(LinArrProblemTest, AcceptRejectWithoutProposeThrow) {
  const Netlist nl = paper_instance();
  LinArrProblem problem{nl, Arrangement{15}};
  EXPECT_THROW(problem.accept(), std::logic_error);
  EXPECT_THROW(problem.reject(), std::logic_error);
}

TEST(LinArrProblemTest, PendingBlocksBulkOperations) {
  const Netlist nl = paper_instance();
  util::Rng rng{8};
  LinArrProblem problem{nl, Arrangement{15}};
  util::WorkBudget budget{100};
  (void)problem.propose(rng);
  EXPECT_THROW(problem.descend(budget), std::logic_error);
  EXPECT_THROW(problem.randomize(rng), std::logic_error);
  EXPECT_THROW(problem.restore(problem.snapshot()), std::logic_error);
  problem.accept();
}

TEST(LinArrProblemTest, SnapshotRestoreRoundTrips) {
  const Netlist nl = paper_instance();
  util::Rng rng{9};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const core::Snapshot snap = problem.snapshot();
  const double cost = problem.cost();
  problem.randomize(rng);
  problem.restore(snap);
  EXPECT_DOUBLE_EQ(problem.cost(), cost);
  EXPECT_EQ(problem.snapshot(), snap);
  EXPECT_TRUE(problem.state().verify());
}

TEST(LinArrProblemTest, RestoreRejectsGarbage) {
  const Netlist nl = paper_instance();
  LinArrProblem problem{nl, Arrangement{15}};
  EXPECT_THROW(problem.restore(core::Snapshot{1, 1, 2}),
               std::invalid_argument);
}

TEST(LinArrProblemTest, DescendReachesPairwiseLocalOptimum) {
  const Netlist nl = paper_instance();
  util::Rng rng{10};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const double before = problem.cost();
  util::WorkBudget budget{1'000'000};
  problem.descend(budget);
  EXPECT_LE(problem.cost(), before);
  EXPECT_TRUE(problem.is_local_optimum());
  EXPECT_TRUE(problem.state().verify());
}

TEST(LinArrProblemTest, DescendWithSingleExchangeReachesLocalOptimum) {
  const Netlist nl = paper_instance();
  util::Rng rng{11};
  LinArrProblem problem{nl, Arrangement::random(15, rng),
                        MoveKind::kSingleExchange};
  util::WorkBudget budget{1'000'000};
  problem.descend(budget);
  EXPECT_TRUE(problem.is_local_optimum());
}

TEST(LinArrProblemTest, DescendHonorsBudget) {
  const Netlist nl = paper_instance();
  util::Rng rng{12};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  util::WorkBudget budget{10};
  problem.descend(budget);
  EXPECT_GE(budget.spent(), 10u);
  EXPECT_LE(budget.spent(), 12u);  // at most one evaluation of overshoot
}

TEST(LinArrProblemTest, SingleExchangeMovesAreUndoneCorrectly) {
  const Netlist nl = paper_instance();
  util::Rng rng{13};
  LinArrProblem problem{nl, Arrangement::random(15, rng),
                        MoveKind::kSingleExchange};
  const auto before = problem.arrangement().order();
  for (int i = 0; i < 100; ++i) {
    (void)problem.propose(rng);
    problem.reject();
  }
  EXPECT_EQ(problem.arrangement().order(), before);
  EXPECT_TRUE(problem.state().verify());
}

// Full-stack property: running every strategy/move combination end to end
// must preserve the density invariants and never report a best above start.
class LinArrRunTest
    : public ::testing::TestWithParam<std::tuple<int, MoveKind, bool>> {};

TEST_P(LinArrRunTest, EndToEndRunKeepsInvariants) {
  const auto [seed, move_kind, use_figure2] = GetParam();
  const Netlist nl = paper_instance(static_cast<std::uint64_t>(seed));
  util::Rng rng{static_cast<std::uint64_t>(seed) * 17 + 1};
  LinArrProblem problem{nl, Arrangement::random(15, rng), move_kind};
  const auto g = core::make_g(core::GClass::kSixTempAnnealing, {.scale = 4.0});
  core::RunResult result;
  if (use_figure2) {
    result = core::run_figure2(problem, *g, {.budget = 3000}, rng);
  } else {
    result = core::run_figure1(problem, *g, {.budget = 3000}, rng);
  }
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_TRUE(problem.state().verify());
  // The reported best must reproduce when restored.
  problem.restore(result.best_state);
  EXPECT_DOUBLE_EQ(problem.cost(), result.best_cost);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LinArrRunTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(MoveKind::kPairwiseInterchange,
                                         MoveKind::kSingleExchange),
                       ::testing::Bool()));

TEST(LinArrProblemTest, CloneReReservesSpeculationScratch) {
  const Netlist nl = paper_instance();
  util::Rng rng{14};
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  const auto clone = problem.clone();
  auto& cloned = dynamic_cast<LinArrProblem&>(*clone);
  EXPECT_TRUE(cloned.state().scratch_reserved());
  // The clone must run the speculative hot loop correctly from the start —
  // this is exactly the parallel engine's per-worker path.
  for (int i = 0; i < 50; ++i) {
    const double h_j = cloned.propose(rng);
    if (h_j <= cloned.cost()) {
      cloned.accept();
    } else {
      cloned.reject();
    }
  }
  EXPECT_TRUE(cloned.state().verify());
  EXPECT_TRUE(cloned.state().scratch_reserved());
}

TEST(LinArrNolaTest, MultiPinInstancesWork) {
  util::Rng rng{20};
  const Netlist nl = netlist::random_nola(NolaParams{15, 150, 2, 6}, rng);
  LinArrProblem problem{nl, Arrangement::random(15, rng)};
  core::AnnealOptions options;
  options.budget = 5000;
  const core::RunResult result =
      core::simulated_annealing(problem, options, rng);
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_TRUE(problem.state().verify());
}

}  // namespace
}  // namespace mcopt::linarr
