#include "linarr/bounds.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "linarr/density.hpp"
#include "linarr/goto_heuristic.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"

namespace mcopt::linarr {
namespace {

using netlist::Netlist;

Netlist path_graph(std::size_t n) {
  Netlist::Builder b{n};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_net({static_cast<CellId>(i), static_cast<CellId>(i + 1)});
  }
  return b.build();
}

Netlist complete_graph(std::size_t n) {
  Netlist::Builder b{n};
  for (CellId i = 0; i < n; ++i) {
    for (CellId j = i + 1; j < n; ++j) b.add_net({i, j});
  }
  return b.build();
}

TEST(BoundsTest, NetFreeNetlistIsZero) {
  Netlist::Builder b{4};
  EXPECT_EQ(density_lower_bound(b.build()), 0);
  EXPECT_EQ(total_span_lower_bound(b.build()), 0);
}

TEST(BoundsTest, PathBoundIsTightAtOne) {
  const Netlist nl = path_graph(6);
  EXPECT_EQ(density_lower_bound(nl), 1);
  EXPECT_EQ(brute_force_optimum(nl).density, 1);  // identity achieves it
}

TEST(BoundsTest, SpanMassCountsPinsMinusOne) {
  Netlist::Builder b{5};
  b.add_net({0, 1});          // mass 1
  b.add_net({0, 1, 2, 3, 4}); // mass 4
  EXPECT_EQ(total_span_lower_bound(b.build()), 5);
}

TEST(BoundsTest, DegreeBoundDominatesOnCompleteGraphs) {
  // K5: every cell has degree 4; span bound = ceil(10/4) = 3.
  const Netlist nl = complete_graph(5);
  EXPECT_EQ(density_lower_bound(nl), 4);
}

TEST(BoundsTest, BruteForceRejectsLargeInstances) {
  util::Rng rng{1};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 20}, rng);
  EXPECT_THROW((void)brute_force_optimum(nl), std::invalid_argument);
}

TEST(BoundsTest, BruteForceCompleteGraphMatchesClosedForm) {
  // For K_n every arrangement has boundary cuts k(n-k); density is the
  // middle cut.
  for (const std::size_t n : {std::size_t{4}, std::size_t{5}, std::size_t{6}}) {
    const auto result = brute_force_optimum(complete_graph(n));
    const std::size_t mid = n / 2;
    EXPECT_EQ(result.density, static_cast<int>(mid * (n - mid))) << "K" << n;
  }
}

TEST(BoundsTest, BruteForceResultIsConsistent) {
  util::Rng rng{2};
  const auto nl = netlist::random_gola(netlist::GolaParams{7, 12}, rng);
  const auto result = brute_force_optimum(nl);
  EXPECT_EQ(density_of(nl, result.arrangement), result.density);
}

class BoundsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundsPropertyTest, OptimumRespectsLowerBoundAndHeuristics) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const bool multi_pin = GetParam() % 2 == 0;
  const Netlist nl =
      multi_pin
          ? netlist::random_nola(netlist::NolaParams{8, 20, 2, 4}, rng)
          : netlist::random_gola(netlist::GolaParams{8, 20}, rng);
  const auto exact = brute_force_optimum(nl);
  // Lower bound <= optimum <= Goto <= random.
  EXPECT_LE(density_lower_bound(nl), exact.density);
  EXPECT_LE(exact.density, density_of(nl, goto_arrangement(nl)));
  EXPECT_LE(exact.density,
            density_of(nl, Arrangement::random(8, rng)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BoundsTest, MonteCarloReachesTheOptimumOnSmallInstances) {
  // End-to-end: g = 1 with a generous budget should find the exact optimum
  // of 8-cell instances.
  util::Rng rng{3};
  const auto nl = netlist::random_gola(netlist::GolaParams{8, 24}, rng);
  const auto exact = brute_force_optimum(nl);
  LinArrProblem problem{nl, Arrangement::random(8, rng)};
  const auto g = core::make_g(core::GClass::kGOne);
  core::Figure1Options options;
  options.budget = 50'000;
  const auto result = core::run_figure1(problem, *g, options, rng);
  EXPECT_EQ(static_cast<int>(result.best_cost), exact.density);
}

}  // namespace
}  // namespace mcopt::linarr
