#include "tsp/instance.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <stdexcept>

namespace mcopt::tsp {
namespace {

TEST(TspInstanceTest, RejectsFewerThanThreeCities) {
  EXPECT_THROW(TspInstance({{0, 0}, {1, 1}}), std::invalid_argument);
  util::Rng rng{1};
  EXPECT_THROW(TspInstance::random_euclidean(2, rng), std::invalid_argument);
}

TEST(TspInstanceTest, DistancesAreEuclidean) {
  const TspInstance inst{{{0, 0}, {3, 4}, {0, 4}}};
  EXPECT_DOUBLE_EQ(inst.dist(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(inst.dist(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(inst.dist(1, 2), 3.0);
}

TEST(TspInstanceTest, MatrixIsSymmetricWithZeroDiagonal) {
  util::Rng rng{2};
  const TspInstance inst = TspInstance::random_euclidean(20, rng);
  for (City i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(inst.dist(i, i), 0.0);
    for (City j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(inst.dist(i, j), inst.dist(j, i));
    }
  }
}

TEST(TspInstanceTest, TriangleInequalityHolds) {
  util::Rng rng{3};
  const TspInstance inst = TspInstance::random_euclidean(15, rng);
  for (City a = 0; a < 15; ++a) {
    for (City b = 0; b < 15; ++b) {
      for (City c = 0; c < 15; ++c) {
        EXPECT_LE(inst.dist(a, c), inst.dist(a, b) + inst.dist(b, c) + 1e-9);
      }
    }
  }
}

TEST(TspInstanceTest, RandomPointsStayInBox) {
  util::Rng rng{4};
  const TspInstance inst = TspInstance::random_euclidean(50, rng, 100.0);
  for (const Point& p : inst.points()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 100.0);
  }
}

TEST(TspInstanceTest, SameSeedSameInstance) {
  util::Rng r1{5};
  util::Rng r2{5};
  const TspInstance a = TspInstance::random_euclidean(10, r1);
  const TspInstance b = TspInstance::random_euclidean(10, r2);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].x, b.points()[i].x);
    EXPECT_DOUBLE_EQ(a.points()[i].y, b.points()[i].y);
  }
}

}  // namespace
}  // namespace mcopt::tsp
