#include "tsp/construct.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include <algorithm>
#include <stdexcept>

namespace mcopt::tsp {
namespace {

TEST(NearestNeighbourTest, ProducesValidTour) {
  util::Rng rng{1};
  const TspInstance inst = TspInstance::random_euclidean(30, rng);
  for (City start : {City{0}, City{7}, City{29}}) {
    const Order order = nearest_neighbour(inst, start);
    EXPECT_TRUE(is_valid_order(order, 30));
    EXPECT_EQ(order.front(), start);
  }
}

TEST(NearestNeighbourTest, RejectsBadStart) {
  util::Rng rng{2};
  const TspInstance inst = TspInstance::random_euclidean(5, rng);
  EXPECT_THROW((void)nearest_neighbour(inst, 5), std::invalid_argument);
}

TEST(NearestNeighbourTest, GreedyStepsAreLocallyNearest) {
  const TspInstance inst{{{0, 0}, {1, 0}, {10, 0}, {2, 0}}};
  // From 0: nearest 1 (d=1), then 3 (d=1), then 2.
  const Order order = nearest_neighbour(inst, 0);
  const Order want{0, 1, 3, 2};
  EXPECT_EQ(order, want);
}

TEST(ConvexHullTest, SquareHullIsAllFourCorners) {
  const TspInstance inst{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  auto hull = convex_hull(inst);
  ASSERT_EQ(hull.size(), 4u);
  std::sort(hull.begin(), hull.end());
  EXPECT_EQ(hull, (std::vector<City>{0, 1, 2, 3}));
}

TEST(ConvexHullTest, InteriorPointsExcluded) {
  const TspInstance inst{
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 1}, {3, 2}}};
  auto hull = convex_hull(inst);
  std::sort(hull.begin(), hull.end());
  EXPECT_EQ(hull, (std::vector<City>{0, 1, 2, 3}));
}

TEST(ConvexHullTest, HullVerticesAreInConvexPosition) {
  util::Rng rng{3};
  const TspInstance inst = TspInstance::random_euclidean(60, rng);
  const auto hull = convex_hull(inst);
  ASSERT_GE(hull.size(), 3u);
  // Every consecutive triple must turn the same way (ccw).
  const auto& pts = inst.points();
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point& o = pts[hull[i]];
    const Point& a = pts[hull[(i + 1) % hull.size()]];
    const Point& b = pts[hull[(i + 2) % hull.size()]];
    const double cross =
        (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
    EXPECT_GT(cross, 0.0) << "hull not strictly convex at " << i;
  }
}

TEST(HullInsertionTest, ProducesValidTour) {
  util::Rng rng{4};
  const TspInstance inst = TspInstance::random_euclidean(40, rng);
  const Order order = hull_cheapest_insertion(inst);
  EXPECT_TRUE(is_valid_order(order, 40));
}

TEST(HullInsertionTest, OptimalOnConvexPositions) {
  // For points in convex position the optimal tour is the hull order, and
  // insertion starting from the hull inserts nothing else.
  const TspInstance inst{{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, -3}}};
  const Order order = hull_cheapest_insertion(inst);
  EXPECT_TRUE(is_valid_order(order, 5));
  // All five points are on the hull here.
  EXPECT_DOUBLE_EQ(tour_length(inst, order),
                   tour_length(inst, convex_hull(inst)));
}

TEST(HullInsertionTest, BeatsNearestNeighbourOnAverage) {
  double nn_total = 0.0;
  double hull_total = 0.0;
  for (int i = 0; i < 8; ++i) {
    util::Rng rng{static_cast<std::uint64_t>(50 + i)};
    const TspInstance inst = TspInstance::random_euclidean(60, rng);
    nn_total += tour_length(inst, nearest_neighbour(inst, 0));
    hull_total += tour_length(inst, hull_cheapest_insertion(inst));
  }
  EXPECT_LT(hull_total, nn_total);
}

TEST(HullInsertionTest, CountedVariantMatchesAndIsSubcubic) {
  util::Rng rng{6};
  const TspInstance inst = TspInstance::random_euclidean(80, rng);
  const auto counted = hull_cheapest_insertion_counted(inst);
  EXPECT_EQ(counted.order, hull_cheapest_insertion(inst));
  EXPECT_TRUE(is_valid_order(counted.order, 80));
  EXPECT_GT(counted.evaluations, 0u);
  // The cached implementation must beat the naive sum over steps of
  // (remaining cities) x (tour size) ~ n^3/6 by a wide margin.
  EXPECT_LT(counted.evaluations, 80ull * 80ull * 80ull / 12ull);
}

TEST(HullInsertionTest, CountedHandlesAllHullInstances) {
  // Every point on the hull: nothing to insert, evaluations stay zero.
  const TspInstance inst{{{0, 0}, {10, 0}, {10, 10}, {0, 10}}};
  const auto counted = hull_cheapest_insertion_counted(inst);
  EXPECT_EQ(counted.evaluations, 0u);
  EXPECT_TRUE(is_valid_order(counted.order, 4));
}

TEST(HullInsertionTest, DeterministicOutput) {
  util::Rng rng{5};
  const TspInstance inst = TspInstance::random_euclidean(25, rng);
  EXPECT_EQ(hull_cheapest_insertion(inst), hull_cheapest_insertion(inst));
}

}  // namespace
}  // namespace mcopt::tsp
