#include "tsp/tour.hpp"

#include <algorithm>
#include <cstddef>
#include <gtest/gtest.h>

#include <stdexcept>

namespace mcopt::tsp {
namespace {

TspInstance square() {
  // Unit square: optimal tour length 4.
  return TspInstance{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
}

TEST(OrderTest, IdentityAndValidity) {
  const Order order = identity_order(5);
  EXPECT_TRUE(is_valid_order(order, 5));
  EXPECT_FALSE(is_valid_order(order, 6));
  EXPECT_FALSE(is_valid_order({0, 1, 1}, 3));
  EXPECT_FALSE(is_valid_order({0, 1, 3}, 3));
}

TEST(OrderTest, RandomOrderIsValid) {
  util::Rng rng{1};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(is_valid_order(random_order(12, rng), 12));
  }
}

TEST(TourLengthTest, SquarePerimeter) {
  EXPECT_DOUBLE_EQ(tour_length(square(), {0, 1, 2, 3}), 4.0);
  // Crossing diagonals is longer.
  EXPECT_GT(tour_length(square(), {0, 2, 1, 3}), 4.0);
}

TEST(TwoOptTest, DeltaMatchesRecomputedLength) {
  util::Rng rng{2};
  const TspInstance inst = TspInstance::random_euclidean(12, rng);
  Order order = random_order(12, rng);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t i;
    std::size_t j;
    do {
      auto [a, b] = rng.next_distinct_pair(12);
      i = std::min(a, b);
      j = std::max(a, b);
    } while (i == 0 && j == 11);
    const double before = tour_length(inst, order);
    const double delta = two_opt_delta(inst, order, i, j);
    apply_two_opt(order, i, j);
    EXPECT_NEAR(tour_length(inst, order), before + delta, 1e-9);
  }
}

TEST(TwoOptTest, UncrossingImprovesSquare) {
  const TspInstance inst = square();
  Order order{0, 2, 1, 3};  // both diagonals crossed
  // 2-opt(0, 2) reverses positions 1..2, yielding the perimeter tour.
  const double delta = two_opt_delta(inst, order, 0, 2);
  EXPECT_LT(delta, 0.0);
  apply_two_opt(order, 0, 2);
  EXPECT_DOUBLE_EQ(tour_length(inst, order), 4.0);
  // Degenerate 2-opt over a single interior position is a no-op.
  EXPECT_DOUBLE_EQ(two_opt_delta(inst, order, 0, 1), 0.0);
}

TEST(TwoOptTest, ApplyIsSelfInverse) {
  util::Rng rng{3};
  Order order = random_order(10, rng);
  const Order before = order;
  apply_two_opt(order, 2, 7);
  apply_two_opt(order, 2, 7);
  EXPECT_EQ(order, before);
}

TEST(TwoOptTest, PreservesPermutation) {
  util::Rng rng{4};
  const TspInstance inst = TspInstance::random_euclidean(15, rng);
  Order order = random_order(15, rng);
  for (int trial = 0; trial < 100; ++trial) {
    auto [a, b] = rng.next_distinct_pair(15);
    const std::size_t i = std::min(a, b);
    const std::size_t j = std::max(a, b);
    if (i == 0 && j == 14) continue;
    apply_two_opt(order, i, j);
    ASSERT_TRUE(is_valid_order(order, 15));
  }
}

TEST(OrOptTest, DeltaMatchesRecomputedLength) {
  util::Rng rng{5};
  const TspInstance inst = TspInstance::random_euclidean(12, rng);
  Order order = random_order(12, rng);
  int applied = 0;
  for (int trial = 0; trial < 500 && applied < 100; ++trial) {
    const std::size_t len = 1 + rng.next_below(3);
    const std::size_t i = rng.next_below(12 - len + 1);
    const std::size_t k = rng.next_below(12);
    if ((k >= i && k < i + len) || k == (i + 12 - 1) % 12) continue;
    const double before = tour_length(inst, order);
    const double delta = or_opt_delta(inst, order, i, len, k);
    apply_or_opt(order, i, len, k);
    ASSERT_TRUE(is_valid_order(order, 12));
    ASSERT_NEAR(tour_length(inst, order), before + delta, 1e-9);
    ++applied;
  }
  EXPECT_GE(applied, 100);
}

TEST(OrOptTest, RejectsInvalidMoves) {
  util::Rng rng{6};
  const TspInstance inst = TspInstance::random_euclidean(8, rng);
  const Order order = identity_order(8);
  // Insertion point inside the segment.
  EXPECT_THROW((void)or_opt_delta(inst, order, 2, 3, 3), std::invalid_argument);
  // Insertion just before the segment (no-op position).
  EXPECT_THROW((void)or_opt_delta(inst, order, 2, 2, 1), std::invalid_argument);
  // Segment off the end.
  EXPECT_THROW((void)or_opt_delta(inst, order, 6, 3, 0), std::invalid_argument);
  Order mutable_order = order;
  EXPECT_THROW(apply_or_opt(mutable_order, 2, 3, 3), std::invalid_argument);
}

TEST(OrOptTest, SegmentOfOneRelocatesCity) {
  Order order{0, 1, 2, 3, 4};
  apply_or_opt(order, 0, 1, 2);  // move city 0 after city 2
  const Order want{1, 2, 0, 3, 4};
  EXPECT_EQ(order, want);
}

}  // namespace
}  // namespace mcopt::tsp
