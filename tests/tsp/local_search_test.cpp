#include "tsp/local_search.hpp"

#include <algorithm>
#include <gtest/gtest.h>
#include <vector>

#include <cmath>

#include "tsp/construct.hpp"

namespace mcopt::tsp {
namespace {

TEST(TwoOptDescentTest, ReachesLocalOptimality) {
  util::Rng rng{1};
  const TspInstance inst = TspInstance::random_euclidean(25, rng);
  Order order = random_order(25, rng);
  util::WorkBudget budget{1'000'000};
  two_opt_descent(inst, order, budget);
  EXPECT_TRUE(is_two_opt_optimal(inst, order));
  EXPECT_TRUE(is_valid_order(order, 25));
}

TEST(TwoOptDescentTest, NeverLengthens) {
  util::Rng rng{2};
  const TspInstance inst = TspInstance::random_euclidean(30, rng);
  Order order = random_order(30, rng);
  const double before = tour_length(inst, order);
  util::WorkBudget budget{1'000'000};
  two_opt_descent(inst, order, budget);
  EXPECT_LE(tour_length(inst, order), before);
}

TEST(TwoOptDescentTest, RespectsBudget) {
  util::Rng rng{3};
  const TspInstance inst = TspInstance::random_euclidean(30, rng);
  Order order = random_order(30, rng);
  util::WorkBudget budget{50};
  two_opt_descent(inst, order, budget);
  EXPECT_EQ(budget.spent(), 50u);
  EXPECT_TRUE(is_valid_order(order, 30));
}

TEST(TwoOptDescentTest, SolvesSmallInstanceOptimally) {
  // Points on a circle: the optimal tour visits them in angular order.
  std::vector<Point> pts;
  constexpr int kN = 10;
  for (int i = 0; i < kN; ++i) {
    const double a = 2.0 * 3.14159265358979 * i / kN;
    pts.push_back({std::cos(a), std::sin(a)});
  }
  const TspInstance inst{pts};
  const double optimal = tour_length(inst, identity_order(kN));
  util::Rng rng{4};
  // 2-opt from random starts often finds the circle; take the best of 5.
  double best = 1e18;
  for (int trial = 0; trial < 5; ++trial) {
    Order order = random_order(kN, rng);
    util::WorkBudget budget{1'000'000};
    two_opt_descent(inst, order, budget);
    best = std::min(best, tour_length(inst, order));
  }
  EXPECT_NEAR(best, optimal, 1e-6);
}

TEST(OrOptDescentTest, NeverLengthensAndStaysValid) {
  util::Rng rng{5};
  const TspInstance inst = TspInstance::random_euclidean(25, rng);
  Order order = nearest_neighbour(inst, 0);
  const double before = tour_length(inst, order);
  util::WorkBudget budget{1'000'000};
  or_opt_descent(inst, order, budget);
  EXPECT_LE(tour_length(inst, order), before);
  EXPECT_TRUE(is_valid_order(order, 25));
}

TEST(OrOptDescentTest, ImprovesAMisplacedCity) {
  // Cities on a line; city 4 (x = 1) is visited mid-tour out of position,
  // costing 14 instead of the collinear optimum 12.  Or-opt must relocate
  // it between cities 0 and 1.
  const TspInstance inst{{{0, 0}, {2, 0}, {4, 0}, {6, 0}, {1, 0}}};
  Order order{0, 1, 4, 2, 3};
  ASSERT_NEAR(tour_length(inst, order), 14.0, 1e-9);
  util::WorkBudget budget{100'000};
  or_opt_descent(inst, order, budget);
  EXPECT_NEAR(tour_length(inst, order), 12.0, 1e-9);  // out and back
}

TEST(RestartedTwoOptTest, BestOfRestartsImprovesWithBudget) {
  util::Rng rng{6};
  const TspInstance inst = TspInstance::random_euclidean(40, rng);
  util::Rng r1{7};
  util::Rng r2{7};
  const RestartResult small = restarted_two_opt(inst, 20'000, r1);
  const RestartResult large = restarted_two_opt(inst, 400'000, r2);
  EXPECT_GE(small.restarts, 1u);
  EXPECT_GT(large.restarts, small.restarts);
  EXPECT_LE(large.best_length, small.best_length);
  EXPECT_TRUE(is_valid_order(large.best_order, 40));
}

TEST(RestartedTwoOptTest, TicksApproximateBudget) {
  util::Rng rng{8};
  const TspInstance inst = TspInstance::random_euclidean(20, rng);
  const RestartResult result = restarted_two_opt(inst, 10'000, rng);
  EXPECT_GE(result.ticks, 10'000u);
  // Overshoot is bounded by one descent sweep.
  EXPECT_LT(result.ticks, 12'000u);
}

TEST(IsTwoOptOptimalTest, DetectsImprovableTour) {
  const TspInstance inst{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  EXPECT_FALSE(is_two_opt_optimal(inst, {0, 2, 1, 3}));
  EXPECT_TRUE(is_two_opt_optimal(inst, {0, 1, 2, 3}));
}

}  // namespace
}  // namespace mcopt::tsp
