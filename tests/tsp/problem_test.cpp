#include "tsp/problem.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"

namespace mcopt::tsp {
namespace {

TEST(TspProblemTest, RejectsInvalidStart) {
  util::Rng rng{1};
  const TspInstance inst = TspInstance::random_euclidean(10, rng);
  EXPECT_THROW((TspProblem{inst, Order{0, 1, 2}}), std::invalid_argument);
  EXPECT_THROW((TspProblem{inst, Order{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}}),
               std::invalid_argument);
}

TEST(TspProblemTest, CostIsTourLength) {
  util::Rng rng{2};
  const TspInstance inst = TspInstance::random_euclidean(12, rng);
  const Order order = random_order(12, rng);
  TspProblem problem{inst, order};
  EXPECT_NEAR(problem.cost(), tour_length(inst, order), 1e-9);
}

TEST(TspProblemTest, ProposeAcceptRejectKeepLengthExact) {
  util::Rng rng{3};
  const TspInstance inst = TspInstance::random_euclidean(15, rng);
  TspProblem problem{inst, random_order(15, rng)};
  for (int i = 0; i < 2000; ++i) {
    const double h_j = problem.propose(rng);
    if (rng.next_bool(0.5)) {
      problem.accept();
      ASSERT_NEAR(problem.cost(), h_j, 1e-6);
    } else {
      problem.reject();
    }
    ASSERT_NEAR(problem.cost(), tour_length(inst, problem.order()), 1e-6)
        << "incremental length drifted at step " << i;
    ASSERT_TRUE(is_valid_order(problem.order(), 15));
  }
}

TEST(TspProblemTest, RejectRestoresOrder) {
  util::Rng rng{4};
  const TspInstance inst = TspInstance::random_euclidean(10, rng);
  TspProblem problem{inst, identity_order(10)};
  const Order before = problem.order();
  for (int i = 0; i < 100; ++i) {
    (void)problem.propose(rng);
    problem.reject();
  }
  EXPECT_EQ(problem.order(), before);
}

TEST(TspProblemTest, PendingProtocolEnforced) {
  util::Rng rng{5};
  const TspInstance inst = TspInstance::random_euclidean(8, rng);
  TspProblem problem{inst, identity_order(8)};
  EXPECT_THROW(problem.accept(), std::logic_error);
  (void)problem.propose(rng);
  EXPECT_THROW((void)problem.propose(rng), std::logic_error);
  util::WorkBudget budget{10};
  EXPECT_THROW(problem.descend(budget), std::logic_error);
  problem.accept();
}

TEST(TspProblemTest, DescendProducesTwoOptOptimalTour) {
  util::Rng rng{6};
  const TspInstance inst = TspInstance::random_euclidean(20, rng);
  TspProblem problem{inst, random_order(20, rng)};
  util::WorkBudget budget{1'000'000};
  problem.descend(budget);
  EXPECT_TRUE(is_two_opt_optimal(inst, problem.order()));
}

TEST(TspProblemTest, SnapshotRestoreRoundTrips) {
  util::Rng rng{7};
  const TspInstance inst = TspInstance::random_euclidean(12, rng);
  TspProblem problem{inst, random_order(12, rng)};
  const auto snap = problem.snapshot();
  const double cost = problem.cost();
  problem.randomize(rng);
  problem.restore(snap);
  EXPECT_NEAR(problem.cost(), cost, 1e-9);
}

TEST(TspProblemTest, AnnealingShortensRandomTour) {
  util::Rng rng{8};
  const TspInstance inst = TspInstance::random_euclidean(30, rng, 1000.0);
  TspProblem problem{inst, random_order(30, rng)};
  core::AnnealOptions options;
  // Tour-length deltas are O(hundreds); scale the schedule accordingly.
  options.schedule = core::geometric_schedule(400.0, 0.7, 8);
  options.budget = 60'000;
  const core::RunResult result =
      core::simulated_annealing(problem, options, rng);
  EXPECT_LT(result.best_cost, result.initial_cost * 0.7)
      << "annealing should cut a random tour by well over 30%";
}

TEST(TspProblemTest, OrOptMovesKeepLengthExact) {
  util::Rng rng{21};
  const TspInstance inst = TspInstance::random_euclidean(15, rng);
  TspProblem problem{inst, random_order(15, rng), TspMoveKind::kOrOpt};
  for (int i = 0; i < 1500; ++i) {
    const double h_j = problem.propose(rng);
    if (rng.next_bool(0.5)) {
      problem.accept();
      ASSERT_NEAR(problem.cost(), h_j, 1e-6);
    } else {
      problem.reject();
    }
    ASSERT_NEAR(problem.cost(), tour_length(inst, problem.order()), 1e-6)
        << "drift at step " << i;
    ASSERT_TRUE(is_valid_order(problem.order(), 15));
  }
}

TEST(TspProblemTest, OrOptRejectRestoresOrder) {
  util::Rng rng{22};
  const TspInstance inst = TspInstance::random_euclidean(10, rng);
  TspProblem problem{inst, identity_order(10), TspMoveKind::kOrOpt};
  const Order before = problem.order();
  for (int i = 0; i < 200; ++i) {
    (void)problem.propose(rng);
    problem.reject();
  }
  EXPECT_EQ(problem.order(), before);
}

TEST(TspProblemTest, OrOptWorksOnTinyInstances) {
  util::Rng rng{23};
  const TspInstance inst = TspInstance::random_euclidean(4, rng);
  TspProblem problem{inst, identity_order(4), TspMoveKind::kOrOpt};
  for (int i = 0; i < 100; ++i) {
    (void)problem.propose(rng);
    problem.reject();
    ASSERT_TRUE(is_valid_order(problem.order(), 4));
  }
}

TEST(TspProblemTest, OrOptAnnealingShortensTours) {
  util::Rng rng{24};
  const TspInstance inst = TspInstance::random_euclidean(30, rng, 1000.0);
  TspProblem problem{inst, random_order(30, rng), TspMoveKind::kOrOpt};
  core::AnnealOptions options;
  options.schedule = core::geometric_schedule(400.0, 0.7, 8);
  options.budget = 60'000;
  const core::RunResult result =
      core::simulated_annealing(problem, options, rng);
  EXPECT_LT(result.best_cost, result.initial_cost * 0.8);
}

TEST(TspProblemTest, Figure2WithGOneActsAsPerturbedDescent) {
  util::Rng rng{9};
  const TspInstance inst = TspInstance::random_euclidean(20, rng);
  TspProblem problem{inst, random_order(20, rng)};
  const auto g = core::make_g(core::GClass::kGOne);
  const core::RunResult result =
      core::run_figure2(problem, *g, {.budget = 50'000}, rng);
  EXPECT_LT(result.best_cost, result.initial_cost);
  // Best solution recorded after a descent is 2-opt optimal.
  problem.restore(result.best_state);
  EXPECT_TRUE(is_two_opt_optimal(inst, problem.order()));
}

}  // namespace
}  // namespace mcopt::tsp
