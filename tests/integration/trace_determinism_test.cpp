// Traces are part of the bit-reproducibility contract: a traced parallel
// multistart must emit the same event stream as the sequential loop — the
// only allowed differences are the `worker` stamps and kWorkerSteal events
// (obs/event.hpp) — and attaching tracing must not perturb the results.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "core/parallel.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace mcopt {
namespace {

constexpr std::uint64_t kSeed = 604;

netlist::Netlist test_netlist() {
  util::Rng rng{util::derive_seed(kSeed, 1)};
  return netlist::random_gola(netlist::GolaParams{15, 120}, rng);
}

linarr::LinArrProblem test_problem(const netlist::Netlist& nl) {
  util::Rng rng{util::derive_seed(kSeed, 2)};
  return linarr::LinArrProblem{
      nl, linarr::Arrangement::random(nl.num_cells(), rng)};
}

core::Runner figure1_runner(const core::GFunction& g) {
  return [&g](core::Problem& p, std::uint64_t budget, util::Rng& r,
              const obs::Recorder& recorder) {
    core::Figure1Options options;
    options.budget = budget;
    options.recorder = &recorder;
    return core::run_figure1(p, g, options, r);
  };
}

// Drops worker_steal events and zeroes the worker stamp — the two
// documented nondeterministic components of a parallel trace.
std::vector<obs::Event> canonical(const std::vector<obs::Event>& events) {
  std::vector<obs::Event> out;
  out.reserve(events.size());
  for (obs::Event event : events) {
    if (event.kind == obs::EventKind::kWorkerSteal) continue;
    event.worker = 0;
    out.push_back(event);
  }
  return out;
}

bool events_equal(const obs::Event& a, const obs::Event& b) {
  return a.kind == b.kind && a.reason == b.reason && a.stage == b.stage &&
         a.run == b.run && a.restart == b.restart && a.worker == b.worker &&
         a.tick == b.tick && a.cost == b.cost && a.best == b.best;
}

void expect_same_stream(const std::vector<obs::Event>& a,
                        const std::vector<obs::Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(events_equal(a[i], b[i])) << "streams diverge at event " << i;
  }
}

void expect_same_aggregate(const core::MultistartResult& a,
                           const core::MultistartResult& b) {
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.restart_best_costs, b.restart_best_costs);
  EXPECT_DOUBLE_EQ(a.aggregate.best_cost, b.aggregate.best_cost);
  EXPECT_DOUBLE_EQ(a.aggregate.final_cost, b.aggregate.final_cost);
  EXPECT_EQ(a.aggregate.proposals, b.aggregate.proposals);
  EXPECT_EQ(a.aggregate.accepts, b.aggregate.accepts);
  EXPECT_EQ(a.aggregate.ticks, b.aggregate.ticks);
  EXPECT_EQ(a.aggregate.best_state, b.aggregate.best_state);
}

core::MultistartResult run_traced(unsigned threads, obs::VectorSink* sink) {
  const auto nl = test_netlist();
  auto problem = test_problem(nl);
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);
  const auto runner = figure1_runner(*g);

  core::MultistartOptions ms;
  ms.total_budget = 20'000;
  ms.budget_per_start = 1'000;
  obs::Recorder root;
  if (sink != nullptr) {
    root = obs::Recorder{sink, /*collect_metrics=*/true, /*trace_sample=*/4};
    ms.recorder = &root;
  }
  util::Rng rng{kSeed + 7};
  if (threads == 1 && sink == nullptr) {
    // Exercise the sequential engine for the untraced baseline.
    core::MultistartResult result =
        core::multistart(problem, runner, ms, rng);
    return result;
  }
  core::ParallelMultistartOptions options;
  options.multistart = ms;
  options.num_threads = threads;
  return core::parallel_multistart(problem, runner, options, rng);
}

TEST(TraceDeterminismTest, OneAndEightThreadTracesMatch) {
  obs::VectorSink t1_sink;
  const auto t1 = run_traced(1, &t1_sink);
  obs::VectorSink t8_sink;
  const auto t8 = run_traced(8, &t8_sink);

  expect_same_aggregate(t1, t8);
  expect_same_stream(canonical(t1_sink.events()),
                     canonical(t8_sink.events()));
  // The streams are already ordered by restart index (the engines drain
  // shards in index order); double-check rather than assume.
  const auto events = canonical(t8_sink.events());
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const obs::Event& a, const obs::Event& b) {
                               return a.restart < b.restart;
                             }));
}

TEST(TraceDeterminismTest, TracedEightThreadMatchesUntracedOneThread) {
  // The headline acceptance criterion: tracing an 8-thread run changes
  // nothing about the results vs an untraced 1-thread run.
  const auto untraced = run_traced(1, nullptr);
  obs::VectorSink sink;
  const auto traced = run_traced(8, &sink);
  expect_same_aggregate(untraced, traced);
  EXPECT_FALSE(untraced.aggregate.metrics.collected);
  EXPECT_TRUE(traced.aggregate.metrics.collected);
  EXPECT_FALSE(sink.events().empty());
}

TEST(TraceDeterminismTest, SequentialAndParallelEnginesEmitSameStream) {
  obs::VectorSink seq_sink;
  const auto nl = test_netlist();
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);
  const auto runner = figure1_runner(*g);

  core::MultistartOptions ms;
  ms.total_budget = 12'000;
  ms.budget_per_start = 800;
  const obs::Recorder seq_root{&seq_sink, true, /*trace_sample=*/4};
  ms.recorder = &seq_root;
  auto seq_problem = test_problem(nl);
  util::Rng seq_rng{kSeed + 8};
  const auto seq = core::multistart(seq_problem, runner, ms, seq_rng);

  obs::VectorSink par_sink;
  const obs::Recorder par_root{&par_sink, true, /*trace_sample=*/4};
  core::ParallelMultistartOptions par_options;
  par_options.multistart = ms;
  par_options.multistart.recorder = &par_root;
  par_options.num_threads = 4;
  auto par_problem = test_problem(nl);
  util::Rng par_rng{kSeed + 8};
  const auto par =
      core::parallel_multistart(par_problem, runner, par_options, par_rng);

  expect_same_aggregate(seq, par);
  expect_same_stream(canonical(seq_sink.events()),
                     canonical(par_sink.events()));
  EXPECT_EQ(seq.aggregate.metrics.new_bests, par.aggregate.metrics.new_bests);
  EXPECT_EQ(seq.aggregate.metrics.trace_events,
            par.aggregate.metrics.trace_events);
}

TEST(TraceDeterminismTest, RestartBestCostsReconcileWithRestartEvents) {
  obs::VectorSink sink;
  const auto result = run_traced(4, &sink);
  std::uint64_t restart_begins = 0;
  for (const obs::Event& event : sink.events()) {
    if (event.kind == obs::EventKind::kRestartBegin) ++restart_begins;
  }
  EXPECT_EQ(restart_begins, result.restarts);
  ASSERT_EQ(result.restart_best_costs.size(), result.restarts);
  EXPECT_EQ(*std::min_element(result.restart_best_costs.begin(),
                              result.restart_best_costs.end()),
            result.aggregate.best_cost);
}

}  // namespace
}  // namespace mcopt
