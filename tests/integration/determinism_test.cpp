// End-to-end reproducibility: the benches regenerate the paper's tables from
// fixed seeds, so the entire pipeline — generators, starts, runners, every g
// class — must be bit-deterministic.
#include <gtest/gtest.h>
#include <string>

#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "partition/problem.hpp"
#include "tsp/problem.hpp"

namespace mcopt {
namespace {

using core::GClass;

class DeterminismPerClassTest : public ::testing::TestWithParam<GClass> {};

TEST_P(DeterminismPerClassTest, TwoIdenticalRunsAgreeExactly) {
  const GClass cls = GetParam();
  util::Rng gen_rng{42};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 150}, gen_rng);
  core::GParams params;
  params.scale = 0.5;
  params.num_nets = nl.num_nets();
  const auto g = core::make_g(cls, params);

  auto run = [&](bool figure2) {
    linarr::LinArrProblem problem{nl, linarr::Arrangement{15}};
    util::Rng rng{1234};
    if (figure2) {
      return core::run_figure2(problem, *g, {.budget = 5'000}, rng);
    }
    return core::run_figure1(problem, *g, {.budget = 5'000}, rng);
  };

  for (const bool figure2 : {false, true}) {
    const auto a = run(figure2);
    const auto b = run(figure2);
    EXPECT_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.final_cost, b.final_cost);
    EXPECT_EQ(a.best_state, b.best_state);
    EXPECT_EQ(a.accepts, b.accepts);
    EXPECT_EQ(a.uphill_accepts, b.uphill_accepts);
    EXPECT_EQ(a.proposals, b.proposals);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, DeterminismPerClassTest,
    ::testing::ValuesIn([] {
      auto classes = core::table41_classes();
      classes.push_back(GClass::kCohoonSahni);
      return classes;
    }()),
    [](const ::testing::TestParamInfo<GClass>& info) {
      return "class" + std::to_string(static_cast<int>(info.param));
    });

TEST(DeterminismTest, InstanceSetsAreArchivalStable) {
  // Regression pin on the generator stream: if this hash-ish signature
  // changes, archived EXPERIMENTS.md numbers no longer correspond to the
  // code.  (The signature is the serialized first instance's length plus
  // the density of its identity arrangement.)
  const auto set = netlist::gola_test_set(1, netlist::GolaParams{15, 150}, 1985);
  const std::string text = netlist::to_string(set[0]);
  EXPECT_EQ(set[0].num_pins(), 300u);
  EXPECT_FALSE(text.empty());
  const auto again =
      netlist::gola_test_set(1, netlist::GolaParams{15, 150}, 1985);
  EXPECT_EQ(netlist::to_string(again[0]), text);
}

TEST(DeterminismTest, TspRunsReproduce) {
  util::Rng gen{7};
  const tsp::TspInstance inst = tsp::TspInstance::random_euclidean(25, gen);
  auto run = [&] {
    tsp::TspProblem problem{inst, tsp::identity_order(25)};
    util::Rng rng{99};
    const auto g = core::make_g(GClass::kMetropolis, {.scale = 200.0});
    return core::run_figure1(problem, *g, {.budget = 20'000}, rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_state, b.best_state);
}

TEST(DeterminismTest, PartitionRunsReproduce) {
  util::Rng gen{8};
  const auto nl = netlist::random_graph(30, 90, gen);
  auto run = [&] {
    util::Rng rng{55};
    partition::PartitionProblem problem{
        partition::PartitionState::random(nl, rng)};
    const auto g = core::make_g(GClass::kSixTempAnnealing, {.scale = 10.0});
    return core::run_figure1(problem, *g, {.budget = 15'000}, rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_state, b.best_state);
}

TEST(DeterminismTest, DifferentMoveSeedsProduceDifferentTrajectories) {
  // Sanity guard against accidentally ignoring the seed.
  util::Rng gen{9};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 150}, gen);
  const auto g = core::make_g(GClass::kMetropolis, {.scale = 2.0});
  linarr::LinArrProblem p1{nl, linarr::Arrangement{15}};
  linarr::LinArrProblem p2{nl, linarr::Arrangement{15}};
  util::Rng r1{1};
  util::Rng r2{2};
  const auto a = core::run_figure1(p1, *g, {.budget = 5'000}, r1);
  const auto b = core::run_figure1(p2, *g, {.budget = 5'000}, r2);
  EXPECT_NE(a.accepts, b.accepts);
}

}  // namespace
}  // namespace mcopt
