// Cross-module integration: miniature versions of the paper's experiments
// exercising netlist generation -> Goto/random starts -> Figure 1/2 runners
// -> result aggregation, all through the public API.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "core/tuner.hpp"
#include "linarr/goto_heuristic.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"

namespace mcopt {
namespace {

using core::GClass;
using linarr::Arrangement;
using linarr::LinArrProblem;
using netlist::Netlist;

constexpr std::uint64_t kSeed = 1985;

double total_reduction_figure1(const std::vector<Netlist>& instances,
                               const core::GFunction& g, std::uint64_t budget,
                               std::uint64_t move_seed) {
  double total = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    util::Rng arr_rng{util::derive_seed(kSeed + 1, i)};
    LinArrProblem problem{instances[i], Arrangement::random(15, arr_rng)};
    util::Rng rng{util::derive_seed(move_seed, i)};
    total += core::run_figure1(problem, g, {.budget = budget}, rng).reduction();
  }
  return total;
}

TEST(PipelineTest, MiniTable41RowsAreAllPositive) {
  const auto instances =
      netlist::gola_test_set(5, netlist::GolaParams{15, 150}, kSeed);
  for (const GClass cls :
       {GClass::kSixTempAnnealing, GClass::kGOne, GClass::kCubicDiff,
        GClass::kMetropolis}) {
    core::GParams params;
    params.scale = cls == GClass::kSixTempAnnealing ? 4.0 : 0.4;
    const auto g = core::make_g(cls, params);
    const double reduction = total_reduction_figure1(instances, *g, 10'000, 7);
    EXPECT_GT(reduction, 0.0) << core::g_class_name(cls);
  }
}

TEST(PipelineTest, MoreBudgetNeverHurtsMuch) {
  // §4.2.2 observes performance generally improves with time (modulo
  // random-walk noise).  Compare 3k vs 30k ticks for six-temp annealing.
  const auto instances =
      netlist::gola_test_set(5, netlist::GolaParams{15, 150}, kSeed);
  const auto g = core::make_g(GClass::kSixTempAnnealing, {.scale = 4.0});
  const double small = total_reduction_figure1(instances, *g, 3'000, 11);
  const double large = total_reduction_figure1(instances, *g, 30'000, 11);
  EXPECT_GE(large, small - 2.0);  // allow the paper's "apparent anomalies"
}

TEST(PipelineTest, GotoStartLeavesLessRoom) {
  // Table 4.2(a): reductions from the Goto arrangement are far smaller than
  // from random starts, because Goto is near-optimal already.
  const auto instances =
      netlist::gola_test_set(5, netlist::GolaParams{15, 150}, kSeed);
  const auto g = core::make_g(GClass::kGOne);
  double random_total = 0.0;
  double goto_total = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    util::Rng arr_rng{util::derive_seed(kSeed + 1, i)};
    util::Rng r1{util::derive_seed(13, i)};
    util::Rng r2{util::derive_seed(13, i)};
    LinArrProblem from_random{instances[i],
                              Arrangement::random(15, arr_rng)};
    LinArrProblem from_goto{instances[i],
                            linarr::goto_arrangement(instances[i])};
    random_total +=
        core::run_figure1(from_random, *g, {.budget = 10'000}, r1).reduction();
    goto_total +=
        core::run_figure1(from_goto, *g, {.budget = 10'000}, r2).reduction();
  }
  EXPECT_LT(goto_total, random_total);
}

TEST(PipelineTest, Figure2MatchesFigure1BudgetAccounting) {
  // §4.2.4 requires equal-time comparisons: both strategies must consume
  // the same tick budget on the same instance.
  const auto instances =
      netlist::gola_test_set(2, netlist::GolaParams{15, 150}, kSeed);
  const auto g = core::make_g(GClass::kCubicDiff, {.scale = 0.4});
  for (const auto& nl : instances) {
    util::Rng r1{3};
    util::Rng r2{3};
    LinArrProblem p1{nl, Arrangement{15}};
    LinArrProblem p2{nl, Arrangement{15}};
    const auto fig1 = core::run_figure1(p1, *g, {.budget = 8'000}, r1);
    const auto fig2 = core::run_figure2(p2, *g, {.budget = 8'000}, r2);
    EXPECT_EQ(fig1.ticks, 8'000u);
    EXPECT_GE(fig2.ticks, 8'000u);
    EXPECT_LE(fig2.ticks, 8'000u + 2);  // descend may overshoot by one eval
  }
}

TEST(PipelineTest, TunerFindsUsableTemperatureForAnnealing) {
  // End-to-end §4.2.1: tune six-temp annealing on the shared instance set,
  // then check the tuned scale does at least as well as a frozen bad one.
  const auto instances =
      netlist::gola_test_set(4, netlist::GolaParams{15, 150}, kSeed);
  core::ProblemFactory factory =
      [&instances](std::size_t i) -> std::unique_ptr<core::Problem> {
    util::Rng arr_rng{util::derive_seed(kSeed + 1, i)};
    return std::make_unique<LinArrProblem>(instances[i],
                                           Arrangement::random(15, arr_rng));
  };
  core::TunerOptions options;
  options.budget = 4'000;
  options.num_instances = instances.size();
  options.typical_cost = 80.0;
  options.typical_delta = 2.0;
  const core::TuneResult tuned =
      core::tune_scale(GClass::kSixTempAnnealing, factory, options);
  EXPECT_GT(tuned.best_total_reduction, 0.0);

  // A pathologically hot schedule (accept nearly everything for the whole
  // run) must not beat the tuned one.
  options.candidates = {1e6};
  const core::TuneResult hot =
      core::tune_scale(GClass::kSixTempAnnealing, factory, options);
  EXPECT_GE(tuned.best_total_reduction, hot.best_total_reduction);
}

TEST(PipelineTest, NolaPipelineProducesImprovements) {
  const auto instances =
      netlist::nola_test_set(4, netlist::NolaParams{15, 150, 2, 6}, kSeed);
  const auto g = core::make_g(GClass::kGOne);
  double total = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    util::Rng arr_rng{util::derive_seed(kSeed + 2, i)};
    LinArrProblem problem{instances[i], Arrangement::random(15, arr_rng)};
    util::Rng rng{util::derive_seed(17, i)};
    total += core::run_figure1(problem, *g, {.budget = 10'000}, rng).reduction();
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace mcopt
