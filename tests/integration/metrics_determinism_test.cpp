// The aggregated-metrics analogue of trace determinism: every counter,
// histogram bucket, and profile-tree node that is registered as
// deterministic must be a pure function of the seed — bit-identical
// between the sequential engine, a 1-thread parallel run, and an 8-thread
// parallel run.  The exported registry snapshots (JSON and Prometheus,
// deterministic_only form) are compared byte for byte, which is exactly
// what bench/metrics_overhead gates in CI.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "core/parallel.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace mcopt {
namespace {

constexpr std::uint64_t kSeed = 605;

netlist::Netlist test_netlist() {
  util::Rng rng{util::derive_seed(kSeed, 1)};
  return netlist::random_gola(netlist::GolaParams{15, 120}, rng);
}

linarr::LinArrProblem test_problem(const netlist::Netlist& nl) {
  util::Rng rng{util::derive_seed(kSeed, 2)};
  return linarr::LinArrProblem{
      nl, linarr::Arrangement::random(nl.num_cells(), rng)};
}

core::Runner figure1_runner(const core::GFunction& g) {
  return [&g](core::Problem& p, std::uint64_t budget, util::Rng& r,
              const obs::Recorder& recorder) {
    core::Figure1Options options;
    options.budget = budget;
    options.recorder = &recorder;
    return core::run_figure1(p, g, options, r);
  };
}

struct Snapshot {
  std::string registry_json;
  std::string prometheus;
  std::string profile_json;
};

Snapshot export_snapshot(const obs::RunMetrics& metrics) {
  obs::MetricsRegistry registry;
  registry.populate_from_run(metrics);
  Snapshot snap;
  snap.registry_json = registry.to_json(/*deterministic_only=*/true);
  snap.prometheus = registry.to_prometheus(/*deterministic_only=*/true);
  snap.profile_json = metrics.profile.to_json(/*include_wall=*/false);
  return snap;
}

core::MultistartResult run_profiled(unsigned threads, bool sequential) {
  const auto nl = test_netlist();
  auto problem = test_problem(nl);
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);
  const auto runner = figure1_runner(*g);

  const obs::Recorder root{nullptr, /*collect_metrics=*/true,
                           /*trace_sample=*/1, /*run=*/0,
                           /*collect_profile=*/true};
  core::MultistartOptions ms;
  ms.total_budget = 20'000;
  ms.budget_per_start = 1'000;
  ms.recorder = &root;
  util::Rng rng{kSeed + 7};
  if (sequential) return core::multistart(problem, runner, ms, rng);
  core::ParallelMultistartOptions options;
  options.multistart = ms;
  options.num_threads = threads;
  return core::parallel_multistart(problem, runner, options, rng);
}

TEST(MetricsDeterminismTest, RegistrySnapshotsBitIdenticalAcrossThreads) {
  const auto t1 = run_profiled(1, /*sequential=*/false);
  const auto t8 = run_profiled(8, /*sequential=*/false);
  const Snapshot s1 = export_snapshot(t1.aggregate.metrics);
  const Snapshot s8 = export_snapshot(t8.aggregate.metrics);
  EXPECT_FALSE(s1.registry_json.empty());
  EXPECT_EQ(s1.registry_json, s8.registry_json);
  EXPECT_EQ(s1.prometheus, s8.prometheus);
  EXPECT_EQ(s1.profile_json, s8.profile_json);
}

TEST(MetricsDeterminismTest, SequentialEngineMatchesParallelSnapshots) {
  const auto seq = run_profiled(1, /*sequential=*/true);
  const auto par = run_profiled(8, /*sequential=*/false);
  const Snapshot a = export_snapshot(seq.aggregate.metrics);
  const Snapshot b = export_snapshot(par.aggregate.metrics);
  EXPECT_EQ(a.registry_json, b.registry_json);
  EXPECT_EQ(a.prometheus, b.prometheus);
  // Both engines re-root their profile under the same "multistart" node, so
  // even the tree shape is engine-invariant.
  EXPECT_EQ(a.profile_json, b.profile_json);
  EXPECT_NE(a.profile_json.find("\"name\": \"multistart\""),
            std::string::npos);
  EXPECT_NE(a.profile_json.find("\"name\": \"figure1\""), std::string::npos);
}

TEST(MetricsDeterminismTest, ProposalMixPartitionsProposalsPerStage) {
  const auto result = run_profiled(4, /*sequential=*/false);
  const obs::RunMetrics& m = result.aggregate.metrics;
  ASSERT_FALSE(m.stages.empty());
  std::uint64_t proposals = 0;
  for (const obs::StageMetrics& s : m.stages) {
    EXPECT_EQ(s.downhill_proposals + s.sideways_proposals +
                  s.uphill_proposals,
              s.proposals)
        << "proposal mix must partition the proposal count";
    proposals += s.proposals;
  }
  EXPECT_EQ(proposals, result.aggregate.proposals);
  // The uphill histograms observe exactly the uphill proposals/accepts.
  std::uint64_t uphill = 0;
  std::uint64_t uphill_accepts = 0;
  for (const obs::StageMetrics& s : m.stages) {
    uphill += s.uphill_proposals;
    uphill_accepts += s.uphill_accepts;
  }
  EXPECT_EQ(m.uphill_delta_proposed.count(), uphill);
  EXPECT_EQ(m.uphill_delta_accepted.count(), uphill_accepts);
}

// RunMetrics::merge is the shard-reduction primitive: folding per-restart
// shards one by one must equal folding pre-merged groups (associativity),
// which is why any thread partition of the same restarts reduces to the
// same totals when drained in index order.
TEST(MetricsDeterminismTest, ShardMergeIsAssociative) {
  const auto nl = test_netlist();
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);
  const obs::Recorder root{nullptr, /*collect_metrics=*/true,
                           /*trace_sample=*/1, /*run=*/0,
                           /*collect_profile=*/true};

  std::vector<obs::RunMetrics> shards;
  for (std::uint64_t restart = 0; restart < 6; ++restart) {
    auto problem = test_problem(nl);
    obs::Recorder shard = root.for_restart(restart, 0, nullptr);
    core::Figure1Options options;
    options.budget = 2'000;
    options.recorder = &shard;
    util::Rng rng{util::derive_seed(kSeed + 9, restart)};
    const auto run = core::run_figure1(problem, *g, options, rng);
    shards.push_back(run.metrics);
  }

  obs::RunMetrics flat;
  for (const auto& shard : shards) flat.merge(shard);

  obs::RunMetrics left;
  obs::RunMetrics right;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    (i < 3 ? left : right).merge(shards[i]);
  }
  obs::RunMetrics grouped;
  grouped.merge(left);
  grouped.merge(right);

  // Wall clocks are doubles and FP addition is not associative; they are
  // outside the contract anyway, so compare the JSON with walls zeroed.
  auto strip_wall = [](obs::RunMetrics m) {
    m.wall_seconds = 0.0;
    m.invariant_seconds = 0.0;
    for (auto& s : m.stages) s.wall_seconds = 0.0;
    for (auto& node : m.profile.nodes) node.wall_ns = 0;
    return m;
  };
  EXPECT_EQ(strip_wall(flat).to_json(), strip_wall(grouped).to_json());
  EXPECT_EQ(export_snapshot(flat).registry_json,
            export_snapshot(grouped).registry_json);
}

}  // namespace
}  // namespace mcopt
