// Differential fuzz for the speculative evaluation path.
//
// For each substrate (linear arrangement with both move kinds, balanced
// partitioning, TSP) a speculative-path problem and an apply-undo twin are
// driven through thousands of random propose/accept/reject/descend
// sequences with identical RNG streams.  The apply-undo path is the
// original, obviously-correct implementation kept verbatim as the oracle:
// at every step both paths must return bit-identical proposal costs,
// committed costs, and snapshots, and the incremental state must agree
// with a from-scratch rebuild (state().verify() / check_invariants()).
//
// The suite runs under ASan/UBSan in CI, so any journal bookkeeping error
// that scribbles outside the reserved scratch also surfaces here.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "core/problem.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "partition/problem.hpp"
#include "tsp/problem.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace mcopt {
namespace {

/// Drives `spec` and `legacy` through `steps` random operations with
/// identical per-problem RNG streams, asserting lockstep equality after
/// every operation.  `deep_verify` recomputes the incremental state from
/// scratch (or checks invariants) for one problem.
void run_differential_fuzz(core::Problem& spec, core::Problem& legacy,
                           std::uint64_t seed, int steps,
                           const std::function<void(core::Problem&)>&
                               deep_verify) {
  ASSERT_EQ(spec.cost(), legacy.cost());
  util::Rng spec_rng{seed};
  util::Rng legacy_rng{seed};
  util::Rng script{seed ^ 0x9e3779b97f4a7c15ULL};
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t op = script.next() % 16;
    if (op < 12) {
      // Propose on both, then apply the same accept/reject decision.
      const double h_spec = spec.propose(spec_rng);
      const double h_legacy = legacy.propose(legacy_rng);
      ASSERT_EQ(h_spec, h_legacy) << "step " << step;
      const bool take =
          h_spec < spec.cost() || script.next_double() < 0.25;
      if (take) {
        spec.accept();
        legacy.accept();
      } else {
        spec.reject();
        legacy.reject();
      }
    } else if (op < 14) {
      // Descend with a small budget; both paths must consume identical
      // budget and land on the identical local state.
      util::WorkBudget spec_budget{150};
      util::WorkBudget legacy_budget{150};
      spec.descend(spec_budget);
      legacy.descend(legacy_budget);
      ASSERT_EQ(spec_budget.spent(), legacy_budget.spent())
          << "step " << step;
    } else if (op == 14) {
      ASSERT_EQ(spec.snapshot(), legacy.snapshot()) << "step " << step;
    } else {
      deep_verify(spec);
      deep_verify(legacy);
    }
    ASSERT_EQ(spec.cost(), legacy.cost()) << "step " << step;
  }
  ASSERT_EQ(spec.snapshot(), legacy.snapshot());
  deep_verify(spec);
  deep_verify(legacy);
}

class SpeculativeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SpeculativeFuzzTest, LinArrPairwiseInterchange) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng gen{seed * 101 + 7};
  const auto nl =
      netlist::random_gola(netlist::GolaParams{12, 80}, gen);
  const auto start = linarr::Arrangement::random(12, gen);
  linarr::LinArrProblem spec{nl, start,
                             linarr::MoveKind::kPairwiseInterchange,
                             linarr::Objective::kDensity,
                             core::EvalPath::kSpeculative};
  linarr::LinArrProblem legacy{nl, start,
                               linarr::MoveKind::kPairwiseInterchange,
                               linarr::Objective::kDensity,
                               core::EvalPath::kApplyUndo};
  run_differential_fuzz(spec, legacy, seed, 600, [](core::Problem& p) {
    ASSERT_TRUE(dynamic_cast<linarr::LinArrProblem&>(p).state().verify());
  });
}

TEST_P(SpeculativeFuzzTest, LinArrSingleExchange) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng gen{seed * 131 + 3};
  const auto nl =
      netlist::random_gola(netlist::GolaParams{12, 80}, gen);
  const auto start = linarr::Arrangement::random(12, gen);
  linarr::LinArrProblem spec{nl, start, linarr::MoveKind::kSingleExchange,
                             linarr::Objective::kDensity,
                             core::EvalPath::kSpeculative};
  linarr::LinArrProblem legacy{nl, start, linarr::MoveKind::kSingleExchange,
                               linarr::Objective::kDensity,
                               core::EvalPath::kApplyUndo};
  run_differential_fuzz(spec, legacy, seed, 600, [](core::Problem& p) {
    ASSERT_TRUE(dynamic_cast<linarr::LinArrProblem&>(p).state().verify());
  });
}

TEST_P(SpeculativeFuzzTest, LinArrTotalSpanObjective) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng gen{seed * 151 + 9};
  const auto nl =
      netlist::random_gola(netlist::GolaParams{12, 80}, gen);
  const auto start = linarr::Arrangement::random(12, gen);
  linarr::LinArrProblem spec{nl, start,
                             linarr::MoveKind::kPairwiseInterchange,
                             linarr::Objective::kTotalSpan,
                             core::EvalPath::kSpeculative};
  linarr::LinArrProblem legacy{nl, start,
                               linarr::MoveKind::kPairwiseInterchange,
                               linarr::Objective::kTotalSpan,
                               core::EvalPath::kApplyUndo};
  run_differential_fuzz(spec, legacy, seed, 600, [](core::Problem& p) {
    ASSERT_TRUE(dynamic_cast<linarr::LinArrProblem&>(p).state().verify());
  });
}

TEST_P(SpeculativeFuzzTest, Partition) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng gen{seed * 171 + 5};
  const auto nl = netlist::random_graph(16, 48, gen);
  const auto start = partition::PartitionState::random(nl, gen);
  partition::PartitionProblem spec{start, core::EvalPath::kSpeculative};
  partition::PartitionProblem legacy{start, core::EvalPath::kApplyUndo};
  run_differential_fuzz(spec, legacy, seed, 600, [](core::Problem& p) {
    ASSERT_TRUE(
        dynamic_cast<partition::PartitionProblem&>(p).state().verify());
  });
}

TEST_P(SpeculativeFuzzTest, TspTwoOpt) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng gen{seed * 191 + 1};
  const auto instance = tsp::TspInstance::random_euclidean(16, gen);
  const auto start = tsp::identity_order(16);
  tsp::TspProblem spec{instance, start, tsp::TspMoveKind::kTwoOpt,
                       core::EvalPath::kSpeculative};
  tsp::TspProblem legacy{instance, start, tsp::TspMoveKind::kTwoOpt,
                         core::EvalPath::kApplyUndo};
  run_differential_fuzz(spec, legacy, seed, 600,
                        [](core::Problem& p) { p.check_invariants(); });
}

TEST_P(SpeculativeFuzzTest, TspOrOpt) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng gen{seed * 211 + 13};
  const auto instance = tsp::TspInstance::random_euclidean(16, gen);
  const auto start = tsp::identity_order(16);
  tsp::TspProblem spec{instance, start, tsp::TspMoveKind::kOrOpt,
                       core::EvalPath::kSpeculative};
  tsp::TspProblem legacy{instance, start, tsp::TspMoveKind::kOrOpt,
                         core::EvalPath::kApplyUndo};
  run_differential_fuzz(spec, legacy, seed, 600,
                        [](core::Problem& p) { p.check_invariants(); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeculativeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mcopt
