// Stress and cross-component equivalence tests: larger instances than the
// paper's, fuzz-style round-trips, and identities between API layers.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <stdexcept>
#include <string>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"
#include "linarr/problem.hpp"
#include "linarr/tracks.hpp"
#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "partition/partition.hpp"
#include "partition/problem.hpp"

namespace mcopt {
namespace {

TEST(StressTest, LargeDensityChurnStaysConsistent) {
  util::Rng rng{1};
  const auto nl =
      netlist::random_nola(netlist::NolaParams{200, 800, 2, 8}, rng);
  linarr::DensityState state{nl, linarr::Arrangement::random(200, rng)};
  for (int step = 0; step < 2000; ++step) {
    const auto [a, b] = rng.next_distinct_pair(200);
    if (rng.next_bool(0.7)) {
      state.apply_swap(a, b);
    } else {
      state.apply_move(a, b);
    }
  }
  EXPECT_TRUE(state.verify());
  EXPECT_GT(state.density(), 0);
}

TEST(StressTest, LargePartitionChurnStaysConsistent) {
  util::Rng rng{2};
  const auto nl = netlist::random_graph(300, 1200, rng);
  partition::PartitionState state = partition::PartitionState::random(nl, rng);
  for (int step = 0; step < 5000; ++step) {
    state.flip(static_cast<partition::CellId>(rng.next_below(300)));
  }
  EXPECT_TRUE(state.verify());
}

class IoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(IoFuzzTest, RandomInstancesRoundTripExactly) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const std::size_t cells = 2 + rng.next_below(60);
  const std::size_t nets = 1 + rng.next_below(120);
  const std::size_t max_pins = 2 + rng.next_below(std::min<std::size_t>(
                                       cells - 1, 7));
  const auto nl = netlist::random_nola(
      netlist::NolaParams{cells, nets, 2, max_pins}, rng);
  const std::string once = netlist::to_string(nl);
  const std::string twice = netlist::to_string(netlist::from_string(once));
  ASSERT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest,
                         ::testing::Range(1, 21));  // 20 fuzz draws

TEST(EquivalenceTest, AnnealerIsFigure1WithAnnealingG) {
  // simulated_annealing(schedule) must be bit-identical to run_figure1 with
  // make_annealing_g(schedule): same accepts, same best, same everything.
  util::Rng gen{3};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 150}, gen);
  const auto schedule = core::geometric_schedule(3.0, 0.8, 5);

  linarr::LinArrProblem p1{nl, linarr::Arrangement{15}};
  util::Rng r1{42};
  core::AnnealOptions anneal;
  anneal.schedule = schedule;
  anneal.budget = 4'000;
  const auto a = core::simulated_annealing(p1, anneal, r1);

  linarr::LinArrProblem p2{nl, linarr::Arrangement{15}};
  util::Rng r2{42};
  const auto g = core::make_annealing_g(schedule);
  core::Figure1Options fig1;
  fig1.budget = 4'000;
  const auto b = core::run_figure1(p2, *g, fig1, r2);

  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.uphill_accepts, b.uphill_accepts);
  EXPECT_EQ(a.best_state, b.best_state);
}

TEST(EquivalenceTest, MakeGAnnealingMatchesExplicitSchedule) {
  // make_g(kSixTempAnnealing, {scale, ratio}) == make_annealing_g(geometric).
  const auto packed =
      core::make_g(core::GClass::kSixTempAnnealing, {.scale = 7.0, .ratio = 0.8});
  const auto explicit_g =
      core::make_annealing_g(core::geometric_schedule(7.0, 0.8, 6));
  for (unsigned t = 0; t < 6; ++t) {
    for (const double delta : {0.5, 1.0, 3.0, 10.0}) {
      EXPECT_DOUBLE_EQ(packed->probability(t, 50.0, 50.0 + delta),
                       explicit_g->probability(t, 50.0, 50.0 + delta));
    }
  }
}

TEST(StressTest, TrackAssignmentScalesAndStaysOptimal) {
  util::Rng rng{4};
  const auto nl =
      netlist::random_nola(netlist::NolaParams{100, 400, 2, 6}, rng);
  const auto arr = linarr::Arrangement::random(100, rng);
  const auto assignment = linarr::assign_tracks(nl, arr);
  EXPECT_TRUE(linarr::is_valid_assignment(assignment));
  EXPECT_EQ(assignment.num_tracks,
            static_cast<std::size_t>(linarr::density_of(nl, arr)));
}

TEST(FailureInjectionTest, ForeignSnapshotsAreRejectedEverywhere) {
  util::Rng rng{5};
  const auto nl = netlist::random_gola(netlist::GolaParams{10, 40}, rng);
  linarr::LinArrProblem linarr_problem{nl, linarr::Arrangement{10}};
  EXPECT_THROW(linarr_problem.restore(core::Snapshot{}),
               std::invalid_argument);
  EXPECT_THROW(linarr_problem.restore(core::Snapshot{0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(linarr_problem.restore(core::Snapshot(10, 99)),
               std::invalid_argument);

  partition::PartitionProblem partition_problem{
      partition::PartitionState::random(nl, rng)};
  EXPECT_THROW(partition_problem.restore(core::Snapshot{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(partition_problem.restore(core::Snapshot(10, 7)),
               std::invalid_argument);
}

TEST(StressTest, HugeBudgetRunTerminatesAtCeiling) {
  // A long Figure 1 run on a tiny instance must stay stable (no drift, no
  // invariant decay) and end with a best no worse than the brute regime.
  util::Rng rng{6};
  const auto nl = netlist::random_gola(netlist::GolaParams{8, 30}, rng);
  linarr::LinArrProblem problem{nl, linarr::Arrangement{8}};
  const auto g = core::make_g(core::GClass::kCubicDiff, {.scale = 0.5});
  core::Figure1Options options;
  options.budget = 200'000;
  const auto result = core::run_figure1(problem, *g, options, rng);
  EXPECT_TRUE(problem.state().verify());
  EXPECT_LE(result.best_cost, result.initial_cost);
  problem.restore(result.best_state);
  EXPECT_DOUBLE_EQ(problem.cost(), result.best_cost);
}

}  // namespace
}  // namespace mcopt
