// The runtime invariant-verification layer end to end: every Problem
// implementation's deep check passes after real Monte Carlo work, the
// runners perform (and count) periodic verification, and the counts
// propagate through aggregation — so a checked CI run can prove the checks
// executed rather than silently compiling to nothing.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <memory>

#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "core/tempering.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "partition/problem.hpp"
#include "tsp/problem.hpp"
#include "util/invariant.hpp"

namespace mcopt {
namespace {

using core::GClass;
using util::kInvariantsEnabled;

constexpr std::uint64_t kSeed = 1985;

netlist::Netlist test_netlist() {
  return netlist::gola_test_set(1, netlist::GolaParams{15, 150}, kSeed)[0];
}

TEST(InvariantLayerTest, Figure1CountsPeriodicChecksOnLinArr) {
  const auto nl = test_netlist();
  util::Rng rng{kSeed};
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
  const auto g = core::make_g(GClass::kSixTempAnnealing, {.scale = 4.0});
  core::Figure1Options options;
  options.budget = 2'000;
  options.invariant_check_interval = 100;
  const auto result = core::run_figure1(problem, *g, options, rng);
  if constexpr (kInvariantsEnabled) {
    EXPECT_GE(result.invariants.executed, 20u);
  } else {
    EXPECT_EQ(result.invariants.executed, 0u);
  }
  EXPECT_NO_THROW(problem.check_invariants());
}

TEST(InvariantLayerTest, Figure2CountsPeriodicChecksOnLinArr) {
  const auto nl = test_netlist();
  util::Rng rng{kSeed + 1};
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
  const auto g = core::make_g(GClass::kCubicDiff, {.scale = 0.4});
  core::Figure2Options options;
  options.budget = 2'000;
  options.invariant_check_interval = 100;
  const auto result = core::run_figure2(problem, *g, options, rng);
  if constexpr (kInvariantsEnabled) {
    EXPECT_GT(result.invariants.executed, 0u);
  } else {
    EXPECT_EQ(result.invariants.executed, 0u);
  }
  EXPECT_NO_THROW(problem.check_invariants());
}

TEST(InvariantLayerTest, TspProblemStaysConsistentUnderBothMoveKinds) {
  util::Rng rng{kSeed + 2};
  const auto instance = tsp::TspInstance::random_euclidean(20, rng);
  for (const auto kind : {tsp::TspMoveKind::kTwoOpt, tsp::TspMoveKind::kOrOpt}) {
    tsp::TspProblem problem{instance, tsp::random_order(20, rng), kind};
    const auto g = core::make_g(GClass::kMetropolis, {.scale = 50.0});
    core::Figure1Options options;
    options.budget = 3'000;
    options.invariant_check_interval = 64;
    const auto result = core::run_figure1(problem, *g, options, rng);
    if constexpr (kInvariantsEnabled) {
      EXPECT_GT(result.invariants.executed, 0u);
    }
    EXPECT_NO_THROW(problem.check_invariants());
  }
}

TEST(InvariantLayerTest, PartitionProblemStaysConsistent) {
  const auto nl = test_netlist();
  util::Rng rng{kSeed + 3};
  partition::PartitionProblem problem{partition::PartitionState::random(nl, rng)};
  const auto g = core::make_g(GClass::kSixTempAnnealing, {.scale = 10.0});
  core::Figure1Options options;
  options.budget = 2'000;
  options.invariant_check_interval = 50;
  const auto result = core::run_figure1(problem, *g, options, rng);
  if constexpr (kInvariantsEnabled) {
    EXPECT_GT(result.invariants.executed, 0u);
  }
  EXPECT_NO_THROW(problem.check_invariants());
}

TEST(InvariantLayerTest, MultistartAggregatesInvariantCounts) {
  const auto nl = test_netlist();
  util::Rng rng{kSeed + 4};
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
  const auto g = core::make_g(GClass::kGOne);
  core::Runner runner = [&g](core::Problem& p, std::uint64_t budget,
                             util::Rng& r, const obs::Recorder&) {
    core::Figure1Options options;
    options.budget = budget;
    options.invariant_check_interval = 100;
    return core::run_figure1(p, *g, options, r);
  };
  core::MultistartOptions options;
  options.total_budget = 2'000;
  options.budget_per_start = 500;
  const auto result = core::multistart(problem, runner, options, rng);
  if constexpr (kInvariantsEnabled) {
    // One per-restart check plus the periodic in-run checks.
    EXPECT_GE(result.aggregate.invariants.executed, result.restarts);
  } else {
    EXPECT_EQ(result.aggregate.invariants.executed, 0u);
  }
}

TEST(InvariantLayerTest, TemperingVerifiesEveryReplica) {
  const auto nl = test_netlist();
  core::TemperingOptions options;
  options.temperatures = {8.0, 4.0, 2.0, 1.0};
  options.budget = 4'000;
  options.sweep = 10;
  options.invariant_check_interval = 200;
  util::Rng rng{kSeed + 5};
  auto factory = [&nl](std::size_t r) -> std::unique_ptr<core::Problem> {
    util::Rng arr_rng{util::derive_seed(kSeed, r)};
    return std::make_unique<linarr::LinArrProblem>(
        nl, linarr::Arrangement::random(15, arr_rng));
  };
  const auto result = core::parallel_tempering(factory, options, rng);
  if constexpr (kInvariantsEnabled) {
    // Checks come in whole sweeps of all four replicas.
    EXPECT_GT(result.aggregate.invariants.executed, 0u);
    EXPECT_EQ(result.aggregate.invariants.executed % 4, 0u);
  } else {
    EXPECT_EQ(result.aggregate.invariants.executed, 0u);
  }
}

TEST(InvariantLayerTest, CheckedAndUncheckedRunsSeeIdenticalStreams) {
  // The periodic verification must not consume randomness: a run with
  // interval 1 and a run with checking effectively off must visit exactly
  // the same solutions.
  const auto nl = test_netlist();
  util::Rng arr_rng{kSeed + 6};
  const auto start = linarr::Arrangement::random(15, arr_rng);
  const auto g = core::make_g(GClass::kSixTempAnnealing, {.scale = 4.0});

  auto run = [&](std::uint64_t interval) {
    linarr::LinArrProblem problem{nl, start};
    util::Rng rng{kSeed + 7};
    core::Figure1Options options;
    options.budget = 2'000;
    options.invariant_check_interval = interval;
    return core::run_figure1(problem, *g, options, rng);
  };
  const auto checked = run(1);
  const auto unchecked = run(0);
  EXPECT_EQ(checked.best_cost, unchecked.best_cost);
  EXPECT_EQ(checked.final_cost, unchecked.final_cost);
  EXPECT_EQ(checked.accepts, unchecked.accepts);
  EXPECT_EQ(checked.best_state, unchecked.best_state);
}

TEST(InvariantLayerTest, GFunctionRejectsOutOfRangeTemperatureIndex) {
  if constexpr (kInvariantsEnabled) {
    const auto g = core::make_g(GClass::kMetropolis, {.scale = 10.0});
    EXPECT_THROW((void)g->probability(1, 10.0, 11.0),
                 util::InvariantViolation);
    const auto cohoon = core::make_g(GClass::kCohoonSahni, {.num_nets = 150});
    EXPECT_THROW((void)cohoon->probability(3, 10.0, 11.0),
                 util::InvariantViolation);
  }
}

}  // namespace
}  // namespace mcopt
