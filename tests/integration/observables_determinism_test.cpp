// Determinism of the thermodynamic observables (obs/observables.hpp):
// the per-stage cost statistics, specific heat, autocorrelation, and
// equilibrium flags must be bit-identical between 1 and 8 threads and
// between the speculative and apply-undo proposal evaluation paths — the
// same contract the trace and metrics layers already satisfy.  Also pins
// the flight-recorder ring across the parallel shard drain: its bounded
// tail must equal the tail of the sequential stream.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "core/parallel.hpp"
#include "core/problem.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace mcopt {
namespace {

constexpr std::uint64_t kSeed = 609;

netlist::Netlist test_netlist() {
  util::Rng rng{util::derive_seed(kSeed, 1)};
  return netlist::random_gola(netlist::GolaParams{15, 120}, rng);
}

linarr::LinArrProblem test_problem(const netlist::Netlist& nl,
                                   core::EvalPath path) {
  util::Rng rng{util::derive_seed(kSeed, 2)};
  return linarr::LinArrProblem{
      nl, linarr::Arrangement::random(nl.num_cells(), rng),
      linarr::MoveKind::kPairwiseInterchange, linarr::Objective::kDensity,
      path};
}

core::Runner figure1_runner(const core::GFunction& g) {
  return [&g](core::Problem& p, std::uint64_t budget, util::Rng& r,
              const obs::Recorder& recorder) {
    core::Figure1Options options;
    options.budget = budget;
    options.recorder = &recorder;
    return core::run_figure1(p, g, options, r);
  };
}

obs::RunMetrics run_with(unsigned threads, core::EvalPath path,
                         obs::TraceSink* sink = nullptr) {
  const auto nl = test_netlist();
  auto problem = test_problem(nl, path);
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);
  const auto runner = figure1_runner(*g);

  const obs::Recorder root{sink, /*collect_metrics=*/true};
  core::MultistartOptions ms;
  ms.total_budget = 20'000;
  ms.budget_per_start = 1'000;
  ms.recorder = &root;
  core::ParallelMultistartOptions options;
  options.multistart = ms;
  options.num_threads = threads;
  util::Rng rng{kSeed + 7};
  return core::parallel_multistart(problem, runner, options, rng)
      .aggregate.metrics;
}

std::string canonical_json(obs::RunMetrics metrics) {
  metrics.wall_seconds = 0.0;
  metrics.invariant_seconds = 0.0;
  for (auto& stage : metrics.stages) stage.wall_seconds = 0.0;
  // Scheduling observations are outside the determinism contract.
  metrics.worker_steals = 0;
  metrics.queue_peak = 0;
  return metrics.to_json();
}

void expect_same_observables(const obs::RunMetrics& a,
                             const obs::RunMetrics& b) {
  ASSERT_EQ(a.observables.size(), b.observables.size());
  ASSERT_FALSE(a.observables.empty());
  for (std::size_t s = 0; s < a.observables.size(); ++s) {
    const obs::StageObservables& x = a.observables[s];
    const obs::StageObservables& y = b.observables[s];
    EXPECT_EQ(x.samples, y.samples) << "stage " << s;
    EXPECT_EQ(x.sum, y.sum) << "stage " << s;
    EXPECT_DOUBLE_EQ(x.mean(), y.mean()) << "stage " << s;
    EXPECT_DOUBLE_EQ(x.variance(), y.variance()) << "stage " << s;
    EXPECT_DOUBLE_EQ(x.temperature, y.temperature) << "stage " << s;
    EXPECT_DOUBLE_EQ(x.specific_heat(), y.specific_heat()) << "stage " << s;
    for (std::size_t lag = 1; lag <= obs::StageObservables::kMaxLag; ++lag) {
      EXPECT_DOUBLE_EQ(x.autocorrelation(lag), y.autocorrelation(lag))
          << "stage " << s << " lag " << lag;
    }
    EXPECT_EQ(x.windows, y.windows) << "stage " << s;
    EXPECT_EQ(x.equilibrated_runs, y.equilibrated_runs) << "stage " << s;
    EXPECT_EQ(x.first_equilibrated_sample, y.first_equilibrated_sample)
        << "stage " << s;
  }
}

TEST(ObservablesDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const obs::RunMetrics t1 = run_with(1, core::EvalPath::kSpeculative);
  const obs::RunMetrics t8 = run_with(8, core::EvalPath::kSpeculative);
  expect_same_observables(t1, t8);
  EXPECT_EQ(canonical_json(t1), canonical_json(t8));
}

TEST(ObservablesDeterminismTest, BitIdenticalAcrossEvalPaths) {
  const obs::RunMetrics spec = run_with(4, core::EvalPath::kSpeculative);
  const obs::RunMetrics undo = run_with(4, core::EvalPath::kApplyUndo);
  expect_same_observables(spec, undo);
  EXPECT_EQ(canonical_json(spec), canonical_json(undo));
}

TEST(ObservablesDeterminismTest, TemperatureAndHeatPopulateTheRegistry) {
  const obs::RunMetrics metrics = run_with(2, core::EvalPath::kSpeculative);
  // The annealing schedule records a positive Boltzmann temperature for
  // at least the hot stages, so a specific-heat estimate exists.
  bool saw_temperature = false;
  for (const obs::StageObservables& o : metrics.observables) {
    if (o.temperature > 0.0 && o.samples > 0) {
      saw_temperature = true;
      EXPECT_GE(o.specific_heat(), 0.0);
    }
  }
  EXPECT_TRUE(saw_temperature);

  obs::MetricsRegistry registry;
  registry.populate_from_run(metrics);
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("mcopt_stage_cost_mean"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_stage_specific_heat"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_stage_autocorr_lag1"), std::string::npos);
  EXPECT_NE(prom.find("mcopt_stage_uphill_rate"), std::string::npos);
}

// Satellite: the flight ring's bounded tail survives the t8 shard drain.
// The reduction drains per-restart shards into the caller's sink in
// restart-index order, so a ring of capacity M attached to a t8 run holds
// exactly the last M events of the deterministic stream — identical to
// the tail of the same run traced at t1 into an unbounded sink, once the
// sanctioned worker nondeterminism is filtered out.
TEST(ObservablesDeterminismTest, FlightRingTailMatchesAcrossShardDrain) {
  obs::VectorSink full;
  static_cast<void>(run_with(1, core::EvalPath::kSpeculative, &full));

  constexpr std::size_t kCapacity = 64;
  obs::RingBufferSink ring{kCapacity};
  static_cast<void>(run_with(8, core::EvalPath::kSpeculative, &ring));

  auto filtered = [](const std::vector<obs::Event>& events) {
    std::vector<obs::Event> out;
    for (obs::Event event : events) {
      if (event.kind == obs::EventKind::kWorkerSteal) continue;
      event.worker = 0;
      out.push_back(event);
    }
    return out;
  };
  const std::vector<obs::Event> baseline = filtered(full.events());
  const std::vector<obs::Event> tail = filtered(ring.snapshot());
  ASSERT_GT(baseline.size(), kCapacity) << "ring must have wrapped";
  // Steal events occupy ring slots nondeterministically, so the filtered
  // tail length M varies slightly; it must still be a suffix of the
  // deterministic stream.
  ASSERT_LE(tail.size(), kCapacity);
  ASSERT_GE(baseline.size(), tail.size());
  const std::size_t offset = baseline.size() - tail.size();
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const obs::Event& want = baseline[offset + i];
    const obs::Event& got = tail[i];
    EXPECT_EQ(got.kind, want.kind) << "tail event " << i;
    EXPECT_EQ(got.stage, want.stage) << "tail event " << i;
    EXPECT_EQ(got.restart, want.restart) << "tail event " << i;
    EXPECT_EQ(got.tick, want.tick) << "tail event " << i;
    EXPECT_DOUBLE_EQ(got.cost, want.cost) << "tail event " << i;
    EXPECT_DOUBLE_EQ(got.best, want.best) << "tail event " << i;
  }
}

}  // namespace
}  // namespace mcopt
