#include "core/annealer.hpp"

#include <gtest/gtest.h>
#include <vector>

#include <stdexcept>

#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

std::vector<double> rugged_landscape() {
  // Several local minima; global minimum 0 at position 9.
  return {6, 3, 5, 2, 6, 4, 7, 1, 5, 0, 6, 3, 8, 2, 7, 5};
}

TEST(AnnealerTest, DefaultScheduleIsKirkpatrick) {
  ToyProblem problem{rugged_landscape(), 0};
  util::Rng rng{1};
  AnnealOptions options;
  options.budget = 600;
  const RunResult result = simulated_annealing(problem, options, rng);
  EXPECT_EQ(result.temperatures_visited, 6u);
  EXPECT_EQ(result.proposals, 600u);
}

TEST(AnnealerTest, FindsGlobalOptimumOnSmallLandscape) {
  ToyProblem problem{rugged_landscape(), 0};
  util::Rng rng{2};
  AnnealOptions options;
  options.budget = 10'000;
  const RunResult result = simulated_annealing(problem, options, rng);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
  ASSERT_EQ(result.best_state.size(), 1u);
  EXPECT_EQ(result.best_state[0], 9u);
}

TEST(AnnealerTest, AcceptsUphillAtHighTemperature) {
  ToyProblem problem{rugged_landscape(), 1};  // start in a local min
  util::Rng rng{3};
  AnnealOptions options;
  options.budget = 2'000;
  const RunResult result = simulated_annealing(problem, options, rng);
  EXPECT_GT(result.uphill_accepts, 0u);
}

TEST(AnnealerTest, CustomScheduleIsValidated) {
  ToyProblem problem{rugged_landscape(), 0};
  util::Rng rng{4};
  AnnealOptions options;
  options.schedule = {1.0, 2.0};  // increasing: invalid
  EXPECT_THROW((void)simulated_annealing(problem, options, rng),
               std::invalid_argument);
}

TEST(AnnealerTest, CustomScheduleControlsLevels) {
  ToyProblem problem{rugged_landscape(), 0};
  util::Rng rng{5};
  AnnealOptions options;
  options.schedule = {5.0, 1.0, 0.2};
  options.budget = 300;
  const RunResult result = simulated_annealing(problem, options, rng);
  EXPECT_EQ(result.temperatures_visited, 3u);
}

TEST(AnnealerTest, DeterministicGivenSeed) {
  ToyProblem p1{rugged_landscape(), 0};
  ToyProblem p2{rugged_landscape(), 0};
  util::Rng r1{42};
  util::Rng r2{42};
  AnnealOptions options;
  options.budget = 1000;
  const RunResult a = simulated_annealing(p1, options, r1);
  const RunResult b = simulated_annealing(p2, options, r2);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.accepts, b.accepts);
}

TEST(RandomDescentTest, NeverAcceptsUphill) {
  ToyProblem problem{rugged_landscape(), 12};
  util::Rng rng{6};
  const RunResult result = random_descent(problem, 2000, rng);
  EXPECT_EQ(result.uphill_accepts, 0u);
  EXPECT_LE(result.final_cost, result.initial_cost);
  EXPECT_DOUBLE_EQ(result.best_cost, result.final_cost);
  EXPECT_EQ(result.proposals, 2000u);
}

TEST(RandomDescentTest, ReachesNearestBasin) {
  // From position 12 (cost 8), both neighbours improve; descent must reach
  // one of the adjacent local minima but can never cross a barrier.
  std::vector<double> landscape{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 2, 5, 8, 4, 1,
                                9};
  ToyProblem problem{landscape, 12};
  util::Rng rng{7};
  const RunResult result = random_descent(problem, 500, rng);
  EXPECT_TRUE(result.best_cost == 2.0 || result.best_cost == 1.0)
      << result.best_cost;
}

TEST(RandomDescentTest, QuenchVsAnnealOnBarrieredLandscape) {
  // Start trapped behind high barriers: descent can never beat cost 2, but
  // annealing (which accepts uphill moves early) should find the global 0.
  std::vector<double> landscape{9, 2, 9, 9, 0, 9, 9, 9};
  ToyProblem quench_problem{landscape, 1};
  ToyProblem anneal_problem{landscape, 1};
  util::Rng r1{8};
  util::Rng r2{8};
  const RunResult quench = random_descent(quench_problem, 5000, r1);
  AnnealOptions options;
  options.schedule = {20.0, 10.0, 5.0, 2.0, 1.0, 0.5};
  options.budget = 5000;
  const RunResult anneal = simulated_annealing(anneal_problem, options, r2);
  EXPECT_DOUBLE_EQ(quench.best_cost, 2.0);
  EXPECT_DOUBLE_EQ(anneal.best_cost, 0.0);
}

}  // namespace
}  // namespace mcopt::core
