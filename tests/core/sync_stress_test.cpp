// Contention stress for the annotated sync layer (util/sync.hpp) and every
// component it guards: obs::log, a shared RingBufferSink, the Heartbeat,
// the MetricsRegistry, and the parallel multistart engine, all hammered
// from many threads at once.  The test names carry the SyncStress prefix
// so CI's ThreadSanitizer job selects this suite with its -R filter; under
// TSan the hammering proves data-race freedom, and the assertions below
// prove the determinism half of the contract — the engine's index-ordered
// reduction stays bit-identical to the sequential loop while everything
// around it is contended.
//
// The start gate is built from util::Mutex/util::CondVar on purpose: the
// suite guards the annotated layer, so its own synchronization should be
// the layer under test (a std::atomic would also be invisible to the
// thread-safety analysis and is banned by the determinism lint).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/annealer.hpp"
#include "core/multistart.hpp"
#include "core/parallel.hpp"
#include "obs/event.hpp"
#include "obs/heartbeat.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/toy_problem.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

// One-shot start barrier so every hammer thread begins its loop at once
// (maximizing overlap with the engine run instead of finishing during
// thread spawn).
class StartGate {
 public:
  void release() EXCLUDES(mu_) {
    {
      util::MutexLock lock{mu_};
      released_ = true;
    }
    cv_.notify_all();
  }

  void wait() EXCLUDES(mu_) {
    util::MutexLock lock{mu_};
    while (!released_) cv_.wait(mu_);
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  bool released_ GUARDED_BY(mu_) = false;
};

// Drops log output for the test's lifetime: the hammer loops push
// thousands of lines through obs::log to contend the level gate and the
// heartbeat, and every one of them should be gated away, not printed.
class QuietLog {
 public:
  QuietLog() : saved_(obs::log_level()) {
    obs::set_log_level(obs::LogLevel::kError);
  }
  ~QuietLog() { obs::set_log_level(saved_); }

 private:
  obs::LogLevel saved_;
};

Runner descent_runner() {
  return [](Problem& problem, std::uint64_t budget, util::Rng& rng,
            const obs::Recorder& recorder) {
    return random_descent(problem, budget, rng, &recorder);
  };
}

void expect_identical(const MultistartResult& a, const MultistartResult& b) {
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.restart_best_costs, b.restart_best_costs);
  EXPECT_EQ(a.aggregate.initial_cost, b.aggregate.initial_cost);
  EXPECT_EQ(a.aggregate.final_cost, b.aggregate.final_cost);
  EXPECT_EQ(a.aggregate.best_cost, b.aggregate.best_cost);
  EXPECT_EQ(a.aggregate.best_state, b.aggregate.best_state);
  EXPECT_EQ(a.aggregate.proposals, b.aggregate.proposals);
  EXPECT_EQ(a.aggregate.accepts, b.aggregate.accepts);
  EXPECT_EQ(a.aggregate.uphill_accepts, b.aggregate.uphill_accepts);
  EXPECT_EQ(a.aggregate.descent_steps, b.aggregate.descent_steps);
  EXPECT_EQ(a.aggregate.ticks, b.aggregate.ticks);
  EXPECT_EQ(a.aggregate.invariants.executed, b.aggregate.invariants.executed);
}

// The headline test: run the parallel engine (tracing into a shared ring
// buffer) while hammer threads spam obs::log, the same ring buffer, and a
// Heartbeat.  The reduction must match the uncontended sequential run
// bit-for-bit at every thread count.
TEST(SyncStressTest, ParallelReductionBitIdenticalUnderContention) {
  QuietLog quiet;

  const std::vector<double> landscape{6, 3, 5, 2, 6, 4, 7, 1, 5, 0, 6, 3};
  MultistartOptions opts;
  opts.total_budget = 3'000;
  opts.budget_per_start = 250;

  ToyProblem sequential_problem{landscape, 0};
  util::Rng sequential_rng{42};
  const MultistartResult sequential =
      multistart(sequential_problem, descent_runner(), opts, sequential_rng);

  obs::RingBufferSink shared_sink{256};
  obs::Recorder root{&shared_sink};
  obs::Heartbeat heartbeat{"events", 0.0};

  constexpr int kHammers = 4;
  constexpr std::uint64_t kIters = 2'000;
  StartGate gate;
  std::vector<std::thread> hammers;
  hammers.reserve(kHammers);
  for (int t = 0; t < kHammers; ++t) {
    hammers.emplace_back([&shared_sink, &heartbeat, &gate, t] {
      gate.wait();
      obs::Event noise;
      noise.kind = obs::EventKind::kWorkerSteal;
      noise.worker = static_cast<std::uint64_t>(t) + 100;
      for (std::uint64_t i = 0; i < kIters; ++i) {
        obs::log(obs::LogLevel::kDebug, "[stress] hammer %d iter %llu", t,
                 static_cast<unsigned long long>(i));
        noise.tick = i;
        shared_sink.write(noise);
        heartbeat.tick(i + 1, kIters, std::nan(""));
      }
    });
  }

  gate.release();
  for (const unsigned threads : {2u, 8u}) {
    ToyProblem problem{landscape, 0};
    util::Rng rng{42};
    ParallelMultistartOptions options;
    options.multistart = opts;
    options.multistart.recorder = &root;
    options.num_threads = threads;
    const MultistartResult parallel =
        parallel_multistart(problem, descent_runner(), options, rng);
    expect_identical(sequential, parallel);
  }
  for (auto& hammer : hammers) hammer.join();

  // The shared sink absorbed both the engine's drained shards and the
  // hammer noise; its accounting must balance regardless of interleaving.
  EXPECT_EQ(shared_sink.size(), shared_sink.capacity());
  EXPECT_GE(shared_sink.dropped() + shared_sink.size(),
            static_cast<std::uint64_t>(kHammers) * kIters);
}

TEST(SyncStressTest, RingBufferSinkKeepsExactAccountsUnderContention) {
  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 5'000;
  obs::RingBufferSink sink{64};

  StartGate gate;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sink, &gate, t] {
      gate.wait();
      obs::Event event;
      event.worker = t + 1;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        event.tick = i;
        sink.write(event);
      }
    });
  }
  gate.release();
  for (auto& writer : writers) writer.join();

  EXPECT_EQ(sink.size(), sink.capacity());
  EXPECT_EQ(sink.dropped() + sink.size(), kThreads * kPerThread);
  EXPECT_EQ(sink.snapshot().size(), sink.capacity());
}

TEST(SyncStressTest, VectorSinkNeverLosesEventsAcrossConcurrentTakes) {
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 10'000;
  obs::VectorSink sink;

  StartGate gate;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sink, &gate] {
      gate.wait();
      obs::Event event;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        event.tick = i;
        sink.write(event);
      }
    });
  }
  // A harvester repeatedly drains the sink while the writers run; every
  // event must land in exactly one take() batch.
  std::uint64_t harvested = 0;
  std::thread harvester([&sink, &gate, &harvested] {
    gate.wait();
    for (int round = 0; round < 1'000; ++round) {
      harvested += sink.take().size();
    }
  });

  gate.release();
  for (auto& writer : writers) writer.join();
  harvester.join();
  harvested += sink.take().size();
  EXPECT_EQ(harvested, kThreads * kPerThread);
}

TEST(SyncStressTest, MetricsRegistryMergesDeterministicallyUnderContention) {
  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kAdds = 2'000;
  obs::MetricsRegistry shared;

  StartGate gate;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, &gate] {
      gate.wait();
      obs::MetricsRegistry local;
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        shared.counter_add("stress_direct_total", "direct adds", 1);
        local.counter_add("stress_merged_total", "merged adds", 1);
        local.gauge_max("stress_peak", "max merge", static_cast<double>(i));
      }
      shared.merge(local);
    });
  }
  gate.release();
  for (auto& thread : threads) thread.join();

  const obs::Metric* direct = shared.find("stress_direct_total");
  ASSERT_NE(direct, nullptr);
  EXPECT_EQ(direct->value, kThreads * kAdds);
  const obs::Metric* merged = shared.find("stress_merged_total");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->value, kThreads * kAdds);
  const obs::Metric* peak = shared.find("stress_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->gauge, static_cast<double>(kAdds - 1));

  // Counters sum and gauges max commutatively, so the contended registry
  // must export byte-identically to one built sequentially.
  obs::MetricsRegistry expected;
  expected.counter_add("stress_direct_total", "direct adds",
                       kThreads * kAdds);
  expected.counter_add("stress_merged_total", "merged adds",
                       kThreads * kAdds);
  expected.gauge_max("stress_peak", "max merge",
                     static_cast<double>(kAdds - 1));
  EXPECT_EQ(shared.to_json(), expected.to_json());
  EXPECT_EQ(shared.to_prometheus(), expected.to_prometheus());
}

// The heartbeat race fix (interval/unit/enabled all under mu_): ticks from
// worker threads while the driver thread reconfigures must stay coherent.
TEST(SyncStressTest, HeartbeatSurvivesConcurrentTicksAndReconfiguration) {
  QuietLog quiet;
  obs::Heartbeat heartbeat;

  constexpr std::uint64_t kTicks = 5'000;
  StartGate gate;
  std::vector<std::thread> tickers;
  tickers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    tickers.emplace_back([&heartbeat, &gate] {
      gate.wait();
      for (std::uint64_t i = 0; i < kTicks; ++i) {
        heartbeat.tick(i + 1, kTicks, 1.0);
      }
    });
  }
  gate.release();
  for (int i = 0; i < 200; ++i) {
    heartbeat.enable("items", 0.0);
    heartbeat.enable("restarts", 1'000.0);
  }
  for (auto& ticker : tickers) ticker.join();
  EXPECT_TRUE(heartbeat.enabled());
}

}  // namespace
}  // namespace mcopt::core
