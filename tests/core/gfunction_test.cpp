#include "core/gfunction.hpp"

#include <gtest/gtest.h>
#include <string>

#include <cmath>
#include <stdexcept>

namespace mcopt::core {
namespace {

constexpr double kE = 2.718281828459045;

TEST(GClassMetaTest, KMatchesPaper) {
  EXPECT_EQ(g_class_k(GClass::kMetropolis), 1u);
  EXPECT_EQ(g_class_k(GClass::kSixTempAnnealing), 6u);
  EXPECT_EQ(g_class_k(GClass::kGOne), 1u);
  EXPECT_EQ(g_class_k(GClass::kTwoLevel), 2u);
  EXPECT_EQ(g_class_k(GClass::kCubicDiff), 1u);
  EXPECT_EQ(g_class_k(GClass::kSixExponentialDiff), 6u);
  EXPECT_EQ(g_class_k(GClass::kCohoonSahni), 1u);
}

TEST(GClassMetaTest, ScaleFreeClasses) {
  EXPECT_FALSE(g_class_uses_scale(GClass::kGOne));
  EXPECT_FALSE(g_class_uses_scale(GClass::kTwoLevel));
  EXPECT_FALSE(g_class_uses_scale(GClass::kCohoonSahni));
  EXPECT_TRUE(g_class_uses_scale(GClass::kMetropolis));
  EXPECT_TRUE(g_class_uses_scale(GClass::kSixCubicDiff));
}

TEST(GClassMetaTest, Table41HasTwentyClassesInPaperOrder) {
  const auto classes = table41_classes();
  ASSERT_EQ(classes.size(), 20u);
  EXPECT_EQ(classes.front(), GClass::kMetropolis);
  EXPECT_EQ(classes.back(), GClass::kSixExponentialDiff);
}

TEST(GClassMetaTest, Table42HasThirteenClasses) {
  const auto classes = table42_classes();
  ASSERT_EQ(classes.size(), 13u);
  // §4.3.1: classes 5-12 are excluded.
  for (const GClass cls : classes) {
    const int id = static_cast<int>(cls);
    EXPECT_TRUE(id < 5 || id > 12) << g_class_name(cls);
  }
}

TEST(GClassMetaTest, NamesMatchPaperRows) {
  EXPECT_STREQ(g_class_name(GClass::kGOne), "g = 1");
  EXPECT_STREQ(g_class_name(GClass::kSixTempAnnealing),
               "Six Temperature Annealing");
  EXPECT_STREQ(g_class_name(GClass::kCubicDiff), "Cubic Diff");
  EXPECT_STREQ(g_class_name(GClass::kCohoonSahni), "[COHO83a]");
}

TEST(MakeGTest, RejectsBadParameters) {
  EXPECT_THROW(make_g(GClass::kMetropolis, {.scale = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(make_g(GClass::kMetropolis, {.scale = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      make_g(GClass::kSixTempAnnealing, {.scale = 1.0, .ratio = 0.0}),
      std::invalid_argument);
  EXPECT_THROW(make_g(GClass::kCohoonSahni, {}), std::invalid_argument);
}

TEST(MakeGTest, ScaleFreeClassesIgnoreScale) {
  // g = 1 and two-level must be constructible with any (even absurd) scale.
  const auto g = make_g(GClass::kGOne, {.scale = -5.0});
  EXPECT_DOUBLE_EQ(g->probability(0, 10, 20), 1.0);
}

TEST(MetropolisGTest, MatchesClosedForm) {
  const auto g = make_g(GClass::kMetropolis, {.scale = 10.0});
  EXPECT_EQ(g->num_temperatures(), 1u);
  EXPECT_NEAR(g->probability(0, 50.0, 55.0), std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(g->probability(0, 50.0, 50.0), 1.0);  // sideways
}

TEST(SixTempAnnealingTest, ScheduleIsGeometric) {
  const auto g = make_g(GClass::kSixTempAnnealing, {.scale = 10.0});
  ASSERT_EQ(g->num_temperatures(), 6u);
  // Y_t = 10 * 0.9^t; acceptance of the same uphill move must fall with t.
  double prev = 1.1;
  for (unsigned t = 0; t < 6; ++t) {
    const double p = g->probability(t, 0.0, 5.0);
    EXPECT_NEAR(p, std::exp(-5.0 / (10.0 * std::pow(0.9, t))), 1e-12);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(GOneTest, AlwaysOneAndFlagged) {
  const auto g = make_g(GClass::kGOne);
  EXPECT_DOUBLE_EQ(g->probability(0, 1.0, 100.0), 1.0);
  EXPECT_TRUE(g->always_accepts(0));
}

TEST(TwoLevelTest, LevelValuesAndFlags) {
  const auto g = make_g(GClass::kTwoLevel);
  ASSERT_EQ(g->num_temperatures(), 2u);
  EXPECT_DOUBLE_EQ(g->probability(0, 1.0, 9.0), 1.0);
  EXPECT_DOUBLE_EQ(g->probability(1, 1.0, 9.0), 0.5);
  EXPECT_TRUE(g->always_accepts(0));
  EXPECT_FALSE(g->always_accepts(1));
}

TEST(CurrentCostGTest, LinearQuadraticCubicUseHOfI) {
  // Classes 5-7 depend on h(i), not on the difference (§3).
  const auto lin = make_g(GClass::kLinear, {.scale = 0.01});
  const auto quad = make_g(GClass::kQuadratic, {.scale = 1e-4});
  const auto cub = make_g(GClass::kCubic, {.scale = 1e-6});
  EXPECT_DOUBLE_EQ(lin->probability(0, 30.0, 1000.0), 0.3);
  EXPECT_DOUBLE_EQ(lin->probability(0, 30.0, 31.0), 0.3);  // h(j) irrelevant
  EXPECT_NEAR(quad->probability(0, 30.0, 31.0), 0.09, 1e-12);
  EXPECT_NEAR(cub->probability(0, 30.0, 31.0), 0.027, 1e-12);
}

TEST(CurrentCostGTest, ExponentialMatchesClosedForm) {
  const auto g = make_g(GClass::kExponential, {.scale = 100.0});
  const double expect = (std::exp(30.0 / 100.0) - 1.0) / (kE - 1.0);
  EXPECT_NEAR(g->probability(0, 30.0, 31.0), expect, 1e-12);
}

TEST(CurrentCostGTest, ClampsAtOne) {
  const auto lin = make_g(GClass::kLinear, {.scale = 1.0});
  EXPECT_DOUBLE_EQ(lin->probability(0, 50.0, 51.0), 1.0);
  const auto ex = make_g(GClass::kExponential, {.scale = 1.0});
  EXPECT_DOUBLE_EQ(ex->probability(0, 1000.0, 1001.0), 1.0);  // overflow-safe
}

TEST(DiffGTest, LinearQuadraticCubicUseDelta) {
  const auto lin = make_g(GClass::kLinearDiff, {.scale = 0.5});
  const auto quad = make_g(GClass::kQuadraticDiff, {.scale = 0.5});
  const auto cub = make_g(GClass::kCubicDiff, {.scale = 0.5});
  EXPECT_DOUBLE_EQ(lin->probability(0, 10.0, 12.0), 0.25);
  EXPECT_DOUBLE_EQ(quad->probability(0, 10.0, 12.0), 0.125);
  EXPECT_DOUBLE_EQ(cub->probability(0, 10.0, 12.0), 0.0625);
  // Larger uphill steps are less likely.
  EXPECT_GT(cub->probability(0, 10.0, 11.0), cub->probability(0, 10.0, 13.0));
}

TEST(DiffGTest, SidewaysMovesAlwaysAccepted) {
  // delta == 0 is the limit Y/0+ -> 1 for every difference class.
  for (const GClass cls :
       {GClass::kLinearDiff, GClass::kQuadraticDiff, GClass::kCubicDiff,
        GClass::kExponentialDiff}) {
    const auto g = make_g(cls, {.scale = 0.5});
    EXPECT_DOUBLE_EQ(g->probability(0, 10.0, 10.0), 1.0) << g_class_name(cls);
  }
}

TEST(DiffGTest, ExponentialDiffMatchesClosedForm) {
  const auto g = make_g(GClass::kExponentialDiff, {.scale = 0.5});
  const double expect = (std::exp(0.5 / 2.0) - 1.0) / (kE - 1.0);
  EXPECT_NEAR(g->probability(0, 10.0, 12.0), expect, 1e-12);
}

TEST(SixTempDiffTest, ColderLevelsAcceptLess) {
  const auto g = make_g(GClass::kSixCubicDiff, {.scale = 2.0});
  ASSERT_EQ(g->num_temperatures(), 6u);
  for (unsigned t = 1; t < 6; ++t) {
    EXPECT_LT(g->probability(t, 0.0, 2.0), g->probability(t - 1, 0.0, 2.0));
  }
}

TEST(CohoonTest, MatchesPublishedFormula) {
  // g(density) = min(density/(m+5), 0.9) with m = 150.
  const auto g = make_g(GClass::kCohoonSahni, {.num_nets = 150});
  EXPECT_NEAR(g->probability(0, 62.0, 63.0), 62.0 / 155.0, 1e-12);
  EXPECT_DOUBLE_EQ(g->probability(0, 1000.0, 1001.0), 0.9);  // cap
  EXPECT_FALSE(g->always_accepts(0));
}

TEST(ThresholdAcceptingTest, DeterministicStepFunction) {
  // Extension class 22: accept iff delta <= Y_t.
  const auto g = make_g(GClass::kThresholdAccepting, {.scale = 4.0});
  ASSERT_EQ(g->num_temperatures(), 6u);
  EXPECT_DOUBLE_EQ(g->probability(0, 10.0, 13.0), 1.0);  // delta 3 <= 4
  EXPECT_DOUBLE_EQ(g->probability(0, 10.0, 14.0), 1.0);  // delta 4 == Y
  EXPECT_DOUBLE_EQ(g->probability(0, 10.0, 15.0), 0.0);  // delta 5 > 4
  EXPECT_DOUBLE_EQ(g->probability(0, 10.0, 10.0), 1.0);  // sideways
}

TEST(ThresholdAcceptingTest, ColderLevelsAcceptSmallerSteps) {
  const auto g = make_g(GClass::kThresholdAccepting, {.scale = 4.0});
  // Y_t = 4 * 0.9^t; a delta-3 move passes until Y_t drops below 3.
  int accepted_levels = 0;
  for (unsigned t = 0; t < 6; ++t) {
    accepted_levels += g->probability(t, 0.0, 3.0) == 1.0;
  }
  EXPECT_EQ(accepted_levels, 3);  // 4.0, 3.6, 3.24 pass; 2.916... reject
  EXPECT_TRUE(g_class_uses_scale(GClass::kThresholdAccepting));
  EXPECT_STREQ(g_class_name(GClass::kThresholdAccepting),
               "Threshold Accepting");
}

TEST(ThresholdAcceptingTest, NotInThePaperTables) {
  // The extension must not leak into the reproduction row sets.
  for (const GClass cls : table41_classes()) {
    EXPECT_NE(cls, GClass::kThresholdAccepting);
  }
  for (const GClass cls : table42_classes()) {
    EXPECT_NE(cls, GClass::kThresholdAccepting);
  }
}

TEST(AnnealingGTest, ExplicitScheduleWorks) {
  const auto g = make_annealing_g({4.0, 2.0, 1.0});
  ASSERT_EQ(g->num_temperatures(), 3u);
  EXPECT_NEAR(g->probability(2, 0.0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_THROW(make_annealing_g({}), std::invalid_argument);
  EXPECT_THROW(make_annealing_g({1.0, 0.0}), std::invalid_argument);
}

// Property sweep: every class at every temperature must produce a
// probability in [0, 1] across a wide grid of costs and deltas.
class GRangeTest : public ::testing::TestWithParam<GClass> {};

TEST_P(GRangeTest, ProbabilityAlwaysInUnitInterval) {
  const GClass cls = GetParam();
  GParams params;
  params.num_nets = 150;
  for (const double scale : {1e-6, 1e-3, 0.5, 1.0, 10.0, 1e3}) {
    params.scale = scale;
    const auto g = make_g(cls, params);
    for (unsigned t = 0; t < g->num_temperatures(); ++t) {
      for (const double h_i : {0.0, 1.0, 30.0, 90.0, 1e6}) {
        for (const double delta : {0.0, 1.0, 2.0, 10.0, 1e5}) {
          const double p = g->probability(t, h_i, h_i + delta);
          ASSERT_GE(p, 0.0) << g_class_name(cls) << " t=" << t;
          ASSERT_LE(p, 1.0) << g_class_name(cls) << " t=" << t;
          ASSERT_FALSE(std::isnan(p));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, GRangeTest,
    ::testing::ValuesIn([] {
      auto classes = table41_classes();
      classes.push_back(GClass::kCohoonSahni);
      classes.push_back(GClass::kThresholdAccepting);
      return classes;
    }()),
    [](const ::testing::TestParamInfo<GClass>& info) {
      return "class" + std::to_string(static_cast<int>(info.param));
    });

}  // namespace
}  // namespace mcopt::core
