#include "core/multistart.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include <algorithm>
#include <stdexcept>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

Runner descent_runner() {
  return [](Problem& problem, std::uint64_t budget, util::Rng& rng,
            const obs::Recorder& recorder) {
    return random_descent(problem, budget, rng, &recorder);
  };
}

TEST(MultistartTest, RejectsBadInputs) {
  ToyProblem problem{{1, 2, 3}, 0};
  util::Rng rng{1};
  MultistartOptions options;
  EXPECT_THROW((void)multistart(problem, nullptr, options, rng),
               std::invalid_argument);
  options.budget_per_start = 0;
  EXPECT_THROW((void)multistart(problem, descent_runner(), options, rng),
               std::invalid_argument);
}

TEST(MultistartTest, RejectsPerStartBudgetAboveTotal) {
  ToyProblem problem{{1, 2, 3}, 0};
  util::Rng rng{1};
  MultistartOptions options;
  options.total_budget = 100;
  options.budget_per_start = 101;
  EXPECT_THROW((void)multistart(problem, descent_runner(), options, rng),
               std::invalid_argument);
  // The boundary case is legal: exactly one full-budget start.
  options.budget_per_start = 100;
  const MultistartResult result =
      multistart(problem, descent_runner(), options, rng);
  EXPECT_EQ(result.restarts, 1u);
}

TEST(MultistartTest, RunsExpectedNumberOfRestarts) {
  ToyProblem problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
  util::Rng rng{2};
  MultistartOptions options;
  options.total_budget = 1000;
  options.budget_per_start = 100;
  const MultistartResult result =
      multistart(problem, descent_runner(), options, rng);
  EXPECT_EQ(result.restarts, 10u);
  EXPECT_EQ(result.aggregate.ticks, 1000u);
  EXPECT_EQ(result.aggregate.proposals, 1000u);
}

TEST(MultistartTest, ReportsPerRestartBestCostHistory) {
  ToyProblem problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
  util::Rng rng{2};
  MultistartOptions options;
  options.total_budget = 1000;
  options.budget_per_start = 100;
  const MultistartResult result =
      multistart(problem, descent_runner(), options, rng);
  ASSERT_EQ(result.restart_best_costs.size(), result.restarts);
  // The aggregate best is exactly the minimum of the per-restart history.
  const double history_min = *std::min_element(
      result.restart_best_costs.begin(), result.restart_best_costs.end());
  EXPECT_DOUBLE_EQ(history_min, result.aggregate.best_cost);
  // Every entry is a cost the landscape can actually produce.
  for (const double best : result.restart_best_costs) {
    EXPECT_GE(best, 1.0);
    EXPECT_LE(best, 5.0);
  }
}

TEST(MultistartTest, ChargesActualTicksNotSliceSize) {
  // Regression: spent used to be charged max(run.ticks, slice), so a runner
  // that terminated a slice early still "paid" for the whole slice and the
  // saved budget funded no extra restarts.  Budget left unspent by one
  // start must now roll over into additional starts.
  Runner half_runner = [](Problem& problem, std::uint64_t budget,
                          util::Rng& rng, const obs::Recorder&) {
    return random_descent(problem, std::min<std::uint64_t>(budget, 50), rng);
  };
  ToyProblem problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
  util::Rng rng{2};
  MultistartOptions options;
  options.total_budget = 1000;
  options.budget_per_start = 100;
  const MultistartResult result =
      multistart(problem, half_runner, options, rng);
  // Each start consumes 50 ticks, so 1000 total ticks fund 20 starts.
  EXPECT_EQ(result.restarts, 20u);
  EXPECT_EQ(result.aggregate.ticks, 1000u);
}

TEST(MultistartTest, ZeroTickRunnerStillTerminates) {
  // A pathological runner that reports zero ticks is charged a minimum of
  // one tick per restart so the loop cannot spin forever.
  Runner zero_runner = [](Problem&, std::uint64_t, util::Rng&,
                          const obs::Recorder&) { return RunResult{}; };
  ToyProblem problem{{1, 2, 3}, 0};
  util::Rng rng{3};
  MultistartOptions options;
  options.total_budget = 64;
  options.budget_per_start = 8;
  const MultistartResult result =
      multistart(problem, zero_runner, options, rng);
  EXPECT_EQ(result.restarts, 64u);
}

TEST(MultistartTest, LastRestartGetsTheRemainder) {
  ToyProblem problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
  util::Rng rng{3};
  MultistartOptions options;
  options.total_budget = 250;
  options.budget_per_start = 100;
  const MultistartResult result =
      multistart(problem, descent_runner(), options, rng);
  EXPECT_EQ(result.restarts, 3u);  // 100 + 100 + 50
  EXPECT_EQ(result.aggregate.ticks, 250u);
}

TEST(MultistartTest, EscapesBasinsPureDescentCannot) {
  // Descent from a fixed trapped start never finds the global 0; restarts
  // from random positions will (some random start lands in the 0 basin).
  std::vector<double> landscape{9, 2, 9, 9, 0, 9, 9, 9};
  ToyProblem trapped{landscape, 1};
  util::Rng r1{4};
  const RunResult single = random_descent(trapped, 4000, r1);
  EXPECT_DOUBLE_EQ(single.best_cost, 2.0);

  ToyProblem restarted{landscape, 1};
  util::Rng r2{4};
  MultistartOptions options;
  options.total_budget = 4000;
  options.budget_per_start = 100;
  const MultistartResult result =
      multistart(restarted, descent_runner(), options, r2);
  EXPECT_DOUBLE_EQ(result.aggregate.best_cost, 0.0);
  EXPECT_GT(result.restarts, 10u);
}

TEST(MultistartTest, KeepFirstStartWhenRequested) {
  // With randomize_first = false the first slice continues from the
  // current (trapped) solution; with a single slice the result must match
  // plain descent.
  std::vector<double> landscape{9, 2, 9, 9, 0, 9, 9, 9};
  ToyProblem problem{landscape, 1};
  util::Rng rng{5};
  MultistartOptions options;
  options.total_budget = 100;
  options.budget_per_start = 100;
  options.randomize_first = false;
  const MultistartResult result =
      multistart(problem, descent_runner(), options, rng);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_DOUBLE_EQ(result.aggregate.best_cost, 2.0);
}

TEST(MultistartTest, BestStateRestores) {
  std::vector<double> landscape{3, 1, 4, 1, 5, 9, 2, 6};
  ToyProblem problem{landscape, 0};
  util::Rng rng{6};
  MultistartOptions options;
  options.total_budget = 2000;
  options.budget_per_start = 200;
  const MultistartResult result =
      multistart(problem, descent_runner(), options, rng);
  problem.restore(result.aggregate.best_state);
  EXPECT_DOUBLE_EQ(problem.cost(), result.aggregate.best_cost);
  EXPECT_DOUBLE_EQ(result.aggregate.best_cost, 1.0);
}

TEST(MultistartTest, WorksWithFigure1Runner) {
  std::vector<double> landscape{6, 3, 5, 2, 6, 4, 7, 1, 5, 0, 6, 3};
  ToyProblem problem{landscape, 0};
  util::Rng rng{7};
  const auto g = make_g(GClass::kGOne);
  Runner runner = [&g](Problem& p, std::uint64_t budget, util::Rng& r,
                       const obs::Recorder& recorder) {
    Figure1Options options;
    options.budget = budget;
    options.recorder = &recorder;
    return run_figure1(p, *g, options, r);
  };
  MultistartOptions options;
  options.total_budget = 3000;
  options.budget_per_start = 500;
  const MultistartResult result = multistart(problem, runner, options, rng);
  EXPECT_EQ(result.restarts, 6u);
  EXPECT_DOUBLE_EQ(result.aggregate.best_cost, 0.0);
}

}  // namespace
}  // namespace mcopt::core
