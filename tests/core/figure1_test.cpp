#include "core/figure1.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <stdexcept>
#include <string>

#include <vector>

#include "support/spy_g.hpp"
#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::SpyG;
using mcopt::testing::ToyProblem;

std::vector<double> flat_landscape(std::size_t n, double value = 5.0) {
  return std::vector<double>(n, value);
}

TEST(Figure1Test, ChargesExactlyTheBudget) {
  ToyProblem problem{flat_landscape(10), 0};
  SpyG g{1, 0.0};
  util::Rng rng{1};
  const RunResult result = run_figure1(problem, g, {.budget = 123}, rng);
  EXPECT_EQ(result.proposals, 123u);
  EXPECT_EQ(result.ticks, 123u);
}

TEST(Figure1Test, RejectsZeroGateThreshold) {
  ToyProblem problem{flat_landscape(10), 0};
  SpyG g{1, 0.0};
  util::Rng rng{1};
  Figure1Options options;
  options.gate_threshold = 0;
  EXPECT_THROW((void)run_figure1(problem, g, options, rng),
               std::invalid_argument);
}

TEST(Figure1Test, AcceptsEveryStrictImprovement) {
  // Tent landscape on the ring with the peak at position 5 and the global
  // minimum at position 0; with p = 0 every uphill move is rejected, so the
  // walk can only slide downhill, needing exactly five accepted moves.
  std::vector<double> landscape{0, 1, 2, 3, 4, 5, 4, 3, 2, 1};
  ToyProblem problem{landscape, 5};
  SpyG g{1, 0.0};
  util::Rng rng{7};
  const RunResult result = run_figure1(problem, g, {.budget = 500}, rng);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
  EXPECT_DOUBLE_EQ(result.final_cost, 0.0);
  EXPECT_EQ(result.uphill_accepts, 0u);
  EXPECT_EQ(result.accepts, 5u);
}

TEST(Figure1Test, InitialCostAndBestStateAreRecorded) {
  std::vector<double> landscape{3, 2, 1, 2, 3, 4, 5, 4};
  ToyProblem problem{landscape, 0};
  SpyG g{1, 0.0};
  util::Rng rng{3};
  const RunResult result = run_figure1(problem, g, {.budget = 200}, rng);
  EXPECT_DOUBLE_EQ(result.initial_cost, 3.0);
  EXPECT_DOUBLE_EQ(result.best_cost, 1.0);
  ASSERT_EQ(result.best_state.size(), 1u);
  EXPECT_EQ(result.best_state[0], 2u);
  EXPECT_DOUBLE_EQ(result.reduction(), 2.0);
}

TEST(Figure1Test, ZeroProbabilityNeverAcceptsUphill) {
  ToyProblem problem{flat_landscape(8), 0};  // all moves are sideways
  SpyG g{1, 0.0};
  util::Rng rng{11};
  const RunResult result = run_figure1(problem, g, {.budget = 300}, rng);
  EXPECT_EQ(result.accepts, 0u);
  EXPECT_EQ(result.proposals, 300u);
}

TEST(Figure1Test, UnitProbabilityAcceptsEverySideways) {
  ToyProblem problem{flat_landscape(8), 0};
  SpyG g{1, 1.0};
  util::Rng rng{13};
  const RunResult result = run_figure1(problem, g, {.budget = 300}, rng);
  EXPECT_EQ(result.accepts, 300u);
  EXPECT_EQ(result.uphill_accepts, 0u);  // sideways, not uphill
}

TEST(Figure1Test, BudgetSlicesDriveTemperatureProgression) {
  ToyProblem problem{flat_landscape(10), 0};
  SpyG g{6, 0.0};
  util::Rng rng{17};
  const RunResult result = run_figure1(problem, g, {.budget = 60}, rng);
  EXPECT_EQ(result.temperatures_visited, 6u);
  // Probability is consulted for every (sideways) proposal; level t owns
  // proposals 10t+1 .. 10t+10.
  ASSERT_EQ(g.calls().size(), 60u);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(g.calls()[i], i / 10) << "proposal " << i;
  }
}

TEST(Figure1Test, SingleTemperatureNeverAdvances) {
  ToyProblem problem{flat_landscape(10), 0};
  SpyG g{1, 0.5};
  util::Rng rng{19};
  const RunResult result = run_figure1(problem, g, {.budget = 1000}, rng);
  EXPECT_EQ(result.temperatures_visited, 1u);
}

TEST(Figure1Test, EquilibriumCounterAdvancesAndTerminates) {
  ToyProblem problem{flat_landscape(10), 0};
  SpyG g{2, 0.0};  // nothing ever accepted -> pure rejection counting
  util::Rng rng{23};
  Figure1Options options;
  options.budget = 1'000'000;  // budget must NOT be the stopping reason
  options.equilibrium_rejects = 4;
  const RunResult result = run_figure1(problem, g, options, rng);
  // Per level: 4 counted rejections + 1 proposal that trips the advance.
  // Second trip ends the schedule.
  EXPECT_EQ(result.temperatures_visited, 2u);
  EXPECT_EQ(result.proposals, 10u);
  EXPECT_LT(result.ticks, options.budget);
}

TEST(Figure1Test, EquilibriumAcceptsAdvancesTemperature) {
  // [KIRK83]'s criterion: advance after enough acceptances.  On a flat
  // landscape with p = 1 every proposal is accepted, so with a threshold of
  // 50 and k = 3 the run should stop after exactly 150 proposals.
  ToyProblem problem{flat_landscape(10), 0};
  SpyG g{3, 1.0};
  util::Rng rng{61};
  Figure1Options options;
  options.budget = 1'000'000;
  options.equilibrium_accepts = 50;
  const RunResult result = run_figure1(problem, g, options, rng);
  EXPECT_EQ(result.proposals, 150u);
  EXPECT_EQ(result.accepts, 150u);
  EXPECT_EQ(result.temperatures_visited, 3u);
}

TEST(Figure1Test, EquilibriumAcceptsCountsDownhillToo) {
  // Strict improvements also count toward the acceptance equilibrium.
  std::vector<double> landscape{0, 1, 2, 3, 4, 5, 4, 3, 2, 1};
  ToyProblem problem{landscape, 5};
  SpyG g{2, 0.0};  // only downhill moves are ever taken
  util::Rng rng{67};
  Figure1Options options;
  options.budget = 10'000;
  options.equilibrium_accepts = 2;
  const RunResult result = run_figure1(problem, g, options, rng);
  // Five downhill accepts trip the threshold twice: temp 0 -> 1 -> end.
  EXPECT_EQ(result.temperatures_visited, 2u);
}

TEST(Figure1Test, GateDelaysUphillAcceptanceExactly) {
  // g = 1 on a flat landscape: every proposal is sideways (delta == 0), so
  // the gate counter increments every proposal and fires at 18, 35, 52, ...
  // (threshold, then threshold-1 apart because the counter resets to 1).
  ToyProblem problem{flat_landscape(10), 0};
  const auto g = make_g(GClass::kGOne);
  util::Rng rng{29};
  const RunResult result = run_figure1(problem, *g, {.budget = 52}, rng);
  EXPECT_EQ(result.accepts, 3u);  // proposals 18, 35, 52
}

TEST(Figure1Test, GateThresholdOfOneAcceptsImmediately) {
  ToyProblem problem{flat_landscape(10), 0};
  const auto g = make_g(GClass::kGOne);
  util::Rng rng{31};
  Figure1Options options;
  options.budget = 100;
  options.gate_threshold = 1;
  const RunResult result = run_figure1(problem, *g, options, rng);
  EXPECT_EQ(result.accepts, 100u);
}

TEST(Figure1Test, GateResetByImprovement) {
  // Strict improvements reset the gate counter, so with an unreachable
  // threshold the run behaves as pure descent: five downhill accepts from
  // the tent peak, then no uphill ever taken.
  std::vector<double> tent{0, 1, 2, 3, 4, 5, 4, 3, 2, 1};
  ToyProblem problem{tent, 5};
  const auto g = make_g(GClass::kGOne);
  util::Rng rng{37};
  Figure1Options options;
  options.budget = 200;
  options.gate_threshold = 1000;  // unreachable within the budget
  const RunResult result = run_figure1(problem, *g, options, rng);
  EXPECT_EQ(result.uphill_accepts, 0u);
  EXPECT_EQ(result.accepts, 5u);  // downhill moves still taken
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
}

TEST(Figure1Test, TwoLevelGateAppliesOnlyToLevelOne) {
  // Level 0 of two-level g is identically 1 -> gated; level 1 is 0.5 ->
  // plain probabilistic acceptance.  On a flat landscape the first half of
  // the budget accepts ~1/18 of proposals, the second ~1/2.
  ToyProblem problem{flat_landscape(10), 0};
  const auto g = make_g(GClass::kTwoLevel);
  util::Rng rng{41};
  const RunResult result = run_figure1(problem, *g, {.budget = 2000}, rng);
  EXPECT_EQ(result.temperatures_visited, 2u);
  // Level 0 contributes ~1000/17 ~ 59; level 1 ~500.  Generous bounds.
  EXPECT_GT(result.accepts, 300u);
  EXPECT_LT(result.accepts, 800u);
}

TEST(Figure1Test, FinalCostMatchesProblemState) {
  std::vector<double> landscape{5, 4, 3, 2, 1, 2, 3, 4};
  ToyProblem problem{landscape, 0};
  SpyG g{1, 0.25};
  util::Rng rng{43};
  const RunResult result = run_figure1(problem, g, {.budget = 77}, rng);
  EXPECT_DOUBLE_EQ(result.final_cost, problem.cost());
  EXPECT_LE(result.best_cost, result.final_cost);
  EXPECT_LE(result.best_cost, result.initial_cost);
}

TEST(Figure1Test, DeterministicGivenSeed) {
  std::vector<double> landscape{9, 7, 5, 3, 1, 3, 5, 7};
  for (int trial = 0; trial < 3; ++trial) {
    ToyProblem p1{landscape, 0};
    ToyProblem p2{landscape, 0};
    SpyG g1{3, 0.3};
    SpyG g2{3, 0.3};
    util::Rng r1{99};
    util::Rng r2{99};
    const RunResult a = run_figure1(p1, g1, {.budget = 500}, r1);
    const RunResult b = run_figure1(p2, g2, {.budget = 500}, r2);
    EXPECT_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.accepts, b.accepts);
    EXPECT_EQ(a.best_state, b.best_state);
  }
}

TEST(Figure1Test, ZeroBudgetDoesNothing) {
  ToyProblem problem{flat_landscape(5), 2};
  SpyG g{1, 1.0};
  util::Rng rng{47};
  const RunResult result = run_figure1(problem, g, {.budget = 0}, rng);
  EXPECT_EQ(result.proposals, 0u);
  EXPECT_DOUBLE_EQ(result.best_cost, result.initial_cost);
  EXPECT_EQ(problem.position(), 2u);
}

// Property sweep: with every real g class, a Figure 1 run must never report
// a best cost above its initial cost, and must consume the whole budget.
class Figure1AllClassesTest : public ::testing::TestWithParam<GClass> {};

TEST_P(Figure1AllClassesTest, BestNeverWorseThanStart) {
  GParams params;
  params.scale = 1.0;
  params.num_nets = 150;
  const auto g = make_g(GetParam(), params);
  std::vector<double> landscape;
  for (int i = 0; i < 16; ++i) {
    landscape.push_back(static_cast<double>((i * 7) % 11));
  }
  ToyProblem problem{landscape, 3};
  util::Rng rng{static_cast<std::uint64_t>(1000 + static_cast<int>(GetParam()))};
  const RunResult result = run_figure1(problem, *g, {.budget = 400}, rng);
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_EQ(result.proposals, 400u);
  EXPECT_LE(result.best_cost, result.final_cost);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, Figure1AllClassesTest,
    ::testing::ValuesIn([] {
      auto classes = table41_classes();
      classes.push_back(GClass::kCohoonSahni);
      return classes;
    }()),
    [](const ::testing::TestParamInfo<GClass>& info) {
      return "class" + std::to_string(static_cast<int>(info.param));
    });

}  // namespace
}  // namespace mcopt::core
