#include "core/figure2.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>

#include <vector>

#include "support/spy_g.hpp"
#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::SpyG;
using mcopt::testing::ToyProblem;

TEST(Figure2Test, DescendsToLocalOptimumFirst) {
  // Strictly descending toward position 0, then rising: position 0 is the
  // only local (and global) minimum reachable by descent from position 5.
  std::vector<double> landscape{0, 1, 2, 3, 4, 5, 6, 7};
  ToyProblem problem{landscape, 5};
  SpyG g{1, 0.0};  // never kick
  util::Rng rng{1};
  const RunResult result = run_figure2(problem, g, {.budget = 1000}, rng);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
  EXPECT_GT(result.descent_steps, 0u);
}

TEST(Figure2Test, BudgetLimitsDescent) {
  std::vector<double> landscape{0, 1, 2, 3, 4, 5, 6, 7};
  ToyProblem problem{landscape, 5};
  SpyG g{1, 0.0};
  util::Rng rng{2};
  // Two ticks per descent step (the toy evaluates both neighbours); four
  // ticks only walk 5 -> 4 -> 3.
  const RunResult result = run_figure2(problem, g, {.budget = 4}, rng);
  EXPECT_DOUBLE_EQ(result.best_cost, 3.0);
  EXPECT_EQ(result.ticks, 4u);
}

TEST(Figure2Test, KicksEscapeLocalMinimum) {
  // Position 1 is a local minimum (cost 1); the global minimum (cost 0) is
  // at position 3, one barrier step away.  g = 1 kicks always; a kick onto
  // the barrier at position 2 descends into the global optimum.
  std::vector<double> landscape{5, 1, 6, 0, 7, 6, 5, 4};
  ToyProblem problem{landscape, 1};
  const auto g = make_g(GClass::kGOne);
  util::Rng rng{3};
  const RunResult result = run_figure2(problem, *g, {.budget = 5000}, rng);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
  EXPECT_GT(result.uphill_accepts, 0u);
}

TEST(Figure2Test, GOneNeedsNoGateHere) {
  // §3: "When the strategy of Figure 2 is used, no special considerations
  // are needed to implement this g" — every kick is accepted directly.
  std::vector<double> landscape{0, 1, 2, 3, 2, 1, 0, 1};
  ToyProblem problem{landscape, 3};
  const auto g = make_g(GClass::kGOne);
  util::Rng rng{5};
  const RunResult result = run_figure2(problem, *g, {.budget = 400}, rng);
  EXPECT_EQ(result.accepts, result.proposals);
}

TEST(Figure2Test, ZeroKickProbabilityStopsAfterSchedule) {
  ToyProblem problem{{2, 1, 2, 3, 4, 5}, 3};
  SpyG g{2, 0.0};
  util::Rng rng{7};
  const RunResult result = run_figure2(problem, g, {.budget = 600}, rng);
  // Kicks are never taken; the run burns through both budget slices.
  EXPECT_EQ(result.temperatures_visited, 2u);
  EXPECT_EQ(result.uphill_accepts, 0u);
  EXPECT_DOUBLE_EQ(result.best_cost, 1.0);
}

TEST(Figure2Test, EquilibriumKicksTerminateEarly) {
  ToyProblem problem{{2, 1, 2, 3, 4, 5}, 0};
  SpyG g{2, 0.0};
  util::Rng rng{11};
  Figure2Options options;
  options.budget = 1'000'000;
  options.equilibrium_kicks = 5;
  const RunResult result = run_figure2(problem, g, options, rng);
  EXPECT_LT(result.ticks, options.budget);
  EXPECT_EQ(result.temperatures_visited, 2u);
  // Five counted kicks per level, none accepted.
  EXPECT_EQ(result.proposals, 10u);
}

TEST(Figure2Test, BestTracksKickDestinationsToo) {
  // A kick may itself land on the global minimum; best must see it even if
  // a later descent wanders elsewhere.
  std::vector<double> landscape{1, 2, 0, 2, 1, 2, 3, 2};
  ToyProblem problem{landscape, 0};
  const auto g = make_g(GClass::kGOne);
  util::Rng rng{13};
  const RunResult result = run_figure2(problem, *g, {.budget = 2000}, rng);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
}

TEST(Figure2Test, RecordsInitialAndFinal) {
  std::vector<double> landscape{4, 3, 2, 1, 2, 3};
  ToyProblem problem{landscape, 0};
  SpyG g{1, 0.5};
  util::Rng rng{17};
  const RunResult result = run_figure2(problem, g, {.budget = 300}, rng);
  EXPECT_DOUBLE_EQ(result.initial_cost, 4.0);
  EXPECT_DOUBLE_EQ(result.final_cost, problem.cost());
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_EQ(result.ticks, 300u);
}

TEST(Figure2Test, DeterministicGivenSeed) {
  std::vector<double> landscape{3, 1, 4, 1, 5, 9, 2, 6};
  ToyProblem p1{landscape, 0};
  ToyProblem p2{landscape, 0};
  SpyG g1{3, 0.4};
  SpyG g2{3, 0.4};
  util::Rng r1{55};
  util::Rng r2{55};
  const RunResult a = run_figure2(p1, g1, {.budget = 700}, r1);
  const RunResult b = run_figure2(p2, g2, {.budget = 700}, r2);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.proposals, b.proposals);
  EXPECT_EQ(a.best_state, b.best_state);
}

TEST(Figure2Test, ZeroBudgetDoesNothing) {
  ToyProblem problem{{2, 1, 2}, 0};
  SpyG g{1, 1.0};
  util::Rng rng{19};
  const RunResult result = run_figure2(problem, g, {.budget = 0}, rng);
  EXPECT_EQ(result.proposals, 0u);
  EXPECT_EQ(result.descent_steps, 0u);
  EXPECT_DOUBLE_EQ(result.best_cost, 2.0);
}

TEST(Figure2Test, TemperatureSlicesAdvanceOverKicks) {
  ToyProblem problem{{0, 1, 2, 3, 4, 5, 6, 7}, 0};  // start at global min
  SpyG g{4, 0.0};  // all budget goes to rejected kicks after trivial descent
  util::Rng rng{23};
  const RunResult result = run_figure2(problem, g, {.budget = 400}, rng);
  EXPECT_EQ(result.temperatures_visited, 4u);
  // Every call after slice boundary i*100 must be at level >= i.
  const auto& calls = g.calls();
  ASSERT_FALSE(calls.empty());
  for (std::size_t i = 1; i < calls.size(); ++i) {
    EXPECT_GE(calls[i], calls[i - 1]) << "temperature went backwards";
  }
}

// Property sweep: Figure 2 must respect budget accounting and never report
// a best above the start for every real g class (incl. extensions).
class Figure2AllClassesTest : public ::testing::TestWithParam<GClass> {};

TEST_P(Figure2AllClassesTest, BudgetAndBestInvariants) {
  GParams params;
  params.scale = 0.5;
  params.num_nets = 150;
  const auto g = make_g(GetParam(), params);
  std::vector<double> landscape;
  for (int i = 0; i < 16; ++i) {
    landscape.push_back(static_cast<double>((i * 5) % 9));
  }
  ToyProblem problem{landscape, 2};
  util::Rng rng{static_cast<std::uint64_t>(2000 + static_cast<int>(GetParam()))};
  const RunResult result = run_figure2(problem, *g, {.budget = 400}, rng);
  EXPECT_LE(result.best_cost, result.initial_cost);
  // The budget may overshoot by at most one descent evaluation (the toy
  // charges two ticks per descent step before re-checking).
  EXPECT_GE(result.ticks, 400u);
  EXPECT_LE(result.ticks, 402u);
  EXPECT_EQ(result.descent_steps + result.proposals, result.ticks);
  // The reported best must reproduce when restored.
  problem.restore(result.best_state);
  EXPECT_DOUBLE_EQ(problem.cost(), result.best_cost);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, Figure2AllClassesTest,
    ::testing::ValuesIn([] {
      auto classes = table41_classes();
      classes.push_back(GClass::kCohoonSahni);
      classes.push_back(GClass::kThresholdAccepting);
      return classes;
    }()),
    [](const ::testing::TestParamInfo<GClass>& info) {
      return "class" + std::to_string(static_cast<int>(info.param));
    });

}  // namespace
}  // namespace mcopt::core
