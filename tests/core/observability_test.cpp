// Observability must be a pure observer: attaching a Recorder to any runner
// cannot change a single bit of its results, and what it records must agree
// with the counters the runners already report.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>

#include <vector>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/tempering.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "support/spy_g.hpp"
#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::SpyG;
using mcopt::testing::ToyProblem;

// A rugged landscape: local minima at 2 and 9, global minimum at 6.
const std::vector<double> kLandscape{7, 5, 2, 6, 4, 3, 0, 4, 2, 1, 6, 8};

void expect_same_results(const RunResult& a, const RunResult& b) {
  EXPECT_DOUBLE_EQ(a.initial_cost, b.initial_cost);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_DOUBLE_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.proposals, b.proposals);
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.uphill_accepts, b.uphill_accepts);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.temperatures_visited, b.temperatures_visited);
  EXPECT_EQ(a.best_state, b.best_state);
}

// Trace/metric sanity shared by the staged runners at sample = 1: every
// proposal appears with its outcome, the stream opens with the run's first
// stage, and the best-so-far track never worsens.
void expect_coherent_trace(const std::vector<obs::Event>& events,
                           const RunResult& traced) {
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, obs::EventKind::kStageBegin);
  EXPECT_EQ(events.front().reason, obs::StageReason::kStart);

  std::uint64_t proposals = 0;
  std::uint64_t outcomes = 0;
  double last_best = events.front().best;
  for (const obs::Event& event : events) {
    switch (event.kind) {
      case obs::EventKind::kProposal:
        ++proposals;
        break;
      case obs::EventKind::kAccept:
      case obs::EventKind::kReject:
        ++outcomes;
        break;
      case obs::EventKind::kNewBest:
        EXPECT_LE(event.best, last_best) << "best-so-far must not worsen";
        last_best = event.best;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(proposals, traced.proposals);
  EXPECT_EQ(outcomes, traced.proposals)
      << "every proposal must resolve to accept or reject";
  EXPECT_DOUBLE_EQ(last_best, traced.best_cost);
}

void expect_metrics_match(const obs::RunMetrics& metrics,
                          const RunResult& traced) {
  ASSERT_TRUE(metrics.collected);
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t uphill = 0;
  for (const obs::StageMetrics& s : metrics.stages) {
    proposals += s.proposals;
    accepts += s.accepts;
    uphill += s.uphill_accepts;
  }
  EXPECT_EQ(proposals, traced.proposals);
  EXPECT_EQ(accepts, traced.accepts);
  EXPECT_EQ(uphill, traced.uphill_accepts);
}

TEST(ObservabilityTest, Figure1TracedRunIsBitIdentical) {
  SpyG g{6, 0.35};
  Figure1Options plain;
  plain.budget = 4'000;
  plain.equilibrium_rejects = 40;

  ToyProblem p1{kLandscape, 0};
  util::Rng r1{99};
  const RunResult untraced = run_figure1(p1, g, plain, r1);

  obs::VectorSink sink;
  const obs::Recorder recorder{&sink};
  Figure1Options traced_options = plain;
  traced_options.recorder = &recorder;
  ToyProblem p2{kLandscape, 0};
  util::Rng r2{99};
  const RunResult traced = run_figure1(p2, g, traced_options, r2);

  expect_same_results(untraced, traced);
  expect_coherent_trace(sink.events(), traced);
  expect_metrics_match(traced.metrics, traced);
  EXPECT_FALSE(untraced.metrics.collected);
}

TEST(ObservabilityTest, Figure1StageBeginsCoverEverySchedule) {
  SpyG g{6, 0.5};
  obs::VectorSink sink;
  const obs::Recorder recorder{&sink};
  Figure1Options options;
  options.budget = 6'000;
  options.recorder = &recorder;
  ToyProblem problem{kLandscape, 0};
  util::Rng rng{5};
  const RunResult result = run_figure1(problem, g, options, rng);

  std::uint64_t stage_begins = 0;
  for (const obs::Event& event : sink.events()) {
    if (event.kind == obs::EventKind::kStageBegin) ++stage_begins;
  }
  EXPECT_EQ(stage_begins, result.temperatures_visited);
}

TEST(ObservabilityTest, Figure2TracedRunIsBitIdentical) {
  SpyG g{4, 0.6};
  Figure2Options plain;
  plain.budget = 4'000;

  ToyProblem p1{kLandscape, 0};
  util::Rng r1{31};
  const RunResult untraced = run_figure2(p1, g, plain, r1);

  obs::VectorSink sink;
  const obs::Recorder recorder{&sink};
  Figure2Options traced_options = plain;
  traced_options.recorder = &recorder;
  ToyProblem p2{kLandscape, 0};
  util::Rng r2{31};
  const RunResult traced = run_figure2(p2, g, traced_options, r2);

  expect_same_results(untraced, traced);
  expect_coherent_trace(sink.events(), traced);
  expect_metrics_match(traced.metrics, traced);
  // Figure 2 charges descent ticks on top of proposal ticks; the metrics
  // must account for the whole budget.
  std::uint64_t ticks = 0;
  for (const obs::StageMetrics& s : traced.metrics.stages) ticks += s.ticks;
  EXPECT_EQ(ticks, traced.ticks);
}

TEST(ObservabilityTest, RandomDescentTracedRunIsBitIdentical) {
  ToyProblem p1{kLandscape, 0};
  util::Rng r1{11};
  const RunResult untraced = random_descent(p1, 500, r1);

  obs::VectorSink sink;
  const obs::Recorder recorder{&sink};
  ToyProblem p2{kLandscape, 0};
  util::Rng r2{11};
  const RunResult traced = random_descent(p2, 500, r2, &recorder);

  expect_same_results(untraced, traced);
  expect_coherent_trace(sink.events(), traced);
  expect_metrics_match(traced.metrics, traced);
}

TEST(ObservabilityTest, TemperingTracedRunIsBitIdentical) {
  auto factory = [](std::size_t replica) {
    return std::unique_ptr<Problem>(
        new ToyProblem{kLandscape, replica % kLandscape.size()});
  };
  TemperingOptions plain;
  plain.temperatures = {4.0, 2.0, 1.0};
  plain.budget = 3'000;
  plain.sweep = 20;

  util::Rng r1{77};
  const TemperingResult untraced = parallel_tempering(factory, plain, r1);

  obs::VectorSink sink;
  const obs::Recorder recorder{&sink};
  TemperingOptions traced_options = plain;
  traced_options.recorder = &recorder;
  util::Rng r2{77};
  const TemperingResult traced =
      parallel_tempering(factory, traced_options, r2);

  expect_same_results(untraced.aggregate, traced.aggregate);
  EXPECT_EQ(untraced.swap_attempts, traced.swap_attempts);
  EXPECT_EQ(untraced.swap_accepts, traced.swap_accepts);
  expect_metrics_match(traced.aggregate.metrics, traced.aggregate);

  // Events carry the replica index in `stage`; every replica must appear.
  ASSERT_FALSE(sink.events().empty());
  std::vector<bool> seen(plain.temperatures.size(), false);
  for (const obs::Event& event : sink.events()) {
    ASSERT_LT(event.stage, seen.size());
    seen[event.stage] = true;
  }
  for (std::size_t r = 0; r < seen.size(); ++r) {
    EXPECT_TRUE(seen[r]) << "replica " << r << " emitted no events";
  }
}

TEST(ObservabilityTest, SampledTraceStillPreservesResults) {
  SpyG g{6, 0.35};
  Figure1Options plain;
  plain.budget = 4'000;

  ToyProblem p1{kLandscape, 0};
  util::Rng r1{99};
  const RunResult untraced = run_figure1(p1, g, plain, r1);

  obs::VectorSink sink;
  const obs::Recorder recorder{&sink, true, /*trace_sample=*/17};
  Figure1Options traced_options = plain;
  traced_options.recorder = &recorder;
  ToyProblem p2{kLandscape, 0};
  util::Rng r2{99};
  const RunResult traced = run_figure1(p2, g, traced_options, r2);

  expect_same_results(untraced, traced);
  // Sampling thins the trio stream but metrics still count everything.
  expect_metrics_match(traced.metrics, traced);
  std::uint64_t proposals = 0;
  for (const obs::Event& event : sink.events()) {
    if (event.kind == obs::EventKind::kProposal) ++proposals;
  }
  EXPECT_LT(proposals, traced.proposals);
  EXPECT_GT(proposals, 0u);
}

TEST(ObservabilityTest, ResultToStringMentionsMetricsWhenCollected) {
  SpyG g{2, 0.5};
  obs::VectorSink sink;
  const obs::Recorder recorder{&sink};
  Figure1Options options;
  options.budget = 100;
  options.recorder = &recorder;
  ToyProblem problem{kLandscape, 0};
  util::Rng rng{1};
  const RunResult result = run_figure1(problem, g, options, rng);
  EXPECT_NE(to_string(result).find("metrics:"), std::string::npos);
}

}  // namespace
}  // namespace mcopt::core
