#include "core/result.hpp"

#include <gtest/gtest.h>
#include <string>

namespace mcopt::core {
namespace {

TEST(RunResultTest, ReductionIsInitialMinusBest) {
  RunResult result;
  result.initial_cost = 83.0;
  result.best_cost = 61.0;
  EXPECT_DOUBLE_EQ(result.reduction(), 22.0);
}

TEST(RunResultTest, DefaultReductionIsZero) {
  EXPECT_DOUBLE_EQ(RunResult{}.reduction(), 0.0);
}

TEST(RunResultTest, ToStringMentionsEveryCounter) {
  RunResult result;
  result.initial_cost = 80.0;
  result.best_cost = 60.0;
  result.final_cost = 65.0;
  result.proposals = 1000;
  result.accepts = 400;
  result.uphill_accepts = 50;
  result.ticks = 1000;
  result.temperatures_visited = 6;
  const std::string text = to_string(result);
  EXPECT_NE(text.find("h0=80"), std::string::npos);
  EXPECT_NE(text.find("best=60"), std::string::npos);
  EXPECT_NE(text.find("final=65"), std::string::npos);
  EXPECT_NE(text.find("(-20)"), std::string::npos);
  EXPECT_NE(text.find("proposals=1000"), std::string::npos);
  EXPECT_NE(text.find("accepts=400"), std::string::npos);
  EXPECT_NE(text.find("uphill=50"), std::string::npos);
  EXPECT_NE(text.find("temps=6"), std::string::npos);
}

}  // namespace
}  // namespace mcopt::core
