#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "support/toy_problem.hpp"
#include "tsp/construct.hpp"
#include "tsp/instance.hpp"
#include "tsp/problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

// A problem without clone support: exercises the engine's refusal path.
class NoCloneProblem final : public Problem {
 public:
  [[nodiscard]] double cost() const override { return 0.0; }
  double propose(util::Rng&) override { return 0.0; }
  void accept() override {}
  void reject() override {}
  void descend(util::WorkBudget&) override {}
  void randomize(util::Rng&) override {}
  [[nodiscard]] Snapshot snapshot() const override { return {0}; }
  void restore(const Snapshot&) override {}
};

Runner descent_runner() {
  return [](Problem& problem, std::uint64_t budget, util::Rng& rng,
            const obs::Recorder& recorder) {
    return random_descent(problem, budget, rng, &recorder);
  };
}

void expect_identical(const MultistartResult& a, const MultistartResult& b) {
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.restart_best_costs, b.restart_best_costs);
  EXPECT_EQ(a.aggregate.initial_cost, b.aggregate.initial_cost);
  EXPECT_EQ(a.aggregate.final_cost, b.aggregate.final_cost);
  EXPECT_EQ(a.aggregate.best_cost, b.aggregate.best_cost);
  EXPECT_EQ(a.aggregate.best_state, b.aggregate.best_state);
  EXPECT_EQ(a.aggregate.proposals, b.aggregate.proposals);
  EXPECT_EQ(a.aggregate.accepts, b.aggregate.accepts);
  EXPECT_EQ(a.aggregate.uphill_accepts, b.aggregate.uphill_accepts);
  EXPECT_EQ(a.aggregate.descent_steps, b.aggregate.descent_steps);
  EXPECT_EQ(a.aggregate.ticks, b.aggregate.ticks);
  EXPECT_EQ(a.aggregate.temperatures_visited, b.aggregate.temperatures_visited);
  EXPECT_EQ(a.aggregate.invariants.executed, b.aggregate.invariants.executed);
}

TEST(ParallelMultistartTest, RejectsBadInputs) {
  ToyProblem problem{{1, 2, 3}, 0};
  util::Rng rng{1};
  ParallelMultistartOptions options;
  options.num_threads = 2;
  EXPECT_THROW((void)parallel_multistart(problem, nullptr, options, rng),
               std::invalid_argument);

  options.multistart.budget_per_start = 0;
  EXPECT_THROW(
      (void)parallel_multistart(problem, descent_runner(), options, rng),
      std::invalid_argument);

  options.multistart.budget_per_start =
      options.multistart.total_budget + 1;
  EXPECT_THROW(
      (void)parallel_multistart(problem, descent_runner(), options, rng),
      std::invalid_argument);

  options.multistart = MultistartOptions{};
  options.num_threads = 0;
  EXPECT_THROW(
      (void)parallel_multistart(problem, descent_runner(), options, rng),
      std::invalid_argument);
}

TEST(ParallelMultistartTest, RefusesProblemsWithoutClone) {
  NoCloneProblem problem;
  util::Rng rng{1};
  ParallelMultistartOptions options;
  options.num_threads = 2;
  EXPECT_THROW(
      (void)parallel_multistart(problem, descent_runner(), options, rng),
      std::invalid_argument);
}

TEST(ParallelMultistartTest, MatchesSequentialOnToyProblem) {
  const std::vector<double> landscape{6, 3, 5, 2, 6, 4, 7, 1, 5, 0, 6, 3};
  MultistartOptions opts;
  opts.total_budget = 3'000;
  opts.budget_per_start = 250;

  ToyProblem sequential_problem{landscape, 0};
  util::Rng sequential_rng{42};
  const MultistartResult sequential = multistart(
      sequential_problem, descent_runner(), opts, sequential_rng);

  for (const unsigned threads : {1u, 2u, 8u}) {
    ToyProblem problem{landscape, 0};
    util::Rng rng{42};
    ParallelMultistartOptions options;
    options.multistart = opts;
    options.num_threads = threads;
    const MultistartResult parallel =
        parallel_multistart(problem, descent_runner(), options, rng);
    expect_identical(sequential, parallel);
    // The problem is left in the sequential loop's end state and the rng
    // has advanced identically.
    EXPECT_EQ(problem.position(), sequential_problem.position());
    EXPECT_EQ(rng.next(), sequential_rng.next());
    // Undo the comparison draw so the next loop iteration starts equal.
    sequential_rng = util::Rng{42};
    (void)sequential_rng.next();
  }
}

TEST(ParallelMultistartTest, MatchesSequentialWithFigure1OnLinArr) {
  const auto nl =
      netlist::gola_test_set(1, netlist::GolaParams{15, 150}, 7)[0];
  const auto g = make_g(GClass::kSixTempAnnealing);
  Runner runner = [&g](Problem& p, std::uint64_t budget, util::Rng& r,
                       const obs::Recorder& recorder) {
    Figure1Options options;
    options.budget = budget;
    options.invariant_check_interval = 64;
    options.recorder = &recorder;
    return run_figure1(p, *g, options, r);
  };
  MultistartOptions opts;
  opts.total_budget = 4'000;
  opts.budget_per_start = 600;  // 6 full slices + a 400-tick remainder

  util::Rng arr_rng{3};
  linarr::LinArrProblem sequential_problem{
      nl, linarr::Arrangement::random(15, arr_rng)};
  util::Rng sequential_rng{1985};
  const MultistartResult sequential =
      multistart(sequential_problem, runner, opts, sequential_rng);

  for (const unsigned threads : {1u, 2u, 8u}) {
    util::Rng arr_rng2{3};
    linarr::LinArrProblem problem{nl,
                                  linarr::Arrangement::random(15, arr_rng2)};
    util::Rng rng{1985};
    ParallelMultistartOptions options;
    options.multistart = opts;
    options.num_threads = threads;
    const MultistartResult parallel =
        parallel_multistart(problem, runner, options, rng);
    expect_identical(sequential, parallel);
    EXPECT_EQ(problem.snapshot(), sequential_problem.snapshot());
  }
}

TEST(ParallelMultistartTest, MatchesSequentialWithFigure2OnTsp) {
  // Figure 2 runners interleave descent and kicks and can terminate slices
  // early; the engine must still reduce to the sequential aggregate.
  util::Rng city_rng{11};
  const auto instance = tsp::TspInstance::random_euclidean(24, city_rng);
  const auto g = make_g(GClass::kMetropolis);
  Runner runner = [&g](Problem& p, std::uint64_t budget, util::Rng& r,
                       const obs::Recorder& recorder) {
    Figure2Options options;
    options.budget = budget;
    options.recorder = &recorder;
    return run_figure2(p, *g, options, r);
  };
  MultistartOptions opts;
  opts.total_budget = 5'000;
  opts.budget_per_start = 900;

  tsp::TspProblem sequential_problem{instance,
                                     tsp::nearest_neighbour(instance, 0)};
  util::Rng sequential_rng{5};
  const MultistartResult sequential =
      multistart(sequential_problem, runner, opts, sequential_rng);

  for (const unsigned threads : {1u, 2u, 8u}) {
    tsp::TspProblem problem{instance,
                            tsp::nearest_neighbour(instance, 0)};
    util::Rng rng{5};
    ParallelMultistartOptions options;
    options.multistart = opts;
    options.num_threads = threads;
    const MultistartResult parallel =
        parallel_multistart(problem, runner, options, rng);
    expect_identical(sequential, parallel);
  }
}

TEST(ParallelMultistartTest, KeepFirstStartWhenRequested) {
  // randomize_first = false: restart 0 must run from the caller's current
  // solution even though it executes on a worker's clone.
  const std::vector<double> landscape{9, 2, 9, 9, 0, 9, 9, 9};
  MultistartOptions opts;
  opts.total_budget = 100;
  opts.budget_per_start = 100;
  opts.randomize_first = false;

  ToyProblem problem{landscape, 1};
  util::Rng rng{5};
  ParallelMultistartOptions options;
  options.multistart = opts;
  options.num_threads = 4;
  const MultistartResult result =
      parallel_multistart(problem, descent_runner(), options, rng);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_DOUBLE_EQ(result.aggregate.best_cost, 2.0);
}

TEST(ParallelMultistartTest, MoreThreadsThanRestarts) {
  ToyProblem problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
  util::Rng rng{2};
  ParallelMultistartOptions options;
  options.multistart.total_budget = 200;
  options.multistart.budget_per_start = 100;
  options.num_threads = 8;
  const MultistartResult result =
      parallel_multistart(problem, descent_runner(), options, rng);
  EXPECT_EQ(result.restarts, 2u);
  EXPECT_EQ(result.aggregate.ticks, 200u);
}

TEST(ParallelMultistartTest, EarlyTerminatingRunnerExtendsRestarts) {
  // A runner that consumes half its slice funds twice the restarts; the
  // speculation horizon must keep up and the parallel result must agree
  // with the sequential accounting.
  Runner half_runner = [](Problem& problem, std::uint64_t budget,
                          util::Rng& rng, const obs::Recorder&) {
    return random_descent(problem, std::min<std::uint64_t>(budget, 50), rng);
  };
  MultistartOptions opts;
  opts.total_budget = 1'000;
  opts.budget_per_start = 100;

  ToyProblem sequential_problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
  util::Rng sequential_rng{9};
  const MultistartResult sequential =
      multistart(sequential_problem, half_runner, opts, sequential_rng);
  EXPECT_EQ(sequential.restarts, 20u);

  for (const unsigned threads : {2u, 8u}) {
    ToyProblem problem{{5, 4, 3, 2, 1, 2, 3, 4}, 0};
    util::Rng rng{9};
    ParallelMultistartOptions options;
    options.multistart = opts;
    options.num_threads = threads;
    const MultistartResult parallel =
        parallel_multistart(problem, half_runner, options, rng);
    expect_identical(sequential, parallel);
  }
}

}  // namespace
}  // namespace mcopt::core
