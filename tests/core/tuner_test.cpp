#include "core/tuner.hpp"

#include <algorithm>
#include <cstddef>
#include <gtest/gtest.h>
#include <vector>

#include <memory>
#include <stdexcept>

#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

ProblemFactory toy_factory() {
  return [](std::size_t index) -> std::unique_ptr<Problem> {
    // A family of rugged landscapes varying with the instance index; the
    // start position is deterministic in the index (§4.2.1: every candidate
    // sees the same initial solution).
    std::vector<double> landscape(24);
    for (std::size_t i = 0; i < landscape.size(); ++i) {
      landscape[i] = static_cast<double>((i * (7 + index) + 3) % 13);
    }
    return std::make_unique<ToyProblem>(landscape, index % landscape.size());
  };
}

TEST(DefaultScalesTest, ScaleFreeClassesGetTrivialGrid) {
  EXPECT_EQ(default_candidate_scales(GClass::kGOne, 60, 2),
            std::vector<double>{1.0});
  EXPECT_EQ(default_candidate_scales(GClass::kTwoLevel, 60, 2),
            std::vector<double>{1.0});
}

TEST(DefaultScalesTest, GridsSweepIncreasingAcceptance) {
  // The grid is defined by target acceptance probabilities 0.02 .. 0.8, so
  // along the grid the realized acceptance at the typical (cost, delta)
  // must strictly increase for every class.  (The raw scales themselves are
  // decreasing for the exponential-of-h classes — Y is in the denominator.)
  for (const GClass cls : table41_classes()) {
    if (!g_class_uses_scale(cls)) continue;
    const auto grid = default_candidate_scales(cls, 60.0, 2.0);
    ASSERT_EQ(grid.size(), 6u) << g_class_name(cls);
    double prev_p = -1.0;
    for (const double s : grid) {
      ASSERT_GT(s, 0.0) << g_class_name(cls);
      const auto g = make_g(cls, {.scale = s});
      const double p = g->probability(0, 60.0, 62.0);
      EXPECT_GT(p, prev_p) << g_class_name(cls) << " scale " << s;
      prev_p = p;
    }
  }
}

TEST(DefaultScalesTest, GridsHitTargetProbabilities) {
  // The Metropolis grid entry for target p must satisfy
  // exp(-delta/Y) == p at the typical delta.
  const auto grid = default_candidate_scales(GClass::kMetropolis, 60.0, 2.0);
  const double targets[] = {0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto g = make_g(GClass::kMetropolis, {.scale = grid[i]});
    EXPECT_NEAR(g->probability(0, 10.0, 12.0), targets[i], 1e-9);
  }
}

TEST(DefaultScalesTest, DiffGridsHitTargets) {
  const auto grid = default_candidate_scales(GClass::kCubicDiff, 60.0, 2.0);
  const double targets[] = {0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto g = make_g(GClass::kCubicDiff, {.scale = grid[i]});
    EXPECT_NEAR(g->probability(0, 10.0, 12.0), targets[i], 1e-9);
  }
}

TEST(DefaultScalesTest, DegenerateStatisticsFallBackToOne) {
  const auto grid = default_candidate_scales(GClass::kLinear, 0.0, 0.0);
  for (const double s : grid) EXPECT_GT(s, 0.0);
}

TEST(TuneScaleTest, RejectsBadInputs) {
  TunerOptions options;
  EXPECT_THROW((void)tune_scale(GClass::kMetropolis, nullptr, options),
               std::invalid_argument);
  options.num_instances = 0;
  EXPECT_THROW((void)tune_scale(GClass::kMetropolis, toy_factory(), options),
               std::invalid_argument);
}

TEST(TuneScaleTest, EvaluatesEveryCandidate) {
  TunerOptions options;
  options.candidates = {0.5, 1.0, 2.0};
  options.budget = 200;
  options.num_instances = 4;
  const TuneResult result =
      tune_scale(GClass::kMetropolis, toy_factory(), options);
  ASSERT_EQ(result.scores.size(), 3u);
  EXPECT_DOUBLE_EQ(result.scores[0].first, 0.5);
  EXPECT_DOUBLE_EQ(result.scores[2].first, 2.0);
}

TEST(TuneScaleTest, BestIsArgmaxOfScores) {
  TunerOptions options;
  options.candidates = {0.01, 0.5, 5.0};
  options.budget = 300;
  options.num_instances = 6;
  const TuneResult result =
      tune_scale(GClass::kSixTempAnnealing, toy_factory(), options);
  double max_score = result.scores.front().second;
  for (const auto& [scale, score] : result.scores) {
    max_score = std::max(max_score, score);
  }
  EXPECT_DOUBLE_EQ(result.best_total_reduction, max_score);
  bool found = false;
  for (const auto& [scale, score] : result.scores) {
    if (scale == result.best_scale) {
      EXPECT_DOUBLE_EQ(score, result.best_total_reduction);
      found = true;
      break;  // first-best wins ties
    }
  }
  EXPECT_TRUE(found);
}

TEST(TuneScaleTest, ScaleFreeClassYieldsSingleTrivialCandidate) {
  TunerOptions options;
  options.budget = 200;
  options.num_instances = 3;
  const TuneResult result = tune_scale(GClass::kGOne, toy_factory(), options);
  ASSERT_EQ(result.scores.size(), 1u);
  EXPECT_DOUBLE_EQ(result.best_scale, 1.0);
  EXPECT_GE(result.best_total_reduction, 0.0);
}

TEST(TuneScaleTest, DeterministicGivenSeed) {
  TunerOptions options;
  options.budget = 250;
  options.num_instances = 5;
  options.seed = 77;
  const TuneResult a =
      tune_scale(GClass::kQuadraticDiff, toy_factory(), options);
  const TuneResult b =
      tune_scale(GClass::kQuadraticDiff, toy_factory(), options);
  EXPECT_EQ(a.best_scale, b.best_scale);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(TuneScaleTest, ReductionsAreNonNegative) {
  TunerOptions options;
  options.budget = 400;
  options.num_instances = 8;
  for (const GClass cls :
       {GClass::kMetropolis, GClass::kLinear, GClass::kExponentialDiff}) {
    const TuneResult result = tune_scale(cls, toy_factory(), options);
    for (const auto& [scale, score] : result.scores) {
      EXPECT_GE(score, 0.0) << g_class_name(cls) << " scale " << scale;
    }
  }
}

}  // namespace
}  // namespace mcopt::core
