#include "core/tempering.hpp"

#include <cstddef>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include <stdexcept>

#include "core/schedule.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

std::function<std::unique_ptr<Problem>(std::size_t)> toy_factory(
    std::vector<double> landscape) {
  return [landscape](std::size_t replica) -> std::unique_ptr<Problem> {
    return std::make_unique<ToyProblem>(landscape,
                                        replica % landscape.size());
  };
}

TEST(TemperingTest, RejectsBadInputs) {
  util::Rng rng{1};
  TemperingOptions options;
  options.temperatures = {4.0, 2.0, 1.0};
  EXPECT_THROW((void)parallel_tempering(nullptr, options, rng),
               std::invalid_argument);
  const auto factory = toy_factory({1, 2, 3, 4});
  options.sweep = 0;
  EXPECT_THROW((void)parallel_tempering(factory, options, rng),
               std::invalid_argument);
  options.sweep = 10;
  options.temperatures = {};
  EXPECT_THROW((void)parallel_tempering(factory, options, rng),
               std::invalid_argument);
  options.temperatures = {1.0, 2.0};  // increasing
  EXPECT_THROW((void)parallel_tempering(factory, options, rng),
               std::invalid_argument);
}

TEST(TemperingTest, ChargesExactlyTheBudget) {
  util::Rng rng{2};
  TemperingOptions options;
  options.temperatures = {4.0, 2.0, 1.0};
  options.budget = 1234;
  const auto result =
      parallel_tempering(toy_factory({3, 1, 4, 1, 5, 9, 2, 6}), options, rng);
  EXPECT_EQ(result.aggregate.proposals, 1234u);
  EXPECT_EQ(result.aggregate.ticks, 1234u);
  EXPECT_EQ(result.aggregate.temperatures_visited, 3u);
}

TEST(TemperingTest, FindsGlobalOptimumOnRuggedLandscape) {
  std::vector<double> landscape{6, 3, 5, 2, 6, 4, 7, 1, 5, 0, 6, 3, 8, 2};
  util::Rng rng{3};
  TemperingOptions options;
  options.temperatures = geometric_schedule(8.0, 0.5, 4);
  options.budget = 20'000;
  const auto result = parallel_tempering(toy_factory(landscape), options, rng);
  EXPECT_DOUBLE_EQ(result.aggregate.best_cost, 0.0);
  ASSERT_EQ(result.aggregate.best_state.size(), 1u);
  EXPECT_EQ(result.aggregate.best_state[0], 9u);
}

TEST(TemperingTest, SwapsHappenAndAreCounted) {
  util::Rng rng{4};
  TemperingOptions options;
  options.temperatures = {8.0, 1.0};
  options.budget = 10'000;
  options.sweep = 10;
  const auto result =
      parallel_tempering(toy_factory({6, 3, 5, 2, 6, 4, 7, 1}), options, rng);
  EXPECT_GT(result.swap_attempts, 0u);
  EXPECT_GT(result.swap_accepts, 0u);
  EXPECT_LE(result.swap_accepts, result.swap_attempts);
}

TEST(TemperingTest, DeterministicGivenSeed) {
  TemperingOptions options;
  options.temperatures = geometric_schedule(6.0, 0.6, 3);
  options.budget = 5'000;
  auto run = [&] {
    util::Rng rng{77};
    return parallel_tempering(toy_factory({5, 1, 6, 0, 7, 6, 5, 4}), options,
                              rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.aggregate.best_cost, b.aggregate.best_cost);
  EXPECT_EQ(a.aggregate.accepts, b.aggregate.accepts);
  EXPECT_EQ(a.swap_accepts, b.swap_accepts);
  EXPECT_EQ(a.aggregate.best_state, b.aggregate.best_state);
}

TEST(TemperingTest, SingleReplicaDegeneratesToMetropolis) {
  util::Rng rng{5};
  TemperingOptions options;
  options.temperatures = {2.0};
  options.budget = 4'000;
  const auto result =
      parallel_tempering(toy_factory({6, 3, 5, 2, 6, 4, 7, 1}), options, rng);
  EXPECT_EQ(result.swap_attempts, 0u);
  EXPECT_LE(result.aggregate.best_cost, result.aggregate.initial_cost);
}

TEST(TemperingTest, WorksOnLinearArrangement) {
  util::Rng gen{6};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 150}, gen);
  auto factory = [&nl](std::size_t replica) -> std::unique_ptr<Problem> {
    util::Rng start_rng{util::derive_seed(900, replica)};
    return std::make_unique<linarr::LinArrProblem>(
        nl, linarr::Arrangement::random(15, start_rng));
  };
  util::Rng rng{7};
  TemperingOptions options;
  options.temperatures = geometric_schedule(2.0, 0.6, 4);
  options.budget = 8'000;
  const auto result = parallel_tempering(factory, options, rng);
  EXPECT_GT(result.aggregate.initial_cost - result.aggregate.best_cost, 5.0);
  EXPECT_GE(result.aggregate.final_cost, result.aggregate.best_cost);
}

}  // namespace
}  // namespace mcopt::core
