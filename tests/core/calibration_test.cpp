#include "core/calibration.hpp"

#include <cstddef>
#include <gtest/gtest.h>
#include <vector>

#include <cmath>
#include <stdexcept>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "support/toy_problem.hpp"

namespace mcopt::core {
namespace {

using mcopt::testing::ToyProblem;

TEST(SampleStatsTest, RejectsZeroSamples) {
  ToyProblem problem{{1, 2, 3, 4}, 0};
  util::Rng rng{1};
  EXPECT_THROW((void)sample_move_statistics(problem, 0, rng),
               std::invalid_argument);
}

TEST(SampleStatsTest, RestoresTheStartingSolution) {
  ToyProblem problem{{5, 1, 4, 2, 8, 3}, 2};
  util::Rng rng{2};
  const auto before = problem.snapshot();
  (void)sample_move_statistics(problem, 500, rng);
  EXPECT_EQ(problem.snapshot(), before);
  EXPECT_DOUBLE_EQ(problem.cost(), 4.0);
}

TEST(SampleStatsTest, FlatLandscapeHasNoUphill) {
  ToyProblem problem{{7, 7, 7, 7, 7}, 0};
  util::Rng rng{3};
  const auto stats = sample_move_statistics(problem, 300, rng);
  EXPECT_DOUBLE_EQ(stats.mean_cost, 7.0);
  EXPECT_DOUBLE_EQ(stats.cost_stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.uphill_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_uphill_delta, 0.0);
  EXPECT_EQ(stats.samples, 300u);
}

TEST(SampleStatsTest, SawtoothDeltasAreUnit) {
  // Alternating 0/1 ring: every move has |delta| == 1, half uphill.
  ToyProblem problem{{0, 1, 0, 1, 0, 1}, 0};
  util::Rng rng{4};
  const auto stats = sample_move_statistics(problem, 2000, rng);
  EXPECT_DOUBLE_EQ(stats.mean_uphill_delta, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_uphill_delta, 1.0);
  EXPECT_NEAR(stats.uphill_fraction, 0.5, 0.05);
  EXPECT_NEAR(stats.delta_stddev, 1.0, 0.05);
}

TEST(SampleStatsTest, RealProblemStatisticsAreSane) {
  util::Rng rng{5};
  const auto nl =
      netlist::random_gola(netlist::GolaParams{15, 150}, rng);
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
  const auto stats = sample_move_statistics(problem, 2000, rng);
  EXPECT_GT(stats.mean_cost, 50.0);   // random-walk densities sit high
  EXPECT_LT(stats.mean_cost, 100.0);
  EXPECT_GT(stats.mean_uphill_delta, 0.5);
  EXPECT_LT(stats.mean_uphill_delta, 10.0);
  EXPECT_GT(stats.uphill_fraction, 0.05);
  EXPECT_LT(stats.uphill_fraction, 0.6);  // most density moves are sideways
}

TEST(WhiteScheduleTest, RejectsBadArguments) {
  MoveStatistics stats;
  stats.mean_uphill_delta = 1.0;
  EXPECT_THROW((void)white_schedule(stats, 0), std::invalid_argument);
  EXPECT_THROW((void)white_schedule(stats, 6, 0.0), std::invalid_argument);
  EXPECT_THROW((void)white_schedule(stats, 6, 1.0), std::invalid_argument);
}

TEST(WhiteScheduleTest, FlatStatisticsGiveFlatSchedule) {
  MoveStatistics stats;  // no uphill moves observed
  const auto ys = white_schedule(stats, 4);
  EXPECT_EQ(ys, (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
}

TEST(WhiteScheduleTest, EndpointsFollowWhite) {
  MoveStatistics stats;
  stats.mean_uphill_delta = 2.0;
  stats.delta_stddev = 3.0;
  const auto ys = white_schedule(stats, 6, 0.01);
  ASSERT_EQ(ys.size(), 6u);
  // Hot end: max(sigma, typical) = 3 -> typical move accepted with
  // exp(-2/3) ~ 0.51.
  EXPECT_DOUBLE_EQ(ys.front(), 3.0);
  // Cold end: exp(-2/Yk) == 0.01.
  EXPECT_NEAR(std::exp(-2.0 / ys.back()), 0.01, 1e-9);
  // Monotone decreasing in between.
  for (std::size_t i = 1; i < ys.size(); ++i) EXPECT_LT(ys[i], ys[i - 1]);
}

TEST(WhiteScheduleTest, SingleLevelIsHotEndpoint) {
  MoveStatistics stats;
  stats.mean_uphill_delta = 2.0;
  stats.delta_stddev = 5.0;
  const auto ys = white_schedule(stats, 1);
  ASSERT_EQ(ys.size(), 1u);
  EXPECT_DOUBLE_EQ(ys[0], 5.0);
}

TEST(TickRateTest, RejectsZeroSamples) {
  ToyProblem problem{{1, 2, 3, 4}, 0};
  util::Rng rng{7};
  EXPECT_THROW((void)measure_tick_rate(problem, 0, rng),
               std::invalid_argument);
}

TEST(TickRateTest, PositiveFiniteAndStatePreserving) {
  util::Rng rng{8};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 150}, rng);
  linarr::LinArrProblem problem{nl, linarr::Arrangement{15}};
  const auto before = problem.snapshot();
  const double rate = measure_tick_rate(problem, 5'000, rng);
  EXPECT_GT(rate, 1'000.0);  // anything slower means something is broken
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_EQ(problem.snapshot(), before);
}

TEST(WhiteScheduleTest, FeedsAnnealerEndToEnd) {
  // The whole [WHIT84] pipeline: sample -> schedule -> anneal, on a real
  // instance, must beat pure descent trapped in a local optimum... or at
  // minimum never produce an invalid schedule.
  util::Rng rng{6};
  const auto nl =
      netlist::random_gola(netlist::GolaParams{15, 150}, rng);
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
  const auto stats = sample_move_statistics(problem, 1000, rng);
  const auto ys = white_schedule(stats, 6);
  const auto g = make_annealing_g(ys);
  Figure1Options options;
  options.budget = 5'000;
  const auto result = run_figure1(problem, *g, options, rng);
  EXPECT_GT(result.reduction(), 0.0);
}

}  // namespace
}  // namespace mcopt::core
