#include "core/schedule.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <stdexcept>

namespace mcopt::core {
namespace {

TEST(GeometricScheduleTest, ProducesRequestedLength) {
  const auto ys = geometric_schedule(8.0, 0.5, 4);
  ASSERT_EQ(ys.size(), 4u);
  EXPECT_DOUBLE_EQ(ys[0], 8.0);
  EXPECT_DOUBLE_EQ(ys[1], 4.0);
  EXPECT_DOUBLE_EQ(ys[2], 2.0);
  EXPECT_DOUBLE_EQ(ys[3], 1.0);
}

TEST(GeometricScheduleTest, SingleTemperature) {
  const auto ys = geometric_schedule(3.0, 0.9, 1);
  ASSERT_EQ(ys.size(), 1u);
  EXPECT_DOUBLE_EQ(ys[0], 3.0);
}

TEST(GeometricScheduleTest, RejectsBadArguments) {
  EXPECT_THROW(geometric_schedule(0.0, 0.9, 6), std::invalid_argument);
  EXPECT_THROW(geometric_schedule(10.0, 0.0, 6), std::invalid_argument);
  EXPECT_THROW(geometric_schedule(10.0, 0.9, 0), std::invalid_argument);
}

TEST(KirkpatrickScheduleTest, MatchesPaperCitation) {
  // §1: "Y1 = 10, Yi = 0.9 * Yi-1, 2 <= i <= 6".
  const auto ys = kirkpatrick_schedule();
  ASSERT_EQ(ys.size(), 6u);
  EXPECT_DOUBLE_EQ(ys[0], 10.0);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(ys[i], 0.9 * ys[i - 1]);
  }
}

TEST(UniformScheduleTest, EvenlySpacedDescending) {
  // [GOLD84]: k uniformly distributed points in (0, tau].
  const auto ys = uniform_schedule(10.0, 4);
  ASSERT_EQ(ys.size(), 4u);
  EXPECT_DOUBLE_EQ(ys[0], 10.0);
  EXPECT_DOUBLE_EQ(ys[1], 7.5);
  EXPECT_DOUBLE_EQ(ys[2], 5.0);
  EXPECT_DOUBLE_EQ(ys[3], 2.5);
}

TEST(UniformScheduleTest, TwentyFiveTemperatures) {
  // The Golden-Skiscim configuration used by the tsp_compare bench.
  const auto ys = uniform_schedule(25.0, 25);
  ASSERT_EQ(ys.size(), 25u);
  EXPECT_DOUBLE_EQ(ys.front(), 25.0);
  EXPECT_DOUBLE_EQ(ys.back(), 1.0);
  for (std::size_t i = 1; i < ys.size(); ++i) {
    EXPECT_DOUBLE_EQ(ys[i - 1] - ys[i], 1.0);
  }
}

TEST(UniformScheduleTest, AllPositive) {
  for (const double y : uniform_schedule(1.0, 100)) EXPECT_GT(y, 0.0);
}

TEST(UniformScheduleTest, RejectsBadArguments) {
  EXPECT_THROW(uniform_schedule(0.0, 5), std::invalid_argument);
  EXPECT_THROW(uniform_schedule(-1.0, 5), std::invalid_argument);
  EXPECT_THROW(uniform_schedule(5.0, 0), std::invalid_argument);
}

TEST(ValidatedScheduleTest, AcceptsNonIncreasingPositive) {
  const auto ys = validated_schedule({5.0, 5.0, 2.0});
  EXPECT_EQ(ys.size(), 3u);
}

TEST(ValidatedScheduleTest, RejectsEmptyIncreasingOrNonPositive) {
  EXPECT_THROW(validated_schedule({}), std::invalid_argument);
  EXPECT_THROW(validated_schedule({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(validated_schedule({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validated_schedule({-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::core
