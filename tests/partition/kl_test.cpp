#include "partition/kl.hpp"

#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"

namespace mcopt::partition {
namespace {

TEST(KlTest, RejectsHypergraphs) {
  Netlist::Builder b{4};
  b.add_net({0, 1, 2});
  const Netlist nl = b.build();
  EXPECT_THROW((void)kernighan_lin(nl, {0, 0, 1, 1}), std::invalid_argument);
}

TEST(KlTest, RejectsSizeMismatch) {
  Netlist::Builder b{4};
  b.add_net({0, 1});
  const Netlist nl = b.build();
  EXPECT_THROW((void)kernighan_lin(nl, {0, 1}), std::invalid_argument);
}

TEST(KlTest, SolvesTwoCliquesExactly) {
  // Two K4 cliques joined by one bridge edge: optimal balanced cut = 1.
  Netlist::Builder b{8};
  for (CellId i = 0; i < 4; ++i) {
    for (CellId j = i + 1; j < 4; ++j) {
      b.add_net({i, j});
      b.add_net({static_cast<CellId>(i + 4), static_cast<CellId>(j + 4)});
    }
  }
  b.add_net({0, 4});
  const Netlist nl = b.build();
  // Deliberately interleaved start: both cliques split across the cut.
  const KlResult result = kernighan_lin(nl, {0, 1, 0, 1, 0, 1, 0, 1});
  EXPECT_EQ(result.cut, 1);
  EXPECT_GT(result.passes, 0u);
  // The two cliques must each sit wholly on one side.
  for (CellId i = 1; i < 4; ++i) {
    EXPECT_EQ(result.sides[i], result.sides[0]);
    EXPECT_EQ(result.sides[i + 4], result.sides[4]);
  }
  EXPECT_NE(result.sides[0], result.sides[4]);
}

TEST(KlTest, NeverWorseThanStart) {
  for (int seed = 0; seed < 5; ++seed) {
    util::Rng rng{static_cast<std::uint64_t>(seed)};
    const Netlist nl = netlist::random_graph(30, 90, rng);
    const PartitionState start = PartitionState::random(nl, rng);
    const KlResult result = kernighan_lin(nl, start.sides());
    EXPECT_LE(result.cut, start.cut()) << "seed " << seed;
  }
}

TEST(KlTest, PreservesBalance) {
  util::Rng rng{7};
  const Netlist nl = netlist::random_graph(21, 60, rng);  // odd cell count
  const PartitionState start = PartitionState::random(nl, rng);
  const KlResult result = kernighan_lin(nl, start.sides());
  const PartitionState end{nl, result.sides};
  EXPECT_TRUE(end.is_balanced());
  EXPECT_EQ(end.side_count(0), start.side_count(0));
}

TEST(KlTest, ReportedCutMatchesSides) {
  util::Rng rng{8};
  const Netlist nl = netlist::random_graph(24, 70, rng);
  const KlResult result = kernighan_lin_random(nl, rng);
  EXPECT_EQ(result.cut, (PartitionState{nl, result.sides}.cut()));
}

TEST(KlTest, CountsEvaluations) {
  util::Rng rng{9};
  const Netlist nl = netlist::random_graph(10, 20, rng);
  const KlResult result = kernighan_lin_random(nl, rng);
  // One full pass evaluates at least 25 + 16 + 9 + 4 + 1 pairs.
  EXPECT_GE(result.evaluations, 55u);
}

TEST(KlTest, DeterministicFromFixedStart) {
  util::Rng rng{10};
  const Netlist nl = netlist::random_graph(16, 40, rng);
  const PartitionState start = PartitionState::random(nl, rng);
  const KlResult a = kernighan_lin(nl, start.sides());
  const KlResult b = kernighan_lin(nl, start.sides());
  EXPECT_EQ(a.sides, b.sides);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(KlTest, IsLocallyOptimalUnderSinglePairSwaps) {
  // After KL terminates, no single cross swap that KL itself would rate
  // positive remains (prefix-gain property); validate by brute force that
  // no swap lowers the cut.
  util::Rng rng{11};
  const Netlist nl = netlist::random_graph(14, 45, rng);
  const KlResult result = kernighan_lin_random(nl, rng);
  PartitionState state{nl, result.sides};
  const int base = state.cut();
  for (CellId a = 0; a < 14; ++a) {
    for (CellId b = a + 1; b < 14; ++b) {
      if (state.side(a) == state.side(b)) continue;
      state.swap(a, b);
      EXPECT_GE(state.cut(), base) << "improving swap survived KL";
      state.swap(a, b);
    }
  }
}

}  // namespace
}  // namespace mcopt::partition
