#include "partition/problem.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "netlist/generator.hpp"
#include "partition/kl.hpp"

namespace mcopt::partition {
namespace {

TEST(PartitionProblemTest, RejectsUnbalancedStart) {
  Netlist::Builder b{4};
  b.add_net({0, 1});
  const Netlist nl = b.build();
  EXPECT_THROW((PartitionProblem{PartitionState{nl, {0, 0, 0, 1}}}),
               std::invalid_argument);
}

TEST(PartitionProblemTest, ProposePreservesBalance) {
  util::Rng rng{1};
  const Netlist nl = netlist::random_graph(20, 60, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  for (int i = 0; i < 200; ++i) {
    (void)problem.propose(rng);
    ASSERT_TRUE(problem.state().is_balanced());
    if (rng.next_bool(0.5)) {
      problem.accept();
    } else {
      problem.reject();
    }
    ASSERT_TRUE(problem.state().is_balanced());
  }
  EXPECT_TRUE(problem.state().verify());
}

TEST(PartitionProblemTest, RejectRestoresCut) {
  util::Rng rng{2};
  const Netlist nl = netlist::random_graph(16, 50, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  const double before = problem.cost();
  const auto sides_before = problem.state().sides();
  for (int i = 0; i < 100; ++i) {
    (void)problem.propose(rng);
    problem.reject();
  }
  EXPECT_DOUBLE_EQ(problem.cost(), before);
  EXPECT_EQ(problem.state().sides(), sides_before);
}

TEST(PartitionProblemTest, DescendReachesSwapLocalOptimum) {
  util::Rng rng{3};
  const Netlist nl = netlist::random_graph(18, 60, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  util::WorkBudget budget{1'000'000};
  problem.descend(budget);
  // Brute-force: no cross swap improves.
  PartitionState state{nl, problem.state().sides()};
  const int base = state.cut();
  for (CellId a = 0; a < 18; ++a) {
    for (CellId b = a + 1; b < 18; ++b) {
      if (state.side(a) == state.side(b)) continue;
      state.swap(a, b);
      EXPECT_GE(state.cut(), base);
      state.swap(a, b);
    }
  }
}

TEST(PartitionProblemTest, SnapshotRestoreRoundTrips) {
  util::Rng rng{4};
  const Netlist nl = netlist::random_graph(12, 30, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  const auto snap = problem.snapshot();
  const double cost = problem.cost();
  problem.randomize(rng);
  problem.restore(snap);
  EXPECT_DOUBLE_EQ(problem.cost(), cost);
  EXPECT_EQ(problem.snapshot(), snap);
}

TEST(PartitionProblemTest, KirkpatrickAnnealingImprovesRandomCut) {
  util::Rng rng{5};
  const Netlist nl = netlist::random_graph(40, 120, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  // The paper's quoted schedule: Y1 = 10, x0.9, k = 6 ([KIRK83], §1).
  core::AnnealOptions options;
  options.budget = 40'000;
  const core::RunResult result =
      core::simulated_annealing(problem, options, rng);
  EXPECT_LT(result.best_cost, result.initial_cost);
  // Restoring the best snapshot must reproduce the cut and stay balanced.
  problem.restore(result.best_state);
  EXPECT_DOUBLE_EQ(problem.cost(), result.best_cost);
  EXPECT_TRUE(problem.state().is_balanced());
}

TEST(PartitionProblemTest, CloneReReservesSpeculationScratch) {
  util::Rng rng{12};
  const Netlist nl = netlist::random_graph(16, 48, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  const auto clone = problem.clone();
  auto& cloned = dynamic_cast<PartitionProblem&>(*clone);
  EXPECT_TRUE(cloned.state().scratch_reserved());
  for (int i = 0; i < 50; ++i) {
    const double h_j = cloned.propose(rng);
    if (h_j <= cloned.cost()) {
      cloned.accept();
    } else {
      cloned.reject();
    }
  }
  EXPECT_TRUE(cloned.state().verify());
  EXPECT_TRUE(cloned.state().scratch_reserved());
}

TEST(PartitionProblemTest, AnnealingApproachesKlQuality) {
  // Sanity cross-check between the two optimizers on one instance: SA with
  // a generous budget should land within 2x of KL's cut.
  util::Rng rng{6};
  const Netlist nl = netlist::random_graph(30, 90, rng);
  const KlResult kl = kernighan_lin_random(nl, rng);
  PartitionProblem problem{PartitionState::random(nl, rng)};
  core::AnnealOptions options;
  options.budget = 60'000;
  const core::RunResult sa =
      core::simulated_annealing(problem, options, rng);
  EXPECT_LE(sa.best_cost, 2.0 * kl.cut + 5.0);
}

}  // namespace
}  // namespace mcopt::partition
