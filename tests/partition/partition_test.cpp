#include "partition/partition.hpp"

#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"

namespace mcopt::partition {
namespace {

Netlist k4() {
  // Complete graph on 4 cells: any balanced bipartition cuts 4 edges.
  Netlist::Builder b{4};
  b.add_net({0, 1});
  b.add_net({0, 2});
  b.add_net({0, 3});
  b.add_net({1, 2});
  b.add_net({1, 3});
  b.add_net({2, 3});
  return b.build();
}

TEST(PartitionStateTest, RejectsBadSides) {
  const Netlist nl = k4();
  EXPECT_THROW((PartitionState{nl, {0, 1, 0}}), std::invalid_argument);
  EXPECT_THROW((PartitionState{nl, {0, 1, 0, 2}}), std::invalid_argument);
}

TEST(PartitionStateTest, CutOfK4Balanced) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  EXPECT_EQ(state.cut(), 4);
  EXPECT_TRUE(state.is_balanced());
  EXPECT_EQ(state.side_count(0), 2u);
  EXPECT_EQ(state.side_count(1), 2u);
}

TEST(PartitionStateTest, DegenerateAllOneSideCutsNothing) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 0, 0}};
  EXPECT_EQ(state.cut(), 0);
  EXPECT_FALSE(state.is_balanced());
}

TEST(PartitionStateTest, FlipUpdatesCutIncrementally) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  state.flip(0);  // 1 0 1 1: cut = edges from cell 1 = 3
  EXPECT_EQ(state.cut(), 3);
  EXPECT_TRUE(state.verify());
  state.flip(0);
  EXPECT_EQ(state.cut(), 4);
  EXPECT_TRUE(state.verify());
}

TEST(PartitionStateTest, SwapPreservesBalance) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  state.swap(0, 2);
  EXPECT_TRUE(state.is_balanced());
  EXPECT_EQ(state.cut(), 4);  // K4 is symmetric
  EXPECT_TRUE(state.verify());
}

TEST(PartitionStateTest, SwapSameSideThrows) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  EXPECT_THROW(state.swap(0, 1), std::invalid_argument);
}

TEST(PartitionStateTest, MultiPinNetCutOnce) {
  // A 3-pin net split 2/1 counts as a single cut net.
  Netlist::Builder b{4};
  b.add_net({0, 1, 2});
  b.add_net({2, 3});
  const Netlist nl = b.build();
  PartitionState state{nl, {0, 0, 1, 1}};
  EXPECT_EQ(state.cut(), 1);  // only the 3-pin net straddles
  state.flip(2);              // 3-pin net healed, but {2,3} now straddles
  EXPECT_EQ(state.cut(), 1);
  EXPECT_TRUE(state.verify());
  state.flip(3);  // everything on side 0: no net cut
  EXPECT_EQ(state.cut(), 0);
  EXPECT_TRUE(state.verify());
}

TEST(PartitionStateTest, RandomIsBalancedAndCeilOnSideZero) {
  util::Rng rng{1};
  const Netlist nl = k4();
  for (int trial = 0; trial < 10; ++trial) {
    const PartitionState state = PartitionState::random(nl, rng);
    EXPECT_TRUE(state.is_balanced());
    EXPECT_EQ(state.side_count(0), 2u);
  }
}

TEST(PartitionStateTest, RandomOddCellCount) {
  Netlist::Builder b{5};
  b.add_net({0, 4});
  const Netlist nl = b.build();
  util::Rng rng{2};
  const PartitionState state = PartitionState::random(nl, rng);
  EXPECT_TRUE(state.is_balanced());
  EXPECT_EQ(state.side_count(0), 3u);  // ceil(5/2)
}

class PartitionChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionChurnTest, IncrementalMatchesRecountUnderChurn) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const Netlist nl = netlist::random_graph(20, 60, rng);
  PartitionState state = PartitionState::random(nl, rng);
  for (int step = 0; step < 400; ++step) {
    const auto c = static_cast<CellId>(rng.next_below(20));
    state.flip(c);
    ASSERT_GE(state.cut(), 0);
    ASSERT_LE(state.cut(), 60);
    if (step % 20 == 0) {
      ASSERT_TRUE(state.verify()) << "step " << step;
    }
  }
  EXPECT_TRUE(state.verify());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChurnTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Speculation unit contract: speculate_swap records the exact cut of the
// cross-side swap without touching the committed state; commit makes it
// current; discard is a perfect no-op.  Two flips are the oracle.
TEST(PartitionSpeculationTest, SwapSpeculationMatchesFlipOracle) {
  util::Rng rng{93};
  const Netlist nl = netlist::random_graph(16, 48, rng);
  PartitionState spec = PartitionState::random(nl, rng);
  PartitionState oracle{spec};
  for (int trial = 0; trial < 200; ++trial) {
    CellId a = static_cast<CellId>(rng.next() % 16);
    while (spec.side(a) != 0) a = static_cast<CellId>(rng.next() % 16);
    CellId b = static_cast<CellId>(rng.next() % 16);
    while (spec.side(b) != 1) b = static_cast<CellId>(rng.next() % 16);
    const int before_cut = spec.cut();
    spec.speculate_swap(a, b);
    oracle.flip(a);
    oracle.flip(b);
    ASSERT_EQ(spec.speculative_cut(), oracle.cut()) << "trial " << trial;
    ASSERT_EQ(spec.cut(), before_cut);  // committed state untouched
    if (trial % 2 == 0) {
      spec.commit_speculation();
      ASSERT_EQ(spec.cut(), oracle.cut());
      ASSERT_EQ(spec.side(a), 1);
      ASSERT_EQ(spec.side(b), 0);
    } else {
      spec.discard_speculation();
      oracle.flip(a);  // undo the oracle
      oracle.flip(b);
      ASSERT_EQ(spec.cut(), before_cut);
    }
    if (trial % 25 == 0) ASSERT_TRUE(spec.verify()) << "trial " << trial;
  }
  EXPECT_TRUE(spec.verify());
}

// Clone regression: a defaulted copy would shrink the speculation scratch
// to zero capacity and silently re-allocate on the worker's first swap.
TEST(PartitionCopyTest, CopyAndAssignReReserveSpeculationScratch) {
  util::Rng rng{91};
  const Netlist nl = netlist::random_graph(16, 48, rng);
  PartitionState state = PartitionState::random(nl, rng);
  ASSERT_TRUE(state.scratch_reserved());

  PartitionState copied{state};
  EXPECT_TRUE(copied.scratch_reserved());

  PartitionState assigned = PartitionState::random(nl, rng);
  assigned = state;
  EXPECT_TRUE(assigned.scratch_reserved());
  EXPECT_EQ(assigned.cut(), state.cut());

  // The copy must also speculate correctly: pick one cell per side.
  CellId a = 0;
  while (copied.side(a) != 0) ++a;
  CellId b = 0;
  while (copied.side(b) != 1) ++b;
  copied.speculate_swap(a, b);
  const int candidate = copied.speculative_cut();
  copied.commit_speculation();
  EXPECT_EQ(copied.cut(), candidate);
  EXPECT_TRUE(copied.verify());
  EXPECT_TRUE(copied.scratch_reserved());
}

}  // namespace
}  // namespace mcopt::partition
