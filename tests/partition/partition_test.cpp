#include "partition/partition.hpp"

#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"

namespace mcopt::partition {
namespace {

Netlist k4() {
  // Complete graph on 4 cells: any balanced bipartition cuts 4 edges.
  Netlist::Builder b{4};
  b.add_net({0, 1});
  b.add_net({0, 2});
  b.add_net({0, 3});
  b.add_net({1, 2});
  b.add_net({1, 3});
  b.add_net({2, 3});
  return b.build();
}

TEST(PartitionStateTest, RejectsBadSides) {
  const Netlist nl = k4();
  EXPECT_THROW((PartitionState{nl, {0, 1, 0}}), std::invalid_argument);
  EXPECT_THROW((PartitionState{nl, {0, 1, 0, 2}}), std::invalid_argument);
}

TEST(PartitionStateTest, CutOfK4Balanced) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  EXPECT_EQ(state.cut(), 4);
  EXPECT_TRUE(state.is_balanced());
  EXPECT_EQ(state.side_count(0), 2u);
  EXPECT_EQ(state.side_count(1), 2u);
}

TEST(PartitionStateTest, DegenerateAllOneSideCutsNothing) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 0, 0}};
  EXPECT_EQ(state.cut(), 0);
  EXPECT_FALSE(state.is_balanced());
}

TEST(PartitionStateTest, FlipUpdatesCutIncrementally) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  state.flip(0);  // 1 0 1 1: cut = edges from cell 1 = 3
  EXPECT_EQ(state.cut(), 3);
  EXPECT_TRUE(state.verify());
  state.flip(0);
  EXPECT_EQ(state.cut(), 4);
  EXPECT_TRUE(state.verify());
}

TEST(PartitionStateTest, SwapPreservesBalance) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  state.swap(0, 2);
  EXPECT_TRUE(state.is_balanced());
  EXPECT_EQ(state.cut(), 4);  // K4 is symmetric
  EXPECT_TRUE(state.verify());
}

TEST(PartitionStateTest, SwapSameSideThrows) {
  const Netlist nl = k4();
  PartitionState state{nl, {0, 0, 1, 1}};
  EXPECT_THROW(state.swap(0, 1), std::invalid_argument);
}

TEST(PartitionStateTest, MultiPinNetCutOnce) {
  // A 3-pin net split 2/1 counts as a single cut net.
  Netlist::Builder b{4};
  b.add_net({0, 1, 2});
  b.add_net({2, 3});
  const Netlist nl = b.build();
  PartitionState state{nl, {0, 0, 1, 1}};
  EXPECT_EQ(state.cut(), 1);  // only the 3-pin net straddles
  state.flip(2);              // 3-pin net healed, but {2,3} now straddles
  EXPECT_EQ(state.cut(), 1);
  EXPECT_TRUE(state.verify());
  state.flip(3);  // everything on side 0: no net cut
  EXPECT_EQ(state.cut(), 0);
  EXPECT_TRUE(state.verify());
}

TEST(PartitionStateTest, RandomIsBalancedAndCeilOnSideZero) {
  util::Rng rng{1};
  const Netlist nl = k4();
  for (int trial = 0; trial < 10; ++trial) {
    const PartitionState state = PartitionState::random(nl, rng);
    EXPECT_TRUE(state.is_balanced());
    EXPECT_EQ(state.side_count(0), 2u);
  }
}

TEST(PartitionStateTest, RandomOddCellCount) {
  Netlist::Builder b{5};
  b.add_net({0, 4});
  const Netlist nl = b.build();
  util::Rng rng{2};
  const PartitionState state = PartitionState::random(nl, rng);
  EXPECT_TRUE(state.is_balanced());
  EXPECT_EQ(state.side_count(0), 3u);  // ceil(5/2)
}

class PartitionChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionChurnTest, IncrementalMatchesRecountUnderChurn) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const Netlist nl = netlist::random_graph(20, 60, rng);
  PartitionState state = PartitionState::random(nl, rng);
  for (int step = 0; step < 400; ++step) {
    const auto c = static_cast<CellId>(rng.next_below(20));
    state.flip(c);
    ASSERT_GE(state.cut(), 0);
    ASSERT_LE(state.cut(), 60);
    if (step % 20 == 0) {
      ASSERT_TRUE(state.verify()) << "step " << step;
    }
  }
  EXPECT_TRUE(state.verify());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChurnTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mcopt::partition
