#include "partition/fm.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/generator.hpp"
#include "partition/kl.hpp"

namespace mcopt::partition {
namespace {

TEST(FmTest, RejectsBadInputs) {
  Netlist::Builder b{4};
  b.add_net({0, 1});
  const Netlist nl = b.build();
  EXPECT_THROW((void)fiduccia_mattheyses(nl, {0, 1}), std::invalid_argument);
  // Start violating the default tolerance of 1.
  EXPECT_THROW((void)fiduccia_mattheyses(nl, {0, 0, 0, 1}),
               std::invalid_argument);
}

TEST(FmTest, AcceptsHypergraphs) {
  // The capability KL lacks: multi-pin nets.
  Netlist::Builder b{6};
  b.add_net({0, 1, 2});
  b.add_net({3, 4, 5});
  b.add_net({2, 3});
  const Netlist nl = b.build();
  // Interleaved start with cut 3.
  const FmResult result = fiduccia_mattheyses(nl, {0, 1, 0, 1, 0, 1});
  EXPECT_EQ(result.cut, 1);  // {0,1,2} | {3,4,5} leaves only net {2,3} cut
}

TEST(FmTest, SolvesTwoCliquesExactly) {
  Netlist::Builder b{8};
  for (CellId i = 0; i < 4; ++i) {
    for (CellId j = i + 1; j < 4; ++j) {
      b.add_net({i, j});
      b.add_net({static_cast<CellId>(i + 4), static_cast<CellId>(j + 4)});
    }
  }
  b.add_net({0, 4});
  const Netlist nl = b.build();
  const FmResult result = fiduccia_mattheyses(nl, {0, 1, 0, 1, 0, 1, 0, 1});
  EXPECT_EQ(result.cut, 1);
}

TEST(FmTest, NeverWorseThanStartAndBalanced) {
  for (int seed = 0; seed < 6; ++seed) {
    util::Rng rng{static_cast<std::uint64_t>(seed)};
    const Netlist nl = netlist::random_graph(31, 90, rng);  // odd cells
    const PartitionState start = PartitionState::random(nl, rng);
    const FmResult result = fiduccia_mattheyses(nl, start.sides());
    EXPECT_LE(result.cut, start.cut()) << "seed " << seed;
    const PartitionState end{nl, result.sides};
    EXPECT_TRUE(end.is_balanced());
    EXPECT_EQ(result.cut, end.cut());
  }
}

TEST(FmTest, HypergraphRunNeverWorseThanStart) {
  for (int seed = 0; seed < 4; ++seed) {
    util::Rng rng{static_cast<std::uint64_t>(100 + seed)};
    const Netlist nl =
        netlist::random_nola(netlist::NolaParams{24, 80, 2, 6}, rng);
    const PartitionState start = PartitionState::random(nl, rng);
    const FmResult result = fiduccia_mattheyses(nl, start.sides());
    EXPECT_LE(result.cut, start.cut());
    EXPECT_EQ(result.cut, (PartitionState{nl, result.sides}.cut()));
  }
}

TEST(FmTest, BalanceToleranceIsRespected) {
  util::Rng rng{7};
  const Netlist nl = netlist::random_graph(20, 60, rng);
  const PartitionState start = PartitionState::random(nl, rng);
  for (const std::size_t tolerance : {std::size_t{1}, std::size_t{4}}) {
    FmOptions options;
    options.balance_tolerance = tolerance;
    const FmResult result =
        fiduccia_mattheyses(nl, start.sides(), options);
    const PartitionState end{nl, result.sides};
    const auto s0 = end.side_count(0);
    const auto s1 = end.side_count(1);
    EXPECT_LE(s0 > s1 ? s0 - s1 : s1 - s0, tolerance);
  }
}

TEST(FmTest, LooserBalanceNeverHurts) {
  util::Rng rng{8};
  const Netlist nl = netlist::random_graph(24, 70, rng);
  const PartitionState start = PartitionState::random(nl, rng);
  FmOptions tight;
  tight.balance_tolerance = 1;  // even n: perfectly balanced
  FmOptions loose;
  loose.balance_tolerance = 6;
  const int tight_cut = fiduccia_mattheyses(nl, start.sides(), tight).cut;
  const int loose_cut = fiduccia_mattheyses(nl, start.sides(), loose).cut;
  EXPECT_LE(loose_cut, tight_cut);
}

TEST(FmTest, ComparableToKlOnGraphs) {
  for (int seed = 0; seed < 5; ++seed) {
    util::Rng rng{static_cast<std::uint64_t>(200 + seed)};
    const Netlist nl = netlist::random_graph(30, 90, rng);
    const PartitionState start = PartitionState::random(nl, rng);
    const int kl_cut = kernighan_lin(nl, start.sides()).cut;
    const int fm_cut = fiduccia_mattheyses(nl, start.sides()).cut;
    // Both are pass-based local heuristics; FM should land in KL's league.
    EXPECT_LE(fm_cut, kl_cut + 6) << "seed " << seed;
  }
}

TEST(FmTest, DeterministicFromFixedStart) {
  util::Rng rng{9};
  const Netlist nl =
      netlist::random_nola(netlist::NolaParams{18, 50, 2, 5}, rng);
  const PartitionState start = PartitionState::random(nl, rng);
  const FmResult a = fiduccia_mattheyses(nl, start.sides());
  const FmResult b = fiduccia_mattheyses(nl, start.sides());
  EXPECT_EQ(a.sides, b.sides);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(FmTest, CountsEvaluationsAndPasses) {
  util::Rng rng{10};
  const Netlist nl = netlist::random_graph(16, 40, rng);
  const FmResult result = fiduccia_mattheyses_random(nl, rng);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GE(result.passes, 1u);
  EXPECT_LE(result.passes, 64u);
}

TEST(FmTest, ConvergedOutputIsAFixpoint) {
  // Once FM stops improving, re-running it from its own output must leave
  // the cut unchanged (the pass found no positive-gain prefix).
  util::Rng rng{11};
  const Netlist nl = netlist::random_graph(18, 50, rng);
  const FmResult first = fiduccia_mattheyses_random(nl, rng);
  const FmResult again = fiduccia_mattheyses(nl, first.sides);
  EXPECT_EQ(again.cut, first.cut);
  EXPECT_EQ(again.passes, 1u);  // the single probing pass, no improvement
}

}  // namespace
}  // namespace mcopt::partition
