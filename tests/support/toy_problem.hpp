// A fully predictable core::Problem for exercising the runners: a walk on a
// ring of positions 0..n-1 with an arbitrary cost landscape.  Random
// perturbations step one position left or right; descend() greedily walks
// to a local minimum, charging one tick per neighbour evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/problem.hpp"

namespace mcopt::testing {

class ToyProblem final : public core::Problem {
 public:
  ToyProblem(std::vector<double> landscape, std::size_t start)
      : landscape_(std::move(landscape)), x_(start) {
    if (landscape_.size() < 3 || start >= landscape_.size()) {
      throw std::invalid_argument("ToyProblem: bad landscape/start");
    }
  }

  [[nodiscard]] double cost() const override { return landscape_[x_]; }

  double propose(util::Rng& rng) override {
    if (pending_) throw std::logic_error("ToyProblem: pending");
    prev_ = x_;
    const std::size_t n = landscape_.size();
    x_ = rng.next_bool(0.5) ? (x_ + 1) % n : (x_ + n - 1) % n;
    pending_ = true;
    return landscape_[x_];
  }

  void accept() override {
    if (!pending_) throw std::logic_error("ToyProblem: nothing pending");
    pending_ = false;
  }

  void reject() override {
    if (!pending_) throw std::logic_error("ToyProblem: nothing pending");
    x_ = prev_;
    pending_ = false;
  }

  void descend(util::WorkBudget& budget) override {
    if (pending_) throw std::logic_error("ToyProblem: pending");
    const std::size_t n = landscape_.size();
    while (!budget.exhausted()) {
      const std::size_t left = (x_ + n - 1) % n;
      const std::size_t right = (x_ + 1) % n;
      budget.charge(2);
      std::size_t next = x_;
      if (landscape_[left] < landscape_[next]) next = left;
      if (landscape_[right] < landscape_[next]) next = right;
      if (next == x_) break;
      x_ = next;
    }
  }

  void randomize(util::Rng& rng) override {
    if (pending_) throw std::logic_error("ToyProblem: pending");
    x_ = static_cast<std::size_t>(rng.next_below(landscape_.size()));
  }

  [[nodiscard]] core::Snapshot snapshot() const override {
    return {static_cast<std::uint32_t>(x_)};
  }

  void restore(const core::Snapshot& snap) override {
    if (snap.size() != 1 || snap[0] >= landscape_.size()) {
      throw std::invalid_argument("ToyProblem: bad snapshot");
    }
    x_ = snap[0];
  }

  [[nodiscard]] std::unique_ptr<core::Problem> clone() const override {
    return std::make_unique<ToyProblem>(*this);
  }

  [[nodiscard]] std::size_t position() const noexcept { return x_; }

 private:
  std::vector<double> landscape_;
  std::size_t x_;
  std::size_t prev_ = 0;
  bool pending_ = false;
};

}  // namespace mcopt::testing
