// Instrumented g functions for runner tests: fixed acceptance probability,
// configurable k, and a record of the temperature index of every
// probability() call.
#pragma once

#include <string>
#include <vector>

#include "core/gfunction.hpp"

namespace mcopt::testing {

class SpyG final : public core::GFunction {
 public:
  SpyG(unsigned k, double p) : k_(k), p_(p) {}

  [[nodiscard]] unsigned num_temperatures() const noexcept override {
    return k_;
  }

  [[nodiscard]] double probability(unsigned t, double /*h_i*/,
                                   double /*h_j*/) const override {
    calls_.push_back(t);
    return p_;
  }

  [[nodiscard]] std::string name() const override { return "SpyG"; }

  [[nodiscard]] const std::vector<unsigned>& calls() const noexcept {
    return calls_;
  }

 private:
  unsigned k_;
  double p_;
  mutable std::vector<unsigned> calls_;
};

}  // namespace mcopt::testing
