#include "netlist/io.hpp"

#include <gtest/gtest.h>
#include <string>

#include <stdexcept>

#include "netlist/generator.hpp"

namespace mcopt::netlist {
namespace {

TEST(IoTest, WritesCanonicalForm) {
  Netlist::Builder b{3};
  b.add_net({0, 1});
  b.add_net({0, 1, 2});
  EXPECT_EQ(to_string(b.build()), "mcnl 1\ncells 3\nnet 0 1\nnet 0 1 2\n");
}

TEST(IoTest, RoundTripsTiny) {
  Netlist::Builder b{4};
  b.add_net({0, 3});
  b.add_net({1, 2, 3});
  const Netlist original = b.build();
  const Netlist parsed = from_string(to_string(original));
  EXPECT_EQ(to_string(parsed), to_string(original));
}

TEST(IoTest, RoundTripsRandomInstances) {
  util::Rng rng{99};
  const Netlist nola = random_nola(NolaParams{15, 150, 2, 6}, rng);
  EXPECT_EQ(to_string(from_string(to_string(nola))), to_string(nola));
}

TEST(IoTest, IgnoresCommentsAndBlankLines) {
  const Netlist nl = from_string(
      "mcnl 1\n"
      "# a comment\n"
      "\n"
      "cells 2\n"
      "   \n"
      "net 0 1\n"
      "# trailing comment\n");
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.num_nets(), 1u);
}

TEST(IoTest, RejectsEmptyInput) {
  EXPECT_THROW((void)from_string(""), std::runtime_error);
  EXPECT_THROW((void)from_string("# only a comment\n"), std::runtime_error);
}

TEST(IoTest, RejectsMissingHeader) {
  EXPECT_THROW(from_string("cells 2\nnet 0 1\n"), std::runtime_error);
}

TEST(IoTest, RejectsWrongVersion) {
  EXPECT_THROW(from_string("mcnl 2\ncells 2\n"), std::runtime_error);
}

TEST(IoTest, RejectsNetBeforeCells) {
  EXPECT_THROW(from_string("mcnl 1\nnet 0 1\n"), std::runtime_error);
}

TEST(IoTest, RejectsDuplicateCellsLine) {
  EXPECT_THROW(from_string("mcnl 1\ncells 2\ncells 3\n"), std::runtime_error);
}

TEST(IoTest, RejectsPinOutOfRange) {
  EXPECT_THROW(from_string("mcnl 1\ncells 2\nnet 0 2\n"), std::runtime_error);
}

TEST(IoTest, RejectsNonNumericPin) {
  EXPECT_THROW(from_string("mcnl 1\ncells 2\nnet 0 x\n"), std::runtime_error);
}

TEST(IoTest, RejectsUnknownKeyword) {
  EXPECT_THROW(from_string("mcnl 1\ncells 2\nfoo 1\n"), std::runtime_error);
}

TEST(IoTest, RejectsMissingCells) {
  EXPECT_THROW(from_string("mcnl 1\n"), std::runtime_error);
}

TEST(IoTest, ErrorMentionsLineNumber) {
  try {
    (void)from_string("mcnl 1\ncells 2\nnet 0 9\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(IoTest, RejectsSinglePinNetInFile) {
  EXPECT_THROW(from_string("mcnl 1\ncells 3\nnet 1\n"), std::runtime_error);
}

}  // namespace
}  // namespace mcopt::netlist
