#include "netlist/stats.hpp"

#include <cstddef>
#include <gtest/gtest.h>
#include <string>

#include <numeric>
#include <sstream>

#include "netlist/generator.hpp"

namespace mcopt::netlist {
namespace {

TEST(StatsTest, EmptyNetlist) {
  Netlist::Builder b{3};
  const NetlistStats stats = compute_stats(b.build());
  EXPECT_EQ(stats.num_cells, 3u);
  EXPECT_EQ(stats.num_nets, 0u);
  EXPECT_EQ(stats.min_degree, 0u);
  EXPECT_EQ(stats.max_degree, 0u);
  EXPECT_FALSE(stats.is_graph);
  EXPECT_TRUE(stats.net_size_histogram.empty());
}

TEST(StatsTest, HandComputedExample) {
  Netlist::Builder b{4};
  b.add_net({0, 1});
  b.add_net({1, 2, 3});
  b.add_net({0, 3});
  const NetlistStats stats = compute_stats(b.build());
  EXPECT_EQ(stats.num_pins, 7u);
  EXPECT_EQ(stats.min_degree, 1u);  // cell 2
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 7.0 / 4.0);
  EXPECT_EQ(stats.min_net_size, 2u);
  EXPECT_EQ(stats.max_net_size, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_net_size, 7.0 / 3.0);
  ASSERT_EQ(stats.net_size_histogram.size(), 4u);
  EXPECT_EQ(stats.net_size_histogram[2], 2u);
  EXPECT_EQ(stats.net_size_histogram[3], 1u);
  ASSERT_EQ(stats.degree_histogram.size(), 3u);
  EXPECT_EQ(stats.degree_histogram[1], 1u);
  EXPECT_EQ(stats.degree_histogram[2], 3u);
}

TEST(StatsTest, HistogramsSumToTotals) {
  util::Rng rng{1};
  const Netlist nl = random_nola(NolaParams{15, 150, 2, 6}, rng);
  const NetlistStats stats = compute_stats(nl);
  EXPECT_EQ(std::accumulate(stats.degree_histogram.begin(),
                            stats.degree_histogram.end(), std::size_t{0}),
            stats.num_cells);
  EXPECT_EQ(std::accumulate(stats.net_size_histogram.begin(),
                            stats.net_size_histogram.end(), std::size_t{0}),
            stats.num_nets);
  // Pin totals line up with both views.
  std::size_t pins_by_size = 0;
  for (std::size_t p = 0; p < stats.net_size_histogram.size(); ++p) {
    pins_by_size += p * stats.net_size_histogram[p];
  }
  EXPECT_EQ(pins_by_size, stats.num_pins);
}

TEST(StatsTest, GolaInstancesProfileAsGraphs) {
  util::Rng rng{2};
  const NetlistStats stats =
      compute_stats(random_gola(GolaParams{15, 150}, rng));
  EXPECT_TRUE(stats.is_graph);
  EXPECT_EQ(stats.min_net_size, 2u);
  EXPECT_EQ(stats.max_net_size, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 20.0);  // 300 pins / 15 cells
}

TEST(StatsTest, NolaNetSizesCoverTheRequestedRange) {
  util::Rng rng{3};
  const NetlistStats stats =
      compute_stats(random_nola(NolaParams{15, 150, 2, 6}, rng));
  EXPECT_EQ(stats.min_net_size, 2u);
  EXPECT_EQ(stats.max_net_size, 6u);
  EXPECT_GT(stats.mean_net_size, 3.0);
  EXPECT_LT(stats.mean_net_size, 5.0);
}

TEST(StatsTest, PrintProducesAllSections) {
  Netlist::Builder b{3};
  b.add_net({0, 1, 2});
  std::ostringstream os;
  print_stats(os, compute_stats(b.build()));
  const std::string text = os.str();
  EXPECT_NE(text.find("cells: 3"), std::string::npos);
  EXPECT_NE(text.find("degree:"), std::string::npos);
  EXPECT_NE(text.find("3-pin x1"), std::string::npos);
}

}  // namespace
}  // namespace mcopt::netlist
