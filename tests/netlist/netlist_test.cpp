#include "netlist/netlist.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace mcopt::netlist {
namespace {

Netlist tiny() {
  // 4 cells; nets: {0,1}, {1,2,3}, {0,3}.
  Netlist::Builder b{4};
  b.add_net({0, 1});
  b.add_net({1, 2, 3});
  b.add_net({0, 3});
  return b.build();
}

TEST(NetlistBuilderTest, RejectsZeroCells) {
  EXPECT_THROW(Netlist::Builder{0}, std::invalid_argument);
}

TEST(NetlistBuilderTest, RejectsOutOfRangePin) {
  Netlist::Builder b{3};
  EXPECT_THROW(b.add_net({0, 3}), std::invalid_argument);
}

TEST(NetlistBuilderTest, RejectsSinglePinNet) {
  Netlist::Builder b{3};
  EXPECT_THROW(b.add_net({1}), std::invalid_argument);
  EXPECT_THROW(b.add_net({1, 1}), std::invalid_argument);  // dup collapses
}

TEST(NetlistBuilderTest, CollapsesDuplicatePins) {
  Netlist::Builder b{3};
  b.add_net({0, 1, 0, 1, 2});
  const Netlist nl = b.build();
  EXPECT_EQ(nl.pins(0).size(), 3u);
}

TEST(NetlistBuilderTest, ReturnsSequentialNetIds) {
  Netlist::Builder b{3};
  EXPECT_EQ(b.add_net({0, 1}), 0u);
  EXPECT_EQ(b.add_net({1, 2}), 1u);
  EXPECT_EQ(b.num_nets(), 2u);
}

TEST(NetlistTest, CountsMatch) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.num_cells(), 4u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_pins(), 7u);
}

TEST(NetlistTest, PinsAreSortedDistinct) {
  const Netlist nl = tiny();
  const auto pins = nl.pins(1);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0], 1u);
  EXPECT_EQ(pins[1], 2u);
  EXPECT_EQ(pins[2], 3u);
}

TEST(NetlistTest, InverseIncidenceIsConsistent) {
  const Netlist nl = tiny();
  // Every (net, pin) pair must appear in the inverse map and vice versa.
  std::size_t forward_pairs = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    for (const CellId c : nl.pins(n)) {
      const auto nets = nl.nets_of(c);
      EXPECT_NE(std::find(nets.begin(), nets.end(), n), nets.end())
          << "net " << n << " missing from cell " << c;
      ++forward_pairs;
    }
  }
  std::size_t inverse_pairs = 0;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    inverse_pairs += nl.nets_of(c).size();
  }
  EXPECT_EQ(forward_pairs, inverse_pairs);
}

TEST(NetlistTest, DegreeCountsIncidentNets) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.degree(0), 2u);
  EXPECT_EQ(nl.degree(1), 2u);
  EXPECT_EQ(nl.degree(2), 1u);
  EXPECT_EQ(nl.degree(3), 2u);
}

TEST(NetlistTest, IsGraphOnlyForAllTwoPinNets) {
  EXPECT_FALSE(tiny().is_graph());

  Netlist::Builder b{3};
  b.add_net({0, 1});
  b.add_net({1, 2});
  EXPECT_TRUE(b.build().is_graph());
}

TEST(NetlistTest, EmptyNetlistIsNotAGraph) {
  Netlist::Builder b{2};
  EXPECT_FALSE(b.build().is_graph());
}

TEST(NetlistTest, MaxNetSize) {
  EXPECT_EQ(tiny().max_net_size(), 3u);
  Netlist::Builder b{2};
  EXPECT_EQ(b.build().max_net_size(), 0u);
}

TEST(NetlistTest, ParallelNetsAreKept) {
  Netlist::Builder b{2};
  b.add_net({0, 1});
  b.add_net({0, 1});
  const Netlist nl = b.build();
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.degree(0), 2u);
}

TEST(NetlistTest, DefaultConstructedIsEmpty) {
  Netlist nl;
  EXPECT_EQ(nl.num_cells(), 0u);
  EXPECT_EQ(nl.num_nets(), 0u);
  EXPECT_EQ(nl.max_net_size(), 0u);
}

}  // namespace
}  // namespace mcopt::netlist
