#include "netlist/generator.hpp"

#include <cstddef>
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/io.hpp"

namespace mcopt::netlist {
namespace {

TEST(RandomGolaTest, MatchesRequestedShape) {
  util::Rng rng{1};
  const Netlist nl = random_gola(GolaParams{15, 150}, rng);
  EXPECT_EQ(nl.num_cells(), 15u);
  EXPECT_EQ(nl.num_nets(), 150u);
  EXPECT_TRUE(nl.is_graph());
}

TEST(RandomGolaTest, RejectsDegenerateCellCount) {
  util::Rng rng{1};
  EXPECT_THROW(random_gola(GolaParams{1, 5}, rng), std::invalid_argument);
}

TEST(RandomGolaTest, NoSelfLoops) {
  util::Rng rng{2};
  const Netlist nl = random_gola(GolaParams{5, 500}, rng);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto pins = nl.pins(n);
    ASSERT_EQ(pins.size(), 2u);
    EXPECT_NE(pins[0], pins[1]);
  }
}

TEST(RandomNolaTest, PinCountsWithinRange) {
  util::Rng rng{3};
  const NolaParams params{15, 150, 2, 6};
  const Netlist nl = random_nola(params, rng);
  EXPECT_EQ(nl.num_cells(), 15u);
  EXPECT_EQ(nl.num_nets(), 150u);
  bool saw_multi = false;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto size = nl.pins(n).size();
    ASSERT_GE(size, 2u);
    ASSERT_LE(size, 6u);
    saw_multi |= size > 2;
  }
  EXPECT_TRUE(saw_multi) << "150 draws from [2,6] should include a >2-pin net";
}

TEST(RandomNolaTest, RejectsBadPinRange) {
  util::Rng rng{4};
  EXPECT_THROW(random_nola(NolaParams{15, 10, 1, 4}, rng),
               std::invalid_argument);
  EXPECT_THROW(random_nola(NolaParams{15, 10, 5, 4}, rng),
               std::invalid_argument);
  EXPECT_THROW(random_nola(NolaParams{15, 10, 2, 16}, rng),
               std::invalid_argument);
}

TEST(RandomNolaTest, AllPinsDistinctWithinNet) {
  util::Rng rng{5};
  const Netlist nl = random_nola(NolaParams{8, 200, 2, 8}, rng);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto pins = nl.pins(n);
    for (std::size_t i = 1; i < pins.size(); ++i) {
      EXPECT_LT(pins[i - 1], pins[i]);  // sorted distinct
    }
  }
}

TEST(TestSetTest, IsDeterministicInMasterSeed) {
  const auto a = gola_test_set(5, GolaParams{15, 150}, 1985);
  const auto b = gola_test_set(5, GolaParams{15, 150}, 1985);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(to_string(a[i]), to_string(b[i])) << "instance " << i;
  }
}

TEST(TestSetTest, PrefixStableWhenCountGrows) {
  // Instance i must not depend on how many instances were requested.
  const auto small = gola_test_set(3, GolaParams{15, 150}, 7);
  const auto large = gola_test_set(10, GolaParams{15, 150}, 7);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(to_string(small[i]), to_string(large[i]));
  }
}

TEST(TestSetTest, InstancesDiffer) {
  const auto set = gola_test_set(2, GolaParams{15, 150}, 11);
  EXPECT_NE(to_string(set[0]), to_string(set[1]));
}

TEST(TestSetTest, DifferentSeedsDifferentSets) {
  const auto a = gola_test_set(1, GolaParams{15, 150}, 1);
  const auto b = gola_test_set(1, GolaParams{15, 150}, 2);
  EXPECT_NE(to_string(a[0]), to_string(b[0]));
}

TEST(TestSetTest, NolaSetMatchesPaperShape) {
  const auto set = nola_test_set(30, NolaParams{}, 1985);
  ASSERT_EQ(set.size(), 30u);
  for (const auto& nl : set) {
    EXPECT_EQ(nl.num_cells(), 15u);
    EXPECT_EQ(nl.num_nets(), 150u);
  }
}

TEST(RandomGraphTest, ProducesGraph) {
  util::Rng rng{6};
  const Netlist nl = random_graph(40, 100, rng);
  EXPECT_EQ(nl.num_cells(), 40u);
  EXPECT_EQ(nl.num_nets(), 100u);
  EXPECT_TRUE(nl.is_graph());
}

}  // namespace
}  // namespace mcopt::netlist
