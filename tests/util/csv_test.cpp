#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mcopt::util {
namespace {

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("3.14"), "3.14");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlinesTriggerQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
}

TEST(CsvWriterTest, WritesRows) {
  std::ostringstream os;
  CsvWriter w{os};
  w.row({"g function", "6 sec", "9 sec"});
  w.row({"g = 1", "598", "605"});
  EXPECT_EQ(os.str(), "g function,6 sec,9 sec\ng = 1,598,605\n");
}

TEST(CsvWriterTest, EmptyRowIsBlankLine) {
  std::ostringstream os;
  CsvWriter w{os};
  w.row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(CsvWriterTest, SingleFieldNoComma) {
  std::ostringstream os;
  CsvWriter w{os};
  w.row({"only"});
  EXPECT_EQ(os.str(), "only\n");
}

TEST(CsvWriterTest, MixedEscapedAndPlain) {
  std::ostringstream os;
  CsvWriter w{os};
  w.row({"a", "b,c", "d\"e"});
  EXPECT_EQ(os.str(), "a,\"b,c\",\"d\"\"e\"\n");
}

}  // namespace
}  // namespace mcopt::util
