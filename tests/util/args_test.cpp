#include "util/args.hpp"

#include <gtest/gtest.h>
#include <initializer_list>
#include <vector>

#include <stdexcept>

namespace mcopt::util {
namespace {

Args parse(std::initializer_list<const char*> words) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), words.begin(), words.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, EmptyCommandLine) {
  const Args args(0, nullptr);
  EXPECT_TRUE(args.program().empty());
  EXPECT_TRUE(args.positional().empty());
  EXPECT_FALSE(args.has("anything"));
}

TEST(ArgsTest, PositionalWordsKeepOrder) {
  const Args args = parse({"solve", "input.mcnl"});
  EXPECT_EQ(args.program(), "prog");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "solve");
  EXPECT_EQ(args.positional()[1], "input.mcnl");
}

TEST(ArgsTest, FlagWithSeparateValue) {
  const Args args = parse({"--budget", "5000"});
  EXPECT_TRUE(args.has("budget"));
  EXPECT_EQ(args.get("budget", ""), "5000");
  EXPECT_EQ(args.get_int("budget", 0), 5000);
}

TEST(ArgsTest, FlagWithEqualsValue) {
  const Args args = parse({"--method=g1", "--scale=0.5"});
  EXPECT_EQ(args.get("method", "?"), "g1");
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 0.5);
}

TEST(ArgsTest, BooleanFlagBeforeAnotherFlag) {
  const Args args = parse({"--verbose", "--budget", "10"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.value("verbose").has_value());
  EXPECT_EQ(args.get_int("budget", 0), 10);
}

TEST(ArgsTest, TrailingBooleanFlag) {
  const Args args = parse({"--dry-run"});
  EXPECT_TRUE(args.has("dry-run"));
  EXPECT_FALSE(args.value("dry-run").has_value());
}

TEST(ArgsTest, RepeatedFlagKeepsLast) {
  const Args args = parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(args.get_int("seed", 0), 2);
}

TEST(ArgsTest, DefaultsWhenAbsent) {
  const Args args = parse({});
  EXPECT_EQ(args.get("method", "g1"), "g1");
  EXPECT_EQ(args.get_int("budget", 600), 600);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.5), 1.5);
}

TEST(ArgsTest, BadNumbersThrow) {
  const Args args = parse({"--budget", "12x", "--scale", "abc"});
  EXPECT_THROW((void)args.get_int("budget", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("scale", 0.0), std::invalid_argument);
}

TEST(ArgsTest, NegativeNumbersParseAsValues) {
  // "-5" does not start with "--", so it is consumed as the flag's value.
  const Args args = parse({"--delta", "-5"});
  EXPECT_EQ(args.get_int("delta", 0), -5);
}

TEST(ArgsTest, DoubleDashAloneIsPositional) {
  const Args args = parse({"--", "file"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "--");
}

TEST(ArgsTest, UnknownFlagDetection) {
  const Args args = parse({"--budget", "5", "--typo", "x"});
  const auto unknown = args.unknown_flags({"budget", "seed"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace mcopt::util
