#include "util/budget.hpp"

#include <gtest/gtest.h>

namespace mcopt::util {
namespace {

TEST(WorkBudgetTest, DefaultIsEmpty) {
  WorkBudget budget;
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.total(), 0u);
  EXPECT_EQ(budget.remaining(), 0u);
}

TEST(WorkBudgetTest, ChargesUntilExhausted) {
  WorkBudget budget{3};
  EXPECT_FALSE(budget.exhausted());
  budget.charge();
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.remaining(), 2u);
  budget.charge(2);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.remaining(), 0u);
  EXPECT_EQ(budget.spent(), 3u);
}

TEST(WorkBudgetTest, OverchargeKeepsCounting) {
  WorkBudget budget{2};
  budget.charge(10);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.spent(), 10u);
  EXPECT_EQ(budget.remaining(), 0u);
}

TEST(WorkBudgetTest, ProgressClampsToOne) {
  WorkBudget budget{4};
  EXPECT_DOUBLE_EQ(budget.progress(), 0.0);
  budget.charge(2);
  EXPECT_DOUBLE_EQ(budget.progress(), 0.5);
  budget.charge(10);
  EXPECT_DOUBLE_EQ(budget.progress(), 1.0);
}

TEST(WorkBudgetTest, EmptyBudgetProgressIsOne) {
  WorkBudget budget{0};
  EXPECT_DOUBLE_EQ(budget.progress(), 1.0);
}

TEST(WorkBudgetTest, SliceEndsPartitionTheBudget) {
  WorkBudget budget{60};
  // 6 slices of 10: ends at 10, 20, 30, 40, 50, 60.
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(budget.slice_end(6, i), 10u * (i + 1));
  }
}

TEST(WorkBudgetTest, FinalSliceAbsorbsRemainder) {
  WorkBudget budget{100};
  // floor(100/6) = 16 per slice; the last ends at 100, not 96.
  EXPECT_EQ(budget.slice_end(6, 0), 16u);
  EXPECT_EQ(budget.slice_end(6, 4), 80u);
  EXPECT_EQ(budget.slice_end(6, 5), 100u);
}

TEST(WorkBudgetTest, SingleSliceIsWholeBudget) {
  WorkBudget budget{37};
  EXPECT_EQ(budget.slice_end(1, 0), 37u);
}

TEST(WorkBudgetTest, SliceIndexBeyondScheduleClampsToTotal) {
  WorkBudget budget{30};
  EXPECT_EQ(budget.slice_end(3, 7), 30u);
  EXPECT_EQ(budget.slice_end(0, 0), 30u);
}

TEST(WorkBudgetTest, BudgetSmallerThanKGivesEmptyEarlySlices) {
  WorkBudget budget{4};
  // floor(4/6) = 0: the first five slices are empty, the last takes all 4.
  EXPECT_EQ(budget.slice_end(6, 0), 0u);
  EXPECT_EQ(budget.slice_end(6, 5), 4u);
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100'000; ++i) sink = sink + 1.0;
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace mcopt::util
