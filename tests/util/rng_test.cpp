#include "util/rng.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <utility>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <vector>

namespace mcopt::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng{0};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next());
  EXPECT_GT(seen.size(), 95u);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng{9};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowNearUint64Max) {
  // Lemire's rejection path with bounds close to 2^64: the multiply-shift
  // result must stay strictly below the bound and the loop must terminate.
  Rng rng{97};
  const std::uint64_t max = ~std::uint64_t{0};
  for (const std::uint64_t bound : {max, max - 1, (max >> 1) + 1}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, GoldenStreamForSeed1985) {
  // Bit-exact reproducibility contract: every table in EXPERIMENTS.md is
  // regenerated from fixed seeds, so the raw stream must never change.  If
  // this test fails, the generator changed and all archived seeds are void.
  Rng rng{1985};
  const std::uint64_t expected[16] = {
      0xb98377009519be97ULL, 0xefd67cf4698ed386ULL, 0xad310b5f9ce94672ULL,
      0xd0114a49762eb013ULL, 0xbbdbf22dd994ba2cULL, 0x78bff3d624ada501ULL,
      0x946e060eecc74d79ULL, 0x5e82a18a4ed42dbcULL, 0x67bfb1b7c270c7aaULL,
      0x23c9b4b79b740990ULL, 0xbd5828b62a9f0866ULL, 0xd7a505210e1af910ULL,
      0x10cc1ed8348ac0b7ULL, 0xc10955ef51cdabb1ULL, 0xa351291244729801ULL,
      0x2e75629f6f76c15aULL};
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(rng.next(), expected[i]) << "stream diverged at output " << i;
  }
  // The default seed's first output is pinned too (examples rely on it).
  Rng default_seeded{};
  EXPECT_EQ(default_seeded.next(), 0x58f24f57e97e3f07ULL);
}

TEST(RngTest, NextIntDegenerateRange) {
  Rng rng{101};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_int(7, 7), 7);
    EXPECT_EQ(rng.next_int(-3, -3), -3);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng{13};
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  // Expected 10k per bucket; 4-sigma band ~ +-380.
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng{17};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng{19};
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng{23};
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, NextDoubleRangeBounds) {
  Rng rng{29};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(5.0, 7.0);
    ASSERT_GE(d, 5.0);
    ASSERT_LT(d, 7.0);
  }
}

TEST(RngTest, NextBoolSaturates) {
  Rng rng{31};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_FALSE(rng.next_bool(-1.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_TRUE(rng.next_bool(2.0));
  }
}

TEST(RngTest, NextBoolFrequencyTracksP) {
  Rng rng{37};
  int hits = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng{41};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleHandlesSmallContainers) {
  Rng rng{43};
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ShuffleVisitsAllPermutations) {
  Rng rng{47};
  std::map<std::vector<int>, int> counts;
  for (int i = 0; i < 6000; ++i) {
    std::vector<int> v{1, 2, 3};
    rng.shuffle(v);
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6u);  // 3! arrangements all reachable
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(count, 1000, 200);
  }
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng parent{53};
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal12 = 0;
  int equal1p = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = child1.next();
    const auto b = child2.next();
    const auto p = parent.next();
    equal12 += a == b;
    equal1p += a == p;
  }
  EXPECT_LT(equal12, 3);
  EXPECT_LT(equal1p, 3);
}

TEST(RngTest, DistinctPairIsDistinctAndInRange) {
  Rng rng{59};
  for (int i = 0; i < 5000; ++i) {
    const auto [a, b] = rng.next_distinct_pair(5);
    ASSERT_NE(a, b);
    ASSERT_LT(a, 5u);
    ASSERT_LT(b, 5u);
  }
}

TEST(RngTest, DistinctPairCoversAllOrderedPairs) {
  Rng rng{61};
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.next_distinct_pair(4));
  EXPECT_EQ(seen.size(), 12u);  // 4*3 ordered pairs
}

TEST(RngTest, DistinctPairMinimalDomain) {
  Rng rng{67};
  for (int i = 0; i < 100; ++i) {
    const auto [a, b] = rng.next_distinct_pair(2);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 2u);
    EXPECT_LT(b, 2u);
  }
}

TEST(SplitmixTest, KnownSequenceIsStable) {
  // Regression pin: derive_seed must never change, or every archived
  // experiment seed in EXPERIMENTS.md silently shifts.
  std::uint64_t x = 0;
  const std::uint64_t first = splitmix64(x);
  const std::uint64_t second = splitmix64(x);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

TEST(DeriveSeedTest, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_seed(12345, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

TEST(RngSplitTest, GoldenVectors) {
  // Pinned first outputs of Rng::split(0x1985, stream) for streams 0/1/7.
  // These freeze the master-seed -> per-stream derivation that both
  // multistart() and parallel_multistart() replay restarts from; changing
  // splitmix64, xoshiro256++ or the derivation silently invalidates every
  // seed-pinned experiment, so it must fail loudly here instead.
  const std::map<std::uint64_t, std::array<std::uint64_t, 4>> golden{
      {0, {0x521767235bda902eULL, 0x4bb5789fce031640ULL,
           0xb32a0a49a0962362ULL, 0x5addcd8d93f53f6fULL}},
      {1, {0xb19bf4fb7f096f4aULL, 0x88aaa722c5014064ULL,
           0x1ff1394933471248ULL, 0x630ee5a92e299e02ULL}},
      {7, {0x6b024d8eaec89202ULL, 0x939a6e55ba745cf7ULL,
           0xb71c0e2324ff22d1ULL, 0x43f2dfe41c98736cULL}},
  };
  for (const auto& [stream, expected] : golden) {
    Rng rng = Rng::split(0x1985ULL, stream);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(rng.next(), expected[i])
          << "stream " << stream << " output " << i;
    }
  }
}

TEST(RngSplitTest, EquivalentToDeriveSeed) {
  Rng split = Rng::split(0x1985ULL, 7);
  Rng derived{derive_seed(0x1985ULL, 7)};
  for (int i = 0; i < 64; ++i) ASSERT_EQ(split.next(), derived.next());
}

TEST(RngSplitTest, StreamsShareNoEarlyOutputs) {
  // Neighbouring restart streams must look unrelated: across the first 16
  // outputs of 32 adjacent streams, no 64-bit value may repeat (a collision
  // among 512 draws from 2^64 signals correlated seeding, not chance).
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 32; ++stream) {
    Rng rng = Rng::split(42ULL, stream);
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(seen.insert(rng.next()).second)
          << "collision in stream " << stream << " output " << i;
    }
  }
}

TEST(RngSplitTest, DistinctMastersDistinctStreams) {
  Rng a = Rng::split(1, 0);
  Rng b = Rng::split(2, 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

class RngUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformityTest, BitBalance) {
  // Every output bit should be set ~half the time regardless of seed.
  Rng rng{GetParam()};
  constexpr int kDraws = 4096;
  std::array<int, 64> ones{};
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t v = rng.next();
    for (int bit = 0; bit < 64; ++bit) {
      ones[bit] += (v >> bit) & 1;
    }
  }
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NEAR(ones[bit], kDraws / 2, 220) << "bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformityTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1985ULL,
                                           0xffffffffffffffffULL));

TEST(RngTest, NextBlockMatchesRepeatedNext) {
  // The block-draw fast path must be stream-identical to calling next()
  // once per word — including odd lengths and back-to-back blocks.
  Rng block_rng{1985};
  Rng scalar_rng{1985};
  std::array<std::uint64_t, 300> block{};
  block_rng.next_block(block.data(), 257);
  for (std::size_t i = 0; i < 257; ++i) {
    ASSERT_EQ(block[i], scalar_rng.next()) << "word " << i;
  }
  block_rng.next_block(block.data(), 3);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(block[i], scalar_rng.next()) << "word " << i;
  }
  // The generators stay aligned after the blocks.
  EXPECT_EQ(block_rng.next(), scalar_rng.next());
  // A zero-length block is a no-op.
  block_rng.next_block(block.data(), 0);
  EXPECT_EQ(block_rng.next(), scalar_rng.next());
}

}  // namespace
}  // namespace mcopt::util
