#include "util/table.hpp"

#include <gtest/gtest.h>
#include <string>

#include <sstream>
#include <vector>

namespace mcopt::util {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(TableTest, HeaderAndRuleOnly) {
  Table t;
  t.add_column("name", Table::Align::kLeft);
  t.add_column("value");
  const auto lines = lines_of(t.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "name  value");
  EXPECT_EQ(lines[1], "----  -----");
}

TEST(TableTest, RightAlignsNumbers) {
  Table t;
  t.add_column("g function", Table::Align::kLeft);
  t.add_column("6 sec");
  t.begin_row();
  t.cell("Goto");
  t.cell(601);
  t.begin_row();
  t.cell("g = 1");
  t.cell(5);
  const auto lines = lines_of(t.str());
  ASSERT_EQ(lines.size(), 4u);
  // Column 0 is 10 wide ("g function"), column 1 is 5 wide ("6 sec"),
  // separated by two spaces.
  EXPECT_EQ(lines[2], "Goto          601");
  EXPECT_EQ(lines[3], "g = 1           5");
}

TEST(TableTest, ColumnWidensToWidestCell) {
  Table t;
  t.add_column("x");
  t.begin_row();
  t.cell("wiiiiiide");
  const auto lines = lines_of(t.str());
  EXPECT_EQ(lines[0], "        x");
  EXPECT_EQ(lines[1], "---------");
  EXPECT_EQ(lines[2], "wiiiiiide");
}

TEST(TableTest, ShortRowsPadWithEmptyCells) {
  Table t;
  t.add_column("a", Table::Align::kLeft);
  t.add_column("b");
  t.begin_row();
  t.cell("only");
  const auto lines = lines_of(t.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "only   ");
}

TEST(TableTest, OverlongRowsAreTruncatedToColumns) {
  Table t;
  t.add_column("a");
  t.begin_row();
  t.cell("1");
  t.cell("ignored");
  const auto lines = lines_of(t.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "1");
}

TEST(TableTest, DoubleCellUsesFixedPrecision) {
  Table t;
  t.add_column("v");
  t.begin_row();
  t.cell(3.14159, 2);
  t.begin_row();
  t.cell(2.0, 0);
  const auto lines = lines_of(t.str());
  EXPECT_EQ(lines[2], "3.14");
  EXPECT_EQ(lines[3], "   2");
}

TEST(TableTest, CellWithoutBeginRowStartsARow) {
  Table t;
  t.add_column("v");
  t.cell(7);
  EXPECT_EQ(t.rows(), 1u);
  const auto lines = lines_of(t.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "7");
}

TEST(TableTest, HeadersAndDataExposeRawCells) {
  Table t;
  t.add_column("g function", Table::Align::kLeft);
  t.add_column("6 sec");
  t.begin_row();
  t.cell("g = 1");
  t.cell(598);
  const auto headers = t.headers();
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0], "g function");
  EXPECT_EQ(headers[1], "6 sec");
  ASSERT_EQ(t.data().size(), 1u);
  EXPECT_EQ(t.data()[0],
            (std::vector<std::string>{"g = 1", "598"}));
}

TEST(TableTest, NegativeAndUnsignedCells) {
  Table t;
  t.add_column("v");
  t.begin_row();
  t.cell(-42);
  t.begin_row();
  t.cell(18446744073709551615ULL);
  const auto lines = lines_of(t.str());
  EXPECT_EQ(lines[2], "                 -42");
  EXPECT_EQ(lines[3], "18446744073709551615");
}

}  // namespace
}  // namespace mcopt::util
