#include "util/stats.hpp"

#include <gtest/gtest.h>
#include <vector>

#include <cmath>

namespace mcopt::util {
namespace {

TEST(SummaryTest, EmptySummaryIsZeroes) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.sum(), 42.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 50.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i + 7.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  Summary empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  Summary target;
  target.merge(s);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(MedianTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(MedianTest, OddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(MedianTest, EvenCountAveragesMiddle) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(MedianTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(median({9.0, -1.0, 5.0, 5.0, 0.0}), 5.0);
}

TEST(PercentileTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(PercentileTest, EndpointsAreMinMax) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(PercentileTest, ClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 400), 3.0);
}

TEST(PercentileTest, MedianAgreesWithMedianFunction) {
  const std::vector<double> xs{7.0, 3.0, 9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), median(xs));
}

}  // namespace
}  // namespace mcopt::util
