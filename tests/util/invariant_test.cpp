#include "util/invariant.hpp"

#include <gtest/gtest.h>
#include <string>

namespace mcopt::util {
namespace {

TEST(InvariantTest, TrueConditionNeverThrows) {
  EXPECT_NO_THROW(MCOPT_CHECK(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(MCOPT_DCHECK(true, "trivial"));
}

TEST(InvariantTest, FalseConditionThrowsWhenEnabled) {
  if constexpr (kInvariantsEnabled) {
    EXPECT_THROW(MCOPT_CHECK(false, "must fire"), InvariantViolation);
  } else {
    EXPECT_NO_THROW(MCOPT_CHECK(false, "compiled out"));
  }
}

TEST(InvariantTest, DisabledCheckDoesNotEvaluateCondition) {
  // When compiled out the condition sits in an unevaluated sizeof context;
  // when compiled in it runs exactly once.  Either way, never twice.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return true;
  };
  MCOPT_CHECK(count(), "side-effect probe");
  EXPECT_EQ(evaluations, kInvariantsEnabled ? 1 : 0);
}

TEST(InvariantTest, FailureMessageCarriesLocationAndText) {
  if constexpr (kInvariantsEnabled) {
    try {
      MCOPT_CHECK(2 < 1, "ordering broke");
      FAIL() << "MCOPT_CHECK(false) did not throw";
    } catch (const InvariantViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("invariant_test.cpp"), std::string::npos) << what;
      EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
      EXPECT_NE(what.find("ordering broke"), std::string::npos) << what;
    }
  }
}

TEST(InvariantTest, StatsAccumulate) {
  InvariantStats a;
  InvariantStats b;
  a.executed = 3;
  b.executed = 4;
  a += b;
  EXPECT_EQ(a.executed, 7u);
  EXPECT_EQ(b.executed, 4u);
}

TEST(InvariantTest, InvariantFailureFormatsWithoutMessage) {
  EXPECT_THROW(invariant_failure("f.cpp", 7, "x == y", ""),
               InvariantViolation);
  try {
    invariant_failure("f.cpp", 7, "x == y", nullptr);
  } catch (const InvariantViolation& e) {
    EXPECT_STREQ(e.what(), "f.cpp:7: invariant violated: x == y");
  }
}

}  // namespace
}  // namespace mcopt::util
