// Shared bench-driver flag parsing (bench/common): the side-effect-free
// parse_driver_options path, including the validation satellite — zero or
// negative numeric flags must be rejected with an error naming the flag.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common.hpp"
#include "obs/flight.hpp"

namespace mcopt::bench {
namespace {

std::optional<DriverOptions> parse(std::vector<const char*> argv,
                                   std::string* error) {
  argv.insert(argv.begin(), "driver");
  return parse_driver_options(static_cast<int>(argv.size()), argv.data(),
                              error);
}

TEST(DriverFlagsTest, DefaultsWhenNoFlagsGiven) {
  std::string error;
  const auto opts = parse({}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->threads, 1u);
  EXPECT_EQ(opts->trace_sample, 1u);
  EXPECT_TRUE(opts->trace_path.empty());
  EXPECT_TRUE(opts->metrics_path.empty());
  EXPECT_TRUE(opts->profile_path.empty());
  EXPECT_TRUE(opts->prom_path.empty());
  EXPECT_EQ(opts->progress_interval, 0.0);
  EXPECT_EQ(opts->flight_capacity, 0u);
  EXPECT_EQ(opts->flight_path, "flight.jsonl");
  EXPECT_FALSE(opts->quiet);
  EXPECT_FALSE(opts->verbose);
}

TEST(DriverFlagsTest, BareFlightRecorderUsesDefaultCapacity) {
  std::string error;
  const auto opts = parse({"--flight-recorder"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->flight_capacity, obs::FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(opts->flight_path, "flight.jsonl");
}

TEST(DriverFlagsTest, FlightRecorderCapacityAndPathParse) {
  std::string error;
  const auto opts = parse(
      {"--flight-recorder", "128", "--flight-out", "tail.jsonl"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->flight_capacity, 128u);
  EXPECT_EQ(opts->flight_path, "tail.jsonl");
}

TEST(DriverFlagsTest, FlightOutWithoutFlightRecorderIsAnError) {
  std::string error;
  EXPECT_FALSE(parse({"--flight-out", "tail.jsonl"}, &error).has_value());
  EXPECT_NE(error.find("--flight-out"), std::string::npos) << error;
  EXPECT_NE(error.find("--flight-recorder"), std::string::npos) << error;
}

TEST(DriverFlagsTest, RejectsNonPositiveFlightCapacity) {
  for (const char* value : {"0", "-8", "big"}) {
    std::string error;
    EXPECT_FALSE(
        parse({"--flight-recorder", value}, &error).has_value())
        << value;
    EXPECT_NE(error.find("--flight-recorder"), std::string::npos) << error;
  }
}

TEST(DriverFlagsTest, ParsesEveryObservabilityFlag) {
  std::string error;
  const auto opts = parse({"--threads", "4", "--trace", "t.jsonl",
                           "--metrics-out", "m.json", "--profile-out",
                           "p.json", "--prom-out", "prom.txt",
                           "--trace-sample", "16", "--progress", "0.5",
                           "--verbose"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->threads, 4u);
  EXPECT_EQ(opts->trace_path, "t.jsonl");
  EXPECT_EQ(opts->metrics_path, "m.json");
  EXPECT_EQ(opts->profile_path, "p.json");
  EXPECT_EQ(opts->prom_path, "prom.txt");
  EXPECT_EQ(opts->trace_sample, 16u);
  EXPECT_DOUBLE_EQ(opts->progress_interval, 0.5);
  EXPECT_TRUE(opts->verbose);
}

TEST(DriverFlagsTest, MetricsAliasStillWorks) {
  std::string error;
  const auto opts = parse({"--metrics", "m.json"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->metrics_path, "m.json");
}

TEST(DriverFlagsTest, BareProgressFlagUsesDefaultInterval) {
  std::string error;
  const auto opts = parse({"--progress"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_DOUBLE_EQ(opts->progress_interval, 2.0);
}

TEST(DriverFlagsTest, RejectsZeroAndNegativeNumericFlags) {
  const std::vector<std::vector<const char*>> bad_cases{
      {"--trace-sample", "0"},
      {"--trace-sample", "-4"},
      {"--threads", "0"},
      {"--threads", "-1"},
      {"--progress", "-2"},
  };
  for (const auto& flags : bad_cases) {
    std::string error;
    const auto opts = parse(flags, &error);
    EXPECT_FALSE(opts.has_value()) << flags[0] << " " << flags[1];
    // The error must name the offending flag so the user can fix it.
    EXPECT_NE(error.find(flags[0]), std::string::npos) << error;
  }
}

TEST(DriverFlagsTest, RejectsNonNumericValues) {
  std::string error;
  EXPECT_FALSE(parse({"--trace-sample", "lots"}, &error).has_value());
  EXPECT_NE(error.find("--trace-sample"), std::string::npos) << error;
  EXPECT_NE(error.find("lots"), std::string::npos) << error;
}

TEST(DriverFlagsTest, RejectsUnknownFlagsAndPositionals) {
  std::string error;
  EXPECT_FALSE(parse({"--frobnicate"}, &error).has_value());
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(parse({"stray"}, &error).has_value());
  EXPECT_NE(error.find("stray"), std::string::npos) << error;
}

TEST(DriverFlagsTest, TimelineOutParsesAndImpliesNothingElse) {
  std::string error;
  const auto opts = parse({"--timeline-out", "tl.json"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->timeline_path, "tl.json");
  EXPECT_TRUE(opts->profile_path.empty());
  EXPECT_TRUE(opts->perf_counters.empty());
}

TEST(DriverFlagsTest, TimelineOutRejectsEmptyPathNamingTheFlag) {
  std::string error;
  EXPECT_FALSE(parse({"--timeline-out"}, &error).has_value());
  EXPECT_NE(error.find("--timeline-out"), std::string::npos) << error;
  EXPECT_NE(error.find("file path"), std::string::npos) << error;
}

TEST(DriverFlagsTest, BarePerfCountersSelectsEveryCounter) {
  std::string error;
  const auto opts = parse({"--perf-counters"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->perf_counters.size(), obs::all_perf_counters().size());
}

TEST(DriverFlagsTest, PerfCountersListParses) {
  std::string error;
  const auto opts =
      parse({"--perf-counters", "cycles,task-clock"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  ASSERT_EQ(opts->perf_counters.size(), 2u);
  EXPECT_EQ(opts->perf_counters[0], obs::PerfCounter::kCycles);
  EXPECT_EQ(opts->perf_counters[1], obs::PerfCounter::kTaskClock);
}

TEST(DriverFlagsTest, PerfCountersRejectsUnknownNamesByName) {
  std::string error;
  EXPECT_FALSE(
      parse({"--perf-counters", "cycles,zeppelins"}, &error).has_value());
  EXPECT_NE(error.find("--perf-counters"), std::string::npos) << error;
  EXPECT_NE(error.find("zeppelins"), std::string::npos) << error;
  // The known vocabulary is listed so the user can self-correct.
  EXPECT_NE(error.find("task-clock"), std::string::npos) << error;
}

TEST(DriverFlagsTest, TimelineAndPerfCombineWithOtherObservability) {
  std::string error;
  const auto opts = parse({"--timeline-out", "tl.json", "--perf-counters",
                           "task-clock", "--profile-out", "p.json",
                           "--threads", "2"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->timeline_path, "tl.json");
  EXPECT_EQ(opts->perf_counters.size(), 1u);
  EXPECT_EQ(opts->profile_path, "p.json");
  EXPECT_EQ(opts->threads, 2u);
}

TEST(DriverFlagsTest, QuietAndVerboseConflict) {
  std::string error;
  EXPECT_FALSE(parse({"--quiet", "--verbose"}, &error).has_value());
  EXPECT_NE(error.find("--quiet"), std::string::npos) << error;
  EXPECT_NE(error.find("--verbose"), std::string::npos) << error;
}

}  // namespace
}  // namespace mcopt::bench
