// Table 4.1 — GOLA, Figure 1 strategy, random starts (§4.2.2).
//
// 30 random instances (15 elements, 150 two-pin nets), pairwise
// interchange, each of the 20 g classes plus [COHO83a]'s g at 6/9/12
// "seconds" (tick budgets), after the §4.2.1 temperature-tuning pass.  The
// Goto heuristic row reports the reduction its construction achieves versus
// the random starts.  Paper values are printed alongside for shape
// comparison (ours use different random instances and RNG, so only
// relative ordering is expected to match).
#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/budget.hpp"
#include "util/table.hpp"

namespace {

// The published Table 4.1 entries, row label -> {6 s, 9 s, 12 s}.
const std::map<std::string, std::array<int, 3>> kPaper41{
    {"[COHO83a]", {474, 505, 519}},
    {"Metropolis", {533, 558, 569}},
    {"Six Temperature Annealing", {601, 632, 652}},
    {"g = 1", {598, 605, 646}},
    {"Two level g", {546, 524, 582}},
    {"Linear", {464, 495, 520}},
    {"Quadratic", {447, 493, 500}},
    {"Cubic", {451, 462, 477}},
    {"Exponential", {488, 461, 535}},
    {"6 Linear", {488, 494, 524}},
    {"6 Quadratic", {455, 486, 502}},
    {"6 Cubic", {457, 511, 502}},
    {"6 Exponential", {475, 510, 513}},
    {"Linear Diff", {587, 591, 614}},
    {"Quadratic Diff", {515, 527, 541}},
    {"Cubic Diff", {618, 626, 654}},
    {"Exponential Diff", {597, 599, 617}},
    {"6 Linear Diff", {524, 579, 615}},
    {"6 Quadratic Diff", {528, 506, 546}},
    {"6 Cubic Diff", {586, 591, 620}},
    {"6 Exponential Diff", {552, 574, 631}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  const unsigned threads = bench::parse_driver_flags(argc, argv);
  bench::print_header(
      "Table 4.1 — GOLA: total density reduction, Figure 1, random starts",
      "30 instances, 15 elements, 150 two-pin nets; budgets = 6/9/12 s "
      "equivalents; Y_i tuned per §4.2.1");

  const auto instances = bench::gola_instances();
  const long long start_sum =
      bench::total_start_density(instances, bench::StartKind::kRandom);
  std::printf("sum of starting densities: %lld (paper: 2594)\n\n", start_sum);

  util::Stopwatch tune_watch;
  auto classes = core::table41_classes();
  classes.push_back(core::GClass::kCohoonSahni);
  const auto methods = bench::tune_methods(classes, instances,
                                           /*goto_start=*/false,
                                           /*typical_cost=*/80.0,
                                           /*typical_delta=*/2.0);
  std::printf("tuning pass: %.1f s\n\n", tune_watch.seconds());

  bench::TableRunConfig config;
  config.budgets = {bench::scaled(bench::kSixSec),
                    bench::scaled(bench::kNineSec),
                    bench::scaled(bench::kTwelveSec)};
  config.num_threads = threads;
  config.recorder = bench::driver_recorder();

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  table.add_column("Y scale");
  table.add_column("6 sec");
  table.add_column("9 sec");
  table.add_column("12 sec");
  table.add_column("paper 6/9/12", util::Table::Align::kLeft);

  // The Goto heuristic row: its construction cost corresponded to ~6 s on
  // the paper's machine, so it appears as a 6 s entry.
  const long long goto_reduction = bench::goto_total_reduction(instances);
  table.begin_row();
  table.cell("Goto");
  table.cell("-");
  table.cell(goto_reduction);
  table.cell("-");
  table.cell("-");
  table.cell("601 / - / -");

  for (const auto& method : methods) {
    const auto totals = bench::run_method_row(method, instances, config);
    table.begin_row();
    table.cell(method.name);
    if (core::g_class_uses_scale(method.cls)) {
      table.cell(method.scale, 4);
    } else {
      table.cell("-");
    }
    for (const double t : totals) table.cell(static_cast<long long>(t));
    const auto it = kPaper41.find(method.name);
    if (it != kPaper41.end()) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%d / %d / %d", it->second[0],
                    it->second[1], it->second[2]);
      table.cell(std::string{buf});
    } else {
      table.cell("-");
    }
  }
  table.print();
  bench::maybe_write_csv("table_4_1", table);
  bench::print_invariant_summary();
  bench::finish_driver_observability();

  std::printf(
      "\nShape checks (paper §4.2.2): six-temperature annealing, g = 1 and\n"
      "cubic difference lead; classes 5-12 (current-cost g) trail; Goto is\n"
      "competitive with the best Monte Carlo method at the 6 s budget.\n");
  return 0;
}
