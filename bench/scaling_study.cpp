// Scaling study — do the paper's conclusions survive beyond its 15-element
// instances?  (The paper's stated future direction is exercising the
// framework more broadly; this bench grows the GOLA workload by 4x and 16x
// in cells while keeping nets-per-cell constant, scaling the budget with
// the instance so every size sits in the same pre-convergence regime.)
//
// Methods: the Table 4.1 leaders (six-temperature annealing, g = 1, cubic
// difference), the Goto construction, the threshold-accepting extension,
// and [WHIT84]-auto-calibrated annealing.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/calibration.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "linarr/goto_heuristic.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mcopt;

double run_class(const std::vector<netlist::Netlist>& instances,
                 const core::GFunction& g, std::uint64_t budget,
                 std::uint64_t seed_stream) {
  double total = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& nl = instances[i];
    linarr::LinArrProblem problem{nl, bench::random_start(i, nl.num_cells())};
    util::Rng rng{util::derive_seed(seed_stream, i)};
    core::Figure1Options options;
    options.budget = budget;
    total += core::run_figure1(problem, g, options, rng).reduction();
  }
  return total;
}

}  // namespace

int main() {
  bench::print_header(
      "Scaling study — conclusions beyond the paper's instance size",
      "10 instances per size; nets = 10 x cells; budget grows with size");

  util::Table table;
  table.add_column("cells");
  table.add_column("budget");
  table.add_column("start sum");
  table.add_column("Goto");
  table.add_column("6T anneal");
  table.add_column("g = 1");
  table.add_column("Cubic Diff");
  table.add_column("Threshold");
  table.add_column("White SA");

  for (const std::size_t cells : {std::size_t{15}, std::size_t{60},
                                  std::size_t{240}}) {
    const std::size_t nets = cells * 10;
    const auto instances = netlist::gola_test_set(
        10, netlist::GolaParams{cells, nets}, bench::kSeed + 60);
    // Budget scales with the move cost's natural unit, n^2 sweep size.
    const std::uint64_t budget = bench::scaled(3 * cells * cells);

    long long start_sum = 0;
    long long goto_total = 0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& nl = instances[i];
      const int random_density = linarr::density_of(
          nl, bench::random_start(i, nl.num_cells()));
      start_sum += random_density;
      goto_total += random_density -
                    linarr::density_of(nl, linarr::goto_arrangement(nl));
    }

    // Sample statistics once per size to parameterize the scaled classes.
    linarr::LinArrProblem probe{instances[0],
                                bench::random_start(0, cells)};
    util::Rng probe_rng{bench::kSeed + 61};
    const auto stats = core::sample_move_statistics(probe, 2'000, probe_rng);

    core::GParams params;
    params.scale = stats.mean_uphill_delta;  // annealing Y1 ~ typical delta
    const auto anneal = core::make_g(core::GClass::kSixTempAnnealing, params);
    const auto g1 = core::make_g(core::GClass::kGOne);
    core::GParams cubic_params;
    cubic_params.scale = 0.2 * stats.mean_uphill_delta *
                         stats.mean_uphill_delta * stats.mean_uphill_delta;
    const auto cubic = core::make_g(core::GClass::kCubicDiff, cubic_params);
    core::GParams thresh_params;
    thresh_params.scale = stats.mean_uphill_delta;
    const auto thresh =
        core::make_g(core::GClass::kThresholdAccepting, thresh_params);
    const auto white = core::make_annealing_g(core::white_schedule(stats, 6));

    table.begin_row();
    table.cell(static_cast<long long>(cells));
    table.cell(static_cast<long long>(budget));
    table.cell(start_sum);
    table.cell(goto_total);
    table.cell(static_cast<long long>(run_class(instances, *anneal, budget, 71)));
    table.cell(static_cast<long long>(run_class(instances, *g1, budget, 72)));
    table.cell(static_cast<long long>(run_class(instances, *cubic, budget, 73)));
    table.cell(static_cast<long long>(run_class(instances, *thresh, budget, 74)));
    table.cell(static_cast<long long>(run_class(instances, *white, budget, 75)));
  }
  table.print();
  bench::maybe_write_csv("scaling_study", table);

  std::printf(
      "\nShape checks: the paper's conclusions sharpen with size.  The\n"
      "crudely-scaled annealing and difference rules fall behind as n\n"
      "grows, while the parameter-free g = 1 and the [WHIT84]\n"
      "auto-calibrated schedule keep pace — temperature choice, not the\n"
      "acceptance form, is what fails to transfer (conclusions 1 and 6).\n"
      "Goto remains the strongest per-tick option at every size.\n");
  return 0;
}
