// Throughput benchmark for the parallel multistart engine.
//
// Sweeps worker-thread counts against problem sizes, running the same
// restart workload (Figure 1 on a random GOLA instance) through
// core::parallel_multistart() and reporting proposals/sec, speedup over the
// single-thread run, and parallel efficiency.  Because the engine is
// bit-deterministic, the sweep doubles as an end-to-end check: every
// thread count must produce the identical aggregate, and the bench aborts
// loudly if one does not.
//
// Results are mirrored to BENCH_parallel.json (via bench::write_json_report)
// so future PRs have a machine-readable perf trajectory to regress against.
// Wall-clock numbers are hardware-dependent and excluded from determinism
// guarantees; everything else in the report is seed-pinned.
//
// Flags: --max-threads N (default 8) caps the thread sweep;
//        --budget T (default 400'000) total ticks per configuration.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/figure1.hpp"
#include "core/parallel.hpp"
#include "linarr/problem.hpp"
#include "obs/log.hpp"
#include "netlist/generator.hpp"
#include "util/args.hpp"
#include "util/budget.hpp"
#include "util/table.hpp"

namespace {

struct SweepPoint {
  std::size_t cells = 0;
  unsigned threads = 0;
  double seconds = 0.0;
  double proposals_per_sec = 0.0;
  double speedup = 1.0;
  double efficiency = 1.0;
  mcopt::core::MultistartResult result;
};

bool aggregates_match(const mcopt::core::MultistartResult& a,
                      const mcopt::core::MultistartResult& b) {
  return a.restarts == b.restarts &&
         a.aggregate.best_cost == b.aggregate.best_cost &&
         a.aggregate.final_cost == b.aggregate.final_cost &&
         a.aggregate.proposals == b.aggregate.proposals &&
         a.aggregate.accepts == b.aggregate.accepts &&
         a.aggregate.ticks == b.aggregate.ticks &&
         a.aggregate.best_state == b.aggregate.best_state;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;

  const util::Args args{argc, argv};
  const auto unknown = args.unknown_flags({"max-threads", "budget"});
  if (!unknown.empty() || !args.positional().empty()) {
    obs::log(obs::LogLevel::kError, "usage: %s [--max-threads N] [--budget T]",
             args.program().c_str());
    return 2;
  }
  const long long max_threads = args.get_int("max-threads", 8);
  const long long budget_flag = args.get_int("budget", 400'000);
  if (max_threads < 1 || budget_flag < 1) {
    obs::log(obs::LogLevel::kError, "%s: flags must be positive",
             args.program().c_str());
    return 2;
  }

  bench::print_header(
      "Parallel multistart — threads x size throughput sweep",
      "Figure 1 restarts on random GOLA instances; identical aggregates "
      "required at every thread count");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency=%u (speedup is bounded by this)\n\n", hw);

  std::vector<unsigned> thread_counts{1};
  for (unsigned t = 2; t <= static_cast<unsigned>(max_threads); t *= 2) {
    thread_counts.push_back(t);
  }

  // Problem sizes: the paper's 15-cell instances plus scaled-up variants so
  // the restart bodies are heavy enough to amortize pool overhead.
  struct SizeSpec {
    std::size_t cells;
    std::size_t nets;
  };
  const std::vector<SizeSpec> sizes{{15, 150}, {60, 600}};

  util::Table table;
  table.add_column("cells");
  table.add_column("threads");
  table.add_column("seconds");
  table.add_column("proposals/s");
  table.add_column("speedup");
  table.add_column("efficiency");

  std::vector<SweepPoint> points;
  const std::uint64_t total_budget = bench::scaled(
      static_cast<std::uint64_t>(budget_flag));
  const std::uint64_t per_start = total_budget / 100 == 0
                                      ? 1
                                      : total_budget / 100;

  for (const auto& size : sizes) {
    util::Rng gen_rng{util::derive_seed(bench::kSeed, size.cells)};
    const auto nl = netlist::random_gola(
        netlist::GolaParams{size.cells, size.nets}, gen_rng);
    const auto g = core::make_g(core::GClass::kSixTempAnnealing);
    core::Runner runner = [&g](core::Problem& p, std::uint64_t budget,
                               util::Rng& r, const obs::Recorder& recorder) {
      core::Figure1Options options;
      options.budget = budget;
      options.recorder = &recorder;
      return core::run_figure1(p, *g, options, r);
    };

    // Copies, not pointers into `points`: push_back reallocates.
    mcopt::core::MultistartResult baseline_result;
    double baseline_seconds = 0.0;
    bool have_baseline = false;
    for (const unsigned threads : thread_counts) {
      util::Rng start_rng{util::derive_seed(bench::kSeed + 3, size.cells)};
      linarr::LinArrProblem problem{
          nl, linarr::Arrangement::random(size.cells, start_rng)};
      core::ParallelMultistartOptions options;
      options.multistart.total_budget = total_budget;
      options.multistart.budget_per_start = per_start;
      options.num_threads = threads;
      util::Rng rng{bench::kSeed + 4};

      util::Stopwatch watch;
      SweepPoint point;
      point.result = core::parallel_multistart(problem, runner, options, rng);
      point.seconds = watch.seconds();
      point.cells = size.cells;
      point.threads = threads;
      point.proposals_per_sec =
          point.seconds > 0.0
              ? static_cast<double>(point.result.aggregate.proposals) /
                    point.seconds
              : 0.0;
      points.push_back(point);
      SweepPoint& stored = points.back();
      if (!have_baseline) {
        baseline_result = stored.result;
        baseline_seconds = stored.seconds;
        have_baseline = true;
      } else {
        if (!aggregates_match(baseline_result, stored.result)) {
          obs::log(obs::LogLevel::kError,
                   "FATAL: %u-thread aggregate differs from 1-thread "
                   "aggregate (determinism violation)",
                   threads);
          return 1;
        }
        stored.speedup = stored.seconds > 0.0
                             ? baseline_seconds / stored.seconds
                             : 0.0;
        stored.efficiency = stored.speedup / threads;
      }

      table.begin_row();
      table.cell(static_cast<long long>(stored.cells));
      table.cell(static_cast<long long>(stored.threads));
      table.cell(stored.seconds, 3);
      table.cell(stored.proposals_per_sec, 0);
      table.cell(stored.speedup, 2);
      table.cell(stored.efficiency, 2);
    }
  }
  table.print();

  std::string json = "{\n  \"bench\": \"parallel_speedup\",\n";
  json += "  \"seed\": " + std::to_string(bench::kSeed) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"total_budget\": " + std::to_string(total_budget) + ",\n";
  json += "  \"budget_per_start\": " + std::to_string(per_start) + ",\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"cells\": %zu, \"threads\": %u, \"seconds\": %.6f, "
                  "\"proposals_per_sec\": %.1f, \"speedup\": %.3f, "
                  "\"efficiency\": %.3f, \"restarts\": %llu, "
                  "\"best_cost\": %.1f}%s\n",
                  p.cells, p.threads, p.seconds, p.proposals_per_sec,
                  p.speedup, p.efficiency,
                  static_cast<unsigned long long>(p.result.restarts),
                  p.result.aggregate.best_cost,
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  bench::write_json_report("BENCH_parallel", json);

  std::printf(
      "\nDeterminism: all thread counts produced identical aggregates.\n"
      "Speedup/efficiency are wall-clock measurements; they scale with the\n"
      "machine's core count (hardware_concurrency above) and are excluded\n"
      "from the bit-reproducibility contract.\n");
  return 0;
}
