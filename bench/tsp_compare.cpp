// §2 extension — the Golden-Skiscim-style TSP comparison ([GOLD84], and the
// authors' own TSP runs in [NAHA84]).
//
// Claims reproduced in shape:
//   * restarted 2-opt at equal time beats simulated annealing on most
//     instances (paper: 9 of 10);
//   * a strong constructive heuristic (Stewart's CCAO stood in for by
//     convex-hull + cheapest-insertion + Or-opt) reaches its quality with a
//     tiny fraction of SA's work (paper: SA needed 20-60x the time for
//     worse results).
//
// Equal-work accounting: every tour-move evaluation is one tick, for SA
// proposals, 2-opt descents, insertion-position scans and Or-opt scans
// alike.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"
#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "tsp/problem.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mcopt;

struct SaOutcome {
  double best = 0.0;
  std::uint64_t ticks_to_target = 0;  // 0 = target never reached
};

/// Figure-1 annealing over an explicit schedule, recording the first tick
/// at which the running best drops to `target`.
SaOutcome annealed_tsp(const tsp::TspInstance& inst,
                       const std::vector<double>& schedule,
                       std::uint64_t budget, double target, util::Rng& rng) {
  tsp::TspProblem problem{inst, tsp::random_order(inst.size(), rng)};
  const auto g = core::make_annealing_g(schedule);
  const unsigned k = g->num_temperatures();
  util::WorkBudget work{budget};
  double h_i = problem.cost();
  double best = h_i;
  SaOutcome out;
  unsigned temp = 0;
  while (!work.exhausted()) {
    while (work.spent() >= work.slice_end(k, temp) && temp + 1 < k) ++temp;
    const double h_j = problem.propose(rng);
    work.charge();
    const double delta = h_j - h_i;
    if (delta < 0.0 || rng.next_double() < g->probability(temp, h_i, h_j)) {
      problem.accept();
      h_i = h_j;
      if (h_i < best) {
        best = h_i;
        if (out.ticks_to_target == 0 && best <= target) {
          out.ticks_to_target = work.spent();
        }
      }
    } else {
      problem.reject();
    }
  }
  out.best = best;
  return out;
}

/// Hull + cheapest insertion + Or-opt, with its evaluation count charged
/// like Monte Carlo ticks (the insertion is the O(n^2) cached variant, and
/// the Or-opt polish gets a couple of sweeps' worth of budget — CCAO's
/// improvement pass was similarly bounded).
std::pair<double, std::uint64_t> stewart_standin(
    const tsp::TspInstance& inst) {
  const std::size_t n = inst.size();
  auto built = tsp::hull_cheapest_insertion_counted(inst);
  util::WorkBudget polish{static_cast<std::uint64_t>(3 * n) * n};
  tsp::or_opt_descent(inst, built.order, polish);
  return {tsp::tour_length(inst, built.order),
          built.evaluations + polish.spent()};
}

}  // namespace

int main() {
  bench::print_header(
      "TSP comparison (paper §2 / [GOLD84] / [NAHA84])",
      "10 random Euclidean instances per size; equal tick budgets; SA uses "
      "25 uniformly spaced temperatures per [GOLD84]");

  for (const std::size_t n : {std::size_t{50}, std::size_t{100}}) {
    const std::uint64_t budget = bench::scaled(n == 50 ? 300'000 : 600'000);
    std::printf("\n-- n = %zu, budget = %llu ticks per method --\n", n,
                static_cast<unsigned long long>(budget));

    util::Summary sa_len;
    util::Summary hot_len;
    util::Summary topt_len;
    util::Summary stew_len;
    util::Summary stew_ticks;
    util::Summary sa_ratio;
    util::Summary hot_ratio;
    int twoopt_beats_sa = 0;
    int twoopt_beats_hot = 0;
    int stewart_beats_sa = 0;

    for (int i = 0; i < 10; ++i) {
      util::Rng gen{util::derive_seed(bench::kSeed + 40, 100 * n + i)};
      const auto inst = tsp::TspInstance::random_euclidean(n, gen, 1000.0);

      const auto [stewart_length, stewart_cost] = stewart_standin(inst);
      stew_len.add(stewart_length);
      stew_ticks.add(static_cast<double>(stewart_cost));

      auto work_ratio = [&](const SaOutcome& sa) {
        // Paper's 20-60x claim: SA work needed to reach the constructive
        // heuristic's quality, as a multiple of the heuristic's own work
        // (capped at the budget when never reached).
        const auto ticks = sa.ticks_to_target == 0 ? budget : sa.ticks_to_target;
        return static_cast<double>(ticks) / static_cast<double>(stewart_cost);
      };

      // Tuned: ceiling matched to typical uphill deltas (~edge length).
      util::Rng sa_rng = gen.split();
      const SaOutcome sa = annealed_tsp(inst, core::uniform_schedule(250.0, 25),
                                        budget, stewart_length, sa_rng);
      sa_len.add(sa.best);
      sa_ratio.add(work_ratio(sa));

      // Hot start: the era's standard advice (begin accepting nearly every
      // uphill move), closer to how [GOLD84] configured annealing.
      util::Rng hot_rng = gen.split();
      const SaOutcome hot = annealed_tsp(
          inst, core::uniform_schedule(2500.0, 25), budget, stewart_length,
          hot_rng);
      hot_len.add(hot.best);
      hot_ratio.add(work_ratio(hot));

      util::Rng topt_rng = gen.split();
      const auto topt = tsp::restarted_two_opt(inst, budget, topt_rng);
      topt_len.add(topt.best_length);

      twoopt_beats_sa += topt.best_length < sa.best;
      twoopt_beats_hot += topt.best_length < hot.best;
      stewart_beats_sa += stewart_length < sa.best;
    }

    util::Table table;
    table.add_column("method", util::Table::Align::kLeft);
    table.add_column("mean tour length");
    table.add_column("vs best (%)");
    table.add_column("mean ticks");
    const double best_mean =
        std::min(std::min(sa_len.mean(), topt_len.mean()),
                 std::min(stew_len.mean(), hot_len.mean()));
    auto row = [&](const char* name, const util::Summary& s, double ticks) {
      table.begin_row();
      table.cell(name);
      table.cell(s.mean(), 1);
      table.cell(100.0 * (s.mean() - best_mean) / best_mean, 2);
      table.cell(static_cast<long long>(ticks));
    };
    row("SA, 25 uniform temps, tuned tau", sa_len,
        static_cast<double>(budget));
    row("SA, 25 uniform temps, hot tau", hot_len,
        static_cast<double>(budget));
    row("restarted 2-opt [LIN73]", topt_len, static_cast<double>(budget));
    row("hull+insertion+Or-opt [STEW77]*", stew_len, stew_ticks.mean());
    table.print();

    std::printf(
        "restarted 2-opt beats tuned SA on %d/10, hot-start SA on %d/10 "
        "(paper: 9/10)\n"
        "constructive heuristic beats tuned SA on %d/10 instances\n"
        "work to reach constructive quality: tuned SA %.0fx, hot SA %.0fx "
        "the heuristic's work (paper: 20-60x)\n",
        twoopt_beats_sa, twoopt_beats_hot, stewart_beats_sa, sa_ratio.mean(),
        hot_ratio.mean());
  }
  std::printf("\n* stand-in for Stewart's CCAO; see DESIGN.md\n");
  return 0;
}
