// Convergence curves — best-so-far total reduction as a function of the
// work budget, for representative methods on the GOLA set.
//
// The paper has no plots (its §4.2.2 discusses the time behaviour through
// the 6/9/12 s table columns); this bench generates the full curve those
// columns sample, which is where the paper's regime claims live: the Goto
// construction dominates at small budgets, the Monte Carlo methods cross
// it, and the g classes converge toward a common ceiling (§4.2.5
// conclusion 4).  Output doubles as CSV-ready series (comma-separated).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcopt;
  bench::print_header(
      "Convergence curves — total reduction vs work budget (GOLA)",
      "30 instances; Figure 1; logarithmic budget checkpoints");

  const auto instances = bench::gola_instances();
  const std::vector<core::GClass> classes{
      core::GClass::kMetropolis, core::GClass::kSixTempAnnealing,
      core::GClass::kGOne, core::GClass::kCubicDiff,
      core::GClass::kCohoonSahni};
  const auto methods = bench::tune_methods(
      std::vector<core::GClass>(classes.begin(), classes.end()), instances,
      /*goto_start=*/false, 80.0, 2.0);

  std::vector<std::uint64_t> checkpoints;
  for (std::uint64_t b = 75; b <= 4'800; b *= 2) {
    checkpoints.push_back(bench::scaled(b));
  }

  util::Table table;
  table.add_column("method", util::Table::Align::kLeft);
  for (const auto b : checkpoints) {
    table.add_column(std::to_string(b));
  }

  bench::TableRunConfig config;
  config.budgets = checkpoints;
  config.move_seed = 37;

  const long long goto_reduction = bench::goto_total_reduction(instances);
  table.begin_row();
  table.cell("Goto (construction only)");
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.cell(goto_reduction);
  }

  for (const auto& method : methods) {
    const auto totals = bench::run_method_row(method, instances, config);
    table.begin_row();
    table.cell(method.name);
    for (const double t : totals) table.cell(static_cast<long long>(t));
  }
  table.print();
  bench::maybe_write_csv("convergence_curves", table);

  std::printf(
      "\nShape checks: Goto's flat line dominates the small budgets and is\n"
      "crossed as the Monte Carlo budgets grow (§4.2.2); the g classes\n"
      "converge toward a common ceiling (§4.2.5 conclusion 4).\n");
  return 0;
}
