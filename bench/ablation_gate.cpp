// Ablation B — the §3 uphill gate for g = 1 under Figure 1.
//
// "A straightforward implementation of [g = 1 with Figure 1] results in a
// random walk through the solution space.  To prevent this ... a
// perturbation that increases the energy is accepted only if a
// sufficiently long sequence of perturbations has failed to yield a
// configuration of lower energy" (threshold 18 in the paper).  This bench
// sweeps the threshold: 1 reduces to the random walk the paper warns
// about, very large thresholds reduce to pure descent, and the paper's 18
// sits in the productive middle.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcopt;
  bench::print_header(
      "Ablation B — g = 1 gate threshold under Figure 1 (§3)",
      "GOLA set; 12 s budget; thresholds 1 (random walk) .. 10^6 (descent)");

  const auto instances = bench::gola_instances();
  const auto g = core::make_g(core::GClass::kGOne);
  const std::vector<unsigned> thresholds{1, 2, 6, 18, 54, 162, 1'000'000};

  util::Table table;
  table.add_column("gate threshold");
  table.add_column("total reduction");
  table.add_column("uphill accepts / instance");

  for (const unsigned threshold : thresholds) {
    double total = 0.0;
    double uphill = 0.0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& nl = instances[i];
      linarr::LinArrProblem problem{nl,
                                    bench::random_start(i, nl.num_cells())};
      util::Rng rng{util::derive_seed(29, i)};
      core::Figure1Options options;
      options.budget = bench::scaled(bench::kTwelveSec);
      options.gate_threshold = threshold;
      const auto result = core::run_figure1(problem, *g, options, rng);
      total += result.reduction();
      uphill += static_cast<double>(result.uphill_accepts);
    }
    table.begin_row();
    table.cell(static_cast<long long>(threshold));
    table.cell(static_cast<long long>(total));
    table.cell(uphill / static_cast<double>(instances.size()), 0);
  }
  table.print();
  bench::maybe_write_csv("ablation_gate", table);

  std::printf(
      "\nShape check: threshold 1 (the unguarded random walk) is the worst;\n"
      "the paper's 18 is near the plateau of good settings.\n");
  return 0;
}
