// Shared harness for the table-reproduction benches.
//
// Time -> work calibration.  The paper ran on a VAX 11/780 and gave every
// method 6/9/12 seconds (Tables 4.1, 4.2(a), (c), (d)) or 3 minutes
// (Table 4.2(b)) per instance.  We replace wall-clock with deterministic
// tick budgets (one tick per proposal / descent evaluation).  The mapping
// 6 s ~= 600 ticks was calibrated empirically so the reproduction sits in
// the same regime as the paper's Table 4.1: the Goto construction ties the
// best Monte Carlo methods at the 6 s budget, every method is still
// climbing from 6 s to 12 s, and full convergence (where all g classes
// collapse to the same number) is several budgets away.  Table 4.2(b)'s
// 3 minutes maps to 30x the 6 s budget, by then deep in the converged
// regime — which is the paper's own observation there ("the performance of
// all 13 classes is about the same").  Set MCOPT_BENCH_SCALE to scale all
// budgets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/gfunction.hpp"
#include "core/result.hpp"
#include "core/tuner.hpp"
#include "linarr/problem.hpp"
#include "netlist/netlist.hpp"
#include "obs/heartbeat.hpp"
#include "obs/perfcount.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace mcopt::bench {

/// Master seed for every bench; printed in the headers so EXPERIMENTS.md
/// numbers are attributable.
inline constexpr std::uint64_t kSeed = 1985;

/// Tick equivalents of the paper's budgets (before MCOPT_BENCH_SCALE).
inline constexpr std::uint64_t kSixSec = 600;
inline constexpr std::uint64_t kNineSec = 900;
inline constexpr std::uint64_t kTwelveSec = 1'200;
inline constexpr std::uint64_t kThreeMin = 18'000;
/// Tuning budget per (candidate, instance): the paper used about a 5 s run.
inline constexpr std::uint64_t kTuneBudget = 500;
/// Training-set size for the tuning pass (the paper used all 30).
inline constexpr std::size_t kTuneInstances = 30;

/// MCOPT_BENCH_SCALE (double >= 0.01); 1.0 when unset/invalid.
double bench_scale();

/// Budget scaled by bench_scale(), minimum 1 tick.
std::uint64_t scaled(std::uint64_t budget);

/// The 30-instance GOLA / NOLA test sets of §4.2.1 / §4.3.1.
std::vector<netlist::Netlist> gola_instances();
std::vector<netlist::Netlist> nola_instances();

/// Deterministic per-instance random starting arrangement — identical for
/// every method, as §4.2.1 prescribes.
linarr::Arrangement random_start(std::size_t instance, std::size_t n);

/// A configured Monte Carlo row of a table.
struct Method {
  std::string name;       ///< paper row label
  core::GClass cls;
  double scale = 1.0;     ///< tuned Y scale (Y1; k=6 schedules decay x0.9)
};

/// Runs the §4.2.1 tuning pass for each class on GOLA training data with
/// the given start policy and returns the configured methods.  Scale-free
/// classes pass through untuned.  Deterministic.
std::vector<Method> tune_methods(
    const std::vector<core::GClass>& classes,
    const std::vector<netlist::Netlist>& instances, bool goto_start,
    double typical_cost, double typical_delta);

/// Instantiates a method's g for a given instance (Cohoon-Sahni needs the
/// instance's net count).
std::unique_ptr<core::GFunction> make_method_g(const Method& method,
                                               const netlist::Netlist& nl);

enum class StartKind { kRandom, kGoto };

struct TableRunConfig {
  std::vector<std::uint64_t> budgets;  ///< already scaled
  StartKind start = StartKind::kRandom;
  bool figure2 = false;
  linarr::MoveKind move_kind = linarr::MoveKind::kPairwiseInterchange;
  std::uint64_t move_seed = 7;  ///< stream id for the perturbation RNG
  /// Worker threads for the per-(budget, instance) runs.  Every (budget,
  /// instance) cell already owns a derived RNG stream and the results are
  /// reduced in index order, so the row is bit-identical for any value —
  /// the table drivers default to 1 and let --threads opt in.
  unsigned num_threads = 1;
  /// Observability root (normally bench::driver_recorder()).  Each
  /// (budget, instance) job becomes a restart-scoped shard whose events
  /// are drained in job order after the row completes, so traces are
  /// thread-count invariant; job metrics merge into the driver totals
  /// reported by finish_driver_observability().
  const obs::Recorder* recorder = nullptr;
};

/// Total reduction (summed over instances) for one method at each budget —
/// one table row.  Follows the paper's protocol: same instances, same
/// starts, per-(instance, method) move streams.
std::vector<double> run_method_row(const Method& method,
                                   const std::vector<netlist::Netlist>& instances,
                                   const TableRunConfig& config);

/// The observability configuration shared by every table driver.
struct DriverOptions {
  unsigned threads = 1;
  std::uint64_t trace_sample = 1;
  std::string trace_path;       ///< --trace FILE (JSONL events)
  std::string metrics_path;     ///< --metrics-out FILE (--metrics alias)
  std::string profile_path;     ///< --profile-out FILE (profile-tree JSON)
  std::string prom_path;        ///< --prom-out FILE (Prometheus text)
  /// --timeline-out FILE: Chrome Trace Event JSON of the profile trees
  /// (Perfetto / chrome://tracing).  Implies profiling, like --profile-out.
  std::string timeline_path;
  /// --perf-counters [LIST]: arm hardware counters on the driver thread
  /// and attribute them to profile scopes.  Empty list = off; the bare
  /// flag selects every counter.  Implies profiling.
  std::vector<obs::PerfCounter> perf_counters;
  double progress_interval = 0.0;  ///< --progress [SECS]; 0 = off
  /// --flight-recorder [CAP]: keep the last CAP events in the process-wide
  /// flight ring and dump them as JSONL on abnormal exit.  0 = off.
  std::size_t flight_capacity = 0;
  std::string flight_path = "flight.jsonl";  ///< --flight-out FILE
  bool quiet = false;
  bool verbose = false;
};

/// Side-effect-free parse of the shared driver flags.  Returns nullopt and
/// fills `*error` with a one-line message (flag name included) on any
/// unknown flag, conflicting pair, or non-positive numeric value.
std::optional<DriverOptions> parse_driver_options(int argc,
                                                  const char* const* argv,
                                                  std::string* error);

/// Parses the flags shared by every table driver and returns the worker
/// thread count:
///   --threads N          worker threads (default 1, must be >= 1)
///   --trace FILE         JSONL trace of every run (tools/trace_report.py)
///   --metrics-out FILE   merged metrics summary as JSON (--metrics alias)
///   --profile-out FILE   hierarchical stage-profile tree as JSON
///   --prom-out FILE      metrics registry, Prometheus text exposition
///   --trace-sample N     keep every Nth proposal/accept/reject trio
///   --progress [SECS]    heartbeat lines, at most one per SECS (default 2)
///   --flight-recorder [CAP]  last-CAP-events flight ring (default 4096),
///                        dumped to --flight-out on crash/abort/SIGTERM
///   --flight-out FILE    flight-recorder dump path (default flight.jsonl)
///   --timeline-out FILE  Chrome Trace Event JSON (Perfetto) of the
///                        profile trees: one aggregate lane + one lane per
///                        worker, appended in job-index order
///   --perf-counters [LIST]  hardware counters (cycles,instructions,
///                        cache-references,cache-misses,branch-misses,
///                        task-clock; bare flag = all) attributed to
///                        profile scopes; degrades gracefully when
///                        perf_event_open is denied
///   --quiet / --verbose  log level (errors only / debug)
/// Applies MCOPT_LOG_LEVEL first (explicit flags win), installs the
/// recorder returned by driver_recorder() and sets the obs::log level.
/// Rejects unknown flags; exits with status 2 on a bad command line.
unsigned parse_driver_flags(int argc, const char* const* argv);

/// The process-wide recorder configured by parse_driver_flags(); off (and
/// free) when no observability flag was given.  Never null.
const obs::Recorder* driver_recorder();

/// The process-wide progress heartbeat; disabled unless --progress was
/// given.  Never null.  run_method_row() ticks it once per finished job.
obs::Heartbeat* driver_heartbeat();

/// Merges one run's metrics into the driver totals reported by
/// finish_driver_observability().  run_method_row() does this itself; call
/// it only for runs executed outside that harness (e.g. the tempering loop
/// of extension_tempering).
void absorb_run_metrics(const obs::RunMetrics& metrics);

/// Flushes the trace sink, writes the --metrics-out / --profile-out /
/// --prom-out files, and logs a one-line telemetry summary.  Call once at
/// the end of a driver's main; no-op when observability is off.
void finish_driver_observability();

/// Sum of the starting densities over the instance set for the given start
/// policy (the paper quotes 2594 random / 4254 NOLA-random etc.).
long long total_start_density(const std::vector<netlist::Netlist>& instances,
                              StartKind start);

/// Total reduction achieved by the Goto heuristic itself versus the random
/// starts (the "Goto" row of Tables 4.1 / 4.2(c)).
long long goto_total_reduction(const std::vector<netlist::Netlist>& instances);

/// Prints the standard bench preamble (experiment id, seed, scale).
void print_header(const std::string& title, const std::string& protocol);

/// Running total of invariant checks executed inside run_method_row
/// (nonzero only in MCOPT_CHECK_INVARIANTS builds).
std::uint64_t invariant_checks_executed();

/// Prints the invariant-check total in invariant-checking builds; no-op
/// otherwise.  Sanitized CI runs use this line to prove the deep checks
/// were live during the bench, not compiled out.
void print_invariant_summary();

/// When MCOPT_BENCH_CSV_DIR is set, mirrors the table to
/// <dir>/<experiment>.csv (header row + data rows) so plots can be
/// regenerated outside the repo.  No-op otherwise.
void maybe_write_csv(const std::string& experiment, const util::Table& table);

/// Writes an already-serialized JSON document to <dir>/<name>.json, where
/// <dir> is MCOPT_BENCH_JSON_DIR or the current directory.  Machine-readable
/// bench output (BENCH_parallel.json etc.) flows through here so future PRs
/// can diff perf trajectories.
void write_json_report(const std::string& name, const std::string& payload);

}  // namespace mcopt::bench
