// Ablation A — temperature-scale sensitivity (paper conclusion 1, §4.2.5):
// "The performance of each g class (except for g = 1 and two level g) is
// quite sensitive to the temperature schedule used."
//
// Each class is run at its tuned scale multiplied by 0.1 / 0.5 / 1 / 2 /
// 10; a large spread across the row demonstrates the sensitivity, while
// the g = 1 and two-level rows are flat by construction.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcopt;
  bench::print_header(
      "Ablation A — sensitivity to the temperature scale (conclusion 1)",
      "GOLA set; Figure 1; 12 s budget; tuned scale x {0.1, 0.5, 1, 2, 10}");

  const auto instances = bench::gola_instances();
  const std::vector<core::GClass> classes{
      core::GClass::kMetropolis,    core::GClass::kSixTempAnnealing,
      core::GClass::kGOne,          core::GClass::kTwoLevel,
      core::GClass::kLinear,        core::GClass::kExponential,
      core::GClass::kCubicDiff,     core::GClass::kExponentialDiff,
      core::GClass::kSixCubicDiff};
  const auto methods = bench::tune_methods(
      std::vector<core::GClass>(classes.begin(), classes.end()), instances,
      /*goto_start=*/false, 80.0, 2.0);

  const std::vector<double> multipliers{0.1, 0.5, 1.0, 2.0, 10.0};
  bench::TableRunConfig config;
  config.budgets = {bench::scaled(bench::kTwelveSec)};
  config.move_seed = 23;

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  for (const double m : multipliers) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "x%.1f", m);
    table.add_column(buf);
  }
  table.add_column("spread %");

  for (const auto& method : methods) {
    table.begin_row();
    table.cell(method.name);
    util::Summary row;
    for (const double m : multipliers) {
      bench::Method scaled_method = method;
      scaled_method.scale = method.scale * m;
      const double total =
          bench::run_method_row(scaled_method, instances, config)[0];
      row.add(total);
      table.cell(static_cast<long long>(total));
    }
    const double spread =
        row.max() > 0 ? 100.0 * (row.max() - row.min()) / row.max() : 0.0;
    table.cell(spread, 1);
  }
  table.print();
  bench::maybe_write_csv("ablation_temperature", table);

  std::printf(
      "\nShape check: g = 1 and two-level rows are flat (scale unused);\n"
      "every other class swings materially with the scale.\n");
  return 0;
}
