// Microbenchmarks of the primitives the equal-time methodology rests on:
// if one method's "tick" were much more expensive than another's, the
// equal-tick tables would not correspond to equal time.  google-benchmark.
#include <benchmark/benchmark.h>
#include <cstddef>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/problem.hpp"
#include "linarr/goto_heuristic.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "obs/perfcount.hpp"
#include "obs/profiler.hpp"
#include "partition/kl.hpp"
#include "partition/problem.hpp"
#include "tsp/local_search.hpp"
#include "tsp/problem.hpp"

namespace {

using namespace mcopt;

/// Reports IPC, cache-miss rate, and cycles/iteration as google-benchmark
/// user counters when the hardware counters open; silently absent
/// otherwise (e.g. under a restrictive perf_event_paranoid).  Construct
/// just before the `for (auto _ : state)` loop so the sampled window is
/// the timed region plus only negligible frame overhead.
class PerfReport {
 public:
  explicit PerfReport(benchmark::State& state)
      : state_(state), live_(group().read(&begin_)) {}
  ~PerfReport() {
    obs::PerfCounts end;
    if (!live_ || !group().read(&end)) return;
    const obs::PerfCounts delta = obs::perf_delta(begin_, end);
    const double ipc = obs::perf_ipc(delta);
    if (ipc > 0.0) state_.counters["IPC"] = ipc;
    if (delta.cache_refs > 0) {
      state_.counters["cache_miss_rate"] = obs::perf_cache_miss_rate(delta);
    }
    if (delta.cycles > 0 && state_.iterations() > 0) {
      state_.counters["cycles_per_iter"] =
          static_cast<double>(delta.cycles) /
          static_cast<double>(state_.iterations());
    }
  }
  PerfReport(const PerfReport&) = delete;
  PerfReport& operator=(const PerfReport&) = delete;

 private:
  // One shared group: the fds are per-thread and google-benchmark runs
  // every benchmark on the main thread unless Threads() is requested.
  static const obs::PerfCounterGroup& group() {
    static const obs::PerfCounterGroup instance{obs::all_perf_counters()};
    return instance;
  }

  benchmark::State& state_;
  obs::PerfCounts begin_;
  bool live_;
};

netlist::Netlist gola(std::size_t cells, std::size_t nets) {
  util::Rng rng{1};
  return netlist::random_gola(netlist::GolaParams{cells, nets}, rng);
}

void BM_DensitySwapUndo(benchmark::State& state) {
  const auto nl = gola(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(0)) * 10);
  util::Rng rng{2};
  linarr::DensityState ds{nl, linarr::Arrangement::random(nl.num_cells(), rng)};
  const std::size_t n = nl.num_cells();
  PerfReport perf{state};
  for (auto _ : state) {
    const auto [a, b] = rng.next_distinct_pair(n);
    ds.apply_swap(a, b);
    benchmark::DoNotOptimize(ds.density());
    ds.apply_swap(a, b);
  }
}
BENCHMARK(BM_DensitySwapUndo)->Arg(15)->Arg(60)->Arg(240);

void BM_DensityFullRecount(benchmark::State& state) {
  const auto nl = gola(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(0)) * 10);
  util::Rng rng{3};
  const auto arr = linarr::Arrangement::random(nl.num_cells(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linarr::density_of(nl, arr));
  }
}
BENCHMARK(BM_DensityFullRecount)->Arg(15)->Arg(60)->Arg(240);

// Arg 0 = apply+undo, arg 1 = speculative delta evaluation.  Run with the
// perf counters available, the IPC / cache_miss_rate / cycles_per_iter
// user counters attribute the speculative-path speedup to its
// microarchitectural cause instead of just asserting the ratio.
void BM_LinArrProposeReject(benchmark::State& state) {
  const auto nl = gola(15, 150);
  util::Rng rng{4};
  const auto path = state.range(0) == 0 ? core::EvalPath::kApplyUndo
                                        : core::EvalPath::kSpeculative;
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng),
                                linarr::MoveKind::kPairwiseInterchange,
                                linarr::Objective::kDensity, path};
  PerfReport perf{state};
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.propose(rng));
    problem.reject();
  }
}
BENCHMARK(BM_LinArrProposeReject)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("spec");

void BM_GEvaluate(benchmark::State& state) {
  const auto cls = static_cast<core::GClass>(state.range(0));
  const auto g = core::make_g(cls, {.scale = 0.5, .num_nets = 150});
  double h = 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->probability(0, h, h + 2.0));
    h += 1e-9;  // defeat constant folding
  }
}
BENCHMARK(BM_GEvaluate)
    ->Arg(static_cast<int>(core::GClass::kMetropolis))
    ->Arg(static_cast<int>(core::GClass::kGOne))
    ->Arg(static_cast<int>(core::GClass::kCubicDiff))
    ->Arg(static_cast<int>(core::GClass::kExponentialDiff));

void BM_Figure1Run1k(benchmark::State& state) {
  const auto nl = gola(15, 150);
  const auto g = core::make_g(core::GClass::kSixTempAnnealing, {.scale = 4.0});
  util::Rng rng{5};
  PerfReport perf{state};
  for (auto _ : state) {
    linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
    core::Figure1Options options;
    options.budget = 1000;
    benchmark::DoNotOptimize(core::run_figure1(problem, *g, options, rng));
  }
}
BENCHMARK(BM_Figure1Run1k);

void BM_GotoConstruct(benchmark::State& state) {
  const auto nl = gola(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(0)) * 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linarr::goto_arrangement(nl));
  }
}
BENCHMARK(BM_GotoConstruct)->Arg(15)->Arg(60)->Arg(240);

void BM_KernighanLin(benchmark::State& state) {
  util::Rng rng{6};
  const auto nl = netlist::random_graph(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) * 3, rng);
  const auto start = partition::PartitionState::random(nl, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::kernighan_lin(nl, start.sides()));
  }
}
BENCHMARK(BM_KernighanLin)->Arg(20)->Arg(40)->Arg(80);

void BM_PartitionProposeReject(benchmark::State& state) {
  util::Rng rng{7};
  const auto nl = netlist::random_graph(40, 120, rng);
  partition::PartitionProblem problem{partition::PartitionState::random(nl, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.propose(rng));
    problem.reject();
  }
}
BENCHMARK(BM_PartitionProposeReject);

void BM_TwoOptDelta(benchmark::State& state) {
  util::Rng rng{8};
  const auto inst =
      tsp::TspInstance::random_euclidean(static_cast<std::size_t>(state.range(0)), rng);
  const auto order = tsp::random_order(inst.size(), rng);
  std::size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsp::two_opt_delta(inst, order, 0, i));
    i = i % (inst.size() - 2) + 1;
  }
}
BENCHMARK(BM_TwoOptDelta)->Arg(50)->Arg(200);

void BM_TspProposeReject(benchmark::State& state) {
  util::Rng rng{9};
  const auto inst = tsp::TspInstance::random_euclidean(100, rng);
  tsp::TspProblem problem{inst, tsp::random_order(100, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.propose(rng));
    problem.reject();
  }
}
BENCHMARK(BM_TspProposeReject);

}  // namespace

BENCHMARK_MAIN();
