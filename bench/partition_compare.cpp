// §5 extension — the circuit-partition experiment of [NAHA84]/[KIRK83].
//
// Balanced bipartition of random graphs.  Methods: Kernighan-Lin (the
// "proven heuristic" §2 faults [KIRK83] for not comparing against),
// simulated annealing with the quoted Kirkpatrick schedule (Y1 = 10,
// x0.9, k = 6), the paper's recommended g = 1, and pure random descent.
// Monte Carlo methods get a budget equal to a multiple of KL's own
// pair-evaluation count so the comparison stays equal-work.
#include <cstdint>
#include <cstdio>
#include <utility>

#include "common.hpp"
#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "netlist/generator.hpp"
#include "partition/kl.hpp"
#include "partition/problem.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcopt;
  bench::print_header(
      "Circuit partition comparison (§5 / [NAHA84]; schedule from [KIRK83])",
      "10 random graphs per size; balanced bipartition; cut size; Monte "
      "Carlo budget = 4x KL's evaluation count");

  for (const auto& [n, m] : {std::pair<std::size_t, std::size_t>{40, 120},
                             {80, 240}}) {
    util::Summary start_cut;
    util::Summary kl_cut;
    util::Summary kl_ticks;
    util::Summary sa_cut;
    util::Summary gone_cut;
    util::Summary descent_cut;
    int kl_beats_sa = 0;

    for (int i = 0; i < 10; ++i) {
      util::Rng gen{util::derive_seed(bench::kSeed + 50, 1000 * n + i)};
      const auto nl = netlist::random_graph(n, m, gen);
      util::Rng start_rng = gen.split();
      const auto start = partition::PartitionState::random(nl, start_rng);
      start_cut.add(start.cut());

      const auto kl = partition::kernighan_lin(nl, start.sides());
      kl_cut.add(kl.cut);
      kl_ticks.add(static_cast<double>(kl.evaluations));
      const std::uint64_t budget = bench::scaled(4 * kl.evaluations);

      {
        partition::PartitionProblem problem{
            partition::PartitionState{nl, start.sides()}};
        util::Rng rng = gen.split();
        core::AnnealOptions options;  // default = Kirkpatrick schedule
        options.budget = budget;
        const auto result = core::simulated_annealing(problem, options, rng);
        sa_cut.add(result.best_cost);
        kl_beats_sa += kl.cut < result.best_cost;
      }
      {
        partition::PartitionProblem problem{
            partition::PartitionState{nl, start.sides()}};
        util::Rng rng = gen.split();
        const auto g = core::make_g(core::GClass::kGOne);
        core::Figure1Options options;
        options.budget = budget;
        const auto result = core::run_figure1(problem, *g, options, rng);
        gone_cut.add(result.best_cost);
      }
      {
        partition::PartitionProblem problem{
            partition::PartitionState{nl, start.sides()}};
        util::Rng rng = gen.split();
        const auto result = core::random_descent(problem, budget, rng);
        descent_cut.add(result.best_cost);
      }
    }

    std::printf("\n-- n = %zu cells, m = %zu nets --\n", n, m);
    util::Table table;
    table.add_column("method", util::Table::Align::kLeft);
    table.add_column("mean cut");
    table.add_column("min");
    table.add_column("max");
    table.add_column("mean ticks");
    auto row = [&](const char* name, const util::Summary& s, double ticks) {
      table.begin_row();
      table.cell(name);
      table.cell(s.mean(), 1);
      table.cell(static_cast<long long>(s.min()));
      table.cell(static_cast<long long>(s.max()));
      table.cell(static_cast<long long>(ticks));
    };
    row("random start", start_cut, 0);
    row("Kernighan-Lin", kl_cut, kl_ticks.mean());
    row("SA (Y1=10, x0.9, k=6)", sa_cut, 4 * kl_ticks.mean());
    row("g = 1 (Figure 1)", gone_cut, 4 * kl_ticks.mean());
    row("random descent", descent_cut, 4 * kl_ticks.mean());
    table.print();
    std::printf("KL beats SA on %d/10 instances at 4x KL's work\n",
                kl_beats_sa);
  }
  std::printf(
      "\nShape check: the proven deterministic heuristic is at least\n"
      "competitive with annealing at comparable work — the paper's core\n"
      "methodological point (§2).\n");
  return 0;
}
