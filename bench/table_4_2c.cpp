// Table 4.2(c) — NOLA, Figure 1, random starts (§4.3.1).
//
// 30 instances of 15 elements and 150 multi-pin nets.  The paper reuses
// the GOLA temperatures ("The temperatures used for this problem are the
// same as those used for the GOLA problem"), so the tuning pass here runs
// on the GOLA training set, and only the evaluation uses NOLA instances.
// Published shape: total improvements a little under 10% of the 4254
// starting total; g = 1 is the only class beating Goto and is ~30% ahead
// of six-temperature annealing.
#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

namespace {

// Legible entries of the published Table 4.2(c) {6, 9, 12 s}.
const std::map<std::string, std::array<int, 3>> kPaper42c{
    {"Linear Diff", {288, 313, 312}},   {"Quadratic Diff", {318, 321, 323}},
    {"Cubic Diff", {207, 237, 283}},    {"Exponential Diff", {212, 289, 338}},
    {"6 Linear Diff", {306, 309, 311}}, {"6 Quadratic Diff", {316, 319, 314}},
    {"6 Cubic Diff", {210, 237, 282}},  {"6 Exponential Diff", {215, 295, 336}},
    {"g = 1", {303, 388, 388}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  const unsigned threads = bench::parse_driver_flags(argc, argv);
  bench::print_header(
      "Table 4.2(c) — NOLA: total density reduction, Figure 1, random starts",
      "30 instances, 15 elements, 150 nets of 2-6 pins; GOLA temperatures "
      "reused per §4.3.1; budgets = 6/9/12 s equivalents");

  const auto gola = bench::gola_instances();
  const auto nola = bench::nola_instances();
  const long long start_sum =
      bench::total_start_density(nola, bench::StartKind::kRandom);
  std::printf("sum of starting densities: %lld (paper: 4254)\n\n", start_sum);

  const auto methods = bench::tune_methods(core::table42_classes(), gola,
                                           /*goto_start=*/false,
                                           /*typical_cost=*/80.0,
                                           /*typical_delta=*/2.0);

  bench::TableRunConfig config;
  config.budgets = {bench::scaled(bench::kSixSec),
                    bench::scaled(bench::kNineSec),
                    bench::scaled(bench::kTwelveSec)};
  config.num_threads = threads;
  config.recorder = bench::driver_recorder();
  config.move_seed = 17;

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  table.add_column("6 sec");
  table.add_column("9 sec");
  table.add_column("12 sec");
  table.add_column("paper 6/9/12", util::Table::Align::kLeft);

  const long long goto_reduction = bench::goto_total_reduction(nola);
  table.begin_row();
  table.cell("Goto");
  table.cell(goto_reduction);
  table.cell("-");
  table.cell("-");
  table.cell("-");

  for (const auto& method : methods) {
    const auto totals = bench::run_method_row(method, nola, config);
    table.begin_row();
    table.cell(method.name);
    for (const double t : totals) table.cell(static_cast<long long>(t));
    const auto it = kPaper42c.find(method.name);
    if (it != kPaper42c.end()) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%d / %d / %d", it->second[0],
                    it->second[1], it->second[2]);
      table.cell(std::string{buf});
    } else {
      table.cell("(illegible in scan)");
    }
  }
  table.print();
  bench::maybe_write_csv("table_4_2c", table);
  bench::finish_driver_observability();

  std::printf(
      "\nShape checks (§4.3.2): g = 1 leads and is the only Monte Carlo row\n"
      "competitive with Goto; six-temperature annealing trails g = 1\n"
      "significantly; improvements stay well under the starting total.\n");
  return 0;
}
