#include "common.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/args.hpp"
#include "util/csv.hpp"

#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "linarr/goto_heuristic.hpp"
#include "netlist/generator.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "util/invariant.hpp"
#include "util/rng.hpp"

namespace mcopt::bench {

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("MCOPT_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v >= 0.01 ? v : 1.0;
  }();
  return scale;
}

std::uint64_t scaled(std::uint64_t budget) {
  const double v = static_cast<double>(budget) * bench_scale();
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

std::vector<netlist::Netlist> gola_instances() {
  return netlist::gola_test_set(30, netlist::GolaParams{15, 150}, kSeed);
}

std::vector<netlist::Netlist> nola_instances() {
  return netlist::nola_test_set(30, netlist::NolaParams{15, 150, 2, 6},
                                kSeed);
}

linarr::Arrangement random_start(std::size_t instance, std::size_t n) {
  util::Rng rng{util::derive_seed(kSeed + 1, instance)};
  return linarr::Arrangement::random(n, rng);
}

std::unique_ptr<core::GFunction> make_method_g(const Method& method,
                                               const netlist::Netlist& nl) {
  core::GParams params;
  params.scale = method.scale;
  params.num_nets = nl.num_nets();
  return core::make_g(method.cls, params);
}

std::vector<Method> tune_methods(
    const std::vector<core::GClass>& classes,
    const std::vector<netlist::Netlist>& instances, bool goto_start,
    double typical_cost, double typical_delta) {
  const std::size_t train_count =
      std::min<std::size_t>(kTuneInstances, instances.size());

  std::vector<Method> methods;
  methods.reserve(classes.size());
  for (const core::GClass cls : classes) {
    Method method;
    method.name = core::g_class_name(cls);
    method.cls = cls;
    if (core::g_class_uses_scale(cls)) {
      core::ProblemFactory factory =
          [&instances, goto_start](
              std::size_t i) -> std::unique_ptr<core::Problem> {
        const auto& nl = instances[i];
        auto start = goto_start ? linarr::goto_arrangement(nl)
                                : random_start(i, nl.num_cells());
        return std::make_unique<linarr::LinArrProblem>(nl, std::move(start));
      };
      core::TunerOptions options;
      options.budget = scaled(kTuneBudget);
      options.num_instances = train_count;
      options.seed = kSeed + 2;
      options.typical_cost = typical_cost;
      options.typical_delta = typical_delta;
      method.scale = core::tune_scale(cls, factory, options).best_scale;
    }
    methods.push_back(std::move(method));
  }
  return methods;
}

namespace {

std::uint64_t g_invariant_checks = 0;

// Observability state installed by parse_driver_flags().  The recorder is
// off by default, so drivers that never see an observability flag pay one
// dead branch per event site and nothing else.
std::unique_ptr<obs::JsonlFileSink> g_trace_sink;
// Fans the event stream into both the trace file and the flight ring when
// --trace and --flight-recorder are both active.
std::unique_ptr<obs::TeeSink> g_flight_tee;
obs::Recorder g_recorder;
obs::Heartbeat g_heartbeat;
obs::RunMetrics g_metrics_totals;
// Hardware counters armed by --perf-counters; the recorder borrows the
// pointer, so the group must outlive every run (it lives for the process).
std::unique_ptr<obs::PerfCounterGroup> g_perf_group;
obs::TimelineBuilder g_timeline;
std::string g_trace_path;
std::string g_metrics_path;
std::string g_profile_path;
std::string g_prom_path;
std::string g_timeline_path;
std::uint64_t g_run_counter = 0;

/// Observables digest for the heartbeat's final row tick, e.g.
/// "eq 3/6 stages" — how many sampled stages reached equilibrium in at
/// least one run.  Empty when metrics are off or nothing was sampled.
std::string observables_note(const obs::RunMetrics& metrics) {
  if (!metrics.collected) return {};
  std::size_t active = 0;
  std::size_t equilibrated = 0;
  for (const auto& o : metrics.observables) {
    if (o.samples == 0) continue;
    ++active;
    if (o.equilibrated_runs > 0) ++equilibrated;
  }
  if (active == 0) return {};
  return "eq " + std::to_string(equilibrated) + "/" +
         std::to_string(active) + " stages";
}

}  // namespace

std::uint64_t invariant_checks_executed() { return g_invariant_checks; }

void print_invariant_summary() {
  if constexpr (util::kInvariantsEnabled) {
    std::printf("\ninvariant checks executed: %llu\n",
                static_cast<unsigned long long>(g_invariant_checks));
  }
}

std::vector<double> run_method_row(
    const Method& method, const std::vector<netlist::Netlist>& instances,
    const TableRunConfig& config) {
  // Every (budget, instance) cell is an independent job with its own derived
  // RNG stream, so the grid can run on any number of threads; the index-
  // ordered reduction below keeps the row bit-identical regardless.
  const std::size_t num_jobs = config.budgets.size() * instances.size();
  std::vector<double> reductions(num_jobs, 0.0);
  std::vector<std::uint64_t> checks(num_jobs, 0);

  // One run id per row; each job is a restart-scoped shard within it, so
  // (run, restart) identifies (row, budget x instance cell) in the trace.
  const obs::Recorder root = config.recorder != nullptr
                                 ? config.recorder->with_run(g_run_counter++)
                                 : obs::Recorder{};
  std::vector<obs::RunMetrics> job_metrics(num_jobs);
  std::vector<std::vector<obs::Event>> job_events(num_jobs);
  // Worker that executed each job, for the per-worker timeline lanes.
  std::vector<std::uint64_t> job_worker(num_jobs, 0);
  // Progress counter for the heartbeat only: rows are reduced from the
  // per-job vectors in index order, so this never touches determinism.
  std::atomic<std::size_t> jobs_done{0};  // mcopt-lint: allow(raw-atomic)

  auto run_job = [&](std::size_t job, std::uint64_t worker) {
    const std::size_t b = job / instances.size();
    const std::size_t i = job % instances.size();
    const auto& nl = instances[i];
    auto start = config.start == StartKind::kGoto
                     ? linarr::goto_arrangement(nl)
                     : random_start(i, nl.num_cells());
    linarr::LinArrProblem problem{nl, std::move(start), config.move_kind};
    const auto g = make_method_g(method, nl);
    util::Rng rng{util::derive_seed(config.move_seed, i)};
    obs::VectorSink shard;
    obs::Recorder rec =
        root.for_restart(job, worker, root.tracing() ? &shard : nullptr);
    if (rec.on()) rec.restart_begin(problem.cost());
    core::RunResult result;
    if (config.figure2) {
      core::Figure2Options fig2;
      fig2.budget = config.budgets[b];
      fig2.recorder = &rec;
      result = core::run_figure2(problem, *g, fig2, rng);
    } else {
      core::Figure1Options fig1;
      fig1.budget = config.budgets[b];
      fig1.recorder = &rec;
      result = core::run_figure1(problem, *g, fig1, rng);
    }
    reductions[job] = result.reduction();
    checks[job] = result.invariants.executed;
    if (result.metrics.collected) result.metrics.restarts = 1;
    job_metrics[job] = std::move(result.metrics);
    job_events[job] = shard.take();
    job_worker[job] = worker;
    // The final tick is emitted after the reduction below so it can carry
    // the row's observables digest; in-flight ticks stay here.
    const std::size_t done = jobs_done.fetch_add(1) + 1;
    if (done < num_jobs) g_heartbeat.tick(done, num_jobs, std::nan(""));
  };

  const unsigned workers = config.num_threads == 0 ? 1 : config.num_threads;
  if (workers <= 1 || num_jobs <= 1) {
    for (std::size_t job = 0; job < num_jobs; ++job) run_job(job, 0);
  } else {
    // Work-stealing job counter; job order is irrelevant because every
    // output lands in a per-job slot and is reduced in index order.
    std::atomic<std::size_t> next{0};  // mcopt-lint: allow(raw-atomic)
    auto drain = [&](std::uint64_t worker) {
      for (std::size_t job = next.fetch_add(1); job < num_jobs;
           job = next.fetch_add(1)) {
        run_job(job, worker);
      }
    };
    std::vector<std::thread> pool;
    const std::size_t spawn =
        std::min<std::size_t>(workers, num_jobs);
    pool.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t) {
      pool.emplace_back(drain, static_cast<std::uint64_t>(t) + 1);
    }
    for (auto& thread : pool) thread.join();
  }

  std::vector<double> totals(config.budgets.size(), 0.0);
  obs::TraceSink* sink = root.sink();
  // Row-local metrics accumulator: merge() is associative (a tested
  // invariant), so folding jobs -> row -> driver totals equals the direct
  // fold, and the row aggregate feeds the heartbeat digest below.
  obs::RunMetrics row_metrics;
  for (std::size_t job = 0; job < num_jobs; ++job) {
    totals[job / instances.size()] += reductions[job];
    g_invariant_checks += checks[job];
    // Job order is the single-thread execution order, so the drained trace
    // and merged metrics are thread-count invariant (worker stamps aside).
    if (sink != nullptr) {
      for (const obs::Event& event : job_events[job]) sink->write(event);
    }
    row_metrics.merge(job_metrics[job]);
    // Per-worker timeline lanes: each job's own profile tree lands on the
    // lane of the worker that ran it.  The jobs are drained in index
    // order here, so the lane contents are append-ordered by job index —
    // the same order the trace and metrics merges use.
    if (!g_timeline_path.empty() && !job_metrics[job].profile.empty()) {
      const auto tid = static_cast<std::uint32_t>(job_worker[job]);
      g_timeline.set_process_name(1, "workers");
      g_timeline.set_thread_name(
          1, tid, tid == 0 ? "caller thread" : "worker " + std::to_string(tid));
      g_timeline.add_tree(job_metrics[job].profile, 1, tid);
    }
  }
  g_metrics_totals.merge(row_metrics);
  if (num_jobs > 0) {
    g_heartbeat.tick(num_jobs, num_jobs, std::nan(""),
                     observables_note(row_metrics));
  }
  return totals;
}

std::optional<DriverOptions> parse_driver_options(int argc,
                                                  const char* const* argv,
                                                  std::string* error) {
  const util::Args args{argc, argv};
  const auto unknown = args.unknown_flags(
      {"threads", "trace", "metrics", "metrics-out", "profile-out",
       "prom-out", "timeline-out", "perf-counters", "trace-sample",
       "progress", "flight-recorder", "flight-out", "quiet", "verbose"});
  if (!unknown.empty()) {
    *error = "unknown flag --" + unknown.front();
    return std::nullopt;
  }
  if (!args.positional().empty()) {
    *error = "unexpected argument '" + args.positional().front() + "'";
    return std::nullopt;
  }
  if (args.has("quiet") && args.has("verbose")) {
    *error = "--quiet and --verbose conflict";
    return std::nullopt;
  }

  DriverOptions out;
  out.quiet = args.has("quiet");
  out.verbose = args.has("verbose");

  // Each numeric flag is validated by name so the error tells the user
  // exactly which value to fix.
  auto positive_int = [&](const char* name, long long fallback,
                          long long* value) {
    try {
      *value = args.get_int(name, fallback);
    } catch (const std::invalid_argument&) {
      *error = std::string{"--"} + name + " expects an integer (got '" +
               args.value(name).value_or("") + "')";
      return false;
    }
    if (*value < 1) {
      *error = std::string{"--"} + name + " must be >= 1 (got " +
               std::to_string(*value) + ")";
      return false;
    }
    return true;
  };
  long long threads = 1;
  long long sample = 1;
  if (!positive_int("threads", 1, &threads)) return std::nullopt;
  if (!positive_int("trace-sample", 1, &sample)) return std::nullopt;
  out.threads = static_cast<unsigned>(threads);
  out.trace_sample = static_cast<std::uint64_t>(sample);

  if (args.has("progress")) {
    const std::string value = args.value("progress").value_or("");
    if (value.empty()) {
      out.progress_interval = 2.0;  // bare --progress
    } else {
      try {
        out.progress_interval = args.get_double("progress", 2.0);
      } catch (const std::invalid_argument&) {
        *error = "--progress expects a number of seconds (got '" + value +
                 "')";
        return std::nullopt;
      }
      if (out.progress_interval <= 0.0) {
        *error = "--progress interval must be > 0 (got " + value + ")";
        return std::nullopt;
      }
    }
  }

  if (args.has("flight-recorder")) {
    const std::string value = args.value("flight-recorder").value_or("");
    if (value.empty()) {
      out.flight_capacity = obs::FlightRecorder::kDefaultCapacity;  // bare
    } else {
      long long cap = 0;
      if (!positive_int("flight-recorder",
                        static_cast<long long>(
                            obs::FlightRecorder::kDefaultCapacity),
                        &cap)) {
        return std::nullopt;
      }
      out.flight_capacity = static_cast<std::size_t>(cap);
    }
  }
  out.flight_path = args.get("flight-out", out.flight_path);
  if (out.flight_capacity == 0 && args.has("flight-out")) {
    *error = "--flight-out requires --flight-recorder";
    return std::nullopt;
  }

  out.trace_path = args.get("trace", "");
  // --metrics is the original spelling; --metrics-out matches the other
  // exporter flags and wins when both are given.
  out.metrics_path = args.get("metrics-out", args.get("metrics", ""));
  out.profile_path = args.get("profile-out", "");
  out.prom_path = args.get("prom-out", "");

  if (args.has("timeline-out")) {
    out.timeline_path = args.value("timeline-out").value_or("");
    if (out.timeline_path.empty()) {
      *error = "--timeline-out expects a file path";
      return std::nullopt;
    }
  }
  if (args.has("perf-counters")) {
    const std::string list = args.value("perf-counters").value_or("");
    if (list.empty()) {
      out.perf_counters = obs::all_perf_counters();  // bare flag
    } else {
      std::string parse_error;
      const auto counters = obs::parse_perf_counters(list, &parse_error);
      if (!counters) {
        *error = "--perf-counters: " + parse_error;
        return std::nullopt;
      }
      out.perf_counters = *counters;
    }
  }
  return out;
}

unsigned parse_driver_flags(int argc, const char* const* argv) {
  // Environment default first; explicit --quiet/--verbose override it.
  obs::apply_env_log_level();
  const util::Args args{argc, argv};
  std::string error;
  const auto parsed = parse_driver_options(argc, argv, &error);
  if (!parsed) {
    obs::log(obs::LogLevel::kError, "%s: %s", args.program().c_str(),
             error.c_str());
    obs::log(obs::LogLevel::kError,
             "usage: %s [--threads N] [--trace FILE] [--metrics-out FILE] "
             "[--profile-out FILE] [--prom-out FILE] [--timeline-out FILE] "
             "[--perf-counters [LIST]] [--trace-sample N] "
             "[--progress [SECS]] [--flight-recorder [CAP]] "
             "[--flight-out FILE] [--quiet|--verbose]",
             args.program().c_str());
    std::exit(2);
  }
  if (parsed->quiet) obs::set_log_level(obs::LogLevel::kError);
  if (parsed->verbose) obs::set_log_level(obs::LogLevel::kDebug);
  if (parsed->threads > 1) {
    obs::log(obs::LogLevel::kInfo,
             "threads=%u (results are thread-count invariant)",
             parsed->threads);
  }

  g_trace_path = parsed->trace_path;
  g_metrics_path = parsed->metrics_path;
  g_profile_path = parsed->profile_path;
  g_prom_path = parsed->prom_path;
  g_timeline_path = parsed->timeline_path;
  if (!g_trace_path.empty()) {
    try {
      g_trace_sink = std::make_unique<obs::JsonlFileSink>(g_trace_path);
    } catch (const std::invalid_argument& open_error) {
      obs::log(obs::LogLevel::kError, "%s: %s", args.program().c_str(),
               open_error.what());
      std::exit(2);
    }
  }
  if (parsed->progress_interval > 0.0) {
    g_heartbeat.enable("jobs", parsed->progress_interval);
  }
  // The flight ring rides the same event stream as --trace: alone it is
  // the recorder's sink, together they share a tee.  Handlers go in after
  // arming so a crash at any later point finds a ready ring.
  obs::TraceSink* event_sink = g_trace_sink.get();
  if (parsed->flight_capacity > 0) {
    auto& flight = obs::FlightRecorder::instance();
    flight.arm(parsed->flight_capacity, parsed->flight_path);
    flight.install_crash_handlers();
    if (event_sink != nullptr) {
      g_flight_tee =
          std::make_unique<obs::TeeSink>(event_sink, flight.sink());
      event_sink = g_flight_tee.get();
    } else {
      event_sink = flight.sink();
    }
  }
  const bool collect_metrics =
      !g_metrics_path.empty() || !g_prom_path.empty();
  // Timeline export and counter attribution both ride the profile tree.
  const bool collect_profile = !g_profile_path.empty() ||
                               !g_timeline_path.empty() ||
                               !parsed->perf_counters.empty();
  if (event_sink != nullptr || collect_metrics || collect_profile) {
    g_recorder = obs::Recorder{event_sink, collect_metrics,
                               parsed->trace_sample, /*run=*/0,
                               collect_profile};
  }
  if (!parsed->perf_counters.empty()) {
    g_perf_group =
        std::make_unique<obs::PerfCounterGroup>(parsed->perf_counters);
    if (g_perf_group->available()) {
      g_recorder.set_perf_counters(g_perf_group.get());
      obs::log(obs::LogLevel::kInfo,
               "perf counters armed (%zu of %zu requested)",
               g_perf_group->active_counters().size(),
               parsed->perf_counters.size());
    } else {
      // Graceful degradation: the run proceeds identically, the perf
      // gauges are simply never produced.
      obs::log(obs::LogLevel::kInfo, "perf counters unavailable: %s",
               g_perf_group->unavailable_reason().c_str());
    }
  }
  return parsed->threads;
}

const obs::Recorder* driver_recorder() { return &g_recorder; }

obs::Heartbeat* driver_heartbeat() { return &g_heartbeat; }

void absorb_run_metrics(const obs::RunMetrics& metrics) {
  g_metrics_totals.merge(metrics);
}

void finish_driver_observability() {
  if (g_trace_sink != nullptr) {
    g_trace_sink->flush();
    obs::log(obs::LogLevel::kInfo, "trace: %llu events -> %s",
             static_cast<unsigned long long>(g_trace_sink->written()),
             g_trace_path.c_str());
  }
  if (!g_metrics_path.empty()) {
    std::ofstream out{g_metrics_path};
    if (!out) {
      obs::log(obs::LogLevel::kError, "warning: cannot write %s",
               g_metrics_path.c_str());
    } else {
      out << g_metrics_totals.to_json();
      obs::log(obs::LogLevel::kInfo, "%s",
               g_metrics_totals.summary().c_str());
      obs::log(obs::LogLevel::kInfo, "metrics -> %s", g_metrics_path.c_str());
    }
  }
  if (!g_profile_path.empty()) {
    std::ofstream out{g_profile_path};
    if (!out) {
      obs::log(obs::LogLevel::kError, "warning: cannot write %s",
               g_profile_path.c_str());
    } else {
      out << "{\n  \"profile\": " << g_metrics_totals.profile.to_json()
          << "\n}\n";
      obs::log(obs::LogLevel::kInfo, "profile -> %s", g_profile_path.c_str());
    }
  }
  if (!g_timeline_path.empty()) {
    // The aggregate lane goes in last so it reflects every merged row;
    // worker lanes were appended during run_method_row in job-index order.
    if (!g_metrics_totals.profile.empty()) {
      g_timeline.set_process_name(0, "mcopt aggregate profile");
      g_timeline.set_thread_name(0, 0, "all runs");
      g_timeline.add_tree(g_metrics_totals.profile, 0, 0);
    }
    std::ofstream out{g_timeline_path};
    if (!out) {
      obs::log(obs::LogLevel::kError, "warning: cannot write %s",
               g_timeline_path.c_str());
    } else {
      out << g_timeline.to_json();
      obs::log(obs::LogLevel::kInfo,
               "timeline: %zu events -> %s (open in ui.perfetto.dev)",
               g_timeline.num_events(), g_timeline_path.c_str());
    }
  }
  if (!g_prom_path.empty()) {
    std::ofstream out{g_prom_path};
    if (!out) {
      obs::log(obs::LogLevel::kError, "warning: cannot write %s",
               g_prom_path.c_str());
    } else {
      obs::MetricsRegistry registry;
      registry.populate_from_run(g_metrics_totals);
      out << registry.to_prometheus();
      obs::log(obs::LogLevel::kInfo, "prometheus metrics (%zu series) -> %s",
               registry.size(), g_prom_path.c_str());
    }
  }
  const obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  if (flight.armed()) {
    // A clean exit only reports the ring; the dump file is written by the
    // crash handlers alone, so its existence proves abnormal termination.
    const obs::RingBufferSink* ring = flight.ring();
    obs::log(obs::LogLevel::kInfo,
             "flight recorder: %zu buffered events (cap %zu, %llu dropped); "
             "dump on abnormal exit -> %s",
             ring->size(), ring->capacity(),
             static_cast<unsigned long long>(ring->dropped()),
             flight.dump_path().c_str());
    // CI hook proving the dump path end to end: abort here so the SIGABRT
    // handler writes the flight file before the process dies.
    if (std::getenv("MCOPT_FLIGHT_INDUCED_ABORT") != nullptr) {
      obs::log(obs::LogLevel::kError,
               "MCOPT_FLIGHT_INDUCED_ABORT set: aborting now");
      std::abort();
    }
  }
}

long long total_start_density(const std::vector<netlist::Netlist>& instances,
                              StartKind start) {
  long long total = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& nl = instances[i];
    const auto arr = start == StartKind::kGoto
                         ? linarr::goto_arrangement(nl)
                         : random_start(i, nl.num_cells());
    total += linarr::density_of(nl, arr);
  }
  return total;
}

long long goto_total_reduction(
    const std::vector<netlist::Netlist>& instances) {
  return total_start_density(instances, StartKind::kRandom) -
         total_start_density(instances, StartKind::kGoto);
}

void print_header(const std::string& title, const std::string& protocol) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", protocol.c_str());
  std::printf("seed=%llu  tick calibration: 6 s ~= %llu ticks  scale=%.2f\n",
              static_cast<unsigned long long>(kSeed),
              static_cast<unsigned long long>(scaled(kSixSec)),
              bench_scale());
  std::printf("================================================================\n");
}

void maybe_write_csv(const std::string& experiment,
                     const util::Table& table) {
  const char* dir = std::getenv("MCOPT_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string{dir} + "/" + experiment + ".csv";
  std::ofstream out{path};
  if (!out) {
    obs::log(obs::LogLevel::kError, "warning: cannot write %s", path.c_str());
    return;
  }
  util::CsvWriter csv{out};
  csv.row(table.headers());
  for (const auto& row : table.data()) csv.row(row);
  std::printf("(csv mirrored to %s)\n", path.c_str());
}

void write_json_report(const std::string& name, const std::string& payload) {
  const char* dir = std::getenv("MCOPT_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr && dir[0] != '\0' ? std::string{dir} + "/" : std::string{}) +
      name + ".json";
  std::ofstream out{path};
  if (!out) {
    obs::log(obs::LogLevel::kError, "warning: cannot write %s", path.c_str());
    return;
  }
  out << payload;
  std::printf("(json report written to %s)\n", path.c_str());
}

}  // namespace mcopt::bench
