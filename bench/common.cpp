#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "util/csv.hpp"

#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "linarr/goto_heuristic.hpp"
#include "netlist/generator.hpp"
#include "util/invariant.hpp"
#include "util/rng.hpp"

namespace mcopt::bench {

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("MCOPT_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v >= 0.01 ? v : 1.0;
  }();
  return scale;
}

std::uint64_t scaled(std::uint64_t budget) {
  const double v = static_cast<double>(budget) * bench_scale();
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

std::vector<netlist::Netlist> gola_instances() {
  return netlist::gola_test_set(30, netlist::GolaParams{15, 150}, kSeed);
}

std::vector<netlist::Netlist> nola_instances() {
  return netlist::nola_test_set(30, netlist::NolaParams{15, 150, 2, 6},
                                kSeed);
}

linarr::Arrangement random_start(std::size_t instance, std::size_t n) {
  util::Rng rng{util::derive_seed(kSeed + 1, instance)};
  return linarr::Arrangement::random(n, rng);
}

std::unique_ptr<core::GFunction> make_method_g(const Method& method,
                                               const netlist::Netlist& nl) {
  core::GParams params;
  params.scale = method.scale;
  params.num_nets = nl.num_nets();
  return core::make_g(method.cls, params);
}

std::vector<Method> tune_methods(
    const std::vector<core::GClass>& classes,
    const std::vector<netlist::Netlist>& instances, bool goto_start,
    double typical_cost, double typical_delta) {
  const std::size_t train_count =
      std::min<std::size_t>(kTuneInstances, instances.size());

  std::vector<Method> methods;
  methods.reserve(classes.size());
  for (const core::GClass cls : classes) {
    Method method;
    method.name = core::g_class_name(cls);
    method.cls = cls;
    if (core::g_class_uses_scale(cls)) {
      core::ProblemFactory factory =
          [&instances, goto_start](
              std::size_t i) -> std::unique_ptr<core::Problem> {
        const auto& nl = instances[i];
        auto start = goto_start ? linarr::goto_arrangement(nl)
                                : random_start(i, nl.num_cells());
        return std::make_unique<linarr::LinArrProblem>(nl, std::move(start));
      };
      core::TunerOptions options;
      options.budget = scaled(kTuneBudget);
      options.num_instances = train_count;
      options.seed = kSeed + 2;
      options.typical_cost = typical_cost;
      options.typical_delta = typical_delta;
      method.scale = core::tune_scale(cls, factory, options).best_scale;
    }
    methods.push_back(std::move(method));
  }
  return methods;
}

namespace {
std::uint64_t g_invariant_checks = 0;
}  // namespace

std::uint64_t invariant_checks_executed() { return g_invariant_checks; }

void print_invariant_summary() {
  if constexpr (util::kInvariantsEnabled) {
    std::printf("\ninvariant checks executed: %llu\n",
                static_cast<unsigned long long>(g_invariant_checks));
  }
}

std::vector<double> run_method_row(
    const Method& method, const std::vector<netlist::Netlist>& instances,
    const TableRunConfig& config) {
  std::vector<double> totals(config.budgets.size(), 0.0);
  for (std::size_t b = 0; b < config.budgets.size(); ++b) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& nl = instances[i];
      auto start = config.start == StartKind::kGoto
                       ? linarr::goto_arrangement(nl)
                       : random_start(i, nl.num_cells());
      linarr::LinArrProblem problem{nl, std::move(start), config.move_kind};
      const auto g = make_method_g(method, nl);
      util::Rng rng{util::derive_seed(config.move_seed, i)};
      core::RunResult result;
      if (config.figure2) {
        core::Figure2Options fig2;
        fig2.budget = config.budgets[b];
        result = core::run_figure2(problem, *g, fig2, rng);
      } else {
        core::Figure1Options fig1;
        fig1.budget = config.budgets[b];
        result = core::run_figure1(problem, *g, fig1, rng);
      }
      totals[b] += result.reduction();
      g_invariant_checks += result.invariants.executed;
    }
  }
  return totals;
}

long long total_start_density(const std::vector<netlist::Netlist>& instances,
                              StartKind start) {
  long long total = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& nl = instances[i];
    const auto arr = start == StartKind::kGoto
                         ? linarr::goto_arrangement(nl)
                         : random_start(i, nl.num_cells());
    total += linarr::density_of(nl, arr);
  }
  return total;
}

long long goto_total_reduction(
    const std::vector<netlist::Netlist>& instances) {
  return total_start_density(instances, StartKind::kRandom) -
         total_start_density(instances, StartKind::kGoto);
}

void print_header(const std::string& title, const std::string& protocol) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", protocol.c_str());
  std::printf("seed=%llu  tick calibration: 6 s ~= %llu ticks  scale=%.2f\n",
              static_cast<unsigned long long>(kSeed),
              static_cast<unsigned long long>(scaled(kSixSec)),
              bench_scale());
  std::printf("================================================================\n");
}

void maybe_write_csv(const std::string& experiment,
                     const util::Table& table) {
  const char* dir = std::getenv("MCOPT_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string{dir} + "/" + experiment + ".csv";
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  util::CsvWriter csv{out};
  csv.row(table.headers());
  for (const auto& row : table.data()) csv.row(row);
  std::printf("(csv mirrored to %s)\n", path.c_str());
}

}  // namespace mcopt::bench
