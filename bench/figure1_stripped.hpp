// A hand-stripped copy of core::run_figure1 — the Figure 1 loop exactly as
// it would look with no instrumentation compiled in at all.  This is the
// timing baseline the observability overhead gates compare against
// (bench/obs_overhead.cpp, bench/metrics_overhead.cpp); both drivers
// assert it stays bit-identical in results to the real loop so the two
// cannot drift apart silently.
#pragma once

#include <cstdint>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/result.hpp"
#include "util/budget.hpp"
#include "util/invariant.hpp"
#include "util/rng.hpp"

namespace mcopt::bench {

inline core::RunResult run_figure1_stripped(core::Problem& problem,
                                            const core::GFunction& g,
                                            const core::Figure1Options& options,
                                            util::Rng& rng) {
  const unsigned k = g.num_temperatures();
  util::WorkBudget budget{options.budget};

  core::RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = k == 0 ? 0 : 1;

  unsigned temp = 0;
  std::uint64_t reject_counter = 0;
  std::uint64_t accept_counter = 0;
  unsigned gate_counter = 0;
  double h_i = result.initial_cost;

  auto advance_temperature = [&]() -> bool {
    if (temp + 1 >= k) return false;
    ++temp;
    ++result.temperatures_visited;
    reject_counter = 0;
    accept_counter = 0;
    return true;
  };

  bool schedule_exhausted = false;
  while (!budget.exhausted() && !schedule_exhausted && k > 0) {
    while (budget.spent() >= budget.slice_end(k, temp)) {
      if (!advance_temperature()) {
        schedule_exhausted = true;
        break;
      }
    }
    if (schedule_exhausted) break;

    if constexpr (util::kInvariantsEnabled) {
      if (options.invariant_check_interval != 0 &&
          result.proposals % options.invariant_check_interval == 0) {
        problem.check_invariants();
        ++result.invariants.executed;
      }
    }

    const double h_j = problem.propose(rng);
    budget.charge();
    ++result.proposals;
    result.ticks = budget.spent();

    auto note_accept = [&]() {
      ++accept_counter;
      if (options.equilibrium_accepts > 0 &&
          accept_counter >= options.equilibrium_accepts &&
          !advance_temperature()) {
        schedule_exhausted = true;
      }
    };

    const double delta = h_j - h_i;
    if (delta < 0.0) {
      problem.accept();
      ++result.accepts;
      h_i = h_j;
      gate_counter = 0;
      reject_counter = 0;
      if (h_i < result.best_cost) {
        result.best_cost = h_i;
        problem.snapshot_into(result.best_state);
      }
      note_accept();
      continue;
    }

    if (options.equilibrium_rejects > 0 &&
        reject_counter >= options.equilibrium_rejects) {
      problem.reject();
      if (!advance_temperature()) break;
      continue;
    }

    bool take = false;
    if (g.always_accepts(temp)) {
      ++gate_counter;
      if (gate_counter >= options.gate_threshold) {
        take = true;
        gate_counter = 1;
      }
    } else {
      take = rng.next_double() < g.probability(temp, h_i, h_j);
    }

    if (take) {
      problem.accept();
      ++result.accepts;
      if (delta > 0.0) ++result.uphill_accepts;
      h_i = h_j;
      reject_counter = 0;
      note_accept();
    } else {
      problem.reject();
      ++reject_counter;
    }
  }

  result.final_cost = problem.cost();
  return result;
}

inline bool stripped_results_match(const core::RunResult& a,
                                   const core::RunResult& b) {
  return a.best_cost == b.best_cost && a.final_cost == b.final_cost &&
         a.proposals == b.proposals && a.accepts == b.accepts &&
         a.uphill_accepts == b.uphill_accepts && a.ticks == b.ticks &&
         a.temperatures_visited == b.temperatures_visited &&
         a.best_state == b.best_state;
}

}  // namespace mcopt::bench
