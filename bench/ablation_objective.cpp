// Ablation E — objective function: density (the paper's h) vs total span.
//
// Density (max boundary crossing) is a bottleneck objective with large
// plateaus: most perturbations leave the maximum unchanged.  Total span
// (the sum of crossings, a wirelength-style objective) gives every move a
// gradient.  This ablation optimizes each objective and cross-evaluates:
// does minimizing span incidentally produce low density, and vice versa?
// (This is the substrate question behind Table 4.1's sideways-move
// dynamics: difference-based g classes do well there precisely because
// they accept all sideways moves on the plateaus.)
#include <cstdio>

#include "common.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "linarr/problem.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcopt;
  bench::print_header(
      "Ablation E — objective: density vs total span",
      "GOLA set; Figure 1; g = 1; 12 s budget; cross-evaluated results");

  const auto instances = bench::gola_instances();
  const auto g = core::make_g(core::GClass::kGOne);

  util::Table table;
  table.add_column("optimized objective", util::Table::Align::kLeft);
  table.add_column("final density (sum)");
  table.add_column("final span (sum)");

  for (const auto objective :
       {linarr::Objective::kDensity, linarr::Objective::kTotalSpan}) {
    long long density_sum = 0;
    long long span_sum = 0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& nl = instances[i];
      linarr::LinArrProblem problem{nl, bench::random_start(i, nl.num_cells()),
                                    linarr::MoveKind::kPairwiseInterchange,
                                    objective};
      util::Rng rng{util::derive_seed(43, i)};
      core::Figure1Options options;
      options.budget = bench::scaled(bench::kTwelveSec);
      const auto result = core::run_figure1(problem, *g, options, rng);
      problem.restore(result.best_state);
      density_sum += problem.state().density();
      span_sum += problem.state().total_span();
    }
    table.begin_row();
    table.cell(objective == linarr::Objective::kDensity ? "density (paper)"
                                                        : "total span");
    table.cell(density_sum);
    table.cell(span_sum);
  }

  // Reference: the random starts themselves.
  long long start_density = 0;
  long long start_span = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& nl = instances[i];
    const linarr::DensityState state{nl,
                                     bench::random_start(i, nl.num_cells())};
    start_density += state.density();
    start_span += state.total_span();
  }
  table.begin_row();
  table.cell("(random starts)");
  table.cell(start_density);
  table.cell(start_span);
  table.print();
  bench::maybe_write_csv("ablation_objective", table);

  std::printf(
      "\nShape check: optimizing span drags density down as a side effect\n"
      "(and vice versa), but each objective wins on its own metric —\n"
      "density really is a distinct, plateau-heavy target.\n");
  return 0;
}
