// Table 4.2(b) — GOLA: strategy of Figure 1 vs strategy of Figure 2 at the
// 3-minute budget (§4.2.4).
//
// The paper gives each of the 13 g classes 3 minutes per instance under
// both strategies (local-optimum descent took ~20 s, so the budget is a
// comfortable multiple of the descent cost; the same holds here).  The
// published observations: 9 of 13 classes improve under Figure 2, and with
// the better strategy per class the spread between classes is at most ~6%.
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

namespace {

// Legible entries of the published Table 4.2(b) {Figure 1, Figure 2}.
const std::map<std::string, std::array<int, 2>> kPaper42b{
    {"[COHO83a]", {651, 727}},        {"Metropolis", {682, 692}},
    {"Six Temperature Annealing", {739, 701}},
    {"g = 1", {736, 735}},            {"Two level g", {642, 703}},
    {"Linear Diff", {709, 738}},      {"Quadratic Diff", {656, 736}},
    {"Cubic Diff", {741, 729}},       {"Exponential Diff", {726, 735}},
    {"6 Linear Diff", {719, 738}},    {"6 Quadratic Diff", {647, 734}},
    {"6 Cubic Diff", {743, 731}},     {"6 Exponential Diff", {727, 739}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  const unsigned threads = bench::parse_driver_flags(argc, argv);
  bench::print_header(
      "Table 4.2(b) — GOLA: Figure 1 vs Figure 2 at the 3-minute budget",
      "30 instances; random starts; 13 g classes; budget = 3 min equivalent "
      "(compressed 1/3 by default; MCOPT_BENCH_SCALE=3 restores it)");

  const auto instances = bench::gola_instances();
  const auto methods =
      bench::tune_methods(core::table42_classes(), instances,
                          /*goto_start=*/false,
                          /*typical_cost=*/80.0, /*typical_delta=*/2.0);

  bench::TableRunConfig fig1;
  fig1.budgets = {bench::scaled(bench::kThreeMin)};
  fig1.move_seed = 13;
  fig1.num_threads = threads;
  fig1.recorder = bench::driver_recorder();
  bench::TableRunConfig fig2 = fig1;
  fig2.figure2 = true;

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  table.add_column("Figure 1");
  table.add_column("Figure 2");
  table.add_column("better");
  table.add_column("paper F1/F2", util::Table::Align::kLeft);

  int figure2_wins = 0;
  double best_of_better = 0.0;
  double worst_of_better = 1e18;
  for (const auto& method : methods) {
    const double f1 = bench::run_method_row(method, instances, fig1)[0];
    const double f2 = bench::run_method_row(method, instances, fig2)[0];
    figure2_wins += f2 > f1;
    const double better = std::max(f1, f2);
    best_of_better = std::max(best_of_better, better);
    worst_of_better = std::min(worst_of_better, better);
    table.begin_row();
    table.cell(method.name);
    table.cell(static_cast<long long>(f1));
    table.cell(static_cast<long long>(f2));
    table.cell(f2 > f1 ? "Fig 2" : (f1 > f2 ? "Fig 1" : "tie"));
    const auto it = kPaper42b.find(method.name);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%d / %d", it->second[0], it->second[1]);
    table.cell(std::string{buf});
  }
  table.print();
  bench::maybe_write_csv("table_4_2b", table);
  bench::finish_driver_observability();

  std::printf(
      "\nFigure 2 wins %d of 13 classes (paper: 9 of 13).\n"
      "Spread of the better-strategy results: %.1f%% (paper: <= 6%%).\n",
      figure2_wins,
      100.0 * (best_of_better - worst_of_better) /
          (best_of_better > 0 ? best_of_better : 1.0));
  return 0;
}
