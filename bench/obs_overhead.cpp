// Observability overhead — proves the Recorder is free when off.
//
// The contract (src/obs/recorder.hpp): every event method is an inlined
// `if (off_) return;` in front of an out-of-line slow path, so compiling
// the instrumentation into the Figure 1 hot loop must cost <1% in
// proposals/sec when no recorder is installed.  This bench measures that
// directly against a hand-stripped copy of the same loop
// (bench/figure1_stripped.hpp, verified bit-identical in its results),
// then reports the price of each
// observability tier when it *is* on: metrics only, ring-buffer trace,
// and sampled JSONL trace.
//
// It also enforces the cross-cutting acceptance criterion of the telemetry
// work: a traced 8-thread parallel multistart run must be bit-identical in
// its final results (aggregate counters, best state, per-restart history)
// to an untraced single-threaded run.
//
// Methodology: one untimed warmup pass over all tiers, then best-of-reps
// with reps interleaved across tiers (not tier-by-tier) so machine drift
// cannot skew the comparison.
//
// Results land in BENCH_obs.json via bench::write_json_report.  Wall-clock
// numbers are hardware-dependent; the determinism checks are not.
//
// Flags: --budget T   ticks per timed run (default 2'000'000)
//        --reps N     timed repetitions per config, best-of (default 5)
//        --gate-pct P max allowed off-vs-baseline regression (default 1.0)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "figure1_stripped.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "core/parallel.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/budget.hpp"
#include "util/invariant.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mcopt;

struct ConfigTiming {
  std::string name;
  double best_seconds = 0.0;
  double proposals_per_sec = 0.0;
  double overhead_pct = 0.0;  // vs the stripped baseline
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args{argc, argv};
  const auto unknown = args.unknown_flags({"budget", "reps", "gate-pct"});
  if (!unknown.empty() || !args.positional().empty()) {
    obs::log(obs::LogLevel::kError,
             "usage: %s [--budget T] [--reps N] [--gate-pct P]",
             args.program().c_str());
    return 2;
  }
  const long long budget_flag = args.get_int("budget", 2'000'000);
  const long long reps_flag = args.get_int("reps", 5);
  const double gate_pct = args.get_double("gate-pct", 1.0);
  if (budget_flag < 1 || reps_flag < 1 || gate_pct <= 0.0) {
    obs::log(obs::LogLevel::kError, "%s: flags must be positive",
             args.program().c_str());
    return 2;
  }
  const auto budget = static_cast<std::uint64_t>(budget_flag);
  const auto reps = static_cast<std::size_t>(reps_flag);

  char gate_buf[32];
  std::snprintf(gate_buf, sizeof gate_buf, "%.2f", gate_pct);
  bench::print_header(
      "Observability overhead — Recorder cost per tier",
      "Figure 1, six-temperature annealing, GOLA 15/150; best-of-reps "
      "timings; off-path gate <" +
          std::string{gate_buf} + "% vs a hand-stripped loop");

  util::Rng gen_rng{util::derive_seed(bench::kSeed, 15)};
  const auto nl =
      netlist::random_gola(netlist::GolaParams{15, 150}, gen_rng);
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);

  core::Figure1Options base_options;
  base_options.budget = budget;

  auto make_problem = [&]() {
    util::Rng start_rng{util::derive_seed(bench::kSeed + 3, 15)};
    return linarr::LinArrProblem{
        nl, linarr::Arrangement::random(15, start_rng)};
  };

  // Every timed run replays the same seed, so all configs do identical
  // work and their results must agree bit-for-bit.
  auto timed_run = [&](const core::Figure1Options& options, bool stripped,
                       core::RunResult* out) {
    auto problem = make_problem();
    util::Rng rng{bench::kSeed + 9};
    util::Stopwatch watch;
    core::RunResult result =
        stripped ? bench::run_figure1_stripped(problem, *g, options, rng)
                 : core::run_figure1(problem, *g, options, rng);
    const double seconds = watch.seconds();
    if (out != nullptr) *out = result;
    return seconds;
  };

  core::RunResult reference;
  timed_run(base_options, /*stripped=*/true, &reference);

  obs::RingBufferSink ring{65536};
  std::ostringstream jsonl_out;
  obs::JsonlFileSink jsonl{jsonl_out};
  const obs::Recorder metrics_only{nullptr, /*collect_metrics=*/true};
  const obs::Recorder ring_traced{&ring, /*collect_metrics=*/true};
  const obs::Recorder jsonl_sampled{&jsonl, /*collect_metrics=*/true,
                                    /*trace_sample=*/64};

  struct Tier {
    const char* name;
    bool stripped;
    const obs::Recorder* recorder;
  };
  const std::vector<Tier> tiers{
      {"baseline (stripped loop)", true, nullptr},
      {"off (no recorder)", false, nullptr},
      {"metrics only", false, &metrics_only},
      {"ring trace 64k + metrics", false, &ring_traced},
      {"jsonl 1/64 + metrics", false, &jsonl_sampled},
  };

  // Rep 0 is an untimed warmup of every tier (first-touch allocation,
  // i-cache, frequency ramp); timed reps then interleave across tiers so
  // slow machine drift lands evenly on all configs instead of biasing
  // whichever tier happens to run last.  The old per-tier outer loop made
  // the stripped baseline absorb all the cold-start cost and could report
  // *negative* overhead for the instrumented tiers.  Overheads are the
  // minimum over reps of the *paired* per-rep ratio against the baseline
  // run of the same rep: temporally adjacent runs share machine
  // conditions, so drift cancels out of the ratio instead of landing in
  // whichever tier a global minimum happens to favour.  The median ratio
  // is the reported overhead: unlike a minimum it is not biased low when
  // a baseline rep eats a noise spike, and unlike a mean it shrugs off a
  // single bad rep of the measured tier.
  std::vector<ConfigTiming> timings(tiers.size());
  std::vector<std::vector<double>> rep_seconds(
      tiers.size(), std::vector<double>(reps, 0.0));
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    timings[i].name = tiers[i].name;
  }
  for (std::size_t rep = 0; rep < reps + 1; ++rep) {
    const bool warmup = rep == 0;
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      const Tier& tier = tiers[i];
      core::Figure1Options options = base_options;
      options.recorder = tier.recorder;
      core::RunResult result;
      const double seconds = timed_run(options, tier.stripped, &result);
      if (!bench::stripped_results_match(reference, result)) {
        obs::log(obs::LogLevel::kError,
                 "FATAL: '%s' changed the optimization results "
                 "(determinism violation)",
                 tier.name);
        return 1;
      }
      if (!warmup) rep_seconds[i][rep - 1] = seconds;
    }
  }
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    double best = 1e300;
    std::vector<double> ratios;
    ratios.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      best = std::min(best, rep_seconds[i][rep]);
      if (rep_seconds[0][rep] > 0.0) {
        ratios.push_back(rep_seconds[i][rep] / rep_seconds[0][rep]);
      }
    }
    timings[i].best_seconds = best;
    timings[i].proposals_per_sec =
        best > 0.0 ? static_cast<double>(reference.proposals) / best : 0.0;
    timings[i].overhead_pct = 100.0 * (util::median(ratios) - 1.0);
  }

  util::Table table;
  table.add_column("config", util::Table::Align::kLeft);
  table.add_column("seconds");
  table.add_column("proposals/s");
  table.add_column("overhead %");
  for (const ConfigTiming& timing : timings) {
    table.begin_row();
    table.cell(timing.name);
    table.cell(timing.best_seconds, 4);
    table.cell(timing.proposals_per_sec, 0);
    table.cell(timing.overhead_pct, 2);
  }
  table.print();

  const double off_overhead = timings[1].overhead_pct;
  const bool gate_ok = off_overhead < gate_pct;

  // Acceptance criterion: traced 8-thread run == untraced 1-thread run in
  // every final result the engines report.
  core::Runner runner = [&g](core::Problem& p, std::uint64_t slice,
                             util::Rng& r, const obs::Recorder& recorder) {
    core::Figure1Options options;
    options.budget = slice;
    options.recorder = &recorder;
    return core::run_figure1(p, *g, options, r);
  };
  const std::uint64_t ms_budget = std::min<std::uint64_t>(budget, 200'000);

  auto untraced_problem = make_problem();
  core::MultistartOptions seq_options;
  seq_options.total_budget = ms_budget;
  seq_options.budget_per_start = ms_budget / 50 == 0 ? 1 : ms_budget / 50;
  util::Rng seq_rng{bench::kSeed + 21};
  const auto untraced =
      core::multistart(untraced_problem, runner, seq_options, seq_rng);

  auto traced_problem = make_problem();
  obs::VectorSink events;
  const obs::Recorder root{&events, /*collect_metrics=*/true,
                           /*trace_sample=*/16};
  core::ParallelMultistartOptions par_options;
  par_options.multistart = seq_options;
  par_options.multistart.recorder = &root;
  par_options.num_threads = 8;
  util::Rng par_rng{bench::kSeed + 21};
  const auto traced =
      core::parallel_multistart(traced_problem, runner, par_options, par_rng);

  const bool determinism_ok =
      untraced.restarts == traced.restarts &&
      untraced.restart_best_costs == traced.restart_best_costs &&
      bench::stripped_results_match(untraced.aggregate, traced.aggregate);
  if (!determinism_ok) {
    obs::log(obs::LogLevel::kError,
             "FATAL: traced 8-thread multistart differs from untraced "
             "1-thread multistart (determinism violation)");
  }

  std::string json = "{\n  \"bench\": \"obs_overhead\",\n";
  json += "  \"seed\": " + std::to_string(bench::kSeed) + ",\n";
  json += "  \"budget\": " + std::to_string(budget) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"gate_pct\": " + std::to_string(gate_pct) + ",\n";
  json += "  \"off_overhead_pct\": " + std::to_string(off_overhead) + ",\n";
  json += std::string{"  \"gate_ok\": "} + (gate_ok ? "true" : "false") +
          ",\n";
  json += std::string{"  \"traced_parallel_bit_identical\": "} +
          (determinism_ok ? "true" : "false") + ",\n";
  json += "  \"trace_events_in_parallel_check\": " +
          std::to_string(events.events().size()) + ",\n";
  json += "  \"configs\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const ConfigTiming& timing = timings[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"seconds\": %.6f, "
                  "\"proposals_per_sec\": %.1f, \"overhead_pct\": %.3f}%s\n",
                  timing.name.c_str(), timing.best_seconds,
                  timing.proposals_per_sec, timing.overhead_pct,
                  i + 1 < timings.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  bench::write_json_report("BENCH_obs", json);

  std::printf(
      "\nOff-path overhead: %.2f%% (gate: <%.2f%%) — %s.\n"
      "Traced 8-thread multistart vs untraced 1-thread: %s "
      "(%zu events captured).\n",
      off_overhead, gate_pct, gate_ok ? "PASS" : "FAIL",
      determinism_ok ? "bit-identical" : "MISMATCH", events.events().size());
  if (!gate_ok || !determinism_ok) return 1;
  return 0;
}
