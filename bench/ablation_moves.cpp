// Ablation D — perturbation neighbourhood: pairwise interchange vs single
// exchange (remove-and-reinsert).
//
// §4.2.2 notes that [COHO83a] "experimented with several different
// interchange heuristics such as pairwise and single exchange" and found
// the best variant used single exchange from the Goto start with the
// Figure 2 strategy.  This ablation crosses move kind x strategy x start
// for the recommended g = 1 and the [COHO83a] g.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcopt;
  bench::print_header(
      "Ablation D — pairwise interchange vs single exchange ([COHO83a])",
      "GOLA set; 12 s budget; move kind x strategy x start");

  const auto instances = bench::gola_instances();
  const std::vector<bench::Method> methods{
      {"g = 1", core::GClass::kGOne, 1.0},
      {"[COHO83a]", core::GClass::kCohoonSahni, 1.0},
  };

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  table.add_column("moves", util::Table::Align::kLeft);
  table.add_column("strategy", util::Table::Align::kLeft);
  table.add_column("random start");
  table.add_column("Goto start");

  for (const auto& method : methods) {
    for (const auto move_kind : {linarr::MoveKind::kPairwiseInterchange,
                                 linarr::MoveKind::kSingleExchange}) {
      for (const bool figure2 : {false, true}) {
        bench::TableRunConfig config;
        config.budgets = {bench::scaled(bench::kTwelveSec)};
        config.move_kind = move_kind;
        config.figure2 = figure2;
        config.move_seed = 41;
        const double random_total =
            bench::run_method_row(method, instances, config)[0];
        config.start = bench::StartKind::kGoto;
        const double goto_total =
            bench::run_method_row(method, instances, config)[0];

        table.begin_row();
        table.cell(method.name);
        table.cell(move_kind == linarr::MoveKind::kPairwiseInterchange
                       ? "pairwise"
                       : "single exch");
        table.cell(figure2 ? "Figure 2" : "Figure 1");
        table.cell(static_cast<long long>(random_total));
        table.cell(static_cast<long long>(goto_total));
      }
    }
  }
  table.print();
  bench::maybe_write_csv("ablation_moves", table);

  std::printf(
      "\nShape check ([COHO83a] via §4.2.2/§4.2.4): the Cohoon-Sahni g is\n"
      "dramatically better under the Figure 2 strategy it was designed\n"
      "for, from either start; move kind is a second-order effect.\n");
  return 0;
}
