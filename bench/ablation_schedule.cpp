// Ablation C — schedule shape and length for annealing (§3 / §4.2.1).
//
// The paper contrasts Kirkpatrick's geometric six-temperature schedule
// with Golden-Skiscim's 25 uniformly distributed temperatures, and notes
// that the time spent at each Y_i matters.  This bench anneals the GOLA
// set under schedules of k = 1 / 2 / 6 / 12 / 25 levels, both geometric
// and uniform, all sharing the tuned starting temperature and the same
// total budget (split into k equal slices, the paper's rule).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"
#include "core/tuner.hpp"
#include "linarr/problem.hpp"
#include "util/table.hpp"

namespace {

using namespace mcopt;

double run_schedule(const std::vector<netlist::Netlist>& instances,
                    const std::vector<double>& schedule,
                    std::uint64_t budget) {
  const auto g = core::make_annealing_g(schedule);
  double total = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& nl = instances[i];
    linarr::LinArrProblem problem{nl, bench::random_start(i, nl.num_cells())};
    util::Rng rng{util::derive_seed(31, i)};
    core::Figure1Options options;
    options.budget = budget;
    total += core::run_figure1(problem, *g, options, rng).reduction();
  }
  return total;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation C — annealing schedule shape and length",
      "GOLA set; Figure 1; 12 s budget split into k equal slices");

  const auto instances = bench::gola_instances();

  // Reuse the tuner to pick the hot-end temperature for annealing.
  const auto methods =
      bench::tune_methods({core::GClass::kSixTempAnnealing}, instances,
                          /*goto_start=*/false, 80.0, 2.0);
  const double y1 = methods.front().scale;
  const std::uint64_t budget = bench::scaled(bench::kTwelveSec);
  std::printf("tuned starting temperature Y1 = %.3f\n\n", y1);

  util::Table table;
  table.add_column("schedule", util::Table::Align::kLeft);
  table.add_column("k");
  table.add_column("total reduction");

  auto row = [&](const std::string& name, const std::vector<double>& ys) {
    table.begin_row();
    table.cell(name);
    table.cell(static_cast<long long>(ys.size()));
    table.cell(static_cast<long long>(run_schedule(instances, ys, budget)));
  };

  row("single temperature (Metropolis)", {y1});
  row("geometric x0.9", core::geometric_schedule(y1, 0.9, 2));
  row("geometric x0.9 [KIRK83]", core::geometric_schedule(y1, 0.9, 6));
  row("geometric x0.9", core::geometric_schedule(y1, 0.9, 12));
  row("geometric x0.9", core::geometric_schedule(y1, 0.9, 25));
  row("geometric x0.6 (fast quench)", core::geometric_schedule(y1, 0.6, 6));
  row("uniform [GOLD84]", core::uniform_schedule(y1, 6));
  row("uniform [GOLD84]", core::uniform_schedule(y1, 25));
  table.print();
  bench::maybe_write_csv("ablation_schedule", table);

  std::printf(
      "\nShape check: once the starting temperature is tuned, the schedule's\n"
      "shape and length are second-order — all rows land within a few\n"
      "percent.  That is the paper's own reading (§4.2.5 conclusions 1 and\n"
      "4): the choice of temperatures dominates, not the schedule family.\n");
  return 0;
}
