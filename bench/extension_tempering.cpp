// Extension — replica exchange vs the paper's methods at equal work.
//
// The paper's question, asked forward in time: annealing's schedule
// machinery did not beat g = 1 in 1985; does replica exchange (parallel
// tempering), the schedule machinery's modern successor, fare better on
// the same workloads under the same equal-tick discipline?
#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"
#include "core/tempering.hpp"
#include "linarr/problem.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcopt;
  const unsigned threads = bench::parse_driver_flags(argc, argv);
  bench::print_header(
      "Extension — parallel tempering vs the paper's methods (GOLA)",
      "30 instances; equal tick budgets; tempering uses 4 replicas");

  const auto instances = bench::gola_instances();
  const auto methods =
      bench::tune_methods({core::GClass::kSixTempAnnealing,
                           core::GClass::kGOne, core::GClass::kCubicDiff,
                           core::GClass::kThresholdAccepting},
                          instances, /*goto_start=*/false, 80.0, 2.0);
  const double y1 = methods.front().scale;  // reuse the tuned hot end

  util::Table table;
  table.add_column("method", util::Table::Align::kLeft);
  table.add_column("6 sec");
  table.add_column("12 sec");
  table.add_column("24 sec");
  const std::vector<std::uint64_t> budgets{
      bench::scaled(bench::kSixSec), bench::scaled(bench::kTwelveSec),
      bench::scaled(2 * bench::kTwelveSec)};

  for (const auto& method : methods) {
    bench::TableRunConfig config;
    config.budgets = budgets;
    config.move_seed = 47;
    config.num_threads = threads;
    config.recorder = bench::driver_recorder();
    const auto totals = bench::run_method_row(method, instances, config);
    table.begin_row();
    table.cell(method.name);
    for (const double t : totals) table.cell(static_cast<long long>(t));
  }

  table.begin_row();
  table.cell("Parallel tempering (R=4)");
  // Tempering runs sit outside run_method_row, so they pick their own run
  // ids well past the row counter and merge metrics back by hand.
  std::uint64_t tempering_run = 1000;
  for (const auto budget : budgets) {
    double total = 0.0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& nl = instances[i];
      auto factory = [&](std::size_t replica) {
        // Replica 0 starts from the shared experiment start; the others
        // from derived random arrangements.
        util::Rng start_rng{util::derive_seed(bench::kSeed + 70,
                                              100 * i + replica)};
        auto start = replica == 0
                         ? bench::random_start(i, nl.num_cells())
                         : linarr::Arrangement::random(nl.num_cells(),
                                                       start_rng);
        return std::unique_ptr<core::Problem>(
            new linarr::LinArrProblem(nl, std::move(start)));
      };
      util::Rng rng{util::derive_seed(48, i)};
      core::TemperingOptions options;
      options.temperatures = core::geometric_schedule(y1, 0.5, 4);
      options.budget = budget;
      options.sweep = 25;
      const obs::Recorder rec =
          bench::driver_recorder()->with_run(tempering_run++).for_restart(
              i, 0, nullptr);
      options.recorder = &rec;
      const auto result = core::parallel_tempering(factory, options, rng);
      if (result.aggregate.metrics.collected) {
        obs::RunMetrics m = result.aggregate.metrics;
        m.restarts = 1;
        bench::absorb_run_metrics(m);
      }
      total += result.aggregate.initial_cost - result.aggregate.best_cost;
    }
    table.cell(static_cast<long long>(total));
  }
  table.print();
  bench::maybe_write_csv("extension_tempering", table);
  bench::finish_driver_observability();

  std::printf(
      "\nShape check: at equal work the verdict of 1985 extends.  Splitting\n"
      "the budget over R walkers costs tempering roughly a factor R in\n"
      "useful moves, and on these short-horizon workloads it never earns it\n"
      "back — the simplest acceptance rules win, exactly the paper's point\n"
      "about annealing's own machinery (§5).\n");
  return 0;
}
