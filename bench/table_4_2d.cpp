// Table 4.2(d) — NOLA starting from the Goto arrangement (§4.3.1).
//
// "When the linear arrangement produced by [GOTO77] is used as the
// starting arrangement, none of the 13 Monte Carlo methods is able to
// obtain a significant improvement."  Published per-row values are single
// digits to low tens; exponential difference is called the "stellar
// performer", outdoing its nearest rivals (six-temperature annealing and
// g = 1) by about 2x.
#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

namespace {

// Legible entries of the published Table 4.2(d) {6, 9, 12 s}.
const std::map<std::string, std::array<int, 3>> kPaper42d{
    {"[COHO83a]", {6, 6, 6}},         {"Metropolis", {4, 4, 4}},
    {"Six Temperature Annealing", {8, 0, 12}},
    {"g = 1", {11, 11, 11}},          {"Two level g", {3, 3, 2}},
    {"Linear Diff", {2, 2, 2}},       {"Quadratic Diff", {0, 0, 0}},
    {"Cubic Diff", {2, 2, 2}},        {"Exponential Diff", {11, 20, 20}},
    {"6 Linear Diff", {2, 0, 2}},     {"6 Quadratic Diff", {2, 2, 2}},
    {"6 Cubic Diff", {2, 2, 2}},      {"6 Exponential Diff", {10, 4, 2}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  const unsigned threads = bench::parse_driver_flags(argc, argv);
  bench::print_header(
      "Table 4.2(d) — NOLA: reductions from the Goto starting arrangement",
      "30 NOLA instances; Figure 1; GOLA temperatures; budgets = 6/9/12 s "
      "equivalents");

  const auto gola = bench::gola_instances();
  const auto nola = bench::nola_instances();
  const long long goto_sum =
      bench::total_start_density(nola, bench::StartKind::kGoto);
  std::printf("sum of Goto starting densities: %lld\n\n", goto_sum);

  const auto methods = bench::tune_methods(core::table42_classes(), gola,
                                           /*goto_start=*/false,
                                           /*typical_cost=*/80.0,
                                           /*typical_delta=*/2.0);

  bench::TableRunConfig config;
  config.budgets = {bench::scaled(bench::kSixSec),
                    bench::scaled(bench::kNineSec),
                    bench::scaled(bench::kTwelveSec)};
  config.num_threads = threads;
  config.recorder = bench::driver_recorder();
  config.start = bench::StartKind::kGoto;
  config.move_seed = 19;

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  table.add_column("6 sec");
  table.add_column("9 sec");
  table.add_column("12 sec");
  table.add_column("paper 6/9/12", util::Table::Align::kLeft);

  for (const auto& method : methods) {
    const auto totals = bench::run_method_row(method, nola, config);
    table.begin_row();
    table.cell(method.name);
    for (const double t : totals) table.cell(static_cast<long long>(t));
    const auto it = kPaper42d.find(method.name);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%d / %d / %d", it->second[0],
                  it->second[1], it->second[2]);
    table.cell(std::string{buf});
  }
  table.print();
  bench::maybe_write_csv("table_4_2d", table);
  bench::finish_driver_observability();

  std::printf(
      "\nShape checks (§4.3.2): no method improves significantly on the Goto\n"
      "arrangement; all entries are tiny relative to the starting total.\n");
  return 0;
}
