// Proposal hot-loop throughput — the speculative-evaluation perf gate.
//
// The speculative path (core::EvalPath::kSpeculative) makes a rejected
// proposal (nearly) free: propose() evaluates the candidate into per-move
// scratch and reject() only clears it, where the apply-undo path applies
// the move and replays the full inverse.  This driver prices that on two
// workloads:
//
//  1. A stripped Metropolis kernel with a *fixed* uphill-accept
//     probability, swept from always-reject to always-accept, so the
//     speedup is measured as a function of acceptance rate.  The kernel
//     owns its acceptance draws and streams them from Rng::next_block —
//     the block-draw API this PR added — in 256-word blocks; pair draws
//     stay inside propose(), so both evaluation paths consume identical
//     RNG streams and every legacy/speculative pair must agree exactly
//     (final cost, accept count, final arrangement) or the driver fails.
//  2. The hand-stripped Figure 1 loop (bench/figure1_stripped.hpp) — the
//     committed baseline the observability benches time — run once per
//     evaluation path with bench::stripped_results_match enforcing
//     bit-identical results.  Its whole-run acceptance rate is reported
//     alongside its speedup; the hard "≥ gate× at ≤10% acceptance" gate
//     binds on every row whose *measured* acceptance is ≤10% (always
//     including the p_up=0 kernel rows).
//
// The driver also re-checks determinism where the speculation journal
// could plausibly leak state: an 8-thread parallel multistart over
// speculative-path clones must match the 1-thread run, and the
// apply-undo multistart, exactly.
//
// Results land in BENCH_hotloop.json via bench::write_json_report and are
// gated against the committed baseline by tools/bench_compare.py.
//
// Flags: --proposals N    proposals per timed kernel run (default 2'000'000)
//        --reps N         timed repetitions per config, best-of (default 5)
//        --gate-speedup X minimum speculative speedup at <=10% acceptance
//                         (default 1.5)
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/multistart.hpp"
#include "core/parallel.hpp"
#include "core/problem.hpp"
#include "figure1_stripped.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "obs/log.hpp"
#include "obs/perfcount.hpp"
#include "obs/profiler.hpp"
#include "util/args.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mcopt;

/// What one kernel run produces; every legacy/speculative pair must agree
/// on all of it.
struct KernelResult {
  double final_cost = 0.0;
  std::uint64_t accepts = 0;
  core::Snapshot final_state;

  [[nodiscard]] bool operator==(const KernelResult& o) const {
    return final_cost == o.final_cost && accepts == o.accepts &&
           final_state == o.final_state;
  }
};

/// Fixed-acceptance Metropolis kernel: downhill moves always accepted,
/// uphill/flat moves accepted with probability `p_uphill` drawn from a
/// dedicated stream via next_block (bit-identical to per-call next(), but
/// the generator state stays in registers for 256 draws at a time).
KernelResult run_kernel(core::Problem& problem, std::uint64_t proposals,
                        double p_uphill, util::Rng& move_rng,
                        util::Rng& accept_rng) {
  constexpr std::size_t kBlock = 256;
  std::uint64_t block[kBlock];
  std::size_t cursor = kBlock;
  KernelResult out;
  double h_i = problem.cost();
  for (std::uint64_t t = 0; t < proposals; ++t) {
    const double h_j = problem.propose(move_rng);
    bool take = h_j < h_i;
    if (!take) {
      if (cursor == kBlock) {
        accept_rng.next_block(block, kBlock);
        cursor = 0;
      }
      const double u =
          static_cast<double>(block[cursor++] >> 11) * 0x1.0p-53;
      take = u < p_uphill;
    }
    if (take) {
      problem.accept();
      h_i = h_j;
      ++out.accepts;
    } else {
      problem.reject();
    }
  }
  out.final_cost = problem.cost();
  problem.snapshot_into(out.final_state);
  return out;
}

struct Instance {
  const char* label;
  std::size_t cells;
  netlist::Netlist nl;
};

/// One acceptance-swept row: both paths timed best-of-reps on the same
/// streams, with exact-agreement enforcement per rep.
struct KernelRow {
  std::string name;
  double acceptance_rate = 0.0;
  double legacy_proposals_per_sec = 0.0;
  double spec_proposals_per_sec = 0.0;
  double speedup = 0.0;
  /// Hardware counts of the fastest rep per path (all zero when counters
  /// are unavailable) — the microarchitectural attribution of the speedup.
  obs::PerfCounts legacy_perf;
  obs::PerfCounts spec_perf;
};

/// Counter deltas around one timed region; zeros when unavailable.
class ScopedPerfSample {
 public:
  explicit ScopedPerfSample(const obs::PerfCounterGroup& group)
      : group_(group), live_(group.read(&begin_)) {}
  [[nodiscard]] obs::PerfCounts finish() const {
    obs::PerfCounts end;
    if (!live_ || !group_.read(&end)) return obs::PerfCounts{};
    return obs::perf_delta(begin_, end);
  }

 private:
  const obs::PerfCounterGroup& group_;
  obs::PerfCounts begin_;
  bool live_;
};

/// The informational per-path JSON fields bench_compare.py never gates:
/// IPC, cache-miss rate, cycles per proposal.
void append_perf_fields(const char* prefix, const obs::PerfCounts& counts,
                        std::uint64_t proposals, std::string& json,
                        const char* indent) {
  char buf[192];
  const double cycles_per_proposal =
      proposals > 0 ? static_cast<double>(counts.cycles) /
                          static_cast<double>(proposals)
                    : 0.0;
  std::snprintf(buf, sizeof buf,
                "%s\"%s_ipc\": %.4f, \"%s_cache_miss_rate\": %.4f, "
                "\"%s_cycles_per_proposal\": %.1f",
                indent, prefix, obs::perf_ipc(counts), prefix,
                obs::perf_cache_miss_rate(counts), prefix,
                cycles_per_proposal);
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args{argc, argv};
  const auto unknown =
      args.unknown_flags({"proposals", "reps", "gate-speedup"});
  if (!unknown.empty() || !args.positional().empty()) {
    obs::log(obs::LogLevel::kError,
             "usage: %s [--proposals N] [--reps N] [--gate-speedup X]",
             args.program().c_str());
    return 2;
  }
  const long long proposals_flag = args.get_int("proposals", 2'000'000);
  const long long reps_flag = args.get_int("reps", 5);
  const double gate_speedup = args.get_double("gate-speedup", 1.5);
  if (proposals_flag < 1 || reps_flag < 1 || gate_speedup <= 0.0) {
    obs::log(obs::LogLevel::kError, "%s: flags must be positive",
             args.program().c_str());
    return 2;
  }
  const auto proposals = static_cast<std::uint64_t>(proposals_flag);
  const auto reps = static_cast<std::size_t>(reps_flag);

  char gate_buf[32];
  std::snprintf(gate_buf, sizeof gate_buf, "%.2f", gate_speedup);
  bench::print_header(
      "Proposal hot-loop throughput (speculative vs apply-undo)",
      "fixed-acceptance Metropolis kernel + stripped Figure 1; best-of-reps; "
      "gate: speculative >= " +
          std::string{gate_buf} + "x at <=10% acceptance");

  util::Rng gen_small{util::derive_seed(bench::kSeed, 15)};
  util::Rng gen_large{util::derive_seed(bench::kSeed, 60)};
  std::vector<Instance> instances;
  instances.push_back(
      {"15/150", 15,
       netlist::random_gola(netlist::GolaParams{15, 150}, gen_small)});
  instances.push_back(
      {"60/600", 60,
       netlist::random_gola(netlist::GolaParams{60, 600}, gen_large)});

  auto make_problem = [&](const Instance& inst, core::EvalPath path) {
    util::Rng start_rng{util::derive_seed(bench::kSeed + 3, inst.cells)};
    return linarr::LinArrProblem{
        inst.nl, linarr::Arrangement::random(inst.cells, start_rng),
        linarr::MoveKind::kPairwiseInterchange, linarr::Objective::kDensity,
        path};
  };

  // Hardware counters for the timed regions; the sweep attributes the
  // speculative speedup to IPC / cache behaviour when the platform allows
  // self-monitoring, and degrades to zero-valued informational fields when
  // it does not (CI's asserted path).
  const obs::PerfCounterGroup perf{obs::all_perf_counters()};
  if (!perf.available()) {
    obs::log(obs::LogLevel::kInfo, "perf counters unavailable: %s",
             perf.unavailable_reason().c_str());
  }

  bool trajectory_identical = true;
  const std::vector<double> sweep{0.0, 0.05, 0.5, 1.0};
  std::vector<KernelRow> rows;
  for (const Instance& inst : instances) {
    for (const double p_uphill : sweep) {
      KernelRow row;
      char name_buf[64];
      std::snprintf(name_buf, sizeof name_buf, "kernel %s p_up=%.2f",
                    inst.label, p_uphill);
      row.name = name_buf;

      KernelResult reference;
      bool have_reference = false;
      double legacy_best = 1e300;
      double spec_best = 1e300;
      for (const core::EvalPath path :
           {core::EvalPath::kApplyUndo, core::EvalPath::kSpeculative}) {
        for (std::size_t rep = 0; rep < reps; ++rep) {
          auto problem = make_problem(inst, path);
          util::Rng move_rng = util::Rng::split(bench::kSeed + 9, inst.cells);
          util::Rng accept_rng =
              util::Rng::split(bench::kSeed + 11, inst.cells);
          const ScopedPerfSample sample{perf};
          util::Stopwatch watch;
          const KernelResult result = run_kernel(problem, proposals, p_uphill,
                                                 move_rng, accept_rng);
          const double seconds = watch.seconds();
          const obs::PerfCounts counts = sample.finish();
          if (!have_reference) {
            reference = result;
            have_reference = true;
          } else if (!(result == reference)) {
            obs::log(obs::LogLevel::kError,
                     "FATAL: '%s' diverged between evaluation paths "
                     "(determinism violation)",
                     row.name.c_str());
            trajectory_identical = false;
          }
          if (path == core::EvalPath::kApplyUndo) {
            if (seconds < legacy_best) row.legacy_perf = counts;
            legacy_best = std::min(legacy_best, seconds);
          } else {
            if (seconds < spec_best) row.spec_perf = counts;
            spec_best = std::min(spec_best, seconds);
          }
        }
      }
      row.acceptance_rate =
          static_cast<double>(reference.accepts) /
          static_cast<double>(proposals);
      row.legacy_proposals_per_sec =
          static_cast<double>(proposals) / legacy_best;
      row.spec_proposals_per_sec = static_cast<double>(proposals) / spec_best;
      row.speedup = legacy_best / spec_best;
      rows.push_back(row);
    }
  }

  // Stripped Figure 1: the committed pre-PR baseline loop, once per path.
  const auto g = core::make_g(core::GClass::kSixTempAnnealing);
  core::Figure1Options fig_options;
  fig_options.budget = proposals;
  core::RunResult fig_reference;
  double fig_legacy_best = 1e300;
  double fig_spec_best = 1e300;
  obs::PerfCounts fig_legacy_perf;
  obs::PerfCounts fig_spec_perf;
  bool have_fig_reference = false;
  for (const core::EvalPath path :
       {core::EvalPath::kApplyUndo, core::EvalPath::kSpeculative}) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      auto problem = make_problem(instances[0], path);
      util::Rng rng{bench::kSeed + 9};
      const ScopedPerfSample sample{perf};
      util::Stopwatch watch;
      const core::RunResult result =
          bench::run_figure1_stripped(problem, *g, fig_options, rng);
      const double seconds = watch.seconds();
      const obs::PerfCounts counts = sample.finish();
      if (!have_fig_reference) {
        fig_reference = result;
        have_fig_reference = true;
      } else if (!bench::stripped_results_match(fig_reference, result)) {
        obs::log(obs::LogLevel::kError,
                 "FATAL: stripped Figure 1 diverged between evaluation "
                 "paths (determinism violation)");
        trajectory_identical = false;
      }
      if (path == core::EvalPath::kApplyUndo) {
        if (seconds < fig_legacy_best) fig_legacy_perf = counts;
        fig_legacy_best = std::min(fig_legacy_best, seconds);
      } else {
        if (seconds < fig_spec_best) fig_spec_perf = counts;
        fig_spec_best = std::min(fig_spec_best, seconds);
      }
    }
  }
  const double fig_acceptance =
      static_cast<double>(fig_reference.accepts) /
      static_cast<double>(fig_reference.proposals);
  const double fig_speedup = fig_legacy_best / fig_spec_best;

  // Parallel determinism: speculative clones across 8 workers must match
  // the 1-thread run and the apply-undo engine exactly.
  core::Runner runner = [&g](core::Problem& p, std::uint64_t slice,
                             util::Rng& r, const obs::Recorder& recorder) {
    core::Figure1Options options;
    options.budget = slice;
    options.recorder = &recorder;
    return core::run_figure1(p, *g, options, r);
  };
  const std::uint64_t ms_budget = std::min<std::uint64_t>(proposals, 200'000);
  auto run_multistart = [&](core::EvalPath path, unsigned threads) {
    auto problem = make_problem(instances[0], path);
    core::ParallelMultistartOptions options;
    options.multistart.total_budget = ms_budget;
    options.multistart.budget_per_start =
        ms_budget / 50 == 0 ? 1 : ms_budget / 50;
    options.num_threads = threads;
    util::Rng rng{bench::kSeed + 21};
    return core::parallel_multistart(problem, runner, options, rng);
  };
  const auto spec_t1 = run_multistart(core::EvalPath::kSpeculative, 1);
  const auto spec_t8 = run_multistart(core::EvalPath::kSpeculative, 8);
  const auto legacy_t1 = run_multistart(core::EvalPath::kApplyUndo, 1);
  auto multistart_equal = [](const core::MultistartResult& a,
                             const core::MultistartResult& b) {
    return a.restarts == b.restarts &&
           a.restart_best_costs == b.restart_best_costs &&
           a.aggregate.best_cost == b.aggregate.best_cost &&
           a.aggregate.final_cost == b.aggregate.final_cost &&
           a.aggregate.best_state == b.aggregate.best_state &&
           a.aggregate.proposals == b.aggregate.proposals &&
           a.aggregate.accepts == b.aggregate.accepts;
  };
  const bool parallel_identical = multistart_equal(spec_t1, spec_t8) &&
                                  multistart_equal(spec_t1, legacy_t1);
  if (!parallel_identical) {
    obs::log(obs::LogLevel::kError,
             "FATAL: parallel multistart results diverged across thread "
             "counts or evaluation paths (determinism violation)");
  }

  util::Table table;
  table.add_column("config", util::Table::Align::kLeft);
  table.add_column("accept rate");
  table.add_column("legacy p/s");
  table.add_column("spec p/s");
  table.add_column("speedup");
  for (const KernelRow& row : rows) {
    table.begin_row();
    table.cell(row.name);
    table.cell(row.acceptance_rate, 4);
    table.cell(row.legacy_proposals_per_sec, 0);
    table.cell(row.spec_proposals_per_sec, 0);
    table.cell(row.speedup, 3);
  }
  table.begin_row();
  table.cell("figure1 stripped 15/150");
  table.cell(fig_acceptance, 4);
  table.cell(static_cast<double>(fig_reference.proposals) / fig_legacy_best,
             0);
  table.cell(static_cast<double>(fig_reference.proposals) / fig_spec_best, 0);
  table.cell(fig_speedup, 3);
  table.print();

  // The gate: every low-acceptance configuration (<=10% measured) must hit
  // the target speedup, and all identity checks must hold.
  bool low_acceptance_fast = fig_acceptance <= 0.10
                                 ? fig_speedup >= gate_speedup
                                 : true;
  for (const KernelRow& row : rows) {
    if (row.acceptance_rate <= 0.10 && row.speedup < gate_speedup) {
      low_acceptance_fast = false;
    }
  }
  const bool gate_ok =
      low_acceptance_fast && trajectory_identical && parallel_identical;

  std::string json = "{\n  \"bench\": \"hotloop\",\n";
  json += "  \"seed\": " + std::to_string(bench::kSeed) + ",\n";
  json += "  \"proposals\": " + std::to_string(proposals) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"gate_speedup\": " + std::to_string(gate_speedup) + ",\n";
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "  \"figure1_acceptance_rate\": %.4f,\n"
                "  \"figure1_legacy_proposals_per_sec\": %.1f,\n"
                "  \"figure1_spec_proposals_per_sec\": %.1f,\n"
                "  \"figure1_speedup\": %.3f,\n",
                fig_acceptance,
                static_cast<double>(fig_reference.proposals) / fig_legacy_best,
                static_cast<double>(fig_reference.proposals) / fig_spec_best,
                fig_speedup);
  json += buf;
  // Informational hardware-counter attribution (never gated): why the
  // speculative path is faster, not just how much.
  json += std::string{"  \"perf_counters_available\": "} +
          (perf.available() ? "true" : "false") + ",\n";
  json += "  \"perf_unavailable_reason\": \"" +
          (perf.available() ? std::string{} : perf.unavailable_reason()) +
          "\",\n";
  append_perf_fields("figure1_legacy", fig_legacy_perf,
                     fig_reference.proposals, json, "  ");
  json += ",\n";
  append_perf_fields("figure1_spec", fig_spec_perf, fig_reference.proposals,
                     json, "  ");
  json += ",\n";
  json += std::string{"  \"trajectory_identical\": "} +
          (trajectory_identical ? "true" : "false") + ",\n";
  json += std::string{"  \"parallel_identical\": "} +
          (parallel_identical ? "true" : "false") + ",\n";
  json += std::string{"  \"gate_ok\": "} + (gate_ok ? "true" : "false") +
          ",\n";
  json += "  \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& row = rows[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"acceptance_rate\": %.4f, "
                  "\"legacy_proposals_per_sec\": %.1f, "
                  "\"spec_proposals_per_sec\": %.1f, \"speedup\": %.3f,\n",
                  row.name.c_str(), row.acceptance_rate,
                  row.legacy_proposals_per_sec, row.spec_proposals_per_sec,
                  row.speedup);
    json += buf;
    append_perf_fields("legacy", row.legacy_perf, proposals, json, "     ");
    json += ",\n";
    append_perf_fields("spec", row.spec_perf, proposals, json, "     ");
    json += std::string{"}"} + (i + 1 < rows.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  bench::write_json_report("BENCH_hotloop", json);

  std::printf(
      "\nFigure 1 stripped: %.3fx speculative speedup at %.1f%% acceptance "
      "(gate: >=%.2fx at <=10%%) — %s.\n"
      "Path/thread determinism: %s.\n",
      fig_speedup, 100.0 * fig_acceptance, gate_speedup,
      gate_ok ? "PASS" : "FAIL",
      trajectory_identical && parallel_identical ? "bit-identical"
                                                 : "MISMATCH");
  if (!gate_ok) return 1;
  return 0;
}
