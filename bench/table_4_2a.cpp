// Table 4.2(a) — GOLA, Figure 1, starting from Goto's arrangement (§4.2.3).
//
// Same 30 instances as Table 4.1; the 13 g classes the paper carries into
// Table 4.2 (classes 5-12 dropped); Y_i re-tuned on the Goto starts since
// the cost magnitude at a near-optimal start differs from a random start.
// The paper observes the best improvement is under 5% of the Goto starting
// total (1993).
#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"
#include "core/gfunction.hpp"
#include "util/table.hpp"

namespace {

// Legible entries of the published Table 4.2(a) {6, 9, 12 s}.
const std::map<std::string, std::array<int, 3>> kPaper42a{
    {"Linear Diff", {38, 46, 59}},     {"Quadratic Diff", {20, 18, 30}},
    {"Cubic Diff", {31, 43, 76}},      {"Exponential Diff", {41, 43, 62}},
    {"6 Linear Diff", {41, 56, 55}},   {"6 Quadratic Diff", {26, 35, 39}},
    {"6 Cubic Diff", {79, 87, 91}},    {"6 Exponential Diff", {55, 78, 86}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;
  const unsigned threads = bench::parse_driver_flags(argc, argv);
  bench::print_header(
      "Table 4.2(a) — GOLA: reductions from the Goto starting arrangement",
      "30 instances; Figure 1; 13 g classes; budgets = 6/9/12 s equivalents");

  const auto instances = bench::gola_instances();
  const long long goto_sum =
      bench::total_start_density(instances, bench::StartKind::kGoto);
  std::printf("sum of Goto starting densities: %lld (paper: 1993)\n\n",
              goto_sum);

  const auto methods =
      bench::tune_methods(core::table42_classes(), instances,
                          /*goto_start=*/true,
                          /*typical_cost=*/65.0, /*typical_delta=*/1.5);

  bench::TableRunConfig config;
  config.budgets = {bench::scaled(bench::kSixSec),
                    bench::scaled(bench::kNineSec),
                    bench::scaled(bench::kTwelveSec)};
  config.num_threads = threads;
  config.recorder = bench::driver_recorder();
  config.start = bench::StartKind::kGoto;
  config.move_seed = 11;

  util::Table table;
  table.add_column("g function", util::Table::Align::kLeft);
  table.add_column("6 sec");
  table.add_column("9 sec");
  table.add_column("12 sec");
  table.add_column("paper 6/9/12", util::Table::Align::kLeft);

  for (const auto& method : methods) {
    const auto totals = bench::run_method_row(method, instances, config);
    table.begin_row();
    table.cell(method.name);
    for (const double t : totals) table.cell(static_cast<long long>(t));
    const auto it = kPaper42a.find(method.name);
    if (it != kPaper42a.end()) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%d / %d / %d", it->second[0],
                    it->second[1], it->second[2]);
      table.cell(std::string{buf});
    } else {
      table.cell("(illegible in scan)");
    }
  }
  table.print();
  bench::maybe_write_csv("table_4_2a", table);
  bench::finish_driver_observability();

  std::printf(
      "\nShape checks (§4.2.3): every improvement is small relative to the\n"
      "starting total (paper: best < 5%% of 1993) because Goto's arrangement\n"
      "is near-optimal; difference-based g classes do the polishing best.\n");
  return 0;
}
