// mcopt_cli — command-line driver over the whole library.
//
//   mcopt_cli gen   --kind gola|nola --cells N --nets M [--min-pins P]
//                   [--max-pins P] [--seed S] [--out FILE]
//   mcopt_cli stats --in FILE
//   mcopt_cli bound --in FILE            (lower bounds; exact for <= 10 cells)
//   mcopt_cli solve --in FILE [--method METHOD] [--strategy fig1|fig2]
//                   [--start random|goto] [--budget N] [--seed S]
//                   [--scale Y] [--moves swap|insert]
//   mcopt_cli partition (--in FILE | --cells N --nets M) [--budget N]
//                   [--seed S] [--tolerance T]   (runs KL*, FM, SA, g = 1)
//   mcopt_cli tsp   --n N [--budget N] [--seed S]  (SA vs 2-opt vs hull)
//
// METHOD is any of: goto (constructive only), anneal, white (annealing with
// a [WHIT84] auto-calibrated schedule), g1, metropolis, cohoon, or a g class
// id 1..22 from core/gfunction.hpp.  (*KL runs only on two-pin netlists.)
#include <cstddef>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/annealer.hpp"
#include "core/calibration.hpp"
#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "linarr/bounds.hpp"
#include "linarr/goto_heuristic.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "netlist/stats.hpp"
#include "obs/log.hpp"
#include "partition/fm.hpp"
#include "partition/kl.hpp"
#include "partition/problem.hpp"
#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "tsp/problem.hpp"
#include "util/args.hpp"

namespace {

using namespace mcopt;

int usage(const char* error = nullptr) {
  if (error != nullptr) obs::log(obs::LogLevel::kError, "error: %s\n", error);
  obs::log(
      obs::LogLevel::kError,
      "usage:\n"
      "  mcopt_cli gen   --kind gola|nola --cells N --nets M [--min-pins P]\n"
      "                  [--max-pins P] [--seed S] [--out FILE]\n"
      "  mcopt_cli stats --in FILE\n"
      "  mcopt_cli bound --in FILE\n"
      "  mcopt_cli solve --in FILE [--method goto|anneal|white|g1|metropolis|\n"
      "                  cohoon|<class id 1..22>] [--strategy fig1|fig2]\n"
      "                  [--start random|goto] [--budget N] [--seed S]\n"
      "                  [--scale Y] [--moves swap|insert]\n"
      "  mcopt_cli partition (--in FILE | --cells N --nets M) [--budget N]\n"
      "                  [--seed S] [--tolerance T]\n"
      "  mcopt_cli tsp   --n N [--budget N] [--seed S]");
  return 2;
}

netlist::Netlist load(const util::Args& args) {
  const auto path = args.value("in");
  if (!path) throw std::invalid_argument("--in FILE is required");
  std::ifstream in{*path};
  if (!in) throw std::invalid_argument("cannot open " + *path);
  return netlist::read_netlist(in);
}

int cmd_gen(const util::Args& args) {
  const std::string kind = args.get("kind", "gola");
  const auto cells = static_cast<std::size_t>(args.get_int("cells", 15));
  const auto nets = static_cast<std::size_t>(args.get_int("nets", 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1985));
  util::Rng rng{seed};

  netlist::Netlist nl;
  if (kind == "gola") {
    nl = netlist::random_gola({cells, nets}, rng);
  } else if (kind == "nola") {
    netlist::NolaParams params;
    params.num_cells = cells;
    params.num_nets = nets;
    params.min_pins = static_cast<std::size_t>(args.get_int("min-pins", 2));
    params.max_pins = static_cast<std::size_t>(args.get_int("max-pins", 6));
    nl = netlist::random_nola(params, rng);
  } else {
    throw std::invalid_argument("--kind must be gola or nola");
  }

  const auto out_path = args.value("out");
  if (out_path) {
    std::ofstream out{*out_path};
    if (!out) throw std::invalid_argument("cannot write " + *out_path);
    netlist::write_netlist(out, nl);
    std::cout << "wrote " << *out_path << '\n';
  } else {
    netlist::write_netlist(std::cout, nl);
  }
  return 0;
}

int cmd_stats(const util::Args& args) {
  netlist::print_stats(std::cout, netlist::compute_stats(load(args)));
  return 0;
}

int cmd_bound(const util::Args& args) {
  const netlist::Netlist nl = load(args);
  std::cout << "density lower bound: " << linarr::density_lower_bound(nl)
            << '\n';
  std::cout << "total-span lower bound: "
            << linarr::total_span_lower_bound(nl) << '\n';
  if (nl.num_cells() <= 10) {
    const auto exact = linarr::brute_force_optimum(nl);
    std::cout << "exact optimum (brute force): " << exact.density << '\n';
  } else {
    std::cout << "(instance too large for the exact brute force)\n";
  }
  return 0;
}

int cmd_solve(const util::Args& args) {
  const netlist::Netlist nl = load(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1985));
  const auto budget = static_cast<std::uint64_t>(args.get_int("budget", 20'000));
  const std::string method = args.get("method", "g1");
  util::Rng rng{seed};

  const std::string start_kind = args.get("start", "random");
  linarr::Arrangement start =
      start_kind == "goto"
          ? linarr::goto_arrangement(nl)
          : linarr::Arrangement::random(nl.num_cells(), rng);
  if (start_kind != "goto" && start_kind != "random") {
    throw std::invalid_argument("--start must be random or goto");
  }
  std::cout << "start (" << start_kind
            << "): density " << linarr::density_of(nl, start) << '\n';

  if (method == "goto") {
    const auto arr = linarr::goto_arrangement(nl);
    std::cout << "goto arrangement: density " << linarr::density_of(nl, arr)
              << '\n';
    return 0;
  }

  const std::string moves = args.get("moves", "swap");
  const linarr::MoveKind move_kind =
      moves == "insert" ? linarr::MoveKind::kSingleExchange
                        : linarr::MoveKind::kPairwiseInterchange;
  if (moves != "swap" && moves != "insert") {
    throw std::invalid_argument("--moves must be swap or insert");
  }
  linarr::LinArrProblem problem{nl, std::move(start), move_kind};

  // Resolve the method to a g function.
  std::unique_ptr<core::GFunction> g;
  core::GParams params;
  params.scale = args.get_double("scale", 1.0);
  params.num_nets = nl.num_nets();
  if (method == "anneal") {
    g = core::make_g(core::GClass::kSixTempAnnealing, params);
  } else if (method == "white") {
    const auto stats = core::sample_move_statistics(problem, 2'000, rng);
    auto ys = core::white_schedule(stats, 6);
    std::cout << "white schedule: Y1 " << ys.front() << " .. Yk "
              << ys.back() << '\n';
    g = core::make_annealing_g(std::move(ys));
  } else if (method == "g1") {
    g = core::make_g(core::GClass::kGOne);
  } else if (method == "metropolis") {
    g = core::make_g(core::GClass::kMetropolis, params);
  } else if (method == "cohoon") {
    g = core::make_g(core::GClass::kCohoonSahni, params);
  } else {
    try {
      const int id = std::stoi(method);
      if (id < 1 || id > 21) throw std::out_of_range("class id");
      g = core::make_g(static_cast<core::GClass>(id), params);
    } catch (const std::exception&) {
      throw std::invalid_argument("unknown --method '" + method + "'");
    }
  }

  const std::string strategy = args.get("strategy", "fig1");
  core::RunResult result;
  if (strategy == "fig1") {
    core::Figure1Options options;
    options.budget = budget;
    result = core::run_figure1(problem, *g, options, rng);
  } else if (strategy == "fig2") {
    core::Figure2Options options;
    options.budget = budget;
    result = core::run_figure2(problem, *g, options, rng);
  } else {
    throw std::invalid_argument("--strategy must be fig1 or fig2");
  }

  std::cout << g->name() << " (" << strategy << ", " << budget
            << " ticks): " << to_string(result) << '\n';
  problem.restore(result.best_state);
  std::cout << "best order:";
  for (const auto c : problem.arrangement().order()) std::cout << ' ' << c;
  std::cout << '\n';
  std::cout << "lower bound: " << linarr::density_lower_bound(nl) << '\n';
  return 0;
}

int cmd_partition(const util::Args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1985));
  util::Rng rng{seed};
  netlist::Netlist nl;
  if (args.has("in")) {
    nl = load(args);
  } else {
    const auto cells = static_cast<std::size_t>(args.get_int("cells", 40));
    const auto nets = static_cast<std::size_t>(args.get_int("nets", 120));
    nl = netlist::random_graph(cells, nets, rng);
    std::cout << "generated random graph: " << cells << " cells, " << nets
              << " nets\n";
  }

  const auto start = partition::PartitionState::random(nl, rng);
  std::cout << "random balanced start: cut " << start.cut() << '\n';

  if (nl.is_graph()) {
    const auto kl = partition::kernighan_lin(nl, start.sides());
    std::cout << "Kernighan-Lin: cut " << kl.cut << " (" << kl.passes
              << " passes, " << kl.evaluations << " evaluations)\n";
  } else {
    std::cout << "Kernighan-Lin: skipped (multi-pin nets; use FM)\n";
  }

  partition::FmOptions fm_options;
  fm_options.balance_tolerance =
      static_cast<std::size_t>(args.get_int("tolerance", 1));
  const auto fm = partition::fiduccia_mattheyses(nl, start.sides(), fm_options);
  std::cout << "Fiduccia-Mattheyses: cut " << fm.cut << " (" << fm.passes
            << " passes, " << fm.evaluations << " evaluations)\n";

  const auto budget = static_cast<std::uint64_t>(args.get_int("budget", 50'000));
  {
    partition::PartitionProblem problem{
        partition::PartitionState{nl, start.sides()}};
    core::AnnealOptions options;  // Kirkpatrick schedule [KIRK83]
    options.budget = budget;
    const auto result = core::simulated_annealing(problem, options, rng);
    std::cout << "SA (Y1=10, x0.9, k=6), " << budget
              << " ticks: cut " << result.best_cost << '\n';
  }
  {
    partition::PartitionProblem problem{
        partition::PartitionState{nl, start.sides()}};
    const auto g = core::make_g(core::GClass::kGOne);
    core::Figure1Options options;
    options.budget = budget;
    const auto result = core::run_figure1(problem, *g, options, rng);
    std::cout << "g = 1, " << budget << " ticks: cut " << result.best_cost
              << '\n';
  }
  return 0;
}

int cmd_tsp(const util::Args& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1985));
  const auto budget =
      static_cast<std::uint64_t>(args.get_int("budget", 200'000));
  util::Rng rng{seed};
  const auto inst = tsp::TspInstance::random_euclidean(n, rng, 1000.0);
  std::cout << "random Euclidean instance: n = " << n << ", budget " << budget
            << " ticks\n";

  {
    tsp::TspProblem problem{inst, tsp::random_order(n, rng)};
    const auto stats = core::sample_move_statistics(problem, 2'000, rng);
    core::AnnealOptions options;
    options.schedule = core::white_schedule(stats, 8);
    options.budget = budget;
    const auto result = core::simulated_annealing(problem, options, rng);
    std::cout << "SA ([WHIT84] schedule): " << result.best_cost << '\n';
  }
  {
    util::Rng topt_rng = rng.split();
    const auto result = tsp::restarted_two_opt(inst, budget, topt_rng);
    std::cout << "restarted 2-opt: " << result.best_length << " ("
              << result.restarts << " restarts)\n";
  }
  {
    auto built = tsp::hull_cheapest_insertion_counted(inst);
    util::WorkBudget polish{static_cast<std::uint64_t>(3 * n) * n};
    tsp::or_opt_descent(inst, built.order, polish);
    std::cout << "hull+insertion+Or-opt: " << tsp::tour_length(inst, built.order)
              << " (" << built.evaluations + polish.spent() << " ticks)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional().front();
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "bound") return cmd_bound(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "partition") return cmd_partition(args);
    if (command == "tsp") return cmd_tsp(args);
    return usage(("unknown command '" + command + "'").c_str());
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}
