// Board ordering (the NOLA / backboard-ordering flow of [GOTO77] and
// [COHO83a]): construct an ordering with Goto's heuristic, then polish it
// with Monte Carlo methods, reporting the per-boundary crossing profile.
//
//   $ ./board_ordering                 # random 15-element instance
//   $ ./board_ordering my_netlist.mcnl # your own instance (mcnl v1 format)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "linarr/bounds.hpp"
#include "linarr/cohoon.hpp"
#include "linarr/goto_heuristic.hpp"
#include "linarr/problem.hpp"
#include "linarr/tracks.hpp"
#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "netlist/stats.hpp"
#include "obs/log.hpp"

namespace {

void print_profile(const mcopt::linarr::DensityState& state) {
  const std::size_t n = state.arrangement().size();
  std::printf("  order  :");
  for (std::size_t p = 0; p < n; ++p) {
    std::printf(" %2u", state.arrangement().cell_at(p));
  }
  std::printf("\n  cuts   :");
  for (std::size_t b = 0; b + 1 < n; ++b) {
    std::printf(" %2d", state.cut_at(b));
  }
  std::printf("\n  density: %d   total span: %lld\n", state.density(),
              state.total_span());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcopt;

  netlist::Netlist nl;
  if (argc > 1) {
    std::ifstream in{argv[1]};
    if (!in) {
      obs::log(obs::LogLevel::kError, "cannot open %s", argv[1]);
      return 1;
    }
    nl = netlist::read_netlist(in);
    std::printf("loaded %s: %zu cells, %zu nets\n", argv[1], nl.num_cells(),
                nl.num_nets());
  } else {
    util::Rng rng{2024};
    // A board-scale instance: 12 boards, 25 multi-pin nets, so the routed
    // channel rendering below stays readable.
    nl = netlist::random_nola(netlist::NolaParams{12, 25, 2, 5}, rng);
    std::printf("generated NOLA instance: 12 cells, 25 nets (2-5 pins)\n");
  }
  {
    std::ostringstream profile;
    netlist::print_stats(profile, netlist::compute_stats(nl));
    std::printf("%s", profile.str().c_str());
  }

  // Step 1: the constructive heuristic.
  linarr::Arrangement goto_arr = linarr::goto_arrangement(nl);
  {
    const linarr::DensityState state{nl, goto_arr};
    std::printf("\nGoto construction [GOTO77]:\n");
    print_profile(state);
  }

  // Step 2a: polish with the paper's recommended g = 1.
  util::Rng rng{7};
  {
    linarr::LinArrProblem problem{nl, goto_arr};
    const auto g = core::make_g(core::GClass::kGOne);
    core::Figure1Options options;
    options.budget = 30'000;
    const auto result = core::run_figure1(problem, *g, options, rng);
    problem.restore(result.best_state);
    std::printf("\nafter g = 1 polish (Figure 1, 30k proposals):\n");
    print_profile(problem.state());
  }

  // Step 2b: alternative polish with the Cohoon-Sahni heuristic (their best
  // variant: single exchange + Figure 2), then route the winning ordering.
  {
    linarr::LinArrProblem problem{nl, goto_arr,
                                  linarr::MoveKind::kSingleExchange};
    linarr::CohoonOptions options;
    options.strategy = linarr::Strategy::kFigure2;
    options.budget = 30'000;
    const auto result = linarr::cohoon_sahni(problem, options, rng);
    problem.restore(result.best_state);
    std::printf("\nafter [COHO83a] polish (Figure 2, single exchange):\n");
    print_profile(problem.state());

    // Step 3: the payoff — single-row routing of the final ordering.  The
    // track count equals the density ([RAGH84]/[TING78]; that is why GOLA/
    // NOLA minimize it).
    const auto assignment =
        linarr::assign_tracks(nl, problem.arrangement());
    std::printf(
        "\nrouted channel (%zu tracks == density %d; lower bound %d):\n",
        assignment.num_tracks, problem.state().density(),
        linarr::density_lower_bound(nl));
    std::ostringstream channel;
    linarr::render_channel(channel, nl, problem.arrangement(), assignment);
    std::printf("%s", channel.str().c_str());
  }
  return 0;
}
