// Quickstart: minimize the density of a linear arrangement with simulated
// annealing, then with the paper's recommended g = 1 rule, in ~40 lines.
//
//   $ ./quickstart [seed]
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "linarr/problem.hpp"
#include "netlist/generator.hpp"

int main(int argc, char** argv) {
  using namespace mcopt;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1985;

  // 1. An instance: 15 circuit elements, 150 two-pin nets (the paper's
  //    GOLA workload).
  util::Rng rng{seed};
  const auto nl = netlist::random_gola(netlist::GolaParams{15, 150}, rng);

  // 2. A problem: cost = density (max nets crossing between adjacent
  //    positions), moves = pairwise interchange.
  linarr::LinArrProblem problem{nl, linarr::Arrangement::random(15, rng)};
  std::printf("random start density: %.0f\n", problem.cost());

  // 3. Classic simulated annealing (Kirkpatrick schedule Y1=10, x0.9, k=6).
  core::AnnealOptions sa;
  sa.budget = 20'000;  // one tick per proposed move
  const auto sa_result = core::simulated_annealing(problem, sa, rng);
  std::printf("simulated annealing best: %.0f (reduction %.0f)\n",
              sa_result.best_cost, sa_result.reduction());

  // 4. The paper's headline alternative: g = 1, no temperatures at all.
  problem.randomize(rng);  // fresh random start for a fair comparison
  const auto g1 = core::make_g(core::GClass::kGOne);
  core::Figure1Options fig1;
  fig1.budget = 20'000;
  const auto g1_result = core::run_figure1(problem, *g1, fig1, rng);
  std::printf("g = 1 best:               %.0f (reduction %.0f)\n",
              g1_result.best_cost, g1_result.reduction());

  // 5. The best arrangement itself.
  problem.restore(g1_result.best_state);
  std::printf("g = 1 arrangement: ");
  for (const auto cell : problem.arrangement().order()) {
    std::printf("%u ", cell);
  }
  std::printf("\n");
  return 0;
}
