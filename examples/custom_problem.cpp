// Plugging your own problem into the framework: implement core::Problem
// and every runner, g class, and tuner in the library works on it.
//
// The example problem is number partitioning: split a multiset of weights
// into two halves minimizing the absolute sum difference.  The random
// perturbation swaps two items across the split; descent sweeps all pairs.
//
//   $ ./custom_problem
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include "core/annealer.hpp"
#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace {

using namespace mcopt;

class NumberPartition final : public core::Problem {
 public:
  NumberPartition(std::vector<double> weights, util::Rng& rng)
      : weights_(std::move(weights)), side_(weights_.size(), 0) {
    for (std::size_t i = 0; i < side_.size(); ++i) side_[i] = i % 2;
    randomize(rng);
  }

  [[nodiscard]] double cost() const override { return std::abs(diff_); }

  double propose(util::Rng& rng) override {
    // Swap one item from each side; keeps the halves the same size.
    const std::size_t n = weights_.size();
    do {
      const auto [x, y] = rng.next_distinct_pair(n);
      a_ = x;
      b_ = y;
    } while (side_[a_] == side_[b_]);
    flip_pair();
    return std::abs(diff_);
  }

  void accept() override {}
  void reject() override { flip_pair(); }

  void descend(util::WorkBudget& budget) override {
    const std::size_t n = weights_.size();
    bool improved = true;
    while (improved && !budget.exhausted()) {
      improved = false;
      for (std::size_t i = 0; i < n && !budget.exhausted(); ++i) {
        for (std::size_t j = i + 1; j < n && !budget.exhausted(); ++j) {
          if (side_[i] == side_[j]) continue;
          const double before = std::abs(diff_);
          a_ = i;
          b_ = j;
          flip_pair();
          budget.charge();
          if (std::abs(diff_) < before) {
            improved = true;
          } else {
            flip_pair();
          }
        }
      }
    }
  }

  void randomize(util::Rng& rng) override {
    rng.shuffle(side_);
    recompute();
  }

  [[nodiscard]] core::Snapshot snapshot() const override {
    return core::Snapshot(side_.begin(), side_.end());
  }

  void restore(const core::Snapshot& snap) override {
    side_.assign(snap.begin(), snap.end());
    recompute();
  }

 private:
  void flip_pair() {
    // Moving item a across changes the signed difference by -+2w.
    diff_ += side_[a_] == 0 ? -2.0 * weights_[a_] : 2.0 * weights_[a_];
    diff_ += side_[b_] == 0 ? -2.0 * weights_[b_] : 2.0 * weights_[b_];
    side_[a_] ^= 1;
    side_[b_] ^= 1;
  }

  void recompute() {
    diff_ = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      diff_ += side_[i] == 0 ? weights_[i] : -weights_[i];
    }
  }

  std::vector<double> weights_;
  std::vector<std::uint32_t> side_;
  double diff_ = 0.0;
  std::size_t a_ = 0;
  std::size_t b_ = 0;
};

}  // namespace

int main() {
  util::Rng rng{17};
  std::vector<double> weights(40);
  for (auto& w : weights) w = rng.next_double(1.0, 1000.0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::printf("40 random weights, total %.1f; perfect split diff ~ 0\n\n",
              total);

  NumberPartition problem{weights, rng};
  std::printf("random split difference: %.3f\n", problem.cost());

  core::AnnealOptions sa;
  sa.schedule = core::geometric_schedule(500.0, 0.5, 10);
  sa.budget = 50'000;
  const auto annealed = core::simulated_annealing(problem, sa, rng);
  std::printf("simulated annealing:     %.3f\n", annealed.best_cost);

  problem.randomize(rng);
  const auto g1 = core::make_g(core::GClass::kGOne);
  core::Figure2Options fig2;
  fig2.budget = 50'000;
  const auto kicked = core::run_figure2(problem, *g1, fig2, rng);
  std::printf("Figure 2 with g = 1:     %.3f\n", kicked.best_cost);

  problem.randomize(rng);
  const auto cubic = core::make_g(core::GClass::kCubicDiff, {.scale = 50.0});
  core::Figure1Options fig1;
  fig1.budget = 50'000;
  const auto diff = core::run_figure1(problem, *cubic, fig1, rng);
  std::printf("Figure 1, cubic diff:    %.3f\n", diff.best_cost);
  return 0;
}
