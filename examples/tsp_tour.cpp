// Equal-time TSP shoot-out on one instance — the §2 story in miniature:
// simulated annealing vs restarted 2-opt vs a constructive heuristic.
//
//   $ ./tsp_tour [n] [budget_ticks]
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "core/gfunction.hpp"
#include "core/schedule.hpp"
#include "core/figure1.hpp"
#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "tsp/problem.hpp"

int main(int argc, char** argv) {
  using namespace mcopt;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60;
  const std::uint64_t budget =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 300'000;

  util::Rng rng{42};
  const auto inst = tsp::TspInstance::random_euclidean(n, rng, 1000.0);
  std::printf("random Euclidean instance: n = %zu, budget = %llu ticks\n\n",
              n, static_cast<unsigned long long>(budget));

  // Simulated annealing, Golden-Skiscim style: 25 uniform temperatures.
  {
    tsp::TspProblem problem{inst, tsp::random_order(n, rng)};
    const auto g = core::make_annealing_g(core::uniform_schedule(250.0, 25));
    core::Figure1Options options;
    options.budget = budget;
    util::Rng sa_rng = rng.split();
    const auto result = core::run_figure1(problem, *g, options, sa_rng);
    std::printf("SA (25 uniform temps):  %.1f\n", result.best_cost);
  }

  // Restarted 2-opt at the same tick budget.
  {
    util::Rng topt_rng = rng.split();
    const auto result = tsp::restarted_two_opt(inst, budget, topt_rng);
    std::printf("restarted 2-opt:        %.1f  (%llu restarts)\n",
                result.best_length,
                static_cast<unsigned long long>(result.restarts));
  }

  // Constructive: nearest neighbour, then hull + cheapest insertion, each
  // polished by Or-opt.
  {
    tsp::Order order = tsp::nearest_neighbour(inst, 0);
    util::WorkBudget polish{budget};
    tsp::or_opt_descent(inst, order, polish);
    std::printf("NN + Or-opt:            %.1f  (%llu ticks)\n",
                tsp::tour_length(inst, order),
                static_cast<unsigned long long>(polish.spent()));
  }
  {
    tsp::Order order = tsp::hull_cheapest_insertion(inst);
    util::WorkBudget polish{budget};
    tsp::or_opt_descent(inst, order, polish);
    std::printf("hull+insertion+Or-opt:  %.1f  (%llu ticks)\n",
                tsp::tour_length(inst, order),
                static_cast<unsigned long long>(polish.spent()));
  }
  return 0;
}
