#!/usr/bin/env python3
"""Offline reporting and validation for mcopt JSONL traces.

The bench drivers (``--trace FILE``) and the obs::JsonlFileSink emit one
event per line with a fixed key order::

    {"event":"accept","run":0,"restart":3,"worker":1,"tick":412,
     "stage":2,"cost":71,"best":68}

``stage_begin`` events carry an extra ``"reason"`` key.  Two consumers live
here:

* the default report: an acceptance-rate-vs-stage table, a cost-vs-tick
  table (progress of the sampled proposal stream over the run), and a
  restart / new-best summary — the §4 analysis loops of the paper, driven
  from a trace instead of a rerun;
* ``--validate``: a strict schema check of every line, used by CI on a
  traced smoke workload.  Exit status 1 on the first malformed file.

Determinism contract (see src/obs/event.hpp): every field except
``worker`` — and ``worker_steal`` events entirely — is a pure function of
the seed.  Cross-thread-count comparisons must ignore both; ``--validate``
checks shape, not worker placement.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

EVENT_KINDS = {
    "stage_begin",
    "proposal_sampled",
    "accept",
    "reject",
    "restart_begin",
    "new_best",
    "worker_steal",
}

STAGE_REASONS = {"start", "slice", "patience", "equilibrium"}

REQUIRED_KEYS = ("event", "run", "restart", "worker", "tick", "stage",
                 "cost", "best")

INT_KEYS = ("run", "restart", "worker", "tick", "stage")
NUM_KEYS = ("cost", "best")


def validate_line(lineno: int, line: str) -> list[str]:
    """Returns the schema violations for one JSONL line (empty if clean)."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as err:
        return [f"line {lineno}: not valid JSON: {err}"]
    if not isinstance(event, dict):
        return [f"line {lineno}: not a JSON object"]
    errors = []
    for key in REQUIRED_KEYS:
        if key not in event:
            errors.append(f"line {lineno}: missing key '{key}'")
    kind = event.get("event")
    if kind is not None and kind not in EVENT_KINDS:
        errors.append(f"line {lineno}: unknown event kind '{kind}'")
    for key in INT_KEYS:
        value = event.get(key)
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, int)):
            errors.append(f"line {lineno}: '{key}' must be an integer, "
                          f"got {value!r}")
    for key in NUM_KEYS:
        value = event.get(key)
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, (int, float))):
            errors.append(f"line {lineno}: '{key}' must be a number, "
                          f"got {value!r}")
    if kind == "stage_begin":
        reason = event.get("reason")
        if reason not in STAGE_REASONS:
            errors.append(f"line {lineno}: stage_begin reason {reason!r} "
                          f"not in {sorted(STAGE_REASONS)}")
    elif "reason" in event:
        errors.append(f"line {lineno}: '{kind}' must not carry 'reason'")
    extra = set(event) - set(REQUIRED_KEYS) - {"reason"}
    if extra:
        errors.append(f"line {lineno}: unexpected keys {sorted(extra)}")
    return errors


def load_events(path: str):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {err}")
    return events


def print_table(headers, rows):
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    print(fmt(headers))
    print(fmt(["-" * w for w in widths]))
    for row in str_rows:
        print(fmt(row))
    print()


def report(path: str, events, buckets: int) -> None:
    print(f"{path}: {len(events)} events")
    kinds = defaultdict(int)
    for event in events:
        kinds[event["event"]] += 1
    print("  " + "  ".join(f"{k}={v}" for k, v in sorted(kinds.items())))
    print()

    # Acceptance rate vs stage, from the sampled accept/reject stream.
    per_stage = defaultdict(lambda: {"accept": 0, "reject": 0, "begin": 0})
    for event in events:
        kind = event["event"]
        if kind in ("accept", "reject"):
            per_stage[event["stage"]][kind] += 1
        elif kind == "stage_begin":
            per_stage[event["stage"]]["begin"] += 1
    if per_stage:
        print("Acceptance rate vs stage (sampled accept/reject events):")
        rows = []
        for stage in sorted(per_stage):
            s = per_stage[stage]
            decided = s["accept"] + s["reject"]
            rate = f"{s['accept'] / decided:.3f}" if decided else "-"
            rows.append([stage, s["begin"], s["accept"], s["reject"], rate])
        print_table(["stage", "entries", "accepts", "rejects", "rate"], rows)

    # Cost vs tick: bucket the sampled proposal stream over the tick range.
    proposals = [e for e in events if e["event"] == "proposal_sampled"]
    if proposals:
        max_tick = max(e["tick"] for e in proposals)
        span = max(max_tick, 1)
        stats = defaultdict(lambda: {"n": 0, "sum": 0.0, "best": float("inf")})
        for event in proposals:
            bucket = min((event["tick"] * buckets) // (span + 1), buckets - 1)
            s = stats[bucket]
            s["n"] += 1
            s["sum"] += event["cost"]
            s["best"] = min(s["best"], event["best"])
        print("Cost vs tick (sampled proposals, bucketed):")
        rows = []
        for bucket in sorted(stats):
            s = stats[bucket]
            lo = bucket * span // buckets
            hi = (bucket + 1) * span // buckets
            rows.append([f"{lo}..{hi}", s["n"], f"{s['sum'] / s['n']:.2f}",
                         f"{s['best']:g}"])
        print_table(["ticks", "samples", "mean cost", "best so far"], rows)

    # Restart / new-best summary per run.
    runs = defaultdict(lambda: {"restarts": 0, "new_bests": 0,
                                "best": float("inf"), "steals": 0})
    for event in events:
        r = runs[event["run"]]
        kind = event["event"]
        if kind == "restart_begin":
            r["restarts"] += 1
        elif kind == "new_best":
            r["new_bests"] += 1
            r["best"] = min(r["best"], event["best"])
        elif kind == "worker_steal":
            r["steals"] += 1
    if runs:
        print("Per-run summary:")
        rows = []
        for run in sorted(runs):
            r = runs[run]
            best = f"{r['best']:g}" if r["best"] != float("inf") else "-"
            rows.append([run, r["restarts"], r["new_bests"], best,
                         r["steals"]])
        print_table(["run", "restarts", "new bests", "final best", "steals"],
                    rows)


def validate(path: str) -> int:
    errors = []
    lines = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                errors.append(f"line {lineno}: blank line")
                continue
            lines += 1
            errors.extend(validate_line(lineno, line))
            if len(errors) >= 20:
                break
    if errors:
        for error in errors[:20]:
            print(f"{path}: {error}", file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)}+ schema violation(s))",
              file=sys.stderr)
        return 1
    print(f"{path}: OK ({lines} events, schema valid)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+", help="JSONL trace file(s)")
    parser.add_argument("--validate", action="store_true",
                        help="strict schema check; exit 1 on any violation")
    parser.add_argument("--buckets", type=int, default=10,
                        help="tick buckets for the cost-vs-tick table")
    args = parser.parse_args(argv)
    if args.buckets < 1:
        parser.error("--buckets must be >= 1")
    status = 0
    for path in args.traces:
        try:
            if args.validate:
                status = max(status, validate(path))
            else:
                report(path, load_events(path), args.buckets)
        except OSError as err:
            print(f"{path}: {err}", file=sys.stderr)
            status = max(status, 2)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
