#!/usr/bin/env python3
"""Offline reporting and validation for mcopt JSONL traces.

The bench drivers (``--trace FILE``) and the obs::JsonlFileSink emit one
event per line with a fixed key order::

    {"event":"accept","run":0,"restart":3,"worker":1,"tick":412,
     "stage":2,"cost":71,"best":68}

``stage_begin`` events carry an extra ``"reason"`` key.  Two consumers live
here:

* the default report: an acceptance-rate-vs-stage table, a cost-vs-tick
  table (progress of the sampled proposal stream over the run), and a
  restart / new-best summary — the §4 analysis loops of the paper, driven
  from a trace instead of a rerun;
* ``--validate``: a strict schema check of every line, used by CI on a
  traced smoke workload.  Exit status 1 on the first malformed file.

Beyond traces, it renders the other observability exports:

* ``--metrics FILE``: the ``--metrics-out`` JSON — summary counters, the
  per-stage proposal-mix table, and the uphill-Δcost histograms as
  per-bucket bar charts;
* ``--profile FILE``: the ``--profile-out`` JSON — the hierarchical stage
  profile as an indented tree with per-node tick shares;
* ``--prom FILE``: validates a ``--prom-out`` Prometheus text exposition
  (HELP/TYPE before samples, contiguous families, parseable samples).

Determinism contract (see src/obs/event.hpp): every field except
``worker`` — and ``worker_steal`` events entirely — is a pure function of
the seed.  Cross-thread-count comparisons must ignore both; ``--validate``
checks shape, not worker placement.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import defaultdict

EVENT_KINDS = {
    "stage_begin",
    "proposal_sampled",
    "accept",
    "reject",
    "restart_begin",
    "new_best",
    "worker_steal",
}

STAGE_REASONS = {"start", "slice", "patience", "equilibrium"}

# Every Prometheus family the C++ registry may emit (src/obs/registry.cpp).
# ``--prom`` validation rejects any other mcopt_-prefixed family, and
# mcoptlint's counter-name-sync rule checks the C++ side against this
# table, so the two can never drift silently.  Keep one name per line.
KNOWN_METRICS = {
    "mcopt_restarts_total",
    "mcopt_new_bests_total",
    "mcopt_patience_resets_total",
    "mcopt_trace_events_total",
    "mcopt_invariant_checks_total",
    "mcopt_invariant_seconds",
    "mcopt_wall_seconds",
    "mcopt_worker_steals_total",
    "mcopt_queue_peak",
    "mcopt_uphill_delta_proposed",
    "mcopt_uphill_delta_accepted",
    "mcopt_stage_proposals_total",
    "mcopt_stage_accepts_total",
    "mcopt_stage_uphill_accepts_total",
    "mcopt_stage_rejects_total",
    "mcopt_stage_downhill_proposals_total",
    "mcopt_stage_sideways_proposals_total",
    "mcopt_stage_uphill_proposals_total",
    "mcopt_stage_new_bests_total",
    "mcopt_stage_patience_fires_total",
    "mcopt_stage_ticks_total",
    "mcopt_stage_wall_seconds",
    "mcopt_stage_acceptance_rate",
    "mcopt_stage_uphill_rate",
    "mcopt_stage_cost_samples_total",
    "mcopt_stage_cost_mean",
    "mcopt_stage_cost_variance",
    "mcopt_stage_temperature",
    "mcopt_stage_specific_heat",
    "mcopt_stage_autocorr_lag1",
    "mcopt_stage_equilibrated_total",
    "mcopt_perf_cycles_total",
    "mcopt_perf_instructions_total",
    "mcopt_perf_cache_references_total",
    "mcopt_perf_cache_misses_total",
    "mcopt_perf_branch_misses_total",
    "mcopt_perf_task_clock_ns_total",
    "mcopt_perf_ipc",
    "mcopt_perf_cache_miss_rate",
    "mcopt_perf_cycles_per_tick",
}

REQUIRED_KEYS = ("event", "run", "restart", "worker", "tick", "stage",
                 "cost", "best")

INT_KEYS = ("run", "restart", "worker", "tick", "stage")
NUM_KEYS = ("cost", "best")


def validate_line(lineno: int, line: str) -> list[str]:
    """Returns the schema violations for one JSONL line (empty if clean)."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as err:
        return [f"line {lineno}: not valid JSON: {err}"]
    if not isinstance(event, dict):
        return [f"line {lineno}: not a JSON object"]
    errors = []
    for key in REQUIRED_KEYS:
        if key not in event:
            errors.append(f"line {lineno}: missing key '{key}'")
    kind = event.get("event")
    if kind is not None and kind not in EVENT_KINDS:
        errors.append(f"line {lineno}: unknown event kind '{kind}'")
    for key in INT_KEYS:
        value = event.get(key)
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, int)):
            errors.append(f"line {lineno}: '{key}' must be an integer, "
                          f"got {value!r}")
    for key in NUM_KEYS:
        value = event.get(key)
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, (int, float))):
            errors.append(f"line {lineno}: '{key}' must be a number, "
                          f"got {value!r}")
    if kind == "stage_begin":
        reason = event.get("reason")
        if reason not in STAGE_REASONS:
            errors.append(f"line {lineno}: stage_begin reason {reason!r} "
                          f"not in {sorted(STAGE_REASONS)}")
    elif "reason" in event:
        errors.append(f"line {lineno}: '{kind}' must not carry 'reason'")
    extra = set(event) - set(REQUIRED_KEYS) - {"reason"}
    if extra:
        errors.append(f"line {lineno}: unexpected keys {sorted(extra)}")
    return errors


def load_events(path: str):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {err}")
    return events


def print_table(headers, rows):
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    print(fmt(headers))
    print(fmt(["-" * w for w in widths]))
    for row in str_rows:
        print(fmt(row))
    print()


def report(path: str, events, buckets: int) -> None:
    print(f"{path}: {len(events)} events")
    kinds = defaultdict(int)
    for event in events:
        kinds[event["event"]] += 1
    print("  " + "  ".join(f"{k}={v}" for k, v in sorted(kinds.items())))
    print()

    # Acceptance rate vs stage, from the sampled accept/reject stream.
    per_stage = defaultdict(lambda: {"accept": 0, "reject": 0, "begin": 0})
    for event in events:
        kind = event["event"]
        if kind in ("accept", "reject"):
            per_stage[event["stage"]][kind] += 1
        elif kind == "stage_begin":
            per_stage[event["stage"]]["begin"] += 1
    if per_stage:
        print("Acceptance rate vs stage (sampled accept/reject events):")
        rows = []
        for stage in sorted(per_stage):
            s = per_stage[stage]
            decided = s["accept"] + s["reject"]
            rate = f"{s['accept'] / decided:.3f}" if decided else "-"
            rows.append([stage, s["begin"], s["accept"], s["reject"], rate])
        print_table(["stage", "entries", "accepts", "rejects", "rate"], rows)

    # Cost vs tick: bucket the sampled proposal stream over the tick range.
    proposals = [e for e in events if e["event"] == "proposal_sampled"]
    if proposals:
        max_tick = max(e["tick"] for e in proposals)
        span = max(max_tick, 1)
        stats = defaultdict(lambda: {"n": 0, "sum": 0.0, "best": float("inf")})
        for event in proposals:
            bucket = min((event["tick"] * buckets) // (span + 1), buckets - 1)
            s = stats[bucket]
            s["n"] += 1
            s["sum"] += event["cost"]
            s["best"] = min(s["best"], event["best"])
        print("Cost vs tick (sampled proposals, bucketed):")
        rows = []
        for bucket in sorted(stats):
            s = stats[bucket]
            lo = bucket * span // buckets
            hi = (bucket + 1) * span // buckets
            rows.append([f"{lo}..{hi}", s["n"], f"{s['sum'] / s['n']:.2f}",
                         f"{s['best']:g}"])
        print_table(["ticks", "samples", "mean cost", "best so far"], rows)

    # Restart / new-best summary per run.
    runs = defaultdict(lambda: {"restarts": 0, "new_bests": 0,
                                "best": float("inf"), "steals": 0})
    for event in events:
        r = runs[event["run"]]
        kind = event["event"]
        if kind == "restart_begin":
            r["restarts"] += 1
        elif kind == "new_best":
            r["new_bests"] += 1
            r["best"] = min(r["best"], event["best"])
        elif kind == "worker_steal":
            r["steals"] += 1
    if runs:
        print("Per-run summary:")
        rows = []
        for run in sorted(runs):
            r = runs[run]
            best = f"{r['best']:g}" if r["best"] != float("inf") else "-"
            rows.append([run, r["restarts"], r["new_bests"], best,
                         r["steals"]])
        print_table(["run", "restarts", "new bests", "final best", "steals"],
                    rows)


def histogram_rows(hist: dict) -> list[list[str]]:
    """Per-bucket rows from the cumulative `buckets` array of a LogHistogram."""
    rows = []
    prev_cum = 0
    total = hist.get("count", 0)
    for bucket in hist.get("buckets", []):
        cum = bucket["count"]
        in_bucket = cum - prev_cum
        prev_cum = cum
        if bucket["le"] == "+Inf" and in_bucket == 0:
            continue
        share = in_bucket / total if total else 0.0
        bar = "#" * round(share * 40)
        rows.append([f"<= {bucket['le']}", str(in_bucket),
                     f"{100.0 * share:.1f}%", bar])
    return rows


def report_metrics(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        metrics = json.load(handle)
    print(f"{path}: metrics summary")
    for key in ("restarts", "new_bests", "patience_resets", "trace_events",
                "invariant_checks", "worker_steals", "queue_peak",
                "wall_seconds"):
        if key in metrics:
            print(f"  {key} = {metrics[key]}")
    print()
    stages = metrics.get("stages", [])
    if stages:
        print("Per-stage proposal mix:")
        rows = []
        for s in stages:
            rows.append([s["stage"], s["proposals"], s["accepts"],
                         f"{s.get('acceptance_rate', 0.0):.3f}",
                         s.get("downhill_proposals", 0),
                         s.get("sideways_proposals", 0),
                         s.get("uphill_proposals", 0),
                         s.get("uphill_accepts", 0)])
        print_table(["stage", "proposals", "accepts", "rate", "downhill",
                     "sideways", "uphill", "uphill acc"], rows)
    observables = [o for o in metrics.get("observables", [])
                   if o.get("samples")]
    if observables:
        print("Per-stage thermodynamic observables:")
        rows = []
        for o in observables:
            temp = o.get("temperature", 0.0)
            rho1 = (o.get("autocorrelation") or [0.0])[0]
            rows.append([o["stage"], o["samples"],
                         f"{o.get('cost_mean', 0.0):.2f}",
                         f"{o.get('cost_variance', 0.0):.2f}",
                         f"{temp:g}" if temp > 0 else "-",
                         f"{o.get('specific_heat', 0.0):.2f}"
                         if temp > 0 else "-",
                         f"{rho1:.3f}",
                         o.get("equilibrated_runs", 0)])
        print_table(["stage", "samples", "mean E", "var E", "T", "C",
                     "rho1", "equilibrated"], rows)
    for name in ("uphill_delta_proposed", "uphill_delta_accepted"):
        hist = metrics.get(name)
        if not hist or not hist.get("count"):
            continue
        mean = hist["sum"] / hist["count"]
        print(f"{name}: n={hist['count']} sum={hist['sum']:g} "
              f"mean={mean:.2f}")
        print_table(["Δcost", "count", "share", ""], histogram_rows(hist))
    return 0


def print_profile_tree(nodes, indent: int, parent_ticks) -> None:
    for node in nodes:
        ticks = node.get("ticks", 0)
        share = (f"  ({100.0 * ticks / parent_ticks:.1f}%)"
                 if parent_ticks else "")
        wall = node.get("wall_ns")
        wall_str = f"  wall={wall / 1e9:.3f}s" if wall is not None else ""
        print(f"{'  ' * indent}{node['name']}: calls={node['calls']} "
              f"ticks={ticks}{share}{wall_str}")
        print_profile_tree(node.get("children", []), indent + 1, ticks)


def report_profile(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    roots = doc.get("profile", doc) if isinstance(doc, dict) else doc
    if not isinstance(roots, list):
        print(f"{path}: no 'profile' array found", file=sys.stderr)
        return 1
    print(f"{path}: stage profile")
    total = sum(node.get("ticks", 0) for node in roots)
    print_profile_tree(roots, 1, total if len(roots) > 1 else None)
    return 0


PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
PROM_SAMPLE = re.compile(
    r"^(" + PROM_NAME + r")(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$")
PROM_HELP = re.compile(r"^# HELP (" + PROM_NAME + r") (.*)$")
PROM_TYPE = re.compile(
    r"^# TYPE (" + PROM_NAME + r") (counter|gauge|histogram|summary)$")


def validate_prometheus(path: str) -> int:
    """Checks exposition-format shape: HELP/TYPE precede their samples and
    every family's lines are contiguous."""
    errors = []
    declared: dict[str, str] = {}
    seen_families: list[str] = []

    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                return name[:-len(suffix)]
        return name

    samples = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                match = PROM_HELP.match(line)
                if not match:
                    errors.append(f"line {lineno}: malformed HELP")
                continue
            if line.startswith("# TYPE "):
                match = PROM_TYPE.match(line)
                if not match:
                    errors.append(f"line {lineno}: malformed TYPE")
                    continue
                name = match.group(1)
                if name in declared:
                    errors.append(f"line {lineno}: duplicate TYPE for "
                                  f"'{name}' (family not contiguous)")
                if name.startswith("mcopt_") and name not in KNOWN_METRICS:
                    errors.append(f"line {lineno}: family '{name}' not in "
                                  f"KNOWN_METRICS (update trace_report.py)")
                declared[name] = match.group(2)
                seen_families.append(name)
                continue
            if line.startswith("#"):
                continue
            match = PROM_SAMPLE.match(line)
            if not match:
                errors.append(f"line {lineno}: unparseable sample: {line!r}")
                continue
            samples += 1
            family = family_of(match.group(1))
            if family not in declared:
                errors.append(f"line {lineno}: sample '{match.group(1)}' "
                              f"has no preceding TYPE")
            elif seen_families and seen_families[-1] != family:
                errors.append(f"line {lineno}: sample for '{family}' after "
                              f"family '{seen_families[-1]}' opened "
                              f"(families must be contiguous)")
            value = match.group(3)
            if declared.get(family) == "counter" and value.startswith("-"):
                errors.append(f"line {lineno}: negative counter value")
    if errors:
        for error in errors[:20]:
            print(f"{path}: {error}", file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)} violation(s))",
              file=sys.stderr)
        return 1
    print(f"{path}: OK ({samples} samples, {len(declared)} families)")
    return 0


def validate(path: str) -> int:
    errors = []
    lines = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                errors.append(f"line {lineno}: blank line")
                continue
            lines += 1
            errors.extend(validate_line(lineno, line))
            if len(errors) >= 20:
                break
    if errors:
        for error in errors[:20]:
            print(f"{path}: {error}", file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)}+ schema violation(s))",
              file=sys.stderr)
        return 1
    print(f"{path}: OK ({lines} events, schema valid)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="*", help="JSONL trace file(s)")
    parser.add_argument("--validate", action="store_true",
                        help="strict schema check; exit 1 on any violation")
    parser.add_argument("--buckets", type=int, default=10,
                        help="tick buckets for the cost-vs-tick table")
    parser.add_argument("--metrics", metavar="FILE",
                        help="render a --metrics-out JSON summary")
    parser.add_argument("--profile", metavar="FILE",
                        help="render a --profile-out JSON tree")
    parser.add_argument("--prom", metavar="FILE",
                        help="validate a --prom-out Prometheus exposition")
    args = parser.parse_args(argv)
    if args.buckets < 1:
        parser.error("--buckets must be >= 1")
    if not args.traces and not (args.metrics or args.profile or args.prom):
        parser.error("nothing to do: give trace file(s) or one of "
                     "--metrics/--profile/--prom")
    status = 0
    try:
        if args.metrics:
            status = max(status, report_metrics(args.metrics))
        if args.profile:
            status = max(status, report_profile(args.profile))
        if args.prom:
            status = max(status, validate_prometheus(args.prom))
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"observability export: {err}", file=sys.stderr)
        status = max(status, 2)
    for path in args.traces:
        try:
            if args.validate:
                status = max(status, validate(path))
            else:
                report(path, load_events(path), args.buckets)
        except OSError as err:
            print(f"{path}: {err}", file=sys.stderr)
            status = max(status, 2)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
