#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json against committed baselines.

The bench drivers write machine-readable reports (BENCH_obs.json,
BENCH_metrics.json, BENCH_parallel.json, ...) via
bench::write_json_report.  The repo commits one baseline per report at the
repository root; CI reruns the benches and feeds the fresh files through
this gate::

    python3 tools/bench_compare.py --baseline-dir . fresh/BENCH_obs.json ...

Four field classes, chosen by key name so new benches gate themselves
without per-bench schemas:

* **deterministic** (everything not listed below) — must be *exactly*
  equal.  ``best_cost``, ``restarts``, ``trace_events_in_parallel_check``,
  ``budget``, ``seed`` ... are pure functions of the seed, so any drift is
  a real behaviour change, not noise.
* **bool gates** (``gate_ok``, ``*_identical``, ``*_bit_identical``) — a
  ``true`` baseline must stay ``true``; ``false -> true`` is an
  improvement and only prompts a baseline refresh note.
* **informational** (``*ipc*``, ``*miss_rate*``, ``perf_*``,
  ``*cycles_per*``) — hardware-counter telemetry, printed in reports but
  never compared: availability depends on perf_event_open permissions, so
  a counter-less CI run must pass against a baseline that has them.
* **perf** (``seconds``, ``proposals_per_sec``, ``overhead_pct``, ...) —
  compared with a relative tolerance band (``--perf-tolerance``, default
  50% to absorb shared-runner noise) in the slower/worse direction only.
  ``--perf-warn-only`` downgrades perf violations to warnings, which is
  how CI runs until the runners are quiet enough to enforce.

A fresh report with no committed baseline is *seeding mode*: warn and
exit 0, so adding a bench never breaks the gate it will later feed.
``--self-test`` injects synthetic regressions of each class and requires
the gate to catch all of them (and to pass the clean cases).
Exit status: 0 clean/warnings, 1 regression, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Keys whose values depend on wall-clock or machine load: banded compare.
PERF_KEY_PARTS = (
    "seconds",
    "proposals_per_sec",
    "overhead_pct",
    "speedup",
    "efficiency",
)

# Keys that describe the machine, not the run: ignored entirely.
ENV_KEYS = {"hardware_concurrency"}

# Hardware-counter telemetry (IPC, cache-miss rates, cycles/proposal,
# perf_counters_available, ...): reported for humans, never gated.  Their
# presence and values depend on perf_event_open permissions and the host
# PMU, not on the code under test, so a run without counters must compare
# clean against a baseline recorded with them (and vice versa).
INFORMATIONAL_KEY_PARTS = ("ipc", "miss_rate", "perf_", "cycles_per")

# Perf metrics where *larger* is worse (times, overheads).  Everything
# else perf-classified (throughput, speedup, efficiency) is
# smaller-is-worse.
LARGER_IS_WORSE_PARTS = ("seconds", "overhead_pct")


def classify(key: str):
    if key in ENV_KEYS:
        return "env"
    if any(part in key for part in INFORMATIONAL_KEY_PARTS):
        return "informational"
    if any(part in key for part in PERF_KEY_PARTS):
        return "perf"
    return "exact"


def is_worse(key: str, base: float, fresh: float, tolerance_pct: float) -> bool:
    """True when `fresh` regressed past the tolerance band vs `base`."""
    larger_worse = any(part in key for part in LARGER_IS_WORSE_PARTS)
    band = abs(base) * tolerance_pct / 100.0
    if larger_worse:
        return fresh > base + band
    return fresh < base - band


class Diff:
    def __init__(self) -> None:
        self.failures: list[str] = []
        self.warnings: list[str] = []

    def fail(self, msg: str) -> None:
        self.failures.append(msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)


def compare_values(path: str, base, fresh, tolerance_pct: float,
                   perf_warn_only: bool, diff: Diff) -> None:
    if isinstance(base, dict) and isinstance(fresh, dict):
        compare_objects(path, base, fresh, tolerance_pct, perf_warn_only, diff)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            diff.fail(f"{path}: row count changed "
                      f"({len(base)} -> {len(fresh)})")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            compare_values(f"{path}[{i}]", b, f, tolerance_pct,
                           perf_warn_only, diff)
        return

    key = path.rsplit(".", 1)[-1].split("[")[0]
    # Informational wins over the bool-gate rule: perf_counters_available
    # flipping true -> false is the host losing PMU access, not a
    # regression in the code under test.
    kind = classify(key)
    if kind in ("env", "informational"):
        return
    if isinstance(base, bool) or isinstance(fresh, bool):
        if base is True and fresh is not True:
            diff.fail(f"{path}: gate regressed true -> {fresh!r}")
        elif base is False and fresh is True:
            diff.warn(f"{path}: improved false -> true "
                      f"(refresh the baseline to lock it in)")
        return
    if kind == "perf":
        if not isinstance(base, (int, float)) or not isinstance(
                fresh, (int, float)):
            diff.fail(f"{path}: perf field type changed "
                      f"({base!r} -> {fresh!r})")
        elif is_worse(key, float(base), float(fresh), tolerance_pct):
            msg = (f"{path}: perf regressed beyond {tolerance_pct:g}% "
                   f"({base!r} -> {fresh!r})")
            diff.warn(msg) if perf_warn_only else diff.fail(msg)
        return
    if base != fresh:
        diff.fail(f"{path}: deterministic field changed "
                  f"({base!r} -> {fresh!r})")


def compare_objects(path: str, base: dict, fresh: dict, tolerance_pct: float,
                    perf_warn_only: bool, diff: Diff) -> None:
    for key in base:
        child = f"{path}.{key}" if path else key
        if key not in fresh:
            if classify(key) == "informational":
                diff.warn(f"{child}: informational field absent from fresh "
                          f"report (counters unavailable on this host?)")
            else:
                diff.fail(f"{child}: missing from fresh report")
            continue
        compare_values(child, base[key], fresh[key], tolerance_pct,
                       perf_warn_only, diff)
    for key in fresh:
        if key not in base:
            if classify(key) == "informational":
                continue  # counters came online; nothing to refresh
            child = f"{path}.{key}" if path else key
            diff.warn(f"{child}: new field not in baseline "
                      f"(refresh the baseline)")


def compare_docs(base: dict, fresh: dict, tolerance_pct: float,
                 perf_warn_only: bool) -> Diff:
    diff = Diff()
    compare_objects("", base, fresh, tolerance_pct, perf_warn_only, diff)
    return diff


def compare_file(fresh_path: str, baseline_dir: str, tolerance_pct: float,
                 perf_warn_only: bool) -> int:
    name = os.path.basename(fresh_path)
    baseline_path = os.path.join(baseline_dir, name)
    if not os.path.exists(baseline_path):
        print(f"{name}: no committed baseline at {baseline_path} — "
              f"seeding mode, commit the fresh report to enable the gate")
        return 0
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            base = json.load(handle)
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{name}: {err}", file=sys.stderr)
        return 2
    diff = compare_docs(base, fresh, tolerance_pct, perf_warn_only)
    for msg in diff.warnings:
        print(f"{name}: WARN {msg}")
    for msg in diff.failures:
        print(f"{name}: FAIL {msg}", file=sys.stderr)
    if diff.failures:
        print(f"{name}: REGRESSION ({len(diff.failures)} failure(s))",
              file=sys.stderr)
        return 1
    print(f"{name}: OK ({len(diff.warnings)} warning(s))")
    return 0


def self_test() -> int:
    """Synthetic regressions of every class must be caught."""
    base = {
        "bench": "selftest",
        "seed": 1985,
        "best_cost": 60.0,
        "gate_ok": True,
        "was_false": False,
        "hardware_concurrency": 1,
        "off_overhead_pct": 1.0,
        "perf_counters_available": True,
        "spec_ipc": 2.5,
        "legacy_cache_miss_rate": 0.04,
        "spec_cycles_per_proposal": 150.0,
        "configs": [
            {"name": "off", "seconds": 1.00, "proposals_per_sec": 1000.0},
            {"name": "on", "seconds": 1.10, "proposals_per_sec": 900.0},
        ],
    }

    def mutated(**top):
        doc = json.loads(json.dumps(base))
        doc.update(top)
        return doc

    failures = []

    def expect(label: str, fresh: dict, want_fail: bool,
               perf_warn_only: bool = False) -> None:
        diff = compare_docs(base, fresh, tolerance_pct=50.0,
                            perf_warn_only=perf_warn_only)
        got_fail = bool(diff.failures)
        if got_fail != want_fail:
            failures.append(
                f"{label}: expected {'FAIL' if want_fail else 'PASS'}, "
                f"got failures={diff.failures} warnings={diff.warnings}")

    # Clean copy passes, including env-key and in-band perf drift.
    clean = mutated(hardware_concurrency=64)
    clean["configs"][0]["seconds"] = 1.30   # +30% < 50% band
    expect("clean within-tolerance", clean, want_fail=False)

    # Deterministic drift fails exactly.
    expect("best_cost drift", mutated(best_cost=61.0), want_fail=True)

    # Bool gate true -> false fails; false -> true only warns.
    expect("bool gate regression", mutated(gate_ok=False), want_fail=True)
    expect("bool gate improvement", mutated(was_false=True), want_fail=False)

    # Perf past the band fails ... unless warn-only.
    slow = json.loads(json.dumps(base))
    slow["configs"][1]["seconds"] = 2.0     # +82% > 50% band
    expect("perf regression", slow, want_fail=True)
    expect("perf regression warn-only", slow, want_fail=False,
           perf_warn_only=True)
    # Throughput is smaller-is-worse.
    slow2 = mutated()
    slow2["configs"][0]["proposals_per_sec"] = 100.0
    expect("throughput regression", slow2, want_fail=True)

    # Informational telemetry never gates: wild drift, the availability
    # bool flipping false, and counters vanishing entirely all pass.
    expect("informational drift", mutated(spec_ipc=0.01), want_fail=False)
    expect("informational bool flip",
           mutated(perf_counters_available=False), want_fail=False)
    no_counters = mutated()
    for key in ("perf_counters_available", "spec_ipc",
                "legacy_cache_miss_rate", "spec_cycles_per_proposal"):
        del no_counters[key]
    expect("informational fields absent", no_counters, want_fail=False)
    expect("informational fields appear",
           mutated(legacy_ipc=1.2), want_fail=False)

    # Structural: missing key and shorter row list fail; new key warns.
    missing = mutated()
    del missing["best_cost"]
    expect("missing key", missing, want_fail=True)
    short = mutated(configs=base["configs"][:1])
    expect("row count change", short, want_fail=True)
    extra = mutated(new_metric=3)
    expect("new field warns only", extra, want_fail=False)

    if failures:
        for failure in failures:
            print(f"self-test: {failure}", file=sys.stderr)
        print("self-test: FAILED", file=sys.stderr)
        return 1
    print("self-test: OK (14 scenarios)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="*",
                        help="freshly generated BENCH_*.json file(s)")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed baselines "
                             "(default: current directory)")
    parser.add_argument("--perf-tolerance", type=float, default=50.0,
                        help="relative band for perf fields, percent "
                             "(default 50)")
    parser.add_argument("--perf-warn-only", action="store_true",
                        help="downgrade perf-band violations to warnings")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches planted regressions")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.fresh:
        parser.error("no fresh reports given (or use --self-test)")
    if args.perf_tolerance < 0:
        parser.error("--perf-tolerance must be >= 0")
    status = 0
    for fresh_path in args.fresh:
        status = max(status, compare_file(fresh_path, args.baseline_dir,
                                          args.perf_tolerance,
                                          args.perf_warn_only))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
