#!/usr/bin/env python3
"""Determinism lint for the mcopt source tree.

Bit-exact reproducibility of the EXPERIMENTS.md tables is a hard project
contract: every stochastic component must draw from util::Rng (xoshiro256++
seeded via splitmix64), and cost arithmetic must be double-precision.  This
tool rejects source constructs that silently break that contract:

  * std::rand / srand / rand()          - C PRNG, global state, libc-specific
  * std::random_device                  - nondeterministic by design
  * std::uniform_*_distribution et al.  - unspecified algorithm; streams
    differ between standard libraries even for equal seeds
  * std::mt19937 / minstd / ranlux ...  - engine construction outside
    util::Rng (default-constructed engines are unseeded; even seeded ones
    bypass the project's stream-derivation scheme)
  * time(...) / clock() / system_clock  - wall-clock seeding or wall-clock
    dependent logic (steady_clock is allowed: it only measures durations)
  * float in cost arithmetic            - all costs are double; float
    narrows differently across FPUs and vector units
  * sleep_for / sleep_until, std::async - scheduler-dependent timing or
    launch policy; parallel code uses the explicit pool in core/parallel.cpp
  * thread_local ... Rng                - per-OS-thread randomness depends on
    scheduling; derive per-work-item streams with util::Rng::split

Concurrency rules (the compile-time contract rides on util/sync.hpp —
these keep every lock a Clang-analyzable util::Mutex):

  * std::mutex / lock_guard / scoped_lock / unique_lock /
    condition_variable et al.           - raw sync primitives carry no
    CAPABILITY annotation, so -Wthread-safety cannot see them; only
    src/util/sync.hpp (the annotated wrapper) may touch them
  * .detach()                           - detached threads outlive every
    join point and race with static destruction; pools must join
  * std::atomic                         - lock-free shared state dodges
    GUARDED_BY checking; each use needs an explicit allow with a reason

Comments and string literals are stripped before matching, so *discussing*
a banned construct is fine.  A genuine exception can be allowlisted by
putting `mcopt-lint: allow(<rule>)` in a comment on the same line; whole
files implementing a sanctioned wrapper are listed in EXEMPT_FILES.

Exit status: 0 when clean, 1 when violations are found, 2 on usage errors.
Run `tools/lint_determinism.py --self-test` to verify the linter catches
every rule (used by CI to prove the lint is live).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_DIRS = ["src", "bench", "examples", "tests", "tools"]
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

ALLOW_RE = re.compile(r"mcopt-lint:\s*allow\(([a-z0-9_\-, ]+)\)")

# rule name -> (regex on comment/string-stripped code, human explanation)
RULES = {
    "c-rand": (
        re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
        "C rand()/srand(): global-state PRNG, not reproducible across libcs; "
        "use util::Rng",
    ),
    "random-device": (
        re.compile(r"\bstd\s*::\s*random_device\b"),
        "std::random_device is nondeterministic; seed util::Rng explicitly",
    ),
    "std-distribution": (
        re.compile(
            r"\bstd\s*::\s*(?:uniform_int_distribution|"
            r"uniform_real_distribution|normal_distribution|"
            r"bernoulli_distribution|discrete_distribution|"
            r"exponential_distribution|poisson_distribution|"
            r"geometric_distribution|binomial_distribution)\b"
        ),
        "std distributions have unspecified algorithms (streams differ across "
        "standard libraries); use util::Rng helpers",
    ),
    "std-engine": (
        re.compile(
            r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|"
            r"knuth_b|default_random_engine)\b"
        ),
        "std random engine construction bypasses util::Rng and the project's "
        "seed-derivation scheme",
    ),
    "wall-clock": (
        re.compile(
            r"(?:\btime\s*\(|\bclock\s*\(|"
            r"\bstd\s*::\s*chrono\s*::\s*(?:system_clock|"
            r"high_resolution_clock)\b|\bgettimeofday\s*\()"
        ),
        "wall-clock access: seeds or logic derived from it are not "
        "reproducible (steady_clock durations via util::Stopwatch are fine)",
    ),
    "float-arithmetic": (
        re.compile(r"\bfloat\b"),
        "float narrows cost arithmetic differently across FPUs; the project "
        "contract is double everywhere",
    ),
    "shuffle-std": (
        re.compile(r"\bstd\s*::\s*(?:shuffle|random_shuffle)\b"),
        "std::shuffle's use of the URBG is unspecified; use util::Rng::shuffle",
    ),
    "thread-sleep": (
        re.compile(r"\bstd\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\b"),
        "sleeping makes behaviour depend on the scheduler; parallel code must "
        "synchronize with condition variables / joins, never timed waits",
    ),
    "std-async": (
        re.compile(r"\bstd\s*::\s*async\b"),
        "std::async launch policy and thread reuse are implementation-defined; "
        "use the explicit std::thread pool in core/parallel.cpp",
    ),
    "thread-local-rng": (
        re.compile(r"\bthread_local\b[^;{]*\bRng\b"),
        "thread_local Rng state is seeded per OS thread, so results depend on "
        "thread scheduling; derive per-work-item streams with util::Rng::split",
    ),
    "raw-stderr": (
        re.compile(
            r"\bstd\s*::\s*cerr\b|"
            r"\b(?:std\s*::\s*)?v?fprintf\s*\(\s*stderr\b|"
            r"\b(?:std\s*::\s*)?fput[sc]\s*\([^;)]*\bstderr\b"
        ),
        "raw stderr writes in src/ bypass the obs::log level control; route "
        "diagnostics through obs::log (obs/log.hpp)",
    ),
    "raw-sync-primitive": (
        re.compile(
            r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
            r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
            r"lock_guard|scoped_lock|unique_lock|shared_lock|"
            r"condition_variable(?:_any)?)\b"
        ),
        "raw std sync primitives carry no CAPABILITY annotation, so "
        "-Wthread-safety cannot check them; use util::Mutex / util::MutexLock "
        "/ util::CondVar (util/sync.hpp)",
    ),
    "thread-detach": (
        re.compile(r"\.\s*detach\s*\("),
        "detached threads outlive every join point and race static "
        "destruction; keep threads joinable and join them",
    ),
    "raw-atomic": (
        re.compile(r"\bstd\s*::\s*atomic(?:_\w+)?\b"),
        "std::atomic state is invisible to GUARDED_BY analysis; guard shared "
        "state with util::Mutex, or allowlist the line with a stated reason",
    ),
}

# Rules that only apply under these top-level directories (library code must
# log through obs::log; drivers and tests may still print directly).
SCOPED_RULES = {"raw-stderr": {"src"}}

# rule name -> repo-relative POSIX path suffixes where the rule is void: the
# one sanctioned implementation of the construct it bans.  util/sync.hpp is
# the annotated wrapper that the raw-sync-primitive rule funnels everyone
# toward, so it is the only file allowed to touch the std primitives.
EXEMPT_FILES = {
    "raw-sync-primitive": {"src/util/sync.hpp"},
}


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals, preserving
    line structure so reported line numbers match the original file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                match = re.match(r'R"([^()\\ ]*)\(', text[i:])
                if match:
                    raw_terminator = ")" + match.group(1) + '"'
                    state = "raw"
                    out.append(" " * len(match.group(0)))
                    i += len(match.group(0))
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state == "raw":
            if text.startswith(raw_terminator, i):
                state = "code"
                out.append(" " * len(raw_terminator))
                i += len(raw_terminator)
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            out.append(" " if c != "\n" else c)
            i += 1
    return "".join(out)


def allowed_rules(original_line: str) -> set[str]:
    match = ALLOW_RE.search(original_line)
    if not match:
        return set()
    return {rule.strip() for rule in match.group(1).split(",")}


def exempt_rules(path: pathlib.Path) -> set[str]:
    posix = path.as_posix()
    return {
        rule
        for rule, suffixes in EXEMPT_FILES.items()
        if any(posix.endswith(suffix) for suffix in suffixes)
    }


def lint_file(path: pathlib.Path) -> list[str]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [f"{path}: unreadable: {err}"]
    stripped = strip_comments_and_strings(text)
    original_lines = text.splitlines()
    exempt = exempt_rules(path)
    violations = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        original = (
            original_lines[lineno - 1] if lineno <= len(original_lines) else ""
        )
        allows = allowed_rules(original)
        for rule, (pattern, explanation) in RULES.items():
            if rule in allows or rule in exempt:
                continue
            scope = SCOPED_RULES.get(rule)
            if scope is not None and scope.isdisjoint(path.parts):
                continue
            if pattern.search(line):
                violations.append(
                    f"{path}:{lineno}: [{rule}] {explanation}\n"
                    f"    {original.strip()}"
                )
    return violations


def collect_files(roots: list[pathlib.Path]) -> list[pathlib.Path]:
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        files.extend(
            p
            for p in sorted(root.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
        )
    return files


def run_lint(roots: list[pathlib.Path]) -> int:
    files = collect_files(roots)
    if not files:
        print("lint_determinism: no source files found", file=sys.stderr)
        return 2
    all_violations = []
    for path in files:
        all_violations.extend(lint_file(path))
    for violation in all_violations:
        print(violation)
    if all_violations:
        print(
            f"lint_determinism: {len(all_violations)} violation(s) "
            f"in {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


SELF_TEST_SNIPPETS = {
    "c-rand": "int x = std::rand();",
    "random-device": "std::random_device rd;",
    "std-distribution": "std::uniform_int_distribution<int> d(0, 9);",
    "std-engine": "std::mt19937 gen(42);",
    "wall-clock": "auto t0 = time(nullptr);",
    "float-arithmetic": "float cost = 0.0f;",
    "shuffle-std": "std::shuffle(v.begin(), v.end(), gen);",
    "thread-sleep": "std::this_thread::sleep_for(std::chrono::seconds(1));",
    "std-async": "auto f = std::async(work);",
    "thread-local-rng": "thread_local util::Rng rng{42};",
    "raw-stderr": 'std::cerr << "chatter";',
    "raw-sync-primitive": "std::mutex mu;",
    "thread-detach": "worker.detach();",
    "raw-atomic": "std::atomic<int> ready{0};",
}

SELF_TEST_CLEAN = """\
// std::rand() in a comment is fine; so is "std::random_device" in a string.
#include "util/rng.hpp"
const char* banner = "seeded by std::mt19937? never.";
double run(mcopt::util::Rng& rng) { return rng.next_double(); }
int narrow = 3;  // float would be flagged, double is the contract
std::uint64_t stamp();  // mcopt-lint: allow(wall-clock) -- not actually used
"""


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = pathlib.Path(tmp)
        for rule, snippet in SELF_TEST_SNIPPETS.items():
            scope = SCOPED_RULES.get(rule)
            rule_dir = tmpdir / sorted(scope)[0] if scope else tmpdir
            rule_dir.mkdir(exist_ok=True)
            path = rule_dir / f"{rule}.cpp"
            path.write_text(snippet + "\n", encoding="utf-8")
            violations = lint_file(path)
            if not any(f"[{rule}]" in v for v in violations):
                failures.append(f"rule '{rule}' missed: {snippet!r}")
            path.unlink()
            if scope:
                # The same construct outside the scoped directories is legal.
                outside = tmpdir / f"{rule}-outside.cpp"
                outside.write_text(snippet + "\n", encoding="utf-8")
                if any(f"[{rule}]" in v for v in lint_file(outside)):
                    failures.append(
                        f"scoped rule '{rule}' fired outside {sorted(scope)}"
                    )
                outside.unlink()
        # Rules with exempt files must stay silent inside the sanctioned
        # wrapper (and nowhere else -- the generic loop above already proved
        # they fire on the same snippet in an ordinary location).
        for rule, suffixes in EXEMPT_FILES.items():
            for suffix in sorted(suffixes):
                exempt_path = tmpdir / suffix
                exempt_path.parent.mkdir(parents=True, exist_ok=True)
                exempt_path.write_text(
                    SELF_TEST_SNIPPETS[rule] + "\n", encoding="utf-8"
                )
                if any(f"[{rule}]" in v for v in lint_file(exempt_path)):
                    failures.append(
                        f"rule '{rule}' fired in exempt file {suffix}"
                    )
                exempt_path.unlink()
        clean = tmpdir / "clean.cpp"
        clean.write_text(SELF_TEST_CLEAN, encoding="utf-8")
        violations = lint_file(clean)
        if violations:
            failures.append(
                "false positives on comment/string/allowlisted code:\n  "
                + "\n  ".join(violations)
            )
    if failures:
        print("lint_determinism --self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"lint_determinism --self-test OK ({len(SELF_TEST_SNIPPETS)} rules)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_DIRS)} "
        "relative to the repo root)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify every rule fires on a planted violation, then exit",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.paths:
        roots = [pathlib.Path(p) for p in args.paths]
    else:
        roots = [REPO_ROOT / d for d in DEFAULT_DIRS if (REPO_ROOT / d).is_dir()]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        print(f"lint_determinism: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    return run_lint(roots)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
