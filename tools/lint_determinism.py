#!/usr/bin/env python3
"""Compatibility shim: the determinism linter is now tools/mcoptlint.

Every rule this script used to implement (c-rand, random-device,
std-distribution, std-engine, wall-clock, float-arithmetic, shuffle-std,
thread-sleep, std-async, thread-local-rng, raw-stderr, raw-sync-primitive,
thread-detach, raw-atomic) lives on in tools/mcoptlint/rules.py with the
same names, the same `mcopt-lint: allow(rule)` escape hatch, the same
exempt-file table, and the same 0/1/2 exit-code contract -- plus the
semantic rules regex could not express.  This wrapper keeps old
invocations (CI scripts, editor hooks, muscle memory) working; new wiring
should call `python3 tools/mcoptlint` directly.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from mcoptlint import cli  # noqa: E402

if __name__ == "__main__":
    print("note: lint_determinism.py is now a shim for tools/mcoptlint",
          file=sys.stderr)
    sys.exit(cli.main(sys.argv[1:]))
