#!/usr/bin/env python3
"""Forensic comparison of two mcopt JSONL traces.

The determinism contract (src/obs/event.hpp) says two runs with the same
seed produce the same event stream regardless of thread count — except for
the ``worker`` field and ``worker_steal`` events, which record placement.
This tool turns that contract into a debugging instrument:

* **diff / bisect**: normalizes both streams (dropping the sanctioned
  nondeterminism unless ``--strict-worker``) and localizes the *first*
  diverging event — its index, kind, stage, tick, and exactly which fields
  differ, with a window of surrounding context from both traces.  When a
  refactor breaks bit-reproducibility this points at the first wrong
  proposal instead of a 100k-line diff.
* **replay** (``--replay``): walks each (run, restart) chain, seeding the
  current cost from ``restart_begin`` and applying ``accept`` events, and
  flags any event whose ``cost`` disagrees with the replayed value — a
  torn or reordered stream fails here even when both files are
  self-consistent.  Needs a full trace (``--trace-sample 1``): sampling
  strides drop accept events, which makes the replayed chain go stale.
* **observables** (``--observables``): renders a per-stage table (samples,
  mean/variance of the sampled cost, acceptance rate) from each trace so a
  divergence can be read in thermodynamic terms, mirroring the exact
  in-process statistics of src/obs/observables.hpp.

Exit status: 0 identical (after normalization), 1 divergence found,
2 usage or I/O error.  ``--self-test`` runs the built-in fixtures
(including an injected divergence that must be localized exactly).
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import defaultdict

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import trace_report  # noqa: E402  (sibling module, needs the path tweak)


def normalize(events: list[dict], strict_worker: bool) -> list[dict]:
    """Strips the sanctioned nondeterminism from a stream.

    Unless ``strict_worker``, drops ``worker_steal`` events and the
    ``worker`` field — the two carve-outs of the determinism contract.
    Returns copies; the input is not modified.
    """
    if strict_worker:
        return [dict(e) for e in events]
    out = []
    for event in events:
        if event.get("event") == "worker_steal":
            continue
        copy = dict(event)
        copy.pop("worker", None)
        out.append(copy)
    return out


def event_brief(event: dict) -> str:
    kind = event.get("event", "?")
    parts = [f"run={event.get('run')}", f"restart={event.get('restart')}",
             f"stage={event.get('stage')}", f"tick={event.get('tick')}",
             f"cost={event.get('cost')}", f"best={event.get('best')}"]
    if "reason" in event:
        parts.append(f"reason={event['reason']}")
    return f"{kind}({', '.join(parts)})"


def first_divergence(a: list[dict], b: list[dict]):
    """Index of the first differing event, or None when the streams match.

    A length mismatch with a common prefix diverges at ``len(prefix)``.
    """
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def differing_fields(a: dict, b: dict) -> list[str]:
    keys = sorted(set(a) | set(b))
    return [f"{k}: {a.get(k, '<absent>')!r} != {b.get(k, '<absent>')!r}"
            for k in keys if a.get(k) != b.get(k)]


def print_divergence(name_a: str, a: list[dict], name_b: str,
                     b: list[dict], index: int, context: int) -> None:
    print(f"DIVERGENCE at normalized event index {index}")
    ea = a[index] if index < len(a) else None
    eb = b[index] if index < len(b) else None
    if ea is None or eb is None:
        longer = name_a if eb is None else name_b
        extra = ea or eb
        print(f"  common prefix of {index} events; {longer} continues with:")
        print(f"    {event_brief(extra)}")
    else:
        print(f"  {name_a}: {event_brief(ea)}")
        print(f"  {name_b}: {event_brief(eb)}")
        for line in differing_fields(ea, eb):
            print(f"    field {line}")
    lo = max(0, index - context)
    hi = index + context + 1
    print(f"  context [{lo}..{hi}):")
    for i in range(lo, hi):
        sa = event_brief(a[i]) if i < len(a) else "<end of stream>"
        sb = event_brief(b[i]) if i < len(b) else "<end of stream>"
        marker = ">>" if i == index else "  "
        print(f"  {marker} [{i}] {name_a}: {sa}")
        print(f"  {marker} [{i}] {name_b}: {sb}")


def replay_costs(name: str, events: list[dict]) -> int:
    """Replays each (run, restart) cost chain; returns inconsistencies.

    ``restart_begin`` seeds the chain's current cost and each ``accept``
    moves it; any later event claiming a different pre-accept cost than
    the replay means the stream is internally inconsistent (reordered,
    truncated mid-restart, or torn by a crash dump).
    """
    current: dict = {}
    bad = 0
    for i, event in enumerate(events):
        kind = event.get("event")
        key = (event.get("run"), event.get("restart"))
        if kind == "restart_begin":
            current[key] = event.get("cost")
        elif kind == "accept":
            current[key] = event.get("cost")
        elif kind == "new_best" and key in current:
            # A new best is announced at the accepted cost.
            if event.get("cost") != current[key]:
                bad += 1
                if bad <= 5:
                    print(f"  {name}[{i}]: new_best cost "
                          f"{event.get('cost')} != replayed {current[key]}")
    if bad:
        print(f"  {name}: {bad} replay inconsistencies")
    return bad


def observables_table(name: str, events: list[dict]) -> None:
    """Per-stage sampled-cost statistics, the offline mirror of
    obs::StageObservables (over the *sampled* stream, so totals differ
    from the exact in-process accumulators under --trace-sample)."""
    stats = defaultdict(lambda: {"n": 0, "sum": 0.0, "sumsq": 0.0,
                                 "accepts": 0, "rejects": 0})
    for event in events:
        kind = event.get("event")
        stage = event.get("stage")
        if kind == "proposal_sampled":
            s = stats[stage]
            cost = float(event.get("cost", 0.0))
            s["n"] += 1
            s["sum"] += cost
            s["sumsq"] += cost * cost
        elif kind == "accept":
            stats[stage]["accepts"] += 1
        elif kind == "reject":
            stats[stage]["rejects"] += 1
    if not stats:
        print(f"{name}: no sampled events")
        return
    print(f"{name}: per-stage observables (sampled stream)")
    rows = []
    for stage in sorted(stats):
        s = stats[stage]
        n = s["n"]
        mean = s["sum"] / n if n else 0.0
        var = s["sumsq"] / n - mean * mean if n else 0.0
        decided = s["accepts"] + s["rejects"]
        rate = f"{s['accepts'] / decided:.3f}" if decided else "-"
        rows.append([stage, n, f"{mean:.2f}", f"{max(var, 0.0):.2f}", rate])
    trace_report.print_table(
        ["stage", "samples", "mean cost", "var cost", "acc rate"], rows)


def compare(path_a: str, path_b: str, strict_worker: bool, context: int,
            show_observables: bool, replay: bool) -> int:
    events_a = trace_report.load_events(path_a)
    events_b = trace_report.load_events(path_b)
    name_a = os.path.basename(path_a)
    name_b = os.path.basename(path_b)
    if name_a == name_b:
        name_a, name_b = path_a, path_b
    norm_a = normalize(events_a, strict_worker)
    norm_b = normalize(events_b, strict_worker)
    print(f"{name_a}: {len(events_a)} events ({len(norm_a)} normalized)")
    print(f"{name_b}: {len(events_b)} events ({len(norm_b)} normalized)")

    status = 0
    if replay:
        if replay_costs(name_a, norm_a) or replay_costs(name_b, norm_b):
            status = 1

    index = first_divergence(norm_a, norm_b)
    if index is None:
        print("IDENTICAL after normalization "
              f"({len(norm_a)} events compared)")
    else:
        print_divergence(name_a, norm_a, name_b, norm_b, index, context)
        status = 1

    if show_observables:
        print()
        observables_table(name_a, norm_a)
        observables_table(name_b, norm_b)
    return status


def _synthetic_trace(workers: tuple, with_steal: bool) -> list[dict]:
    """A small well-formed trace: one run, two restarts, two stages."""
    events = []

    def emit(kind, restart, worker, tick, stage, cost, best, reason=None):
        event = {"event": kind, "run": 0, "restart": restart,
                 "worker": worker, "tick": tick, "stage": stage,
                 "cost": cost, "best": best}
        if reason is not None:
            event["reason"] = reason
        events.append(event)

    for restart in (0, 1):
        worker = workers[restart]
        base = 100 + 10 * restart
        emit("restart_begin", restart, worker, 0, 0, base, base)
        emit("stage_begin", restart, worker, 0, 0, base, base,
             reason="start")
        cost = base
        for tick in range(1, 5):
            emit("proposal_sampled", restart, worker, tick, 0, cost, cost)
            if tick % 2 == 0:
                cost -= 1
                emit("accept", restart, worker, tick, 0, cost, cost)
                emit("new_best", restart, worker, tick, 0, cost, cost)
            else:
                emit("reject", restart, worker, tick, 0, cost, cost)
        emit("stage_begin", restart, worker, 5, 1, cost, cost,
             reason="slice")
        emit("proposal_sampled", restart, worker, 6, 1, cost, cost)
        emit("reject", restart, worker, 6, 1, cost, cost)
    if with_steal:
        events.insert(3, {"event": "worker_steal", "run": 0, "restart": 0,
                          "worker": 2, "tick": 0, "stage": 0,
                          "cost": 100, "best": 100})
    return events


def self_test() -> int:
    failures = []

    def check(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    # Worker placement and steal events are invisible by default...
    a = _synthetic_trace(workers=(1, 1), with_steal=False)
    b = _synthetic_trace(workers=(1, 2), with_steal=True)
    check(first_divergence(normalize(a, False), normalize(b, False)) is None,
          "worker normalization hides placement nondeterminism")
    # ... but --strict-worker sees them.
    check(first_divergence(normalize(a, True), normalize(b, True))
          is not None, "--strict-worker surfaces placement differences")

    # An injected divergence is localized at exactly the tampered index.
    norm_a = normalize(a, False)
    norm_c = normalize(_synthetic_trace(workers=(1, 1), with_steal=False),
                       False)
    inject_at = 7
    norm_c[inject_at]["cost"] += 1
    check(first_divergence(norm_a, norm_c) == inject_at,
          f"injected divergence localized at index {inject_at}")
    check(differing_fields(norm_a[inject_at], norm_c[inject_at])
          == [f"cost: {norm_a[inject_at]['cost']!r} != "
              f"{norm_c[inject_at]['cost']!r}"],
          "only the tampered field is reported")

    # A truncated stream diverges at the end of the common prefix.
    check(first_divergence(norm_a, norm_a[:-2]) == len(norm_a) - 2,
          "truncation diverges at the common-prefix length")

    # Every synthetic line satisfies the trace schema.
    import json
    for i, event in enumerate(a):
        errors = trace_report.validate_line(i + 1, json.dumps(event))
        check(not errors, f"synthetic event {i} schema-clean: {errors}")

    # The replay accepts a consistent stream and flags a tampered best.
    check(replay_costs("clean", norm_a) == 0, "replay of a clean stream")
    tampered = [dict(e) for e in norm_a]
    for event in tampered:
        if event["event"] == "new_best":
            event["cost"] += 5
            break
    check(replay_costs("tampered", tampered) > 0,
          "replay flags an inconsistent new_best")

    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print("self-test OK (6 scenarios)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="*",
                        help="exactly two JSONL trace files to compare")
    parser.add_argument("--strict-worker", action="store_true",
                        help="also compare worker fields and steal events")
    parser.add_argument("--observables", action="store_true",
                        help="render per-stage observables for both traces")
    parser.add_argument("--replay", action="store_true",
                        help="check each cost chain's internal consistency "
                        "(full traces only; sampling strides break it)")
    parser.add_argument("--context", type=int, default=3,
                        help="events of context around a divergence")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if len(args.traces) != 2:
        parser.error("expected exactly two trace files")
    if args.context < 0:
        parser.error("--context must be >= 0")
    try:
        return compare(args.traces[0], args.traces[1], args.strict_worker,
                       args.context, args.observables, args.replay)
    except (OSError, SystemExit) as err:
        if isinstance(err, SystemExit) and isinstance(err.code, int):
            raise
        print(f"trace_forensics: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
