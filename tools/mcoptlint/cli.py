"""mcoptlint command line.

    python3 tools/mcoptlint [paths...]        lint (default: the repo tree)
    python3 tools/mcoptlint --self-test       prove every rule fires
    python3 tools/mcoptlint --format json     machine-readable findings
    python3 tools/mcoptlint --json-out F      also write JSON to F (CI)
    python3 tools/mcoptlint --list-rules      one line per rule

Exit status: 0 clean, 1 findings, 2 usage error -- identical to the
lint_determinism.py contract so ctest/CI wiring carries over.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from mcoptlint import engine, rules, selftest


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mcoptlint",
        description="semantic static analysis for the mcopt source tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: "
        f"{' '.join(engine.DEFAULT_DIRS)} relative to the repo root)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify every rule fires on its known-bad fixture, then exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        help="additionally write the JSON findings report to FILE",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="mechanically fix include-hygiene findings in place",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return selftest.self_test()
    if args.list_rules:
        for rule in rules.default_rules():
            scope = ",".join(sorted(rule.scope)) if rule.scope else "tree"
            print(f"{rule.name:22s} [{scope}] {rule.explanation}")
        return 0

    if args.paths:
        roots = [pathlib.Path(p) for p in args.paths]
    else:
        roots = [
            engine.REPO_ROOT / d
            for d in engine.DEFAULT_DIRS
            if (engine.REPO_ROOT / d).is_dir()
        ]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        print(f"mcoptlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if args.fix:
        from mcoptlint import fixer

        applied, remaining = fixer.apply_fixes(roots)
        print(f"mcoptlint: applied {applied} include fix(es), "
              f"{remaining} finding(s) remain", file=sys.stderr)
        return 0 if remaining == 0 else 1
    findings, num_files = engine.lint_paths(roots)
    return engine.report(findings, num_files, fmt=args.format,
                         json_out=args.json_out)
