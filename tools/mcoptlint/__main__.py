"""Entry point: `python3 tools/mcoptlint [...]`.

Executing the package *directory* puts the directory itself (not its
parent) on sys.path, so absolute `mcoptlint.*` imports need the parent
prepended before anything else is imported.
"""

import pathlib
import sys

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from mcoptlint import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main(sys.argv[1:]))
