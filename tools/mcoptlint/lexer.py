"""Comment/string/raw-string-aware C++ lexing.

The regex rules and the declaration parser both run over *stripped* text:
comments, string literals, and character literals blanked out with the
line structure preserved, so a reported line number always matches the
original file.  Compared to the PR 1 stripper this one also understands:

  * line splices: a backslash-newline inside a // comment continues the
    comment onto the next physical line (and a splice inside a string
    literal does not terminate it)
  * raw strings with arbitrary delimiters, R"delim(...)delim"
  * digit separators and suffixes are left alone -- they are code

strip() is the load-bearing entry point; tokenize() provides a simple
identifier/number/punctuation stream over the stripped text for the
declaration parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_RAW_OPEN_RE = re.compile(r'R"([^()\\ \t\n]*)\(')


def _is_digit_separator(text: str, i: int) -> bool:
    """Whether the apostrophe at `text[i]` is a C++14 digit separator
    (2'000'000, 0xdead'beef) rather than the start of a char literal.  A
    separator sits between alphanumerics inside a token that started with
    a digit -- which also keeps L'a' / u8'x' prefixed literals out."""
    if i + 1 >= len(text) or not text[i + 1].isalnum():
        return False
    j = i - 1
    while j >= 0 and (text[j].isalnum() or text[j] in "_."):
        j -= 1
    start = text[j + 1:i]
    return bool(start) and (start[0].isdigit() or (
        start[0] == "." and len(start) > 1 and start[1].isdigit()))


def strip(text: str) -> str:
    """Blanks comments, string literals, and char literals, preserving
    newlines so line numbers in the result match the input."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                match = _RAW_OPEN_RE.match(text, i)
                if match:
                    raw_terminator = ")" + match.group(1) + '"'
                    state = "raw"
                    out.append(" " * (match.end() - i))
                    i = match.end()
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                if _is_digit_separator(text, i):
                    out.append(c)
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\\" and nxt == "\n":
                # Line splice: the comment continues on the next line.
                out.append(" \n")
                i += 2
                continue
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state == "raw":
            if text.startswith(raw_terminator, i):
                state = "code"
                out.append(" " * len(raw_terminator))
                i += len(raw_terminator)
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        else:  # string | char
            if c == "\\":
                # Escapes, including the \<newline> splice: keep the line
                # count right by preserving a spliced newline verbatim.
                out.append("  " if nxt != "\n" else " \n")
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            out.append(" " if c != "\n" else c)
            i += 1
    return "".join(out)


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "punct"
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
      (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<number>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<punct>::|->|\[\[|\]\]|&&|\|\||<<|>>|[{}()\[\];,<>=&|*+\-/!~^%?.:#])
    """,
    re.VERBOSE,
)


def tokenize(stripped: str) -> list[Token]:
    """Tokenizes stripped text into identifiers, numbers, and punctuation.
    Whitespace (and the blanks left by strip()) separates tokens; line
    numbers are 1-based."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    for match in _TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, match.start())
        pos = match.start()
        tokens.append(Token(str(match.lastgroup), match.group(), line))
    return tokens
