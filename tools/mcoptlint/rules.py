"""All shipped mcoptlint rules.

Two families:

  * the determinism/concurrency rules absorbed from PR 1's
    tools/lint_determinism.py -- regex over stripped lines, unchanged
    semantics (same names, same allow() escape hatch, same exempt files)
  * the semantic rules regex cannot express, built on cppmodel:
    rng-provenance, unordered-iteration, nodiscard-contract,
    include-hygiene

Every rule here has a committed known-bad fixture under
tools/mcoptlint/fixtures/ that `mcoptlint --self-test` proves trips.
"""

from __future__ import annotations

import pathlib
import re

from mcoptlint import lexer
from mcoptlint.cppmodel import CppModel
from mcoptlint.engine import (REPO_ROOT, FileContext, Finding, RegexRule,
                              Rule)
from mcoptlint.stdheaders import (BARE_SYMBOLS, CANONICAL, KNOWN_HEADERS,
                                  STD_SYMBOLS)

# rule name -> repo-relative path suffixes where the rule is void: the one
# sanctioned implementation of the construct it bans (carried over from
# lint_determinism.py).
EXEMPT_FILES: dict[str, set[str]] = {
    "raw-sync-primitive": {"src/util/sync.hpp"},
}

# ---------------------------------------------------------------------------
# Absorbed regex rules (PR 1 + PR 3/4/6 additions), semantics unchanged.
# ---------------------------------------------------------------------------

_REGEX_RULES: list[tuple[str, str, str | None, str]] = [
    # (name, pattern, scope-dir or None, explanation)
    (
        "c-rand",
        r"\b(?:std\s*::\s*)?s?rand\s*\(",
        None,
        "C rand()/srand(): global-state PRNG, not reproducible across "
        "libcs; use util::Rng",
    ),
    (
        "random-device",
        r"\bstd\s*::\s*random_device\b",
        None,
        "std::random_device is nondeterministic; seed util::Rng explicitly",
    ),
    (
        "std-distribution",
        r"\bstd\s*::\s*(?:uniform_int_distribution|"
        r"uniform_real_distribution|normal_distribution|"
        r"bernoulli_distribution|discrete_distribution|"
        r"exponential_distribution|poisson_distribution|"
        r"geometric_distribution|binomial_distribution)\b",
        None,
        "std distributions have unspecified algorithms (streams differ "
        "across standard libraries); use util::Rng helpers",
    ),
    (
        "std-engine",
        r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|"
        r"knuth_b|default_random_engine)\b",
        None,
        "std random engine construction bypasses util::Rng and the "
        "project's seed-derivation scheme",
    ),
    (
        "wall-clock",
        r"(?:\btime\s*\(|\bclock\s*\(|"
        r"\bstd\s*::\s*chrono\s*::\s*(?:system_clock|"
        r"high_resolution_clock)\b|\bgettimeofday\s*\()",
        None,
        "wall-clock access: seeds or logic derived from it are not "
        "reproducible (steady_clock durations via util::Stopwatch are fine)",
    ),
    (
        "float-arithmetic",
        r"\bfloat\b",
        None,
        "float narrows cost arithmetic differently across FPUs; the "
        "project contract is double everywhere",
    ),
    (
        "shuffle-std",
        r"\bstd\s*::\s*(?:shuffle|random_shuffle)\b",
        None,
        "std::shuffle's use of the URBG is unspecified; use "
        "util::Rng::shuffle",
    ),
    (
        "thread-sleep",
        r"\bstd\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\b",
        None,
        "sleeping makes behaviour depend on the scheduler; parallel code "
        "must synchronize with condition variables / joins, never timed "
        "waits",
    ),
    (
        "std-async",
        r"\bstd\s*::\s*async\b",
        None,
        "std::async launch policy and thread reuse are "
        "implementation-defined; use the explicit std::thread pool in "
        "core/parallel.cpp",
    ),
    (
        "thread-local-rng",
        r"\bthread_local\b[^;{]*\bRng\b",
        None,
        "thread_local Rng state is seeded per OS thread, so results "
        "depend on thread scheduling; derive per-work-item streams with "
        "util::Rng::split",
    ),
    (
        "raw-stderr",
        r"\bstd\s*::\s*cerr\b|"
        r"\b(?:std\s*::\s*)?v?fprintf\s*\(\s*stderr\b|"
        r"\b(?:std\s*::\s*)?fput[sc]\s*\([^;)]*\bstderr\b",
        "src",
        "raw stderr writes in src/ bypass the obs::log level control; "
        "route diagnostics through obs::log (obs/log.hpp)",
    ),
    (
        "raw-sync-primitive",
        r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
        r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
        r"lock_guard|scoped_lock|unique_lock|shared_lock|"
        r"condition_variable(?:_any)?)\b",
        None,
        "raw std sync primitives carry no CAPABILITY annotation, so "
        "-Wthread-safety cannot check them; use util::Mutex / "
        "util::MutexLock / util::CondVar (util/sync.hpp)",
    ),
    (
        "thread-detach",
        r"\.\s*detach\s*\(",
        None,
        "detached threads outlive every join point and race static "
        "destruction; keep threads joinable and join them",
    ),
    (
        "raw-atomic",
        r"\bstd\s*::\s*atomic(?:_\w+)?\b",
        None,
        "std::atomic state is invisible to GUARDED_BY analysis; guard "
        "shared state with util::Mutex, or allowlist the line with a "
        "stated reason",
    ),
]

# ---------------------------------------------------------------------------
# Semantic rules.
# ---------------------------------------------------------------------------

#: Initializer expressions that prove a deterministic seed lineage: a
#: split off another generator, an explicit seed derivation, or a value
#: handed in through a parameter/member that names itself a seed source.
_RNG_PROVENANCE_OK = re.compile(
    r"\bsplit\s*\(|\bderive_seed\s*\(|"
    r"\b\w*(?:seed|master|stream|rng)\w*\b",
    re.IGNORECASE,
)


class RngProvenanceRule(Rule):
    """Every util::Rng local/member in src/ must be initialized from
    Rng::split(...), util::derive_seed(...), or a declared seed source (an
    identifier naming itself seed/master/stream/rng).  Literal or default
    seeds hide stream collisions: two components constructing Rng{42}
    consume the *same* stream and their interleaving silently changes
    results when code moves between them."""

    def __init__(self) -> None:
        super().__init__(
            name="rng-provenance",
            explanation="util::Rng constructed without seed provenance; "
            "derive the stream with Rng::split / util::derive_seed or pass "
            "a declared seed source through a parameter",
            scope={"src"},
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for decl in ctx.model.var_decls(
                r"(?:mcopt\s*::\s*)?(?:util\s*::\s*)?Rng"):
            if decl.init_kind == "default":
                # `Rng rng;` -- the default seed constant: every such
                # generator shares one stream.
                out.append(ctx.finding(decl.line, self.name,
                                       self.explanation))
                continue
            if not _RNG_PROVENANCE_OK.search(decl.init_text):
                out.append(ctx.finding(decl.line, self.name,
                                       self.explanation))
        return out


_UNORDERED_TYPE = r"std\s*::\s*unordered_(?:multi)?(?:map|set)"


class UnorderedIterationRule(Rule):
    """Iterating an unordered associative container in src/ feeds
    libstdc++'s hash-bucket order -- which is not part of any standard or
    of the project's determinism contract -- into results.  The rule
    tracks every variable/member declared with an unordered type and
    flags range-for and .begin() iteration over it (ordered iteration
    belongs on std::map/std::set or a sorted snapshot)."""

    def __init__(self) -> None:
        super().__init__(
            name="unordered-iteration",
            explanation="iteration over std::unordered_{map,set} feeds "
            "unspecified bucket order into the run; sort the keys first "
            "or use std::map/std::set",
            scope={"src"},
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        # include_refs: a const& parameter of unordered type iterates the
        # same unspecified bucket order as a local.
        names = {
            decl.name
            for decl in ctx.model.var_decls(_UNORDERED_TYPE,
                                            include_refs=True)
        }
        # Type aliases: `using Foo = std::unordered_map<...>;` makes every
        # Foo-typed variable unordered too.
        alias_re = re.compile(
            r"\b(?:using\s+(\w+)\s*=\s*" + _UNORDERED_TYPE +
            r"|typedef\s+" + _UNORDERED_TYPE + r"\s*<[^;]*>\s*(\w+)\s*;)"
        )
        aliases = {
            m.group(1) or m.group(2)
            for m in alias_re.finditer(ctx.stripped_text)
        }
        for alias in aliases:
            names |= {d.name for d in ctx.model.var_decls(
                re.escape(alias), include_refs=True)}

        out = []
        for loop in ctx.model.range_fors():
            base = re.split(r"[.\s(\[]|->", loop.expr_text)[0]
            if (base in names
                    or re.search(_UNORDERED_TYPE, loop.expr_text)
                    or base in aliases):
                out.append(ctx.finding(loop.line, self.name,
                                       self.explanation))
        for loop in ctx.model.iter_fors():
            base = re.split(r"[.\s(\[]|->", loop.expr_text)[0]
            if base in names or re.search(_UNORDERED_TYPE, loop.expr_text):
                out.append(ctx.finding(loop.line, self.name,
                                       self.explanation))
        return out


#: Return types whose value *is* the run: dropping one silently discards
#: an entire optimization (or its telemetry).  Any type ending in
#: `Result` is covered generically; the explicit names are the metric /
#: registry snapshot types.
_NODISCARD_TYPES = {
    "RunResult", "MultistartResult", "TemperingResult", "TuneResult",
    "KlResult", "FmResult", "RestartResult", "InsertionResult",
    "BruteForceResult", "StartResult", "CalibrationResult",
    "ProfileTree", "RunMetrics", "LogHistogram", "Snapshot",
}


class NodiscardContractRule(Rule):
    """Functions returning a result/telemetry type by value must be
    [[nodiscard]]: a caller that drops a RunResult has silently paid the
    whole tick budget for nothing, and a dropped registry snapshot is an
    observability hole.  Headers only -- the attribute belongs on the
    first declaration, and out-of-line definitions must not repeat it."""

    def __init__(self) -> None:
        super().__init__(
            name="nodiscard-contract",
            explanation="function returns a result/snapshot type by value "
            "but is not [[nodiscard]]; dropping the value discards a paid "
            "run or telemetry",
            scope={"src"},
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.path.suffix not in (".hpp", ".hh", ".h"):
            return []
        out = []
        for decl in ctx.model.func_decls(_NODISCARD_TYPES):
            if not decl.is_value_return:
                continue
            if "nodiscard" in decl.attributes:
                continue
            out.append(ctx.finding(
                decl.line, self.name,
                f"{decl.name}() returns {decl.return_type} by value but is "
                "not [[nodiscard]]; dropping the value discards a paid run "
                "or telemetry"))
        return out


_STD_USE_RE = re.compile(r"\bstd\s*::\s*(\w+)")
_BARE_USE_RE = re.compile(
    r"\b(" + "|".join(sorted(BARE_SYMBOLS)) + r")\b")


class IncludeHygieneRule(Rule):
    """Every std symbol a file uses must come from a header the file
    includes *directly* (or, for a .cpp, via its paired header -- the one
    convention the project accepts), and every std include in the curated
    map must be referenced by some symbol.  Transitive includes are an
    implementation detail of today's libstdc++: code that compiles only
    because <vector> happens to drag in <algorithm> breaks on the next
    toolchain bump, which is exactly when nobody wants to audit 150
    files."""

    def __init__(self) -> None:
        super().__init__(
            name="include-hygiene",
            explanation="std symbol used without its direct header, or an "
            "include with no referenced symbol",
            scope=None,
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        includes = ctx.model.includes()
        direct = {inc.path for inc in includes if inc.angled}
        inherited = direct | self._paired_header_includes(ctx, includes)

        # --- symbol uses (line of first use per symbol).
        qualified: dict[str, int] = {}
        for match in _STD_USE_RE.finditer(ctx.stripped_text):
            qualified.setdefault(match.group(1),
                                 ctx.model.line_at(match.start()))
        bare: dict[str, int] = {}
        for match in _BARE_USE_RE.finditer(ctx.stripped_text):
            bare.setdefault(match.group(1), ctx.model.line_at(match.start()))

        out = []
        # --- direction 1: used without a direct include.
        for symbol, line in sorted(qualified.items(), key=lambda kv: kv[1]):
            providers = STD_SYMBOLS.get(symbol)
            if providers and providers.isdisjoint(inherited):
                out.append(ctx.finding(
                    line, self.name,
                    f"std::{symbol} used without directly including "
                    f"<{CANONICAL[symbol]}>"))
        for symbol, line in sorted(bare.items(), key=lambda kv: kv[1]):
            providers = BARE_SYMBOLS[symbol]
            if providers.isdisjoint(inherited):
                out.append(ctx.finding(
                    line, self.name,
                    f"{symbol} used without directly including "
                    f"<{sorted(providers)[0]}>"))

        # --- direction 2: include with no referenced symbol.  Lenient on
        # purpose: bare C-style calls (`printf(...)`) credit <cstdio> even
        # though only qualified uses satisfy direction 1.
        referenced: set[str] = set()
        for symbol in qualified:
            referenced |= STD_SYMBOLS.get(symbol, frozenset())
        for symbol, providers in BARE_SYMBOLS.items():
            if symbol in bare:
                referenced |= providers
        # Identifiers from code lines only: the directive `#include
        # <vector>` must not count as a use of std::vector.
        include_lines = {inc.line for inc in includes}
        code_text = "\n".join(
            "" if lineno in include_lines else line
            for lineno, line in enumerate(ctx.stripped_lines, start=1))
        ident_set = {m.group() for m in
                     re.finditer(r"[A-Za-z_]\w*", code_text)}
        for symbol, providers in STD_SYMBOLS.items():
            if symbol in ident_set:
                referenced |= providers
        for inc in includes:
            if not inc.angled or inc.path not in KNOWN_HEADERS:
                continue
            if inc.path not in referenced:
                out.append(ctx.finding(
                    inc.line, self.name,
                    f"<{inc.path}> is included but no symbol it provides "
                    "is referenced"))
        return out

    @staticmethod
    def _paired_header_includes(ctx: FileContext, includes) -> set[str]:
        """For foo.cpp, the angled includes of the quoted include whose
        stem matches (its paired header): the project convention that the
        implementation file inherits its own header's dependencies."""
        if ctx.path.suffix not in (".cpp", ".cc", ".cxx"):
            return set()
        stem = ctx.path.stem
        for inc in includes:
            if inc.angled or pathlib.PurePosixPath(inc.path).stem != stem:
                continue
            for base in (ctx.path.parent, ctx.path.parent.parent):
                candidate = base / inc.path
                try:
                    text = candidate.read_text(encoding="utf-8")
                except OSError:
                    continue
                model_includes = CppModel(text, lexer.strip(text)).includes()
                return {i.path for i in model_includes if i.angled}
        return set()


#: Marker comment that declares the following function part of the
#: proposal hot path (propose/accept/reject/apply in the speculation work).
_HOT_MARKER_RE = re.compile(r"//\s*mcopt:\s*hot\b")

#: Calls that may touch the heap.  Members like push_back/insert are only
#: allocation-free when the container was reserved up front -- which is
#: exactly what the allow() escape documents at the call site.
_HOT_ALLOC_RE = re.compile(
    r"\.\s*(?:push_back|emplace_back|emplace|resize|reserve|insert|"
    r"assign|append)\s*\(|"
    r"\bnew\b|"
    r"\bstd\s*::\s*make_(?:unique|shared)\b"
)


class HotLoopAllocRule(Rule):
    """Functions marked `// mcopt: hot` (the propose/accept/reject/apply
    paths of the speculative hot loop) must not allocate: one stray heap
    call per proposal erases the point of the touched-net journal.  The
    rule scans the marked function's body (balanced braces over stripped
    text, so strings and comments cannot confuse it) for heap-allocating
    calls.  Push-backs into buffers reserved at construction time are
    legal -- and must say so with a same-line
    `// mcopt-lint: allow(hot-loop-alloc)` so the reservation claim is
    auditable at the call site."""

    def __init__(self) -> None:
        super().__init__(
            name="hot-loop-alloc",
            explanation="heap-allocating call inside a `// mcopt: hot` "
            "function; hot-loop moves must be allocation-free (reserved "
            "push_backs need a same-line allow() stating so)",
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for marker_line, raw in enumerate(ctx.raw_lines, start=1):
            if not _HOT_MARKER_RE.search(raw):
                continue
            out.extend(self._scan_body(ctx, marker_line))
        return out

    def _scan_body(self, ctx: FileContext,
                   marker_line: int) -> list[Finding]:
        out = []
        depth = 0
        opened = False
        for lineno in range(marker_line, len(ctx.stripped_lines) + 1):
            line = ctx.stripped_lines[lineno - 1]
            if not opened and "{" not in line and ";" in line:
                return []  # marker on a declaration, not a definition
            for ch in line:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened and _HOT_ALLOC_RE.search(line):
                out.append(ctx.finding(lineno, self.name, self.explanation))
            if opened and depth <= 0:
                break
        return out


#: `case EventKind::kFoo:` labels of a wire-name switch.  Anchored on the
#: EventKind qualifier so stage_reason_name()'s StageReason cases (and any
#: other string switch) never match.
_EVENT_CASE_RE = re.compile(
    r"case\s+(?:\w+\s*::\s*)*EventKind\s*::\s*k\w+\s*:\s*return\b")

#: Extracts the returned wire name from *raw* text (string literals are
#: blanked in the stripped text the case label was found in).
_EVENT_NAME_RE = re.compile(r'return\s*"([^"]+)"')


def _schema_event_kinds() -> frozenset[str] | None:
    """The EVENT_KINDS wire names declared in tools/trace_report.py, or
    None when the schema table cannot be located (rule stays silent
    rather than flagging every kind on a partial checkout)."""
    path = REPO_ROOT / "tools" / "trace_report.py"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(r"EVENT_KINDS\s*=\s*\{([^}]*)\}", text)
    if not match:
        return None
    return frozenset(re.findall(r'"([^"]+)"', match.group(1)))


class EventSchemaSyncRule(Rule):
    """The JSONL trace schema lives in two places that must not drift:
    event_kind_name()'s `case EventKind::kFoo: return "foo";` table in
    src/obs/trace.cpp defines the wire names, and trace_report.py's
    EVENT_KINDS set defines what --validate (and CI's traced smoke run)
    accepts.  A new kind added to the C++ side alone produces traces that
    fail validation; this rule flags any returned wire name absent from
    the Python schema table, so both move in the same change."""

    def __init__(self) -> None:
        super().__init__(
            name="event-schema-sync",
            explanation="EventKind wire name missing from "
            "tools/trace_report.py EVENT_KINDS; traces containing it fail "
            "--validate, so extend the schema table in the same change",
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        known: frozenset[str] | None = None
        for match in _EVENT_CASE_RE.finditer(ctx.stripped_text):
            # The literal was blanked by the stripper; re-read it from the
            # raw text right after the case label.
            raw_tail = ctx.raw_text[match.start():match.start() + 200]
            name_match = _EVENT_NAME_RE.search(raw_tail)
            if not name_match:
                continue
            if known is None:
                known = _schema_event_kinds()
            if known is None:
                return []
            name = name_match.group(1)
            if name not in known:
                out.append(ctx.finding(
                    ctx.model.line_at(match.start()), self.name,
                    f'event kind "{name}" is not in trace_report.py\'s '
                    "EVENT_KINDS; add it there so --validate accepts "
                    "traces that contain it"))
        return out


#: A registry emission call whose family name may follow as a string
#: literal.  The declarations in registry.hpp/.cpp take `const
#: std::string& name` first, so requiring a quote right after the paren
#: skips them.
_METRIC_CALL_RE = re.compile(
    r"\b(?:counter_add|gauge_max|histogram_merge)(?:_locked)?\s*\(")

_METRIC_NAME_RE = re.compile(r'\(\s*"([^"]+)"')


def _schema_known_metrics() -> frozenset[str] | None:
    """The Prometheus family names declared in trace_report.py's
    KNOWN_METRICS, or None when the table cannot be located (rule stays
    silent rather than flagging every family on a partial checkout)."""
    path = REPO_ROOT / "tools" / "trace_report.py"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(r"KNOWN_METRICS\s*=\s*\{([^}]*)\}", text)
    if not match:
        return None
    return frozenset(re.findall(r'"([^"]+)"', match.group(1)))


class CounterNameSyncRule(Rule):
    """The Prometheus family namespace lives in two places that must not
    drift: the string literals passed to MetricsRegistry::counter_add /
    gauge_max / histogram_merge (and their _locked variants) in C++, and
    trace_report.py's KNOWN_METRICS table that --prom validation (run by
    CI on the smoke exposition) accepts.  A family emitted by C++ alone
    produces expositions that fail validation; this rule flags any
    mcopt_-prefixed literal absent from the Python table, so both move in
    the same change.  Scoped to src/: tests exercise the registry with
    synthetic family names that never reach a shipped exposition."""

    def __init__(self) -> None:
        super().__init__(
            name="counter-name-sync",
            explanation="Prometheus family missing from "
            "tools/trace_report.py KNOWN_METRICS; expositions containing "
            "it fail --prom validation, so extend the table in the same "
            "change",
            scope={"src"},
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        known: frozenset[str] | None = None
        for match in _METRIC_CALL_RE.finditer(ctx.stripped_text):
            # The literal was blanked by the stripper; re-read it from the
            # raw text right after the call.
            raw_tail = ctx.raw_text[match.start():match.start() + 200]
            name_match = _METRIC_NAME_RE.search(raw_tail)
            if not name_match:
                continue  # family name is a variable, not a literal
            name = name_match.group(1)
            if not name.startswith("mcopt_"):
                continue
            if known is None:
                known = _schema_known_metrics()
            if known is None:
                return []
            if name not in known:
                out.append(ctx.finding(
                    ctx.model.line_at(match.start()), self.name,
                    f'metric family "{name}" is not in trace_report.py\'s '
                    "KNOWN_METRICS; add it there so --prom validation "
                    "accepts expositions that contain it"))
        return out


def default_rules() -> list[Rule]:
    rules: list[Rule] = [
        RegexRule(name=name, explanation=explanation,
                  scope={scope} if scope else None,
                  pattern=re.compile(pattern))
        for name, pattern, scope, explanation in _REGEX_RULES
    ]
    rules += [
        RngProvenanceRule(),
        UnorderedIterationRule(),
        NodiscardContractRule(),
        IncludeHygieneRule(),
        HotLoopAllocRule(),
        EventSchemaSyncRule(),
        CounterNameSyncRule(),
    ]
    return rules
