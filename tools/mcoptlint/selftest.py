"""mcoptlint --self-test: prove every rule is alive.

For each registered rule there is a committed known-bad fixture at
tools/mcoptlint/fixtures/<rule>.cc.txt (the .txt suffix keeps compilers
and tree-wide lint scans away from it).  The self-test stages each
fixture into a temporary directory -- under the rule's scope directory
when it has one -- and requires the rule to fire; scoped rules must
additionally stay silent outside their scope, and exempt files must
silence exactly their rule.  A clean fixture (comments, strings,
allowlisted lines, correct includes) must produce zero findings.

This mirrors the PR 6 negative-check pattern: a lint that cannot flag
its own planted violation is treated as broken, so CI cannot silently
run a defanged linter.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

from mcoptlint import engine, rules

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "fixtures"


def _stage(tmpdir: pathlib.Path, relpath: str, text: str) -> pathlib.Path:
    path = tmpdir / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def _fires(path: pathlib.Path, rule_name: str) -> bool:
    return any(f.rule == rule_name for f in engine.lint_file(path))


def self_test() -> int:
    failures: list[str] = []
    all_rules = rules.default_rules()
    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = pathlib.Path(tmp)
        for rule in all_rules:
            fixture = FIXTURE_DIR / f"{rule.name}.cc.txt"
            if not fixture.is_file():
                failures.append(f"rule '{rule.name}' has no known-bad "
                                f"fixture at {fixture}")
                continue
            text = fixture.read_text(encoding="utf-8")
            scope_dir = sorted(rule.scope)[0] if rule.scope else "anywhere"
            # Headers-only rules (nodiscard-contract) key off the suffix.
            suffix = ".hpp" if rule.name == "nodiscard-contract" else ".cpp"
            staged = _stage(tmpdir, f"{scope_dir}/{rule.name}{suffix}", text)
            if not _fires(staged, rule.name):
                failures.append(
                    f"rule '{rule.name}' missed its known-bad fixture")
            staged.unlink()
            if rule.scope:
                outside = _stage(tmpdir, f"elsewhere/{rule.name}{suffix}",
                                 text)
                if _fires(outside, rule.name):
                    failures.append(
                        f"scoped rule '{rule.name}' fired outside "
                        f"{sorted(rule.scope)}")
                outside.unlink()

        # Exempt files must silence exactly their rule (the generic loop
        # above already proved the same construct fires elsewhere).
        for rule_name, suffixes in rules.EXEMPT_FILES.items():
            fixture = FIXTURE_DIR / f"{rule_name}.cc.txt"
            for suffix in sorted(suffixes):
                staged = _stage(tmpdir, suffix,
                                fixture.read_text(encoding="utf-8"))
                if _fires(staged, rule_name):
                    failures.append(
                        f"rule '{rule_name}' fired in exempt file {suffix}")
                staged.unlink()

        # The clean fixture: everything in it is legal, so any finding is
        # a false positive.  Staged under src/ so scoped rules run too.
        clean = FIXTURE_DIR / "clean.cc.txt"
        staged = _stage(tmpdir, "src/clean.cpp",
                        clean.read_text(encoding="utf-8"))
        false_positives = engine.lint_file(staged)
        if false_positives:
            failures.append(
                "false positives on the clean fixture:\n  "
                + "\n  ".join(f.text() for f in false_positives))

    if failures:
        print("mcoptlint --self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"mcoptlint --self-test OK ({len(all_rules)} rules, "
          "known-bad fixtures all trip)")
    return 0
