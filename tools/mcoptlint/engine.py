"""mcoptlint engine: file contexts, allowlisting, rule dispatch, output.

The engine walks source files, builds a FileContext per file (raw text,
stripped text, lazy CppModel), and runs every registered rule over it.
Line-level `mcopt-lint: allow(rule)` comments and per-rule file
exemptions are honoured here so individual rules never re-implement
allowlisting.
"""

from __future__ import annotations

import functools
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field

from mcoptlint import lexer
from mcoptlint.cppmodel import CppModel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
DEFAULT_DIRS = ["src", "bench", "examples", "tests", "tools"]
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

ALLOW_RE = re.compile(r"mcopt-lint:\s*allow\(([a-z0-9_\-, ]+)\)")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str
    snippet: str = ""

    def text(self) -> str:
        out = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.snippet:
            out += f"\n    {self.snippet}"
        return out

    def as_json(self) -> dict:
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }


class FileContext:
    """Everything a rule may want to know about one file."""

    def __init__(self, path: pathlib.Path, text: str) -> None:
        self.path = path
        self.raw_text = text
        self.raw_lines = text.splitlines()
        self.stripped_text = lexer.strip(text)
        self.stripped_lines = self.stripped_text.splitlines()

    @functools.cached_property
    def model(self) -> CppModel:
        return CppModel(self.raw_text, self.stripped_text)

    def raw_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.raw_lines):
            return self.raw_lines[lineno - 1]
        return ""

    def allowed_rules(self, lineno: int) -> set[str]:
        match = ALLOW_RE.search(self.raw_line(lineno))
        if not match:
            return set()
        return {rule.strip() for rule in match.group(1).split(",")}

    def in_scope(self, scope: set[str] | None) -> bool:
        """Whether this file falls under the given top-level directories
        (None = everywhere).  Matches on path components, so self-test
        fixtures staged under /tmp/.../src/ scope correctly too."""
        return scope is None or not scope.isdisjoint(self.path.parts)

    def finding(self, lineno: int, rule: str, message: str) -> Finding:
        return Finding(str(self.path), lineno, rule, message,
                       self.raw_line(lineno).strip())


@dataclass
class Rule:
    name: str
    explanation: str
    scope: set[str] | None = None  # top-level dirs, None = everywhere

    def check(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


@dataclass
class RegexRule(Rule):
    """A rule that fires when a pattern matches a stripped source line --
    the PR 1 rule shape, carried over verbatim."""

    pattern: re.Pattern[str] = field(default_factory=lambda: re.compile("$^"))

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for lineno, line in enumerate(ctx.stripped_lines, start=1):
            if self.pattern.search(line):
                out.append(ctx.finding(lineno, self.name, self.explanation))
        return out


def lint_file(path: pathlib.Path, rules=None,
              exempt_files=None) -> list[Finding]:
    from mcoptlint import rules as rules_mod  # late: rules import engine

    if rules is None:
        rules = rules_mod.default_rules()
    if exempt_files is None:
        exempt_files = rules_mod.EXEMPT_FILES
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(str(path), 0, "unreadable", str(err))]
    ctx = FileContext(path, text)
    posix = path.as_posix()
    findings: list[Finding] = []
    for rule in rules:
        if not ctx.in_scope(rule.scope):
            continue
        if any(posix.endswith(suffix)
               for suffix in exempt_files.get(rule.name, ())):
            continue
        for finding in rule.check(ctx):
            if rule.name not in ctx.allowed_rules(finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def collect_files(roots: list[pathlib.Path]) -> list[pathlib.Path]:
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        files.extend(
            p for p in sorted(root.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
        )
    return files


def lint_paths(roots: list[pathlib.Path],
               rules=None) -> tuple[list[Finding], int]:
    from mcoptlint import rules as rules_mod

    if rules is None:
        rules = rules_mod.default_rules()
    files = collect_files(roots)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, rules=rules))
    return findings, len(files)


def report(findings: list[Finding], num_files: int, fmt: str = "text",
           json_out: str | None = None) -> int:
    """Prints findings and returns the process exit code.  `json_out`
    additionally writes the JSON report to a file (CI artifact)."""
    if fmt == "json":
        print(to_json(findings, num_files))
    else:
        for finding in findings:
            print(finding.text())
    if json_out:
        pathlib.Path(json_out).write_text(
            to_json(findings, num_files) + "\n", encoding="utf-8")
    if num_files == 0:
        print("mcoptlint: no source files found", file=sys.stderr)
        return 2
    if findings:
        print(
            f"mcoptlint: {len(findings)} finding(s) in {num_files} file(s)",
            file=sys.stderr,
        )
        return 1
    if fmt != "json":
        print(f"mcoptlint: OK ({num_files} files clean)")
    return 0


def to_json(findings: list[Finding], num_files: int) -> str:
    return json.dumps(
        {
            "tool": "mcoptlint",
            "files_scanned": num_files,
            "findings": [f.as_json() for f in findings],
        },
        indent=2,
    )
