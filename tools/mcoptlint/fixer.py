"""Mechanical fixes for include-hygiene findings (mcoptlint --fix).

Only the include-hygiene rule has a safe mechanical remedy: insert the
named header into the file's angled-include block (alphabetically, the
project style clang-format enforces) or delete an include no symbol
references.  All other rules require judgement -- a seed lineage, a
sorted snapshot, an API attribute -- so --fix leaves their findings
alone and reports them unchanged.

The fixer loops lint -> apply -> lint until the tree is stable (adding
<cstddef> can expose that <cstdio> no longer has any referencing symbol)
with a small iteration cap as a safety net against oscillation.
"""

from __future__ import annotations

import pathlib
import re

from mcoptlint import engine

_ADD_RE = re.compile(r"used without directly including <([^>]+)>")
_DROP_RE = re.compile(r"<([^>]+)> is included but no symbol")

_MAX_PASSES = 4


def apply_fixes(roots: list[pathlib.Path]) -> tuple[int, int]:
    """Returns (num_fixes_applied, num_findings_remaining)."""
    applied = 0
    for _ in range(_MAX_PASSES):
        findings, _num_files = engine.lint_paths(roots)
        by_file: dict[str, tuple[set[str], set[int]]] = {}
        for finding in findings:
            if finding.rule != "include-hygiene":
                continue
            add = _ADD_RE.search(finding.message)
            drop = _DROP_RE.search(finding.message)
            adds, drops = by_file.setdefault(finding.path, (set(), set()))
            if add:
                adds.add(add.group(1))
            elif drop:
                drops.add(finding.line)
        if not by_file:
            break
        for path, (adds, drop_lines) in sorted(by_file.items()):
            applied += _fix_file(pathlib.Path(path), adds, drop_lines)
    findings, _num_files = engine.lint_paths(roots)
    return applied, len(findings)


def _fix_file(path: pathlib.Path, adds: set[str],
              drop_lines: set[int]) -> int:
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    changed = 0

    # Deletions first, by line number from the bottom so indices hold.
    for lineno in sorted(drop_lines, reverse=True):
        if 1 <= lineno <= len(lines):
            del lines[lineno - 1]
            changed += 1

    for header in sorted(adds, reverse=True):
        directive = f"#include <{header}>\n"
        if _insert_angled(lines, directive):
            changed += 1

    if changed:
        path.write_text("".join(lines), encoding="utf-8")
    return changed


def _insert_angled(lines: list[str], directive: str) -> bool:
    """Inserts an angled include into the first angled-include block in
    alphabetical order, creating the block before the first include (or
    after a #pragma once / include guard) when there is none."""
    angled = [i for i, line in enumerate(lines)
              if re.match(r"\s*#\s*include\s*<", line)]
    if directive in lines:
        return False
    if angled:
        # First consecutive run of angled includes.
        block = [angled[0]]
        for i in angled[1:]:
            if i == block[-1] + 1:
                block.append(i)
            else:
                break
        pos = block[-1] + 1  # default: end of the block
        for i in block:
            if lines[i] > directive:
                pos = i
                break
        lines.insert(pos, directive)
        return True
    quoted = [i for i, line in enumerate(lines)
              if re.match(r"\s*#\s*include\s*\"", line)]
    if quoted:
        # Project style puts a .cpp's paired header first, so a fresh
        # angled block goes after it, not above it.
        pos = quoted[0] + 1
        lines.insert(pos, directive)
        lines.insert(pos, "\n")
        if pos + 2 < len(lines) and lines[pos + 2].strip():
            lines.insert(pos + 2, "\n")
        return True
    for i, line in enumerate(lines):
        if re.match(r"\s*#\s*pragma\s+once", line):
            lines.insert(i + 1, directive)
            lines.insert(i + 1, "\n")
            return True
    lines.insert(0, directive)
    return True
