"""Lightweight C++ declaration/scope model.

This is deliberately not a compiler front end: it extracts exactly the
shapes the semantic rules need from lexer-stripped text, using balanced
bracket scanning instead of a grammar.

  includes()        #include directives with line numbers (parsed from the
                    *original* text -- the stripper blanks quoted forms)
  var_decls(re)     variable/member declarations whose type matches a
                    pattern, with the initializer expression and kind
                    (brace / paren / equals / default)
  func_decls()      function declarations/definitions: return type,
                    name, attribute text before the return type, whether
                    the return type is a reference/pointer
  range_fors()      range-based for statements (decl, range expression)
  iter_fors()       classic for statements whose init calls .begin() /
                    .cbegin() on some expression

Line numbers are 1-based and always refer to the original file.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass

INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s*(?:<(?P<angle>[^>]+)>|"(?P<quote>[^"]+)")',
)

# Specifiers that may legally sit between an attribute and the return type
# (or before a variable's type) without changing what is declared.
_SPECIFIERS = (
    "static", "inline", "constexpr", "consteval", "virtual", "explicit",
    "friend", "extern", "mutable", "const", "typename",
)


@dataclass(frozen=True)
class Include:
    line: int
    angled: bool
    path: str


@dataclass(frozen=True)
class VarDecl:
    line: int
    type_text: str
    name: str
    init_kind: str  # "brace" | "paren" | "equals" | "default"
    init_text: str


@dataclass(frozen=True)
class FuncDecl:
    line: int
    return_type: str
    name: str
    attributes: str  # the raw [[...]] text seen before the declaration
    is_value_return: bool


@dataclass(frozen=True)
class RangeFor:
    line: int
    decl_text: str
    expr_text: str


@dataclass(frozen=True)
class IterFor:
    line: int
    expr_text: str  # the expression .begin()/.cbegin() was called on


class CppModel:
    def __init__(self, raw_text: str, stripped_text: str) -> None:
        self._raw = raw_text
        self._stripped = stripped_text
        self._line_starts = [0]
        for i, ch in enumerate(stripped_text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def line_at(self, offset: int) -> int:
        return bisect.bisect_right(self._line_starts, offset)

    # ----------------------------------------------------------------- includes
    def includes(self) -> list[Include]:
        out = []
        for lineno, line in enumerate(self._raw.splitlines(), start=1):
            match = INCLUDE_RE.match(line)
            if match:
                angled = match.group("angle") is not None
                out.append(
                    Include(lineno, angled,
                            match.group("angle" if angled else "quote"))
                )
        return out

    # ------------------------------------------------------------ balanced scan
    def _matching(self, open_pos: int) -> int:
        """Offset one past the bracket matching stripped[open_pos] (one of
        ( [ { <).  For '<' the scan fails (returns open_pos) when the
        contents cannot be template arguments -- a comparison, not a list."""
        pairs = {"(": ")", "[": "]", "{": "}", "<": ">"}
        opener = self._stripped[open_pos]
        closer = pairs[opener]
        depth = 0
        i = open_pos
        n = len(self._stripped)
        while i < n:
            c = self._stripped[i]
            if c == opener:
                depth += 1
            elif c == closer:
                depth -= 1
                if depth == 0:
                    return i + 1
            elif opener == "<" and c in ";{}":
                return open_pos  # statement ended: was a comparison
            i += 1
        return open_pos

    def _consume_type_suffix(self, pos: int) -> int:
        """From `pos` (just after a type name), consumes a template argument
        list and any trailing ::nested-name, returning the new offset."""
        i = _skip_ws(self._stripped, pos)
        if i < len(self._stripped) and self._stripped[i] == "<":
            end = self._matching(i)
            if end > i:
                i = _skip_ws(self._stripped, end)
                while self._stripped.startswith("::", i):
                    match = re.compile(r"::\s*\w+").match(self._stripped, i)
                    if not match:
                        break
                    i = match.end()
        return i

    # ---------------------------------------------------------------- var decls
    def var_decls(self, type_pattern: str,
                  include_refs: bool = False) -> list[VarDecl]:
        """Declarations `T name;`, `T name{...};`, `T name(...);`,
        `T name = ...;` where T matches `type_pattern` (which must not
        contain capturing groups).  Function declarations are filtered by
        initializer shape: empty parens, or parens whose top-level
        comma-separated items look like parameter declarations.

        `include_refs` also yields `T& name` / `T* name` declarators and
        parameter-style declarations (terminated by `,` or `)`), with
        init_kind "param" -- rules about *using* a T want those; rules
        about *creating* a T do not."""
        out = []
        decl_re = re.compile(
            r"(?:^|[;{}(,]|\)\s*)\s*"          # statement-ish boundary
            r"(?:(?:" + "|".join(_SPECIFIERS) + r")\s+)*"
            r"(?P<type>" + type_pattern + r")"
            r"(?P<tmpl>\s*<)?",
        )
        for match in decl_re.finditer(self._stripped):
            pos = match.end("type")
            if match.group("tmpl"):
                pos = self._consume_type_suffix(pos)
            else:
                pos = _skip_ws(self._stripped, pos)
            # The declared name (references/pointers excluded unless
            # include_refs: those alias an existing generator/container,
            # they do not create one).
            if include_refs:
                ref_match = re.compile(r"[&*\s]+").match(self._stripped, pos)
                if ref_match:
                    pos = ref_match.end()
            name_match = re.compile(r"(\w+)\s*").match(self._stripped, pos)
            if not name_match:
                continue
            name = name_match.group(1)
            if name in _SPECIFIERS or name in ("operator", "return", "new"):
                continue
            i = name_match.end()
            c = self._stripped[i] if i < len(self._stripped) else ""
            line = self.line_at(match.start("type"))
            if c == ";":
                out.append(VarDecl(line, match.group("type"), name,
                                   "default", ""))
            elif include_refs and c in ",)":
                out.append(VarDecl(line, match.group("type"), name,
                                   "param", ""))
            elif c == "{":
                end = self._matching(i)
                out.append(VarDecl(line, match.group("type"), name, "brace",
                                   self._stripped[i + 1:end - 1].strip()))
            elif c == "=":
                end = self._stripped.find(";", i)
                if end < 0:
                    continue
                out.append(VarDecl(line, match.group("type"), name, "equals",
                                   self._stripped[i + 1:end].strip()))
            elif c == "(":
                end = self._matching(i)
                inner = self._stripped[i + 1:end - 1].strip()
                if _looks_like_parameter_list(inner):
                    continue  # function declaration, not a variable
                out.append(VarDecl(line, match.group("type"), name, "paren",
                                   inner))
        return out

    # --------------------------------------------------------------- func decls
    def func_decls(self, type_names: set[str]) -> list[FuncDecl]:
        """Function declarations/definitions whose return type is one of
        `type_names` (matched on the last :: component, templates and
        namespace qualifiers allowed)."""
        out = []
        names = "|".join(sorted(type_names))
        decl_re = re.compile(
            r"(?:^|[;{}])\s*"
            r"(?P<attrs>(?:\[\[[^\]]*\]\]\s*)*)"
            r"(?:(?:static|inline|constexpr|virtual|explicit|friend)\s+)*"
            r"(?P<rtype>(?:\w+\s*::\s*)*(?:" + names + r"))"
            r"(?P<suffix>\s*[&*]\s*|\s+)"
            r"(?P<name>\w+)\s*\(",
        )
        for match in decl_re.finditer(self._stripped):
            name = match.group("name")
            rtype = re.sub(r"\s+", "", match.group("rtype"))
            if name == rtype.split("::")[-1]:
                continue  # constructor
            paren = self._stripped.index("(", match.end("name"))
            inner = self._stripped[paren + 1:self._matching(paren) - 1]
            # `T name(args);` with non-parameter args is a variable, which
            # var_decls() owns; only keep plausible function declarations.
            if inner.strip() and not _looks_like_parameter_list(inner):
                continue
            out.append(FuncDecl(
                self.line_at(match.start("rtype")),
                rtype,
                name,
                match.group("attrs"),
                match.group("suffix").strip() not in ("&", "*"),
            ))
        return out

    # --------------------------------------------------------------- loop forms
    def range_fors(self) -> list[RangeFor]:
        out = []
        for match in re.finditer(r"\bfor\s*\(", self._stripped):
            open_pos = match.end() - 1
            end = self._matching(open_pos)
            head = self._stripped[open_pos + 1:end - 1]
            colon = _top_level_colon(head)
            if colon < 0:
                continue
            out.append(RangeFor(
                self.line_at(match.start()),
                head[:colon].strip(),
                head[colon + 1:].strip(),
            ))
        return out

    def iter_fors(self) -> list[IterFor]:
        out = []
        for match in re.finditer(r"\bfor\s*\(", self._stripped):
            open_pos = match.end() - 1
            end = self._matching(open_pos)
            head = self._stripped[open_pos + 1:end - 1]
            if _top_level_colon(head) >= 0:
                continue
            begin = re.search(r"([\w.\->\[\]()]+?)\s*\.\s*c?begin\s*\(", head)
            if begin:
                out.append(IterFor(self.line_at(match.start()),
                                   begin.group(1)))
        return out


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i].isspace():
        i += 1
    return i


def _looks_like_parameter_list(inner: str) -> bool:
    """True when the parenthesised text reads as a parameter list rather
    than constructor arguments: empty, `void`, or every top-level item
    containing a type-ish shape (two adjacent identifiers, a qualifier
    keyword, or a reference/pointer declarator after a name)."""
    inner = inner.strip()
    if not inner or inner == "void":
        return True
    for item in _split_top_level(inner, ","):
        item = item.strip()
        if re.search(r"\b(?:const|unsigned|signed|struct|class)\b", item):
            continue
        if re.search(r"[\w>]\s*[&*]+\s*\w+$", item):
            continue  # `T& name`, `T* name`
        if re.search(r"[\w>]\s+\w+(?:\s*=[^,]*)?$", item):
            continue  # `T name` or `T name = default`
        if re.fullmatch(r"(?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*"
                        r"(?:\s*<.*>)?\s*(?:[&*]\s*)*(?:\.\.\.)?", item):
            continue  # unnamed parameter `T`, `T&&...` (not a literal)
        return False
    return True


def _split_top_level(text: str, sep: str) -> list[str]:
    parts = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _top_level_colon(head: str) -> int:
    depth = 0
    for i, c in enumerate(head):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if head[i - 1:i] == ":" or head[i + 1:i + 2] == ":":
                continue  # part of ::
            return i
    return -1
