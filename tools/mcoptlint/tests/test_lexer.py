"""Lexer edge cases: the stripper must blank exactly the non-code bytes
while keeping every newline, or every downstream line number is wrong."""

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent))

from mcoptlint import lexer  # noqa: E402


class StripTest(unittest.TestCase):
    def test_preserves_line_count(self):
        text = 'int a; // c\n/* b\nb */ int c;\nauto s = "x\\ny";\n'
        self.assertEqual(lexer.strip(text).count("\n"), text.count("\n"))

    def test_line_comment_blanked(self):
        self.assertNotIn("std::rand", lexer.strip("// std::rand()\nint a;"))

    def test_block_comment_blanked(self):
        stripped = lexer.strip("/* std::rand() */ int keep;")
        self.assertNotIn("rand", stripped)
        self.assertIn("int keep;", stripped)

    def test_string_blanked_code_kept(self):
        stripped = lexer.strip('call("std::rand()");')
        self.assertNotIn("rand", stripped)
        self.assertIn("call(", stripped)

    def test_escaped_quote_does_not_end_string(self):
        stripped = lexer.strip('a("\\"rand\\"");b();')
        self.assertNotIn("rand", stripped)
        self.assertIn("b();", stripped)

    def test_raw_string_with_delimiter(self):
        text = 'auto j = R"x(no "escape" std::rand() here)x"; next();'
        stripped = lexer.strip(text)
        self.assertNotIn("rand", stripped)
        self.assertIn("next();", stripped)

    def test_raw_string_multiline_keeps_lines(self):
        text = 'auto j = R"(line1\nline2\n)"; tail();'
        stripped = lexer.strip(text)
        self.assertEqual(stripped.count("\n"), 2)
        self.assertIn("tail();", stripped)

    def test_line_splice_continues_comment(self):
        # The backslash-newline splices the second line into the comment.
        text = "// comment \\\nstd::rand();\nint keep;"
        stripped = lexer.strip(text)
        self.assertNotIn("rand", stripped)
        self.assertIn("int keep;", stripped)

    def test_digit_separator_is_not_char_literal(self):
        # 4'800: the apostrophe must not open a char literal and swallow
        # the rest of the file (a real bug found while linting bench/).
        text = "int n = 4'800;\nstd::printf(\"x\");\n"
        stripped = lexer.strip(text)
        self.assertIn("printf", stripped)
        self.assertIn("4'800", stripped)

    def test_hex_digit_separator(self):
        stripped = lexer.strip("auto m = 0xdead'beef; keep();")
        self.assertIn("keep();", stripped)

    def test_char_literal_still_blanked(self):
        stripped = lexer.strip("char c = 'x'; keep();")
        self.assertNotIn("x", stripped.split(";")[0].split("=")[1])
        self.assertIn("keep();", stripped)

    def test_prefixed_char_literal(self):
        stripped = lexer.strip("auto c = L'a'; keep();")
        self.assertIn("keep();", stripped)


class TokenizeTest(unittest.TestCase):
    def test_line_numbers(self):
        tokens = lexer.tokenize("int a;\n\nfoo();\n")
        by_text = {t.text: t.line for t in tokens}
        self.assertEqual(by_text["a"], 1)
        self.assertEqual(by_text["foo"], 3)

    def test_scope_operator_single_token(self):
        kinds = [(t.kind, t.text) for t in lexer.tokenize("std::vector")]
        self.assertIn(("punct", "::"), kinds)


if __name__ == "__main__":
    unittest.main()
