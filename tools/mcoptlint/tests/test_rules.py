"""Semantic-rule behaviour beyond what --self-test proves: each rule's
negative space (code that must NOT trip) and the hygiene rule's two
directions."""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent))

from mcoptlint import engine  # noqa: E402


def _lint(relpath: str, text: str) -> set:
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return {(f.rule, f.line) for f in engine.lint_file(path)}


class RngProvenanceTest(unittest.TestCase):
    def test_split_is_fine(self):
        rules = {r for r, _ in _lint(
            "src/a.cpp", "util::Rng rng = master.split(3);\n")}
        self.assertNotIn("rng-provenance", rules)

    def test_seed_parameter_is_fine(self):
        rules = {r for r, _ in _lint(
            "src/a.cpp", "util::Rng rng(opts.seed);\n")}
        self.assertNotIn("rng-provenance", rules)

    def test_literal_seed_trips(self):
        rules = {r for r, _ in _lint("src/a.cpp", "util::Rng rng(42);\n")}
        self.assertIn("rng-provenance", rules)

    def test_default_init_trips(self):
        rules = {r for r, _ in _lint("src/a.cpp", "util::Rng rng;\n")}
        self.assertIn("rng-provenance", rules)


class UnorderedIterationTest(unittest.TestCase):
    def test_lookup_only_is_fine(self):
        body = ("#include <string>\n#include <unordered_map>\n"
                "int f(const std::unordered_map<int,int>& m) {"
                " return m.at(1); }\n")
        rules = {r for r, _ in _lint("src/a.cpp", body)}
        self.assertNotIn("unordered-iteration", rules)

    def test_range_for_trips(self):
        body = ("#include <unordered_map>\n"
                "void f(const std::unordered_map<int,int>& m) {\n"
                "  for (const auto& kv : m) { (void)kv; }\n}\n")
        self.assertIn(("unordered-iteration", 3), _lint("src/a.cpp", body))

    def test_alias_tracked(self):
        body = ("#include <unordered_map>\n"
                "using Index = std::unordered_map<int, int>;\n"
                "void f(const Index& idx) {\n"
                "  for (const auto& kv : idx) { (void)kv; }\n}\n")
        self.assertIn(("unordered-iteration", 4), _lint("src/a.cpp", body))


class NodiscardContractTest(unittest.TestCase):
    def test_plain_value_return_trips(self):
        body = "struct RunResult {};\nRunResult run();\n"
        self.assertIn(("nodiscard-contract", 2), _lint("src/a.hpp", body))

    def test_attributed_is_fine(self):
        body = "struct RunResult {};\n[[nodiscard]] RunResult run();\n"
        rules = {r for r, _ in _lint("src/a.hpp", body)}
        self.assertNotIn("nodiscard-contract", rules)

    def test_reference_return_is_fine(self):
        body = "struct RunResult {};\nconst RunResult& peek();\n"
        rules = {r for r, _ in _lint("src/a.hpp", body)}
        self.assertNotIn("nodiscard-contract", rules)

    def test_cpp_files_are_not_checked(self):
        # Definitions must not repeat the attribute, so .cpp is out of
        # scope by design.
        body = "struct RunResult {};\nRunResult run() { return {}; }\n"
        rules = {r for r, _ in _lint("src/a.cpp", body)}
        self.assertNotIn("nodiscard-contract", rules)


class IncludeHygieneTest(unittest.TestCase):
    def test_missing_include_trips(self):
        body = "void f() { std::vector<int> v; (void)v; }\n"
        rules = {r for r, _ in _lint("src/a.cpp", body)}
        self.assertIn("include-hygiene", rules)

    def test_direct_include_is_fine(self):
        body = "#include <vector>\nvoid f() { std::vector<int> v; (void)v; }\n"
        rules = {r for r, _ in _lint("src/a.cpp", body)}
        self.assertNotIn("include-hygiene", rules)

    def test_unused_include_trips(self):
        body = "#include <vector>\nint f() { return 1; }\n"
        self.assertIn(("include-hygiene", 1), _lint("src/a.cpp", body))

    def test_any_provider_satisfies(self):
        # std::size_t is provided by several headers; <cstring> counts.
        body = "#include <cstring>\nstd::size_t n = std::strlen(\"x\");\n"
        rules = {r for r, _ in _lint("src/a.cpp", body)}
        self.assertNotIn("include-hygiene", rules)

    def test_paired_header_inherited(self):
        # a.cpp inherits its paired header's angled includes.
        with tempfile.TemporaryDirectory() as tmp:
            src = pathlib.Path(tmp) / "src"
            src.mkdir()
            (src / "a.hpp").write_text(
                "#pragma once\n#include <vector>\n"
                "std::vector<int> make();\n", encoding="utf-8")
            (src / "a.cpp").write_text(
                '#include "a.hpp"\n'
                "std::vector<int> make() { return {}; }\n", encoding="utf-8")
            rules = {f.rule for f in engine.lint_file(src / "a.cpp")}
        self.assertNotIn("include-hygiene", rules)


if __name__ == "__main__":
    unittest.main()
