"""Engine semantics: allowlist precedence, per-file exemptions, scoping,
and the zero-findings contract on the real tree."""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent))

from mcoptlint import engine, rules  # noqa: E402


def _lint_text(relpath: str, text: str) -> list:
    """Lints `text` staged at `relpath` under a temp root."""
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return engine.lint_file(path)


class AllowlistTest(unittest.TestCase):
    def test_allow_suppresses_named_rule(self):
        findings = _lint_text(
            "src/a.cpp",
            "auto t = time(nullptr);  // mcopt-lint: allow(wall-clock)\n")
        self.assertEqual([f for f in findings if f.rule == "wall-clock"], [])

    def test_allow_is_per_rule(self):
        # An allow for one rule must not silence a different rule on the
        # same line.
        findings = _lint_text(
            "src/a.cpp",
            "float t = time(0);  // mcopt-lint: allow(wall-clock)\n")
        self.assertEqual({f.rule for f in findings} & {"float-arithmetic"},
                         {"float-arithmetic"})

    def test_allow_is_per_line(self):
        findings = _lint_text(
            "src/a.cpp",
            "// mcopt-lint: allow(wall-clock)\nauto t = time(nullptr);\n")
        self.assertEqual({f.rule for f in findings} & {"wall-clock"},
                        {"wall-clock"})

    def test_allow_list_of_rules(self):
        findings = _lint_text(
            "src/a.cpp",
            "float t = time(0);  "
            "// mcopt-lint: allow(wall-clock, float-arithmetic)\n")
        self.assertEqual(findings, [])


class ExemptAndScopeTest(unittest.TestCase):
    def test_exempt_file_is_silent_for_its_rule(self):
        findings = _lint_text("src/util/sync.hpp", "std::mutex m_;\n")
        self.assertEqual(
            [f for f in findings if f.rule == "raw-sync-primitive"], [])

    def test_same_code_elsewhere_trips(self):
        findings = _lint_text("src/util/other.hpp", "std::mutex m_;\n")
        self.assertEqual(
            {f.rule for f in findings} & {"raw-sync-primitive"},
            {"raw-sync-primitive"})

    def test_scoped_rule_ignores_out_of_scope_files(self):
        # raw-stderr is scoped to src/: the same line in tools of the
        # staged tree must pass.
        body = "#include <iostream>\nvoid f() { std::cerr << 1; }\n"
        in_src = _lint_text("src/a.cpp", body)
        in_tests = _lint_text("tests/a.cpp", body)
        self.assertIn("raw-stderr", {f.rule for f in in_src})
        self.assertNotIn("raw-stderr", {f.rule for f in in_tests})


class FindingFormatTest(unittest.TestCase):
    def test_text_format(self):
        finding = engine.Finding("src/a.cpp", 3, "wall-clock", "msg", "code")
        self.assertEqual(finding.text(),
                         "src/a.cpp:3: [wall-clock] msg\n    code")

    def test_json_roundtrip(self):
        finding = engine.Finding("a.cpp", 1, "r", "m")
        self.assertEqual(finding.as_json()["rule"], "r")


class CleanTreeTest(unittest.TestCase):
    def test_repo_tree_has_zero_findings(self):
        roots = [engine.REPO_ROOT / d for d in engine.DEFAULT_DIRS
                 if (engine.REPO_ROOT / d).is_dir()]
        findings, num_files = engine.lint_paths(roots)
        self.assertGreater(num_files, 0)
        self.assertEqual([f.text() for f in findings], [])

    def test_every_rule_has_a_fixture(self):
        fixture_dir = engine.REPO_ROOT / "tools" / "mcoptlint" / "fixtures"
        for rule in rules.default_rules():
            self.assertTrue(
                (fixture_dir / f"{rule.name}.cc.txt").is_file(),
                f"missing known-bad fixture for {rule.name}")


if __name__ == "__main__":
    unittest.main()
