"""Curated std-symbol -> header map for the include-hygiene rule.

The map only has to cover what the mcopt tree actually uses (plus close
neighbours); a symbol that is not listed is simply not checked, so gaps
can never produce false positives -- they only reduce coverage.  Each
symbol maps to the *set* of headers that are documented to provide it;
the rule is satisfied when any one of them is directly included.

Two tables:

  STD_SYMBOLS   names used as std::<name>
  BARE_SYMBOLS  macros and C-linkage names used unqualified (assert,
                stderr, ...) that still pin a header
"""

from __future__ import annotations

_TABLE: dict[str, tuple[str, ...]] = {
    # <cstdint> / <cstddef>
    "uint8_t": ("cstdint",), "uint16_t": ("cstdint",),
    "uint32_t": ("cstdint",), "uint64_t": ("cstdint",),
    "int8_t": ("cstdint",), "int16_t": ("cstdint",),
    "int32_t": ("cstdint",), "int64_t": ("cstdint",),
    "uintptr_t": ("cstdint",), "intptr_t": ("cstdint",),
    "size_t": ("cstddef", "cstdio", "cstdlib", "cstring"),
    "ptrdiff_t": ("cstddef",),
    "byte": ("cstddef",),
    "nullptr_t": ("cstddef",),
    # containers
    "vector": ("vector",),
    "array": ("array",),
    "map": ("map",), "multimap": ("map",),
    "set": ("set",), "multiset": ("set",),
    "unordered_map": ("unordered_map",),
    "unordered_multimap": ("unordered_map",),
    "unordered_set": ("unordered_set",),
    "unordered_multiset": ("unordered_set",),
    "deque": ("deque",), "list": ("list",),
    "span": ("span",),
    "initializer_list": ("initializer_list",),
    # strings / streams
    "string": ("string",), "to_string": ("string",),
    "stoi": ("string",), "stod": ("string",), "stoll": ("string",),
    "getline": ("string", "istream"),
    "string_view": ("string_view",),
    "ostream": ("ostream", "iostream"),
    "istream": ("istream", "iostream"),
    "cout": ("iostream",), "cin": ("iostream",), "endl": ("ostream", "iostream"),
    "cerr": ("iostream",), "clog": ("iostream",),
    "ostringstream": ("sstream",), "istringstream": ("sstream",),
    "stringstream": ("sstream",),
    "ofstream": ("fstream",), "ifstream": ("fstream",), "fstream": ("fstream",),
    "ios": ("ios", "iostream", "fstream", "sstream"),
    "streamsize": ("ios", "iostream", "fstream", "sstream"),
    # <utility> / <functional> / <memory> / <tuple> / <optional>
    "move": ("utility",), "swap": ("utility",), "exchange": ("utility",),
    "forward": ("utility",), "pair": ("utility",), "make_pair": ("utility",),
    "declval": ("utility",), "in_place": ("utility",),
    "tuple": ("tuple",), "make_tuple": ("tuple",), "tie": ("tuple",),
    "get": ("tuple", "utility", "variant", "array"),
    "function": ("functional",), "ref": ("functional",),
    "cref": ("functional",), "hash": ("functional",),
    "unique_ptr": ("memory",), "make_unique": ("memory",),
    "shared_ptr": ("memory",), "make_shared": ("memory",),
    "addressof": ("memory",),
    "optional": ("optional",), "nullopt": ("optional",),
    "make_optional": ("optional",), "nullopt_t": ("optional",),
    "variant": ("variant",), "holds_alternative": ("variant",),
    # <algorithm> / <numeric> / <iterator>
    "min": ("algorithm",), "max": ("algorithm",), "clamp": ("algorithm",),
    "minmax": ("algorithm",),
    "min_element": ("algorithm",), "max_element": ("algorithm",),
    "sort": ("algorithm",), "stable_sort": ("algorithm",),
    "is_sorted": ("algorithm",), "reverse": ("algorithm",),
    "rotate": ("algorithm",), "unique": ("algorithm",),
    "find": ("algorithm",), "find_if": ("algorithm",),
    "count": ("algorithm",), "count_if": ("algorithm",),
    "copy": ("algorithm",), "fill": ("algorithm",),
    "transform": ("algorithm",), "all_of": ("algorithm",),
    "any_of": ("algorithm",), "none_of": ("algorithm",),
    "next_permutation": ("algorithm",), "lower_bound": ("algorithm",),
    "upper_bound": ("algorithm",), "shuffle": ("algorithm",),
    "random_shuffle": ("algorithm",),
    "accumulate": ("numeric",), "iota": ("numeric",),
    "partial_sum": ("numeric",), "reduce": ("numeric",),
    "distance": ("iterator",), "next": ("iterator",), "prev": ("iterator",),
    "back_inserter": ("iterator",),
    "size": ("iterator",), "ssize": ("iterator",),
    "begin": ("iterator",), "end": ("iterator",),
    # <cmath> / <cstdlib> / <limits> / <bit>
    "abs": ("cmath", "cstdlib"),
    "fabs": ("cmath",), "exp": ("cmath",), "log": ("cmath",),
    "log2": ("cmath",), "log10": ("cmath",), "pow": ("cmath",),
    "sqrt": ("cmath",), "cbrt": ("cmath",), "hypot": ("cmath",),
    "sin": ("cmath",), "cos": ("cmath",), "tan": ("cmath",),
    "floor": ("cmath",), "ceil": ("cmath",), "round": ("cmath",),
    "lround": ("cmath",), "llround": ("cmath",), "trunc": ("cmath",),
    "fmod": ("cmath",),
    "isnan": ("cmath",), "isfinite": ("cmath",), "isinf": ("cmath",),
    "nan": ("cmath",),
    "numeric_limits": ("limits",),
    "bit_width": ("bit",), "countl_zero": ("bit",), "countr_zero": ("bit",),
    "popcount": ("bit",), "has_single_bit": ("bit",),
    "exit": ("cstdlib",), "atexit": ("cstdlib",),
    "getenv": ("cstdlib",), "atof": ("cstdlib",), "atoi": ("cstdlib",),
    "atoll": ("cstdlib",), "strtoull": ("cstdlib",), "strtod": ("cstdlib",),
    "strtol": ("cstdlib",), "rand": ("cstdlib",), "srand": ("cstdlib",),
    "malloc": ("cstdlib",), "free": ("cstdlib",),
    # <cstdio> / <cstring> / <cstdarg> / <cassert> / <cctype>
    "printf": ("cstdio",), "fprintf": ("cstdio",), "snprintf": ("cstdio",),
    "sprintf": ("cstdio",), "vsnprintf": ("cstdio",),
    "vfprintf": ("cstdio",), "fputs": ("cstdio",), "fputc": ("cstdio",),
    "fwrite": ("cstdio",), "fflush": ("cstdio",), "fopen": ("cstdio",),
    "fclose": ("cstdio",), "puts": ("cstdio",), "remove": ("cstdio",),
    "strcmp": ("cstring",), "strncmp": ("cstring",), "strlen": ("cstring",),
    "memcpy": ("cstring",), "memset": ("cstring",), "memcmp": ("cstring",),
    "strchr": ("cstring",), "strstr": ("cstring",),
    "va_list": ("cstdarg",),
    "isdigit": ("cctype",), "isspace": ("cctype",), "isalpha": ("cctype",),
    "tolower": ("cctype",), "toupper": ("cctype",),
    # exceptions / diagnostics
    "exception": ("exception",), "terminate": ("exception",),
    "set_terminate": ("exception",), "terminate_handler": ("exception",),
    "logic_error": ("stdexcept",), "runtime_error": ("stdexcept",),
    "invalid_argument": ("stdexcept",), "out_of_range": ("stdexcept",),
    "domain_error": ("stdexcept",), "length_error": ("stdexcept",),
    "overflow_error": ("stdexcept",), "underflow_error": ("stdexcept",),
    # threading / time / atomics
    "thread": ("thread",), "this_thread": ("thread",),
    "jthread": ("thread",),
    "mutex": ("mutex",), "timed_mutex": ("mutex",),
    "recursive_mutex": ("mutex",), "lock_guard": ("mutex",),
    "scoped_lock": ("mutex",), "unique_lock": ("mutex",),
    "adopt_lock": ("mutex",), "defer_lock": ("mutex",),
    "adopt_lock_t": ("mutex",), "call_once": ("mutex",), "once_flag": ("mutex",),
    "shared_mutex": ("shared_mutex",), "shared_lock": ("shared_mutex",),
    "condition_variable": ("condition_variable",),
    "condition_variable_any": ("condition_variable",),
    "cv_status": ("condition_variable",),
    "atomic": ("atomic",), "atomic_flag": ("atomic",),
    "memory_order": ("atomic",), "memory_order_relaxed": ("atomic",),
    "memory_order_acquire": ("atomic",), "memory_order_release": ("atomic",),
    "memory_order_seq_cst": ("atomic",),
    "chrono": ("chrono",),
    "async": ("future",), "future": ("future",), "promise": ("future",),
    # <random> (banned by the determinism rules, mapped anyway so the
    # hygiene rule stays truthful on fixtures)
    "mt19937": ("random",), "mt19937_64": ("random",),
    "random_device": ("random",), "uniform_int_distribution": ("random",),
    "uniform_real_distribution": ("random",), "normal_distribution": ("random",),
    "default_random_engine": ("random",), "minstd_rand": ("random",),
    "uniform_random_bit_generator": ("random",),
    # type traits & misc
    "is_same": ("type_traits",), "is_same_v": ("type_traits",),
    "enable_if": ("type_traits",), "enable_if_t": ("type_traits",),
    "decay_t": ("type_traits",), "is_integral": ("type_traits",),
    "is_floating_point": ("type_traits",), "is_trivially_copyable":
        ("type_traits",),
    "apply": ("tuple",),
}

STD_SYMBOLS: dict[str, frozenset[str]] = {
    name: frozenset(headers) for name, headers in _TABLE.items()
}

#: The preferred header to suggest (and for --fix to insert) when a
#: symbol has several providers: the first entry of its _TABLE tuple.
CANONICAL: dict[str, str] = {
    name: headers[0] for name, headers in _TABLE.items()
}

BARE_SYMBOLS: dict[str, frozenset[str]] = {
    "assert": frozenset({"cassert"}),
    "errno": frozenset({"cerrno"}),
    # The errno constants the perf layer branches on; <cerrno> provides
    # them as macros, so the identifier scan must credit the include.
    "EACCES": frozenset({"cerrno"}),
    "EPERM": frozenset({"cerrno"}),
    "ENOSYS": frozenset({"cerrno"}),
    "ENOENT": frozenset({"cerrno"}),
    "ENODEV": frozenset({"cerrno"}),
    "EOPNOTSUPP": frozenset({"cerrno"}),
    "EINVAL": frozenset({"cerrno"}),
    "EMFILE": frozenset({"cerrno"}),
    "EBUSY": frozenset({"cerrno"}),
    "NULL": frozenset({"cstddef", "cstdio", "cstdlib", "cstring"}),
    "EXIT_SUCCESS": frozenset({"cstdlib"}),
    "EXIT_FAILURE": frozenset({"cstdlib"}),
    "FILE": frozenset({"cstdio"}),
    "stderr": frozenset({"cstdio"}),
    "stdout": frozenset({"cstdio"}),
    "stdin": frozenset({"cstdio"}),
    "EOF": frozenset({"cstdio"}),
    "INT_MAX": frozenset({"climits"}),
    "INT_MIN": frozenset({"climits"}),
    "CHAR_BIT": frozenset({"climits"}),
    "DBL_EPSILON": frozenset({"cfloat"}),
}

#: Every header that can be *required* by some symbol above; only these
#: participate in the unused-include direction of the hygiene rule.
KNOWN_HEADERS: frozenset[str] = frozenset(
    h for providers in list(STD_SYMBOLS.values()) + list(BARE_SYMBOLS.values())
    for h in providers
)
