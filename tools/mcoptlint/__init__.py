"""mcoptlint: semantic static analysis for the mcopt source tree.

The package graduates tools/lint_determinism.py (PR 1) from token/regex
matching to a small semantic engine:

  lexer      comment/string/raw-string/line-splice-aware C++ lexing that
             preserves line structure, so findings point at real lines
  cppmodel   a lightweight declaration/scope parser: includes, variable
             declarations with initializers, function declarations with
             return types and attributes, range-for statements
  rules      the rule framework plus every shipped rule -- the absorbed
             determinism/concurrency regex rules and the semantic rules
             (rng-provenance, unordered-iteration, nodiscard-contract,
             include-hygiene)
  selftest   proves every rule fires on its committed known-bad fixture
             (tools/mcoptlint/fixtures/) and stays silent on clean code

Findings are reported as `file:line: [rule] explanation` text or as JSON
(--format json).  A genuine exception is allowlisted with a
`mcopt-lint: allow(<rule>)` comment on the offending line; whole files
implementing a sanctioned wrapper are listed per rule in
rules.EXEMPT_FILES.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

__version__ = "1.0.0"

from mcoptlint.engine import Finding, lint_file, lint_paths  # noqa: F401
