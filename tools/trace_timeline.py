#!/usr/bin/env python3
"""Validator / renderer for the --timeline-out Chrome Trace Event export.

The bench drivers (``--timeline-out FILE``) serialize their profile trees
as Chrome Trace Event Format JSON — the format Perfetto
(https://ui.perfetto.dev) and chrome://tracing open directly::

    {"traceEvents": [
       {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "mcopt aggregate profile"}},
       {"name": "figure1", "cat": "profile", "ph": "X", "pid": 0,
        "tid": 0, "ts": 0.000, "dur": 71627.733,
        "args": {"calls": 360, "ticks": 216000}}],
     "displayTimeUnit": "ms"}

Layout semantics (see src/obs/timeline.hpp): a span's horizontal *extent*
is real accumulated wall time; its horizontal *position* is synthetic
sequential packing, because a ProfileNode aggregates every call to a
scope.  That layout still guarantees the renderable-nesting invariant
this tool checks: on any (pid, tid) lane, spans either nest or are
disjoint — a child never spills past its parent.

* ``--validate``: strict shape check (traceEvents array, required keys
  per phase, non-negative ts/dur, metadata args, lane nesting).  Exit 1
  on the first invalid file; CI runs this on a traced smoke export.
* ``--summary``: per-name table of call counts, total and self wall time
  — a flat profile readout without opening a UI.
* ``--self-test``: plants one violation of each class in a synthetic
  trace and requires the validator to catch all of them.

Exit status: 0 clean, 1 invalid trace, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

# Event phases the exporter emits: complete spans and metadata.
KNOWN_PHASES = {"X", "M"}
METADATA_NAMES = {"process_name", "thread_name"}

# Slack for float microsecond arithmetic in the nesting check.
EPSILON_US = 0.002


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_index(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_event(i: int, event) -> list[str]:
    """Shape violations for one traceEvents entry (empty if clean)."""
    where = f"traceEvents[{i}]"
    if not isinstance(event, dict):
        return [f"{where}: not a JSON object"]
    errors = []
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    ph = event.get("ph")
    if ph not in KNOWN_PHASES:
        errors.append(f"{where}: 'ph' must be one of {sorted(KNOWN_PHASES)}, "
                      f"got {ph!r}")
        return errors
    for key in ("pid", "tid"):
        if not _is_index(event.get(key)):
            errors.append(f"{where}: '{key}' must be a non-negative integer")
    if ph == "X":
        for key in ("ts", "dur"):
            value = event.get(key)
            if not _is_num(value):
                errors.append(f"{where}: 'X' event needs numeric '{key}'")
            elif value < 0:
                errors.append(f"{where}: '{key}' must be >= 0, got {value}")
        if not isinstance(event.get("cat"), str):
            errors.append(f"{where}: 'X' event needs a string 'cat'")
    else:  # "M"
        if isinstance(name, str) and name not in METADATA_NAMES:
            errors.append(f"{where}: metadata name {name!r} not in "
                          f"{sorted(METADATA_NAMES)}")
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"),
                                                        str):
            errors.append(f"{where}: metadata needs args.name (string)")
    return errors


def check_lane_nesting(events) -> list[str]:
    """On each (pid, tid) lane, spans must nest or be disjoint."""
    lanes = defaultdict(list)
    for i, event in enumerate(events):
        if isinstance(event, dict) and event.get("ph") == "X" \
                and _is_num(event.get("ts")) and _is_num(event.get("dur")):
            lanes[(event.get("pid"), event.get("tid"))].append((i, event))
    errors = []
    for lane, spans in sorted(lanes.items(), key=lambda kv: str(kv[0])):
        spans.sort(key=lambda pair: (pair[1]["ts"], -pair[1]["dur"]))
        stack = []  # (index, ts, end) of open ancestors
        for i, event in spans:
            ts, end = event["ts"], event["ts"] + event["dur"]
            while stack and ts >= stack[-1][2] - EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][2] + EPSILON_US:
                j = stack[-1][0]
                errors.append(
                    f"lane pid={lane[0]} tid={lane[1]}: traceEvents[{i}] "
                    f"'{event.get('name')}' [{ts:.3f}, {end:.3f}) spills "
                    f"past enclosing traceEvents[{j}] (ends "
                    f"{stack[-1][2]:.3f}) — spans must nest or be disjoint")
            stack.append((i, ts, end))
    return errors


def validate_doc(doc) -> list[str]:
    if not isinstance(doc, dict):
        return ["top level: not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: missing 'traceEvents' array"]
    errors = []
    for i, event in enumerate(events):
        errors.extend(validate_event(i, event))
        if len(errors) >= 20:
            return errors
    errors.extend(check_lane_nesting(events))
    return errors


def validate(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    errors = validate_doc(doc)
    if errors:
        for error in errors[:20]:
            print(f"{path}: {error}", file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)} violation(s))",
              file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    lanes = {(e.get("pid"), e.get("tid"))
             for e in events if e.get("ph") == "X"}
    print(f"{path}: OK ({spans} spans on {len(lanes)} lane(s), "
          f"{len(events) - spans} metadata records)")
    return 0


def print_table(headers, rows):
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    print(fmt(headers))
    print(fmt(["-" * w for w in widths]))
    for row in str_rows:
        print(fmt(row))
    print()


def summarize(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    errors = validate_doc(doc)
    if errors:
        print(f"{path}: refusing to summarize an invalid trace "
              f"(run --validate)", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    # Self time = dur minus direct children, via the same nesting stack.
    lanes = defaultdict(list)
    for event in events:
        if event.get("ph") == "X":
            lanes[(event["pid"], event["tid"])].append(event)
    per_name = defaultdict(lambda: {"spans": 0, "calls": 0, "total": 0.0,
                                    "self": 0.0})
    for spans in lanes.values():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (name, end) of open ancestors
        for event in spans:
            ts, end = event["ts"], event["ts"] + event["dur"]
            while stack and ts >= stack[-1][1] - EPSILON_US:
                stack.pop()
            stats = per_name[event["name"]]
            stats["spans"] += 1
            stats["calls"] += event.get("args", {}).get("calls", 0)
            stats["total"] += event["dur"]
            stats["self"] += event["dur"]
            if stack:
                per_name[stack[-1][0]]["self"] -= event["dur"]
            stack.append((event["name"], end))
    print(f"{path}: {sum(s['spans'] for s in per_name.values())} spans, "
          f"{len(lanes)} lane(s)")
    rows = []
    for name, stats in sorted(per_name.items(),
                              key=lambda kv: -kv[1]["self"]):
        rows.append([name, stats["spans"], stats["calls"],
                     f"{stats['total'] / 1e3:.3f}",
                     f"{max(stats['self'], 0.0) / 1e3:.3f}"])
    print_table(["scope", "spans", "calls", "total ms", "self ms"], rows)
    return 0


def self_test() -> int:
    """The validator must pass a clean trace and catch planted breakage."""
    clean = {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "mcopt aggregate profile"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "all runs"}},
            {"name": "figure1", "cat": "profile", "ph": "X", "pid": 0,
             "tid": 0, "ts": 0.0, "dur": 100.0,
             "args": {"calls": 3, "ticks": 600}},
            {"name": "stage", "cat": "profile", "ph": "X", "pid": 0,
             "tid": 0, "ts": 0.0, "dur": 60.0, "args": {"calls": 9}},
            {"name": "stage", "cat": "profile", "ph": "X", "pid": 0,
             "tid": 0, "ts": 60.0, "dur": 40.0, "args": {"calls": 6}},
            {"name": "figure1", "cat": "profile", "ph": "X", "pid": 1,
             "tid": 1, "ts": 100.0, "dur": 50.0, "args": {"calls": 1}},
        ],
        "displayTimeUnit": "ms",
    }

    def mutated(mutate):
        doc = json.loads(json.dumps(clean))
        mutate(doc)
        return doc

    def drop_events(doc):
        del doc["traceEvents"]

    def bad_phase(doc):
        doc["traceEvents"][2]["ph"] = "B"

    def negative_dur(doc):
        doc["traceEvents"][3]["dur"] = -1.0

    def missing_ts(doc):
        del doc["traceEvents"][2]["ts"]

    def bad_pid(doc):
        doc["traceEvents"][2]["pid"] = -1

    def metadata_without_name(doc):
        doc["traceEvents"][0]["args"] = {}

    def child_spills(doc):
        doc["traceEvents"][4]["dur"] = 80.0   # 60..140 vs parent 0..100

    cases = [
        ("missing traceEvents", drop_events),
        ("unknown phase", bad_phase),
        ("negative dur", negative_dur),
        ("missing ts", missing_ts),
        ("negative pid", bad_pid),
        ("metadata without args.name", metadata_without_name),
        ("child spills past parent", child_spills),
    ]
    failures = []
    if validate_doc(clean):
        failures.append(f"clean trace rejected: {validate_doc(clean)}")
    for label, mutate in cases:
        if not validate_doc(mutated(mutate)):
            failures.append(f"{label}: violation not caught")
    if failures:
        for failure in failures:
            print(f"self-test: {failure}", file=sys.stderr)
        print("self-test: FAILED", file=sys.stderr)
        return 1
    print(f"self-test: OK ({len(cases) + 1} scenarios)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="*",
                        help="--timeline-out JSON file(s)")
    parser.add_argument("--validate", action="store_true",
                        help="strict shape check; exit 1 on any violation")
    parser.add_argument("--summary", action="store_true",
                        help="per-scope table of span counts and self time")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the validator catches planted breakage")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.traces:
        parser.error("no timeline files given (or use --self-test)")
    status = 0
    for path in args.traces:
        try:
            if args.summary:
                status = max(status, summarize(path))
            else:
                status = max(status, validate(path))
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: {err}", file=sys.stderr)
            status = max(status, 2)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
