#include "linarr/problem.hpp"

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/invariant.hpp"

namespace mcopt::linarr {

LinArrProblem::LinArrProblem(const Netlist& netlist, Arrangement start,
                             MoveKind move_kind, Objective objective,
                             core::EvalPath path)
    : state_(netlist, std::move(start)),
      move_kind_(move_kind),
      objective_(objective),
      path_(path) {
  if (netlist.num_cells() < 2) {
    throw std::invalid_argument("LinArrProblem: need at least two cells");
  }
}

double LinArrProblem::objective_value() const noexcept {
  return objective_ == Objective::kDensity
             ? static_cast<double>(state_.density())
             : static_cast<double>(state_.total_span());
}

double LinArrProblem::speculative_objective() const noexcept {
  return objective_ == Objective::kDensity
             ? static_cast<double>(state_.speculative_density())
             : static_cast<double>(state_.speculative_total_span());
}

double LinArrProblem::cost() const { return objective_value(); }

// mcopt: hot
double LinArrProblem::propose(util::Rng& rng) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("propose: a perturbation is already pending");
  }
  const std::size_t n = state_.arrangement().size();
  const auto [a, b] = rng.next_distinct_pair(n);
  pending_a_ = a;
  pending_b_ = b;
  if (path_ == core::EvalPath::kSpeculative) {
    if (move_kind_ == MoveKind::kPairwiseInterchange) {
      state_.speculate_swap(a, b);
      pending_ = Pending::kSwap;
    } else {
      state_.speculate_move(a, b);
      pending_ = Pending::kMove;
    }
    return speculative_objective();
  }
  if (move_kind_ == MoveKind::kPairwiseInterchange) {
    state_.apply_swap(a, b);
    pending_ = Pending::kSwap;
  } else {
    state_.apply_move(a, b);
    pending_ = Pending::kMove;
  }
  return objective_value();
}

// mcopt: hot
void LinArrProblem::accept() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("accept: no pending perturbation");
  }
  if (path_ == core::EvalPath::kSpeculative) {
    state_.commit_speculation();
  }
  pending_ = Pending::kNone;
}

// mcopt: hot
void LinArrProblem::reject() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("reject: no pending perturbation");
  }
  if (path_ == core::EvalPath::kSpeculative) {
    state_.discard_speculation();
  } else {
    undo_pending();
  }
  pending_ = Pending::kNone;
}

void LinArrProblem::undo_pending() {
  if (pending_ == Pending::kSwap) {
    state_.apply_swap(pending_a_, pending_b_);
  } else if (pending_ == Pending::kMove) {
    // move_position(from, to) is undone by move_position(to, from).
    state_.apply_move(pending_b_, pending_a_);
  }
}

bool LinArrProblem::try_improving_move(std::size_t a, std::size_t b,
                                       double before) {
  if (move_kind_ == MoveKind::kPairwiseInterchange) {
    state_.speculate_swap(a, b);
  } else {
    state_.speculate_move(a, b);
  }
  if (speculative_objective() < before) {
    state_.commit_speculation();
    return true;
  }
  state_.discard_speculation();
  return false;
}

void LinArrProblem::descend(util::WorkBudget& budget) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("descend: a perturbation is pending");
  }
  const std::size_t n = state_.arrangement().size();
  bool improved = true;
  if (path_ == core::EvalPath::kSpeculative) {
    // Same scan order and charge cadence as the apply-undo loop below, so
    // both paths reach the identical local optimum with identical budget
    // consumption — only the cost of each *rejected* candidate differs.
    while (improved && !budget.exhausted()) {
      improved = false;
      for (std::size_t a = 0; a + 1 < n && !budget.exhausted(); ++a) {
        for (std::size_t b = a + 1; b < n && !budget.exhausted(); ++b) {
          const double before = objective_value();
          budget.charge();
          if (try_improving_move(a, b, before)) {
            improved = true;
            continue;
          }
          if (move_kind_ == MoveKind::kSingleExchange) {
            // Single exchange is directional: try a->b, then b->a.
            if (budget.exhausted()) break;
            budget.charge();
            if (try_improving_move(b, a, before)) improved = true;
          }
        }
      }
    }
    return;
  }
  while (improved && !budget.exhausted()) {
    improved = false;
    for (std::size_t a = 0; a + 1 < n && !budget.exhausted(); ++a) {
      for (std::size_t b = a + 1; b < n && !budget.exhausted(); ++b) {
        const double before = objective_value();
        if (move_kind_ == MoveKind::kPairwiseInterchange) {
          state_.apply_swap(a, b);
          budget.charge();
          if (objective_value() < before) {
            improved = true;
          } else {
            state_.apply_swap(a, b);
          }
        } else {
          // Single exchange is directional: try a->b, then b->a.
          state_.apply_move(a, b);
          budget.charge();
          if (objective_value() < before) {
            improved = true;
            continue;
          }
          state_.apply_move(b, a);
          if (budget.exhausted()) break;
          state_.apply_move(b, a);
          budget.charge();
          if (objective_value() < before) {
            improved = true;
          } else {
            state_.apply_move(a, b);
          }
        }
      }
    }
  }
}

void LinArrProblem::randomize(util::Rng& rng) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("randomize: a perturbation is pending");
  }
  state_.reset(Arrangement::random(state_.arrangement().size(), rng));
}

core::Snapshot LinArrProblem::snapshot() const {
  const auto& order = state_.arrangement().order();
  return core::Snapshot(order.begin(), order.end());
}

void LinArrProblem::snapshot_into(core::Snapshot& out) const {
  const auto& order = state_.arrangement().order();
  out.assign(order.begin(), order.end());
}

std::unique_ptr<core::Problem> LinArrProblem::clone() const {
  return std::make_unique<LinArrProblem>(*this);
}

void LinArrProblem::restore(const core::Snapshot& snap) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("restore: a perturbation is pending");
  }
  state_.reset(Arrangement::from_order(
      std::vector<CellId>(snap.begin(), snap.end())));
}

void LinArrProblem::check_invariants() const {
  MCOPT_CHECK(pending_ == Pending::kNone,
              "deep check with a perturbation pending");
  MCOPT_CHECK(state_.arrangement().is_consistent(),
              "arrangement order/position maps diverged");
  MCOPT_CHECK(state_.verify(),
              "incremental density state disagrees with full recompute");
}

bool LinArrProblem::is_local_optimum() {
  const std::size_t n = state_.arrangement().size();
  const double h0 = objective_value();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (path_ == core::EvalPath::kSpeculative) {
        if (move_kind_ == MoveKind::kPairwiseInterchange) {
          if (b < a) continue;  // swaps are symmetric
          state_.speculate_swap(a, b);
        } else {
          state_.speculate_move(a, b);
        }
        const double h = speculative_objective();
        state_.discard_speculation();
        if (h < h0) return false;
      } else if (move_kind_ == MoveKind::kPairwiseInterchange) {
        if (b < a) continue;  // swaps are symmetric
        state_.apply_swap(a, b);
        const double h = objective_value();
        state_.apply_swap(a, b);
        if (h < h0) return false;
      } else {
        state_.apply_move(a, b);
        const double h = objective_value();
        state_.apply_move(b, a);
        if (h < h0) return false;
      }
    }
  }
  return true;
}

}  // namespace mcopt::linarr
