// The Cohoon-Sahni board-permutation heuristic [COHO83a], assembled from
// library pieces: the g function g(density) = min(density/(m+5), 0.9)
// (available as core::GClass::kCohoonSahni) combined with either strategy.
//
// The paper's §4.2.2 row uses this g with the Figure 1 strategy and
// pairwise interchange; [COHO83a]'s own best variant starts from the Goto
// arrangement and uses single exchange with the Figure 2 strategy.  Both
// are provided.
#pragma once

#include <cstdint>

#include "core/result.hpp"
#include "linarr/problem.hpp"
#include "util/rng.hpp"

namespace mcopt::linarr {

enum class Strategy { kFigure1, kFigure2 };

struct CohoonOptions {
  Strategy strategy = Strategy::kFigure1;
  std::uint64_t budget = 30'000;
};

/// Runs [COHO83a]'s g function on `problem` from its current solution.
/// `problem` must be bound to the instance whose net count parameterizes g.
[[nodiscard]] core::RunResult cohoon_sahni(LinArrProblem& problem,
                                           const CohoonOptions& options,
                                           util::Rng& rng);

}  // namespace mcopt::linarr
