// Track assignment for a linear arrangement — the physical meaning of
// density.
//
// §4.1 motivates NOLA through "the ordering of via columns in single row
// routing [RAGH84] [TING78]": once the columns are ordered, every net
// occupies the horizontal interval between its leftmost and rightmost pin,
// and nets whose intervals overlap must be routed on different tracks.
// The minimum number of tracks equals the maximum interval overlap — which
// is exactly the arrangement's density.  The classic left-edge algorithm
// achieves that optimum, so minimizing density (what the Monte Carlo
// methods do) is minimizing the routed channel's height.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <ostream>
#include <vector>

#include "linarr/arrangement.hpp"
#include "netlist/netlist.hpp"

namespace mcopt::linarr {

/// One routed net: its horizontal extent (positions, inclusive) and the
/// track it was assigned.
struct RoutedNet {
  netlist::NetId net = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t track = 0;
};

struct TrackAssignment {
  std::vector<RoutedNet> nets;  ///< in net-id order
  std::size_t num_tracks = 0;
};

/// Left-edge track assignment of every net interval under `arrangement`.
/// Guaranteed optimal: num_tracks == density of the arrangement (interval
/// graphs are perfect; tests assert the equality).  Zero-length intervals
/// (single-column nets cannot occur — every net spans >= 2 cells) still
/// occupy their column.  O(nets log nets + nets * tracks) worst case.
[[nodiscard]] TrackAssignment assign_tracks(const netlist::Netlist& netlist,
                                            const Arrangement& arrangement);

/// True when no two nets on the same track overlap (closed intervals) and
/// every net is assigned a track below num_tracks.  Used by tests.
[[nodiscard]] bool is_valid_assignment(const TrackAssignment& assignment);

/// ASCII channel picture: one row per track, '-' where a net runs, its
/// net id digit (mod 10) at pin columns.  Educational output used by the
/// board_ordering example.
void render_channel(std::ostream& out, const netlist::Netlist& netlist,
                    const Arrangement& arrangement,
                    const TrackAssignment& assignment);

}  // namespace mcopt::linarr
