#include "linarr/density.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"

namespace mcopt::linarr {

DensityState::DensityState(const Netlist& netlist, Arrangement arrangement)
    : netlist_(&netlist), arrangement_(std::move(arrangement)) {
  if (arrangement_.size() != netlist.num_cells()) {
    throw std::invalid_argument(
        "DensityState: arrangement size != netlist cell count");
  }
  net_lo_.resize(netlist.num_nets());
  net_hi_.resize(netlist.num_nets());
  touched_mark_.assign(netlist.num_nets(), 0);
  // A move touches at most every net, so one reservation up front keeps the
  // per-move scratch vector allocation-free for the life of the state.
  touched_.reserve(netlist.num_nets());
  rebuild();
}

void DensityState::rebuild() {
  const std::size_t n = arrangement_.size();
  cuts_.assign(n > 0 ? n - 1 : 0, 0);
  cut_histogram_.assign(netlist_->num_nets() + 2, 0);
  if (!cuts_.empty()) {
    cut_histogram_[0] = static_cast<int>(cuts_.size());
  }
  max_cut_ = 0;
  total_span_ = 0;
  for (NetId net = 0; net < netlist_->num_nets(); ++net) {
    activate_net(net);
  }
}

int DensityState::density() const noexcept {
  while (max_cut_ > 0 &&
         cut_histogram_[static_cast<std::size_t>(max_cut_)] == 0) {
    --max_cut_;
  }
  return max_cut_;
}

void DensityState::bump_boundary(std::size_t b, int delta) {
  const int old_cut = cuts_[b];
  const int new_cut = old_cut + delta;
  cuts_[b] = new_cut;
  --cut_histogram_[static_cast<std::size_t>(old_cut)];
  ++cut_histogram_[static_cast<std::size_t>(new_cut)];
  if (new_cut > max_cut_) max_cut_ = new_cut;
  total_span_ += delta;
}

void DensityState::add_span(std::size_t lo, std::size_t hi, int delta) {
  for (std::size_t b = lo; b < hi; ++b) bump_boundary(b, delta);
}

void DensityState::retire_net(NetId n) {
  add_span(net_lo_[n], net_hi_[n], -1);
}

void DensityState::activate_net(NetId n) {
  std::size_t lo = arrangement_.size();
  std::size_t hi = 0;
  for (const auto cell : netlist_->pins(n)) {
    const std::size_t pos = arrangement_.position_of(cell);
    lo = std::min(lo, pos);
    hi = std::max(hi, pos);
  }
  net_lo_[n] = lo;
  net_hi_[n] = hi;
  add_span(lo, hi, +1);
}

void DensityState::apply_swap(std::size_t p, std::size_t q) {
  MCOPT_DCHECK(p < arrangement_.size() && q < arrangement_.size(),
               "swap position out of range");
  if (p == q) return;
  touched_.clear();
  for (const std::size_t pos : {p, q}) {
    for (const NetId net : netlist_->nets_of(arrangement_.cell_at(pos))) {
      if (!touched_mark_[net]) {
        touched_mark_[net] = 1;
        touched_.push_back(net);
      }
    }
  }
  for (const NetId net : touched_) retire_net(net);
  arrangement_.swap_positions(p, q);
  for (const NetId net : touched_) {
    activate_net(net);
    touched_mark_[net] = 0;
  }
}

void DensityState::apply_move(std::size_t from, std::size_t to) {
  MCOPT_DCHECK(from < arrangement_.size() && to < arrangement_.size(),
               "move position out of range");
  if (from == to) return;
  touched_.clear();
  const auto lo = std::min(from, to);
  const auto hi = std::max(from, to);
  for (std::size_t pos = lo; pos <= hi; ++pos) {
    for (const NetId net : netlist_->nets_of(arrangement_.cell_at(pos))) {
      if (!touched_mark_[net]) {
        touched_mark_[net] = 1;
        touched_.push_back(net);
      }
    }
  }
  for (const NetId net : touched_) retire_net(net);
  arrangement_.move_position(from, to);
  for (const NetId net : touched_) {
    activate_net(net);
    touched_mark_[net] = 0;
  }
}

void DensityState::reset(Arrangement arrangement) {
  if (arrangement.size() != netlist_->num_cells()) {
    throw std::invalid_argument(
        "DensityState::reset: arrangement size != netlist cell count");
  }
  arrangement_ = std::move(arrangement);
  rebuild();
}

bool DensityState::verify() const {
  if (!arrangement_.is_consistent()) return false;
  DensityState fresh{*netlist_, arrangement_};
  if (fresh.density() != density()) return false;
  if (fresh.total_span_ != total_span_) return false;
  return fresh.cuts_ == cuts_ && fresh.net_lo_ == net_lo_ &&
         fresh.net_hi_ == net_hi_;
}

int density_of(const Netlist& netlist, const Arrangement& arrangement) {
  return DensityState{netlist, arrangement}.density();
}

}  // namespace mcopt::linarr
