#include "linarr/density.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"

namespace mcopt::linarr {

DensityState::DensityState(const Netlist& netlist, Arrangement arrangement)
    : netlist_(&netlist), arrangement_(std::move(arrangement)) {
  if (arrangement_.size() != netlist.num_cells()) {
    throw std::invalid_argument(
        "DensityState: arrangement size != netlist cell count");
  }
  net_lo_.resize(netlist.num_nets());
  net_hi_.resize(netlist.num_nets());
  rebuild();
  reserve_scratch();
}

DensityState::DensityState(const DensityState& other)
    : netlist_(other.netlist_),
      arrangement_(other.arrangement_),
      net_lo_(other.net_lo_),
      net_hi_(other.net_hi_),
      cuts_(other.cuts_),
      cut_histogram_(other.cut_histogram_),
      max_cut_(other.max_cut_),
      total_span_(other.total_span_) {
  MCOPT_DCHECK(!other.speculating(), "copying a speculating DensityState");
  reserve_scratch();
}

DensityState& DensityState::operator=(const DensityState& other) {
  if (this == &other) return *this;
  MCOPT_DCHECK(!other.speculating(), "copying a speculating DensityState");
  netlist_ = other.netlist_;
  arrangement_ = other.arrangement_;
  net_lo_ = other.net_lo_;
  net_hi_ = other.net_hi_;
  cuts_ = other.cuts_;
  cut_histogram_ = other.cut_histogram_;
  max_cut_ = other.max_cut_;
  total_span_ = other.total_span_;
  spec_kind_ = SpecKind::kNone;
  touched_.clear();
  spec_clear_scratch();
  reserve_scratch();
  return *this;
}

void DensityState::reserve_scratch() {
  // A move touches at most every net and every boundary, so one
  // reservation up front keeps every per-move scratch buffer
  // allocation-free for the life of the state (including clones — vector
  // copies shrink capacity to size, which is zero for empty scratch).
  const std::size_t nets = netlist_->num_nets();
  const std::size_t boundaries = cuts_.size();
  touched_.reserve(nets);
  touched_mark_.assign(nets, 0);
  spec_nets_.reserve(nets);
  spec_new_lo_.reserve(nets);
  spec_new_hi_.reserve(nets);
  spec_boundaries_.reserve(boundaries);
  spec_removed_values_.reserve(boundaries);
  boundary_delta_.assign(boundaries, 0);
  boundary_mark_.assign(boundaries, 0);
  removed_at_.assign(cut_histogram_.size(), 0);
}

bool DensityState::scratch_reserved() const noexcept {
  const std::size_t nets = netlist_->num_nets();
  const std::size_t boundaries = cuts_.size();
  return touched_.capacity() >= nets && touched_mark_.size() == nets &&
         spec_nets_.capacity() >= nets && spec_new_lo_.capacity() >= nets &&
         spec_new_hi_.capacity() >= nets &&
         spec_boundaries_.capacity() >= boundaries &&
         spec_removed_values_.capacity() >= boundaries &&
         boundary_delta_.size() == boundaries &&
         boundary_mark_.size() == boundaries &&
         removed_at_.size() == cut_histogram_.size();
}

void DensityState::rebuild() {
  const std::size_t n = arrangement_.size();
  cuts_.assign(n > 0 ? n - 1 : 0, 0);
  cut_histogram_.assign(netlist_->num_nets() + 2, 0);
  if (!cuts_.empty()) {
    cut_histogram_[0] = static_cast<int>(cuts_.size());
  }
  max_cut_ = 0;
  total_span_ = 0;
  for (NetId net = 0; net < netlist_->num_nets(); ++net) {
    activate_net(net);
  }
}

int DensityState::density() const noexcept {
  while (max_cut_ > 0 &&
         cut_histogram_[static_cast<std::size_t>(max_cut_)] == 0) {
    --max_cut_;
  }
  return max_cut_;
}

// mcopt: hot
void DensityState::bump_boundary(std::size_t b, int delta) {
  const int old_cut = cuts_[b];
  const int new_cut = old_cut + delta;
  cuts_[b] = new_cut;
  --cut_histogram_[static_cast<std::size_t>(old_cut)];
  ++cut_histogram_[static_cast<std::size_t>(new_cut)];
  if (new_cut > max_cut_) max_cut_ = new_cut;
  total_span_ += delta;
}

// mcopt: hot
void DensityState::add_span(std::size_t lo, std::size_t hi, int delta) {
  for (std::size_t b = lo; b < hi; ++b) bump_boundary(b, delta);
}

// mcopt: hot
void DensityState::retire_net(NetId n) {
  add_span(net_lo_[n], net_hi_[n], -1);
}

// mcopt: hot
void DensityState::activate_net(NetId n) {
  std::size_t lo = arrangement_.size();
  std::size_t hi = 0;
  for (const auto cell : netlist_->pins(n)) {
    const std::size_t pos = arrangement_.position_of(cell);
    lo = std::min(lo, pos);
    hi = std::max(hi, pos);
  }
  net_lo_[n] = lo;
  net_hi_[n] = hi;
  add_span(lo, hi, +1);
}

// mcopt: hot
void DensityState::apply_swap(std::size_t p, std::size_t q) {
  MCOPT_DCHECK(p < arrangement_.size() && q < arrangement_.size(),
               "swap position out of range");
  if (p == q) return;
  touched_.clear();
  for (const std::size_t pos : {p, q}) {
    for (const NetId net : netlist_->nets_of(arrangement_.cell_at(pos))) {
      if (!touched_mark_[net]) {
        touched_mark_[net] = 1;
        touched_.push_back(net);  // mcopt-lint: allow(hot-loop-alloc)
      }
    }
  }
  for (const NetId net : touched_) retire_net(net);
  arrangement_.swap_positions(p, q);
  for (const NetId net : touched_) {
    activate_net(net);
    touched_mark_[net] = 0;
  }
}

// mcopt: hot
void DensityState::apply_move(std::size_t from, std::size_t to) {
  MCOPT_DCHECK(from < arrangement_.size() && to < arrangement_.size(),
               "move position out of range");
  if (from == to) return;
  touched_.clear();
  const auto lo = std::min(from, to);
  const auto hi = std::max(from, to);
  for (std::size_t pos = lo; pos <= hi; ++pos) {
    for (const NetId net : netlist_->nets_of(arrangement_.cell_at(pos))) {
      if (!touched_mark_[net]) {
        touched_mark_[net] = 1;
        touched_.push_back(net);  // mcopt-lint: allow(hot-loop-alloc)
      }
    }
  }
  for (const NetId net : touched_) retire_net(net);
  arrangement_.move_position(from, to);
  for (const NetId net : touched_) {
    activate_net(net);
    touched_mark_[net] = 0;
  }
}

// mcopt: hot
void DensityState::spec_touch_range(std::size_t lo, std::size_t hi,
                                    int delta) {
  for (std::size_t b = lo; b < hi; ++b) {
    if (!boundary_mark_[b]) {
      boundary_mark_[b] = 1;
      // Reserved to cuts_.size() up front; never reallocates.
      spec_boundaries_.push_back(b);  // mcopt-lint: allow(hot-loop-alloc)
    }
    boundary_delta_[b] += delta;
  }
}

// mcopt: hot
void DensityState::spec_record_net(NetId n, std::size_t new_lo,
                                   std::size_t new_hi) {
  const std::size_t old_lo = net_lo_[n];
  const std::size_t old_hi = net_hi_[n];
  if (new_lo == old_lo && new_hi == old_hi) return;
  // Reserved to num_nets() up front; never reallocates.
  spec_nets_.push_back(n);           // mcopt-lint: allow(hot-loop-alloc)
  spec_new_lo_.push_back(new_lo);    // mcopt-lint: allow(hot-loop-alloc)
  spec_new_hi_.push_back(new_hi);    // mcopt-lint: allow(hot-loop-alloc)
  // Touch only the symmetric difference of the old boundary span
  // [old_lo, old_hi) and the new one [new_lo, new_hi): the shared middle
  // keeps its crossing count, so a long net sliding by one position costs
  // O(1) boundary updates instead of O(span).
  const std::size_t ilo = std::max(old_lo, new_lo);
  const std::size_t ihi = std::min(old_hi, new_hi);
  if (ilo < ihi) {
    spec_touch_range(old_lo, ilo, -1);
    spec_touch_range(ihi, old_hi, -1);
    spec_touch_range(new_lo, ilo, +1);
    spec_touch_range(ihi, new_hi, +1);
  } else {
    spec_touch_range(old_lo, old_hi, -1);
    spec_touch_range(new_lo, new_hi, +1);
  }
}

// mcopt: hot
void DensityState::spec_finish() {
  long long span_delta = 0;
  for (std::size_t i = 0; i < spec_nets_.size(); ++i) {
    const NetId n = spec_nets_[i];
    span_delta += static_cast<long long>(spec_new_hi_[i] - spec_new_lo_[i]) -
                  static_cast<long long>(net_hi_[n] - net_lo_[n]);
  }
  spec_total_span_ = total_span_ + span_delta;

  // Candidate density.  Boundaries outside the changed window keep their
  // cut, so the candidate is the max of (a) the new cuts inside the window
  // and (b) the largest committed cut value that still has at least one
  // boundary *outside* the window.  removed_at_[v] counts changed
  // boundaries whose committed cut is v, so cut_histogram_[v] -
  // removed_at_[v] is the count of unchanged boundaries at v; we scan down
  // from the committed density until that is nonzero.
  const int cur = density();
  int window_max = 0;
  for (const std::size_t b : spec_boundaries_) {
    const int dz = boundary_delta_[b];
    if (dz == 0) continue;
    const int old_cut = cuts_[b];
    ++removed_at_[static_cast<std::size_t>(old_cut)];
    // Reserved to cuts_.size() up front; never reallocates.
    spec_removed_values_.push_back(old_cut);  // mcopt-lint: allow(hot-loop-alloc)
    window_max = std::max(window_max, old_cut + dz);
  }
  if (window_max >= cur) {
    spec_density_ = window_max;
  } else {
    int v = cur;
    while (v > window_max &&
           cut_histogram_[static_cast<std::size_t>(v)] -
                   removed_at_[static_cast<std::size_t>(v)] ==
               0) {
      --v;
    }
    spec_density_ = v;  // v >= window_max on exit
  }
}

// mcopt: hot
void DensityState::speculate_swap(std::size_t p, std::size_t q) {
  MCOPT_DCHECK(p < arrangement_.size() && q < arrangement_.size(),
               "swap position out of range");
  MCOPT_DCHECK(p != q, "speculate_swap requires distinct positions");
  MCOPT_DCHECK(!speculating(), "speculation already pending");
  spec_kind_ = SpecKind::kSwap;
  spec_a_ = p;
  spec_b_ = q;
  touched_.clear();
  // Origin marks: 1 = incident to the cell at p only, 2 = at q only,
  // 3 = both.  touched_ is reserved to num_nets() up front.
  for (const NetId net : netlist_->nets_of(arrangement_.cell_at(p))) {
    if (!touched_mark_[net]) {
      touched_mark_[net] = 1;
      touched_.push_back(net);  // mcopt-lint: allow(hot-loop-alloc)
    }
  }
  for (const NetId net : netlist_->nets_of(arrangement_.cell_at(q))) {
    if (!touched_mark_[net]) {
      touched_mark_[net] = 2;
      touched_.push_back(net);  // mcopt-lint: allow(hot-loop-alloc)
    } else if (touched_mark_[net] == 1) {
      touched_mark_[net] = 3;
    }
  }
  for (const NetId net : touched_) {
    const char origin = touched_mark_[net];
    touched_mark_[net] = 0;
    // A net with pins at both p and q keeps the same position multiset
    // after the swap: extrema provably unchanged.
    if (origin == 3) continue;
    const std::size_t lo = net_lo_[net];
    const std::size_t hi = net_hi_[net];
    const std::size_t moved = origin == 1 ? p : q;  // this net's moving pin
    const std::size_t dest = origin == 1 ? q : p;   // ...and its new position
    // An interior pin (strictly between the extrema, which other pins
    // attain) landing inside [lo, hi] cannot move either extremum.
    if (lo < moved && moved < hi && lo <= dest && dest <= hi) continue;
    std::size_t new_lo = arrangement_.size();
    std::size_t new_hi = 0;
    for (const CellId cell : netlist_->pins(net)) {
      std::size_t pos = arrangement_.position_of(cell);
      if (pos == p) {
        pos = q;
      } else if (pos == q) {
        pos = p;
      }
      new_lo = std::min(new_lo, pos);
      new_hi = std::max(new_hi, pos);
    }
    spec_record_net(net, new_lo, new_hi);
  }
  spec_finish();
}

// mcopt: hot
void DensityState::speculate_move(std::size_t from, std::size_t to) {
  MCOPT_DCHECK(from < arrangement_.size() && to < arrangement_.size(),
               "move position out of range");
  MCOPT_DCHECK(from != to, "speculate_move requires distinct positions");
  MCOPT_DCHECK(!speculating(), "speculation already pending");
  spec_kind_ = SpecKind::kMove;
  spec_a_ = from;
  spec_b_ = to;
  touched_.clear();
  const std::size_t w_lo = std::min(from, to);
  const std::size_t w_hi = std::max(from, to);
  for (std::size_t pos = w_lo; pos <= w_hi; ++pos) {
    for (const NetId net : netlist_->nets_of(arrangement_.cell_at(pos))) {
      if (!touched_mark_[net]) {
        touched_mark_[net] = 1;
        touched_.push_back(net);  // mcopt-lint: allow(hot-loop-alloc)
      }
    }
  }
  for (const NetId net : touched_) {
    touched_mark_[net] = 0;
    std::size_t new_lo = arrangement_.size();
    std::size_t new_hi = 0;
    for (const CellId cell : netlist_->pins(net)) {
      const std::size_t pos = arrangement_.position_of(cell);
      std::size_t npos;
      if (pos == from) {
        npos = to;
      } else if (from < to) {
        npos = (pos > from && pos <= to) ? pos - 1 : pos;
      } else {
        npos = (pos >= to && pos < from) ? pos + 1 : pos;
      }
      new_lo = std::min(new_lo, npos);
      new_hi = std::max(new_hi, npos);
    }
    spec_record_net(net, new_lo, new_hi);
  }
  spec_finish();
}

// mcopt: hot
void DensityState::commit_speculation() {
  MCOPT_DCHECK(speculating(), "commit without a pending speculation");
  for (const std::size_t b : spec_boundaries_) {
    boundary_mark_[b] = 0;
    const int dz = boundary_delta_[b];
    boundary_delta_[b] = 0;
    if (dz == 0) continue;  // gained and lost the same crossings
    const int old_cut = cuts_[b];
    const int new_cut = old_cut + dz;
    cuts_[b] = new_cut;
    // One histogram update per changed boundary — bump_boundary would pay
    // one per crossing *unit*.
    --cut_histogram_[static_cast<std::size_t>(old_cut)];
    ++cut_histogram_[static_cast<std::size_t>(new_cut)];
  }
  spec_boundaries_.clear();
  for (const int v : spec_removed_values_) {
    removed_at_[static_cast<std::size_t>(v)] = 0;
  }
  spec_removed_values_.clear();
  for (std::size_t i = 0; i < spec_nets_.size(); ++i) {
    const NetId n = spec_nets_[i];
    net_lo_[n] = spec_new_lo_[i];
    net_hi_[n] = spec_new_hi_[i];
  }
  spec_nets_.clear();
  spec_new_lo_.clear();
  spec_new_hi_.clear();
  if (spec_kind_ == SpecKind::kSwap) {
    arrangement_.swap_positions(spec_a_, spec_b_);
  } else {
    arrangement_.move_position(spec_a_, spec_b_);
  }
  max_cut_ = spec_density_;  // exact, not just an upper bound
  total_span_ = spec_total_span_;
  spec_kind_ = SpecKind::kNone;
}

// mcopt: hot
void DensityState::discard_speculation() {
  MCOPT_DCHECK(speculating(), "discard without a pending speculation");
  spec_clear_scratch();
  spec_kind_ = SpecKind::kNone;
}

// mcopt: hot
void DensityState::spec_clear_scratch() {
  for (const std::size_t b : spec_boundaries_) {
    boundary_delta_[b] = 0;
    boundary_mark_[b] = 0;
  }
  spec_boundaries_.clear();
  for (const int v : spec_removed_values_) {
    removed_at_[static_cast<std::size_t>(v)] = 0;
  }
  spec_removed_values_.clear();
  spec_nets_.clear();
  spec_new_lo_.clear();
  spec_new_hi_.clear();
}

void DensityState::reset(Arrangement arrangement) {
  if (arrangement.size() != netlist_->num_cells()) {
    throw std::invalid_argument(
        "DensityState::reset: arrangement size != netlist cell count");
  }
  arrangement_ = std::move(arrangement);
  rebuild();
}

bool DensityState::verify() const {
  if (speculating()) return false;
  if (!arrangement_.is_consistent()) return false;
  DensityState fresh{*netlist_, arrangement_};
  if (fresh.density() != density()) return false;
  if (fresh.total_span_ != total_span_) return false;
  return fresh.cuts_ == cuts_ && fresh.net_lo_ == net_lo_ &&
         fresh.net_hi_ == net_hi_;
}

int density_of(const Netlist& netlist, const Arrangement& arrangement) {
  return DensityState{netlist, arrangement}.density();
}

}  // namespace mcopt::linarr
