// Density bookkeeping for a netlist under a linear arrangement.
//
// A net whose pins occupy positions [lo, hi] crosses exactly the boundaries
// lo, lo+1, ..., hi-1 (boundary b separates positions b and b+1).  The
// *density* of an arrangement is the maximum crossing count over all n-1
// boundaries — the quantity GOLA/NOLA minimize (§4.1).  The *total span*
// (sum of crossing counts == sum of net extents) is also maintained; it is
// the wirelength-style objective used by an ablation bench.
//
// DensityState keeps, incrementally:
//   * per-net position extrema (lo, hi),
//   * per-boundary crossing counts,
//   * a histogram of crossing counts with a lazily-decremented maximum, so
//     density() is O(1) amortized after O(pins-touched) move updates.
//
// Moves are applied through DensityState so the arrangement and the counts
// never diverge; `verify()` recomputes everything from scratch for tests.
//
// Two evaluation paths:
//   * apply_swap/apply_move mutate the committed state in place (the
//     original PR-0 path, kept as the semantic reference: self-inverse,
//     obviously correct, used by the differential fuzz tests);
//   * speculate_swap/speculate_move evaluate the same move into a
//     touched-net journal without committing anything.  The candidate
//     density/total span are exact integers, so a Metropolis loop can test
//     them, then commit_speculation() in O(touched) or
//     discard_speculation() in O(touched-scratch-clears) — a rejected
//     proposal never writes cuts_, the histogram, or the arrangement.
//     Speculation also skips nets whose extrema provably cannot change and
//     updates only the end segments a span actually gained or lost, with
//     one histogram update per changed boundary instead of one per crossing
//     unit, so accepted moves are cheaper than the apply path too.
#pragma once

#include <cstddef>
#include <vector>

#include "linarr/arrangement.hpp"
#include "netlist/netlist.hpp"

namespace mcopt::linarr {

using netlist::NetId;
using netlist::Netlist;

class DensityState {
 public:
  /// Binds to `netlist` (which must outlive this object) and computes all
  /// counts for `arrangement`.
  DensityState(const Netlist& netlist, Arrangement arrangement);

  /// Copies re-reserve every per-move scratch buffer: vector copies shrink
  /// capacity to size, and the scratch vectors are empty between moves, so
  /// a defaulted copy (Problem::clone()'s path into the parallel engine)
  /// would silently re-allocate on the worker's first hot-loop move.
  DensityState(const DensityState& other);
  DensityState& operator=(const DensityState& other);
  DensityState(DensityState&&) noexcept = default;
  DensityState& operator=(DensityState&&) noexcept = default;
  ~DensityState() = default;

  [[nodiscard]] const Arrangement& arrangement() const noexcept {
    return arrangement_;
  }
  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }

  /// Max crossing count over all boundaries; 0 when n == 1.
  [[nodiscard]] int density() const noexcept;

  /// Sum of crossing counts over all boundaries (== sum of net spans).
  [[nodiscard]] long long total_span() const noexcept { return total_span_; }

  /// Crossing count at boundary b (between positions b and b+1).
  [[nodiscard]] int cut_at(std::size_t boundary) const noexcept {
    return cuts_[boundary];
  }

  /// Applies a pairwise interchange of positions p and q.  O(pins of nets
  /// incident to the two cells).  Self-inverse: applying twice restores.
  void apply_swap(std::size_t p, std::size_t q);

  /// Applies a single-exchange (remove at `from`, insert at `to`).
  /// O(pins of nets incident to the cells in [min(from,to), max(from,to)]).
  void apply_move(std::size_t from, std::size_t to);

  /// Speculatively evaluates a pairwise interchange of positions p and q
  /// (p != q): records the touched-net journal and the exact candidate
  /// density / total span, but commits nothing.  Exactly one of
  /// commit_speculation()/discard_speculation() must follow before the
  /// next move (speculative or applied).
  void speculate_swap(std::size_t p, std::size_t q);

  /// Speculatively evaluates a single-exchange (remove at `from`, insert
  /// at `to`, from != to), same contract as speculate_swap().
  void speculate_move(std::size_t from, std::size_t to);

  /// Exact density of the candidate arrangement recorded by the pending
  /// speculation.
  [[nodiscard]] int speculative_density() const noexcept {
    return spec_density_;
  }

  /// Exact total span of the candidate arrangement recorded by the
  /// pending speculation.
  [[nodiscard]] long long speculative_total_span() const noexcept {
    return spec_total_span_;
  }

  /// True while a speculation is pending.
  [[nodiscard]] bool speculating() const noexcept {
    return spec_kind_ != SpecKind::kNone;
  }

  /// Commits the pending speculation in O(touched): one histogram update
  /// per changed boundary, extrema from the journal, then the arrangement
  /// move itself.
  void commit_speculation();

  /// Drops the pending speculation; only scratch marks are cleared.
  void discard_speculation();

  /// Replaces the arrangement wholesale (full recount).
  void reset(Arrangement arrangement);

  /// Recomputes from scratch and compares with the incremental state.
  /// Returns true when they agree (and no speculation is pending); tests
  /// assert this after random moves.
  [[nodiscard]] bool verify() const;

  /// True when every per-move scratch buffer holds its full reservation;
  /// the clone regression test asserts this so cloned workers stay
  /// allocation-free on the hot path.
  [[nodiscard]] bool scratch_reserved() const noexcept;

 private:
  enum class SpecKind : unsigned char { kNone, kSwap, kMove };

  void rebuild();
  void reserve_scratch();
  void retire_net(NetId n);    // remove net's span from cuts_/histogram
  void activate_net(NetId n);  // recompute extrema, add span back
  void add_span(std::size_t lo, std::size_t hi, int delta);
  void bump_boundary(std::size_t b, int delta);
  void spec_record_net(NetId n, std::size_t new_lo, std::size_t new_hi);
  void spec_touch_range(std::size_t lo, std::size_t hi, int delta);
  void spec_finish();
  void spec_clear_scratch();

  const Netlist* netlist_;
  Arrangement arrangement_;
  std::vector<std::size_t> net_lo_;
  std::vector<std::size_t> net_hi_;
  std::vector<int> cuts_;            // size n-1
  std::vector<int> cut_histogram_;   // value -> #boundaries, size num_nets+1
  mutable int max_cut_ = 0;          // lazily tightened upper bound
  long long total_span_ = 0;
  std::vector<NetId> touched_;       // scratch, de-duplicated per move
  std::vector<char> touched_mark_;

  // Speculation journal (SoA) and scratch.  All buffers are reserved once
  // (constructor / copy) and only cleared between moves, so the
  // speculate/commit/discard cycle is allocation-free.
  SpecKind spec_kind_ = SpecKind::kNone;
  std::size_t spec_a_ = 0;  // swap: positions; move: from -> to
  std::size_t spec_b_ = 0;
  int spec_density_ = 0;
  long long spec_total_span_ = 0;
  std::vector<NetId> spec_nets_;           // journal: net whose extrema move
  std::vector<std::size_t> spec_new_lo_;   //   parallel: candidate lo
  std::vector<std::size_t> spec_new_hi_;   //   parallel: candidate hi
  std::vector<std::size_t> spec_boundaries_;  // changed boundaries, deduped
  std::vector<int> boundary_delta_;        // per boundary, zero outside spec
  std::vector<char> boundary_mark_;
  std::vector<int> removed_at_;     // old cut value -> #changed boundaries
  std::vector<int> spec_removed_values_;   // values touched in removed_at_
};

/// One-shot density of an arrangement (builds a temporary state).
[[nodiscard]] int density_of(const Netlist& netlist,
                             const Arrangement& arrangement);

}  // namespace mcopt::linarr
