// Density bookkeeping for a netlist under a linear arrangement.
//
// A net whose pins occupy positions [lo, hi] crosses exactly the boundaries
// lo, lo+1, ..., hi-1 (boundary b separates positions b and b+1).  The
// *density* of an arrangement is the maximum crossing count over all n-1
// boundaries — the quantity GOLA/NOLA minimize (§4.1).  The *total span*
// (sum of crossing counts == sum of net extents) is also maintained; it is
// the wirelength-style objective used by an ablation bench.
//
// DensityState keeps, incrementally:
//   * per-net position extrema (lo, hi),
//   * per-boundary crossing counts,
//   * a histogram of crossing counts with a lazily-decremented maximum, so
//     density() is O(1) amortized after O(pins-touched) move updates.
//
// Moves are applied through DensityState so the arrangement and the counts
// never diverge; `verify()` recomputes everything from scratch for tests.
#pragma once

#include <cstddef>
#include <vector>

#include "linarr/arrangement.hpp"
#include "netlist/netlist.hpp"

namespace mcopt::linarr {

using netlist::NetId;
using netlist::Netlist;

class DensityState {
 public:
  /// Binds to `netlist` (which must outlive this object) and computes all
  /// counts for `arrangement`.
  DensityState(const Netlist& netlist, Arrangement arrangement);

  [[nodiscard]] const Arrangement& arrangement() const noexcept {
    return arrangement_;
  }
  [[nodiscard]] const Netlist& netlist() const noexcept { return *netlist_; }

  /// Max crossing count over all boundaries; 0 when n == 1.
  [[nodiscard]] int density() const noexcept;

  /// Sum of crossing counts over all boundaries (== sum of net spans).
  [[nodiscard]] long long total_span() const noexcept { return total_span_; }

  /// Crossing count at boundary b (between positions b and b+1).
  [[nodiscard]] int cut_at(std::size_t boundary) const noexcept {
    return cuts_[boundary];
  }

  /// Applies a pairwise interchange of positions p and q.  O(pins of nets
  /// incident to the two cells).  Self-inverse: applying twice restores.
  void apply_swap(std::size_t p, std::size_t q);

  /// Applies a single-exchange (remove at `from`, insert at `to`).
  /// O(pins of nets incident to the cells in [min(from,to), max(from,to)]).
  void apply_move(std::size_t from, std::size_t to);

  /// Replaces the arrangement wholesale (full recount).
  void reset(Arrangement arrangement);

  /// Recomputes from scratch and compares with the incremental state.
  /// Returns true when they agree; tests assert this after random moves.
  [[nodiscard]] bool verify() const;

 private:
  void rebuild();
  void retire_net(NetId n);    // remove net's span from cuts_/histogram
  void activate_net(NetId n);  // recompute extrema, add span back
  void add_span(std::size_t lo, std::size_t hi, int delta);
  void bump_boundary(std::size_t b, int delta);

  const Netlist* netlist_;
  Arrangement arrangement_;
  std::vector<std::size_t> net_lo_;
  std::vector<std::size_t> net_hi_;
  std::vector<int> cuts_;            // size n-1
  std::vector<int> cut_histogram_;   // value -> #boundaries, size num_nets+1
  mutable int max_cut_ = 0;          // lazily tightened upper bound
  long long total_span_ = 0;
  std::vector<NetId> touched_;       // scratch, de-duplicated per move
  std::vector<char> touched_mark_;
};

/// One-shot density of an arrangement (builds a temporary state).
[[nodiscard]] int density_of(const Netlist& netlist,
                             const Arrangement& arrangement);

}  // namespace mcopt::linarr
