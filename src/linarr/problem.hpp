// GOLA / NOLA as a core::Problem (§4.1).
//
// The solution is an arrangement; the cost is its density (or, optionally,
// the total span — an ablation objective).  Two perturbation strategies
// from the paper are available: pairwise interchange (used throughout §4)
// and single exchange, i.e. remove-and-reinsert ([COHO83a]'s alternative).
// The same move kind drives both the random perturbations of Figures 1/2
// and the systematic descent of Figure 2, as §4.2.1 prescribes ("locally
// optimal with respect to the perturbation strategy").
#pragma once

#include <cstddef>
#include <memory>

#include "core/problem.hpp"
#include "linarr/density.hpp"

namespace mcopt::linarr {

enum class MoveKind {
  kPairwiseInterchange,  ///< swap the cells at two random positions
  kSingleExchange,       ///< remove one cell, reinsert at a random position
};

enum class Objective {
  kDensity,    ///< the paper's h: max crossings over boundaries
  kTotalSpan,  ///< ablation: sum of crossings (wirelength-like)
};

class LinArrProblem final : public core::Problem {
 public:
  /// Starts from `start`; `netlist` must outlive the problem.
  /// `path` picks the proposal evaluation strategy (see core::EvalPath);
  /// both paths produce bit-identical cost trajectories.
  LinArrProblem(const Netlist& netlist, Arrangement start,
                MoveKind move_kind = MoveKind::kPairwiseInterchange,
                Objective objective = Objective::kDensity,
                core::EvalPath path = core::EvalPath::kSpeculative);

  // core::Problem
  [[nodiscard]] double cost() const override;
  double propose(util::Rng& rng) override;
  void accept() override;
  void reject() override;
  void descend(util::WorkBudget& budget) override;
  void randomize(util::Rng& rng) override;
  [[nodiscard]] core::Snapshot snapshot() const override;
  void snapshot_into(core::Snapshot& out) const override;
  void restore(const core::Snapshot& snap) override;
  void check_invariants() const override;
  /// Deep copy sharing only the immutable netlist.
  [[nodiscard]] std::unique_ptr<core::Problem> clone() const override;

  /// Read access for reporting and tests.
  [[nodiscard]] const DensityState& state() const noexcept { return state_; }
  [[nodiscard]] const Arrangement& arrangement() const noexcept {
    return state_.arrangement();
  }
  [[nodiscard]] MoveKind move_kind() const noexcept { return move_kind_; }
  [[nodiscard]] core::EvalPath eval_path() const noexcept { return path_; }

  /// True when no pairwise interchange (resp. single exchange) lowers the
  /// cost; Figure 2 tests assert this postcondition of descend().  O(n^2)
  /// evaluations.
  [[nodiscard]] bool is_local_optimum();

 private:
  double objective_value() const noexcept;
  double speculative_objective() const noexcept;
  /// Applies the pending move's inverse (apply-undo path only).
  void undo_pending();
  /// Speculatively evaluates swap/move (by move_kind_) of (a, b) and
  /// commits iff the candidate improves on `before`.  Returns true when
  /// committed.
  bool try_improving_move(std::size_t a, std::size_t b, double before);

  DensityState state_;
  MoveKind move_kind_;
  Objective objective_;
  core::EvalPath path_;

  enum class Pending { kNone, kSwap, kMove };
  Pending pending_ = Pending::kNone;
  std::size_t pending_a_ = 0;  // swap: positions; move: from -> to
  std::size_t pending_b_ = 0;
};

}  // namespace mcopt::linarr
