// The constructive heuristic of Goto, Cederbaum and Ting [GOTO77], as
// described in §4.2.2:
//
//   "The heuristic of Goto constructs the linear arrangement left to right.
//    It begins with the most lightly connected element and places this at
//    the leftmost position.  Let S be the set of nets in the elements
//    already placed [and] T the nets in the remaining elements not yet
//    placed.  The next element i to be placed is chosen such that |S ∩ T|
//    is minimum over all choices for i."
//
// |S ∩ T| after tentatively placing i is exactly the crossing count of the
// newly created boundary, so each step greedily minimizes the next
// boundary's cut.  Ties are broken by the fewest newly opened nets, then by
// the smallest cell id (deterministic output).
#pragma once

#include "linarr/arrangement.hpp"
#include "netlist/netlist.hpp"

namespace mcopt::linarr {

/// Builds Goto's arrangement for `netlist`.  O(n * (n + pins)).
[[nodiscard]] Arrangement goto_arrangement(const netlist::Netlist& netlist);

}  // namespace mcopt::linarr
