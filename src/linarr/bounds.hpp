// Density bounds and exact small-instance optima.
//
// The paper reports only *reductions*; these utilities bound how much
// reduction is possible at all, which the reproduction uses to verify that
// the Monte Carlo methods approach the attainable floor:
//
//  * degree bound — the first boundary's crossing count equals the number
//    of nets incident to the leftmost cell (every net reaches at least one
//    other cell), so density >= min_c degree(c) for every arrangement;
//  * span bound — a net with p pins spans at least p-1 boundaries, so the
//    total crossing mass is at least sum(p_i - 1) spread over n-1
//    boundaries: density >= ceil(sum(p_i - 1) / (n - 1));
//  * brute force — exact optimum by permutation enumeration, for tests and
//    gap reporting on small instances.
#pragma once

#include <cstddef>

#include "linarr/arrangement.hpp"
#include "netlist/netlist.hpp"

namespace mcopt::linarr {

/// max(degree bound, span bound); 0 for a net-free netlist.
[[nodiscard]] int density_lower_bound(const netlist::Netlist& netlist);

/// sum over nets of (pins - 1): a lower bound on the total span of any
/// arrangement (apply_swap-invariant mass of density.hpp's total_span()).
[[nodiscard]] long long total_span_lower_bound(const netlist::Netlist& netlist);

struct BruteForceResult {
  int density = 0;
  Arrangement arrangement;
};

/// Exact minimum density by permutation enumeration, skipping reversal
/// duplicates (density is reversal-invariant, so only orders with
/// front < back are evaluated).  Throws std::invalid_argument when the
/// netlist has more than `max_cells` cells (default 10).
[[nodiscard]] BruteForceResult brute_force_optimum(
    const netlist::Netlist& netlist, std::size_t max_cells = 10);

}  // namespace mcopt::linarr
