#include "linarr/goto_heuristic.hpp"

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace mcopt::linarr {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

Arrangement goto_arrangement(const Netlist& netlist) {
  const std::size_t n = netlist.num_cells();
  std::vector<CellId> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  // placed_pins[net]: how many of the net's pins are already placed.
  std::vector<std::size_t> placed_pins(netlist.num_nets(), 0);
  // Number of "open" nets: some but not all pins placed.  Open nets all
  // cross the next boundary; a candidate i additionally opens its untouched
  // nets and closes nets it completes.
  std::size_t open_nets = 0;

  // Seed: the most lightly connected element (fewest incident nets).
  CellId seed = 0;
  for (CellId c = 1; c < n; ++c) {
    if (netlist.degree(c) < netlist.degree(seed)) seed = c;
  }

  auto place = [&](CellId c) {
    order.push_back(c);
    placed[c] = 1;
    for (const NetId net : netlist.nets_of(c)) {
      const std::size_t size = netlist.pins(net).size();
      if (placed_pins[net] == 0) ++open_nets;
      ++placed_pins[net];
      if (placed_pins[net] == size) --open_nets;
    }
  };

  place(seed);

  for (std::size_t step = 1; step < n; ++step) {
    auto best = static_cast<CellId>(n);  // sentinel
    long long best_cut = std::numeric_limits<long long>::max();
    long long best_opened = std::numeric_limits<long long>::max();
    for (CellId c = 0; c < n; ++c) {
      if (placed[c]) continue;
      long long opened = 0;
      long long closed = 0;
      for (const NetId net : netlist.nets_of(c)) {
        const std::size_t size = netlist.pins(net).size();
        if (placed_pins[net] == 0) {
          ++opened;  // size >= 2, so at least one pin remains unplaced
        } else if (placed_pins[net] + 1 == size) {
          ++closed;
        }
      }
      const long long cut =
          static_cast<long long>(open_nets) + opened - closed;
      if (cut < best_cut || (cut == best_cut && opened < best_opened)) {
        best = c;
        best_cut = cut;
        best_opened = opened;
      }
    }
    place(best);
  }

  return Arrangement::from_order(std::move(order));
}

}  // namespace mcopt::linarr
