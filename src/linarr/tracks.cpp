#include "linarr/tracks.hpp"

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <string>

#include "linarr/density.hpp"

namespace mcopt::linarr {

using netlist::NetId;
using netlist::Netlist;

TrackAssignment assign_tracks(const Netlist& netlist,
                              const Arrangement& arrangement) {
  TrackAssignment out;
  const std::size_t num_nets = netlist.num_nets();
  out.nets.resize(num_nets);
  for (NetId n = 0; n < num_nets; ++n) {
    std::size_t lo = arrangement.size();
    std::size_t hi = 0;
    for (const auto cell : netlist.pins(n)) {
      const std::size_t pos = arrangement.position_of(cell);
      lo = std::min(lo, pos);
      hi = std::max(hi, pos);
    }
    out.nets[n] = RoutedNet{n, lo, hi, 0};
  }

  // Left-edge: process intervals by increasing left end; first-fit onto the
  // lowest track whose previous net ends at or before this net's start
  // (abutment allowed — a net may begin in the column where another ends,
  // matching the boundary-crossing definition of density).
  std::vector<NetId> order(num_nets);
  for (NetId n = 0; n < num_nets; ++n) order[n] = n;
  std::sort(order.begin(), order.end(), [&](NetId a, NetId b) {
    if (out.nets[a].lo != out.nets[b].lo) return out.nets[a].lo < out.nets[b].lo;
    if (out.nets[a].hi != out.nets[b].hi) return out.nets[a].hi < out.nets[b].hi;
    return a < b;
  });

  std::vector<std::size_t> track_end;  // rightmost hi per track
  for (const NetId n : order) {
    RoutedNet& routed = out.nets[n];
    bool placed = false;
    for (std::size_t t = 0; t < track_end.size(); ++t) {
      if (track_end[t] <= routed.lo) {
        routed.track = t;
        track_end[t] = routed.hi;
        placed = true;
        break;
      }
    }
    if (!placed) {
      routed.track = track_end.size();
      track_end.push_back(routed.hi);
    }
  }
  out.num_tracks = track_end.size();
  return out;
}

bool is_valid_assignment(const TrackAssignment& assignment) {
  for (const RoutedNet& a : assignment.nets) {
    if (a.track >= assignment.num_tracks) return false;
    if (a.lo > a.hi) return false;
  }
  for (std::size_t i = 0; i < assignment.nets.size(); ++i) {
    for (std::size_t j = i + 1; j < assignment.nets.size(); ++j) {
      const RoutedNet& a = assignment.nets[i];
      const RoutedNet& b = assignment.nets[j];
      if (a.track != b.track) continue;
      // Same track: the boundary intervals [lo, hi) must not intersect.
      if (a.lo < b.hi && b.lo < a.hi) return false;
    }
  }
  return true;
}

void render_channel(std::ostream& out, const Netlist& netlist,
                    const Arrangement& arrangement,
                    const TrackAssignment& assignment) {
  const std::size_t width = arrangement.size();
  std::vector<std::string> grid(assignment.num_tracks,
                                std::string(width, ' '));
  for (const RoutedNet& net : assignment.nets) {
    auto& row = grid[net.track];
    for (std::size_t col = net.lo; col <= net.hi; ++col) row[col] = '-';
    for (const auto cell : netlist.pins(net.net)) {
      const std::size_t pos = arrangement.position_of(cell);
      row[pos] = static_cast<char>('0' + net.net % 10);
    }
  }
  for (std::size_t t = assignment.num_tracks; t-- > 0;) {
    out << "track " << t << " |" << grid[t] << "|\n";
  }
  out << "cells    ";
  for (std::size_t pos = 0; pos < width; ++pos) {
    out << static_cast<char>('0' + arrangement.cell_at(pos) % 10);
  }
  out << '\n';
}

}  // namespace mcopt::linarr
