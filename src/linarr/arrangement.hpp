// A linear arrangement: a bijection between cells and the positions
// 0..n-1 of a line (§4.1, "a linear ordering of these n elements").
// Maintains both directions (cell at position, position of cell) so swap
// and insertion moves are O(1) / O(distance).
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace mcopt::linarr {

using netlist::CellId;

class Arrangement {
 public:
  /// Identity arrangement: cell c at position c.  n must be >= 1.
  explicit Arrangement(std::size_t n);

  /// Uniformly random arrangement.
  [[nodiscard]] static Arrangement random(std::size_t n, util::Rng& rng);

  /// Adopts an explicit order (order[pos] = cell).  Throws
  /// std::invalid_argument unless it is a permutation of 0..n-1.
  [[nodiscard]] static Arrangement from_order(std::vector<CellId> order);

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  [[nodiscard]] CellId cell_at(std::size_t pos) const noexcept {
    return order_[pos];
  }
  [[nodiscard]] std::size_t position_of(CellId cell) const noexcept {
    return position_[cell];
  }

  /// Pairwise interchange of the cells at positions p and q.
  void swap_positions(std::size_t p, std::size_t q) noexcept;

  /// Single-exchange move: removes the cell at `from` and reinserts it at
  /// `to`, shifting the cells in between by one.
  void move_position(std::size_t from, std::size_t to) noexcept;

  /// order()[pos] == cell at pos.
  [[nodiscard]] const std::vector<CellId>& order() const noexcept {
    return order_;
  }

  /// Invariant check: order/position are inverse permutations.  Used by
  /// tests; O(n).
  [[nodiscard]] bool is_consistent() const noexcept;

 private:
  Arrangement() = default;
  std::vector<CellId> order_;        // position -> cell
  std::vector<std::size_t> position_;  // cell -> position
};

}  // namespace mcopt::linarr
