#include "linarr/bounds.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "linarr/density.hpp"

namespace mcopt::linarr {

using netlist::Netlist;

int density_lower_bound(const Netlist& netlist) {
  if (netlist.num_nets() == 0) return 0;

  std::size_t min_degree = netlist.degree(0);
  for (CellId c = 1; c < netlist.num_cells(); ++c) {
    min_degree = std::min(min_degree, netlist.degree(c));
  }

  const long long mass = total_span_lower_bound(netlist);
  const auto boundaries =
      static_cast<long long>(netlist.num_cells()) - 1;
  const long long span_bound =
      boundaries > 0 ? (mass + boundaries - 1) / boundaries : 0;

  return static_cast<int>(
      std::max<long long>(static_cast<long long>(min_degree), span_bound));
}

long long total_span_lower_bound(const Netlist& netlist) {
  long long mass = 0;
  for (netlist::NetId n = 0; n < netlist.num_nets(); ++n) {
    mass += static_cast<long long>(netlist.pins(n).size()) - 1;
  }
  return mass;
}

BruteForceResult brute_force_optimum(const Netlist& netlist,
                                     std::size_t max_cells) {
  const std::size_t n = netlist.num_cells();
  if (n > max_cells) {
    throw std::invalid_argument(
        "brute_force_optimum: instance too large for enumeration");
  }
  std::vector<CellId> order(n);
  std::iota(order.begin(), order.end(), CellId{0});

  BruteForceResult best{0, Arrangement::from_order(order)};
  best.density = density_of(netlist, best.arrangement);
  do {
    if (n > 1 && order.front() > order.back()) continue;  // reversal dup
    const Arrangement arr = Arrangement::from_order(order);
    const int d = density_of(netlist, arr);
    if (d < best.density) {
      best.density = d;
      best.arrangement = arr;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace mcopt::linarr
