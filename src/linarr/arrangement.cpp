#include "linarr/arrangement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace mcopt::linarr {

Arrangement::Arrangement(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Arrangement: n must be >= 1");
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), CellId{0});
  position_.resize(n);
  std::iota(position_.begin(), position_.end(), std::size_t{0});
}

Arrangement Arrangement::random(std::size_t n, util::Rng& rng) {
  Arrangement arr{n};
  rng.shuffle(arr.order_);
  for (std::size_t pos = 0; pos < n; ++pos) {
    arr.position_[arr.order_[pos]] = pos;
  }
  return arr;
}

Arrangement Arrangement::from_order(std::vector<CellId> order) {
  const std::size_t n = order.size();
  if (n == 0) throw std::invalid_argument("Arrangement: empty order");
  std::vector<std::size_t> position(n, n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const CellId c = order[pos];
    if (c >= n || position[c] != n) {
      throw std::invalid_argument("Arrangement: order is not a permutation");
    }
    position[c] = pos;
  }
  Arrangement arr;
  arr.order_ = std::move(order);
  arr.position_ = std::move(position);
  return arr;
}

void Arrangement::swap_positions(std::size_t p, std::size_t q) noexcept {
  std::swap(order_[p], order_[q]);
  position_[order_[p]] = p;
  position_[order_[q]] = q;
}

void Arrangement::move_position(std::size_t from, std::size_t to) noexcept {
  if (from == to) return;
  const CellId moving = order_[from];
  if (from < to) {
    for (std::size_t p = from; p < to; ++p) {
      order_[p] = order_[p + 1];
      position_[order_[p]] = p;
    }
  } else {
    for (std::size_t p = from; p > to; --p) {
      order_[p] = order_[p - 1];
      position_[order_[p]] = p;
    }
  }
  order_[to] = moving;
  position_[moving] = to;
}

bool Arrangement::is_consistent() const noexcept {
  if (order_.size() != position_.size()) return false;
  for (std::size_t pos = 0; pos < order_.size(); ++pos) {
    const CellId c = order_[pos];
    if (c >= order_.size() || position_[c] != pos) return false;
  }
  return true;
}

}  // namespace mcopt::linarr
