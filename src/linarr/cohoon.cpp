#include "linarr/cohoon.hpp"

#include "core/figure1.hpp"
#include "core/figure2.hpp"
#include "core/gfunction.hpp"

namespace mcopt::linarr {

core::RunResult cohoon_sahni(LinArrProblem& problem,
                             const CohoonOptions& options, util::Rng& rng) {
  core::GParams params;
  params.num_nets = problem.state().netlist().num_nets();
  const auto g = core::make_g(core::GClass::kCohoonSahni, params);

  if (options.strategy == Strategy::kFigure1) {
    core::Figure1Options fig1;
    fig1.budget = options.budget;
    return core::run_figure1(problem, *g, fig1, rng);
  }
  core::Figure2Options fig2;
  fig2.budget = options.budget;
  return core::run_figure2(problem, *g, fig2, rng);
}

}  // namespace mcopt::linarr
