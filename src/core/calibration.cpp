#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/budget.hpp"
#include "util/stats.hpp"

namespace mcopt::core {

MoveStatistics sample_move_statistics(Problem& problem, std::size_t samples,
                                      util::Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("sample_move_statistics: samples must be > 0");
  }
  const Snapshot origin = problem.snapshot();

  util::Summary costs;
  util::Summary deltas;
  util::Summary uphill;
  double h_i = problem.cost();
  costs.add(h_i);
  for (std::size_t i = 0; i < samples; ++i) {
    const double h_j = problem.propose(rng);
    problem.accept();  // infinite-temperature walk
    const double delta = h_j - h_i;
    deltas.add(delta);
    if (delta > 0.0) uphill.add(delta);
    costs.add(h_j);
    h_i = h_j;
  }
  problem.restore(origin);

  MoveStatistics stats;
  stats.mean_cost = costs.mean();
  stats.cost_stddev = costs.stddev();
  stats.mean_uphill_delta = uphill.mean();
  stats.max_uphill_delta = uphill.count() ? uphill.max() : 0.0;
  stats.delta_stddev = deltas.stddev();
  stats.uphill_fraction =
      static_cast<double>(uphill.count()) / static_cast<double>(samples);
  stats.samples = samples;
  return stats;
}

std::vector<double> white_schedule(const MoveStatistics& stats, unsigned k,
                                   double cold_acceptance) {
  if (k == 0) {
    throw std::invalid_argument("white_schedule: k must be >= 1");
  }
  if (!(cold_acceptance > 0.0) || !(cold_acceptance < 1.0)) {
    throw std::invalid_argument(
        "white_schedule: cold_acceptance must be in (0, 1)");
  }
  const double typical = stats.mean_uphill_delta;
  if (!(typical > 0.0)) {
    return std::vector<double>(k, 1.0);  // flat landscape: Y is irrelevant
  }
  const double hot = std::max(stats.delta_stddev, typical);
  // exp(-typical / cold) == cold_acceptance  =>  cold = typical / ln(1/p).
  const double cold = typical / std::log(1.0 / cold_acceptance);

  std::vector<double> ys(k);
  if (k == 1) {
    ys[0] = hot;
    return ys;
  }
  const double ratio =
      std::pow(std::min(cold, hot) / hot, 1.0 / static_cast<double>(k - 1));
  ys[0] = hot;
  for (unsigned t = 1; t < k; ++t) ys[t] = ys[t - 1] * ratio;
  return ys;
}

double measure_tick_rate(Problem& problem, std::size_t samples,
                         util::Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("measure_tick_rate: samples must be > 0");
  }
  util::Stopwatch watch;
  for (std::size_t i = 0; i < samples; ++i) {
    (void)problem.propose(rng);
    problem.reject();
  }
  const double elapsed = watch.seconds();
  // Sub-resolution timings (tiny sample counts) degrade to "very fast"
  // rather than dividing by zero.
  return static_cast<double>(samples) / std::max(elapsed, 1e-9);
}

}  // namespace mcopt::core
