// Temperature schedules (sequences of Y_i = k_b * T_i, §1).
//
// Two published shapes are provided: Kirkpatrick's geometric schedule
// ([KIRK83]: Y1 = 10, Y_i = 0.9 * Y_{i-1} for the circuit partition
// problem) and Golden-Skiscim's uniform grid ([GOLD84]: k uniformly
// distributed points in (0, tau], descending).
#pragma once

#include <vector>

namespace mcopt::core {

/// Geometric schedule: y1, y1*ratio, ..., k values.  Requires y1 > 0,
/// 0 < ratio, k >= 1.
[[nodiscard]] std::vector<double> geometric_schedule(double y1, double ratio,
                                                     unsigned k);

/// The [KIRK83] circuit-partition schedule: geometric_schedule(10, 0.9, 6).
[[nodiscard]] std::vector<double> kirkpatrick_schedule();

/// [GOLD84]: k uniformly spaced points in (0, tau], highest first:
/// tau, tau*(k-1)/k, ..., tau/k.  Requires tau > 0, k >= 1.
[[nodiscard]] std::vector<double> uniform_schedule(double tau, unsigned k);

/// Validates a user-supplied schedule: non-empty, all positive,
/// non-increasing.  Throws std::invalid_argument otherwise; returns its
/// argument so it can be used inline.
std::vector<double> validated_schedule(std::vector<double> ys);

}  // namespace mcopt::core
