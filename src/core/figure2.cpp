#include "core/figure2.hpp"

#include "util/invariant.hpp"

namespace mcopt::core {

RunResult run_figure2(Problem& problem, const GFunction& g,
                      const Figure2Options& options, util::Rng& rng) {
  const unsigned k = g.num_temperatures();
  util::WorkBudget budget{options.budget};

  RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = k == 0 ? 0 : 1;

  // By-value copy: private sampling counter, seed-pure trace (figure1.cpp).
  obs::Recorder rec =
      options.recorder != nullptr ? *options.recorder : obs::Recorder{};
  rec.begin_run(&result.metrics, k);
  // Level temperatures for the observables layer (0 for non-thermal g).
  for (unsigned t = 0; t < k; ++t) rec.stage_temperature(t, g.temperature(t));
  obs::ProfileScope profile_scope{rec, "figure2"};
  if (k > 0) {
    rec.stage_begin(0, 0, result.initial_cost, result.best_cost,
                    obs::StageReason::kStart);
  }

  unsigned temp = 0;
  std::uint64_t kick_counter = 0;
  std::uint64_t next_invariant_check = 0;

  auto advance_temperature = [&](obs::StageReason reason) -> bool {
    if (temp + 1 >= k) return false;
    ++temp;
    ++result.temperatures_visited;
    kick_counter = 0;
    rec.stage_begin(temp, budget.spent(), problem.cost(), result.best_cost,
                    reason);
    return true;
  };

  auto update_best = [&](double h, std::uint64_t tick) {
    if (h < result.best_cost) {
      result.best_cost = h;
      problem.snapshot_into(result.best_state);
      rec.new_best(temp, tick, result.best_cost);
    }
  };

  bool done = false;
  while (!done && !budget.exhausted() && k > 0) {
    // Step 2: descend to a local optimum (charges the budget internally).
    const std::uint64_t before = budget.spent();
    {
      obs::ProfileScope descent_scope{rec, "descent"};
      problem.descend(budget);
      descent_scope.add_ticks(budget.spent() - before);
    }
    const std::uint64_t descended = budget.spent() - before;
    result.descent_steps += descended;
    rec.descent_ticks(temp, descended);
    const double h_i = problem.cost();

    // Periodic deep verification (descend() leaves nothing pending).
    if constexpr (util::kInvariantsEnabled) {
      if (options.invariant_check_interval != 0 &&
          budget.spent() >= next_invariant_check) {
        if (rec.collecting_metrics()) {
          util::Stopwatch watch;
          problem.check_invariants();
          rec.invariant_check(watch.seconds());
        } else {
          problem.check_invariants();
        }
        ++result.invariants.executed;
        next_invariant_check =
            budget.spent() + options.invariant_check_interval;
      }
    }

    // Step 3.
    update_best(h_i, budget.spent());

    // Steps 4-5: kick until one is taken (then descend again) or the level
    // sequence / budget runs out.
    bool kicked = false;
    obs::ProfileScope kick_scope{rec, "kick"};
    while (!kicked && !budget.exhausted()) {
      while (budget.spent() >= budget.slice_end(k, temp) ||
             (options.equilibrium_kicks > 0 &&
              kick_counter >= options.equilibrium_kicks)) {
        const bool patience = options.equilibrium_kicks > 0 &&
                              kick_counter >= options.equilibrium_kicks;
        if (!advance_temperature(patience ? obs::StageReason::kPatience
                                          : obs::StageReason::kSlice)) {
          done = true;
          break;
        }
      }
      if (done) break;

      ++kick_counter;
      const double h_j = problem.propose(rng);
      budget.charge();
      kick_scope.add_ticks(1);
      ++result.proposals;
      const double delta = h_j - h_i;
      rec.proposal(temp, budget.spent(), h_j, result.best_cost, delta);

      if (rng.next_double() < g.probability(temp, h_i, h_j)) {
        problem.accept();
        ++result.accepts;
        if (h_j > h_i) ++result.uphill_accepts;
        rec.accept(temp, budget.spent(), h_j, result.best_cost, delta);
        update_best(h_j, budget.spent());
        kicked = true;  // back to Step 2
      } else {
        problem.reject();
        rec.reject(temp, budget.spent(), h_j, result.best_cost);
      }
    }
  }

  result.ticks = budget.spent();
  result.final_cost = problem.cost();
  profile_scope.add_ticks(result.ticks);
  rec.end_run();
  return result;
}

}  // namespace mcopt::core
