#include "core/figure2.hpp"

#include "util/invariant.hpp"

namespace mcopt::core {

RunResult run_figure2(Problem& problem, const GFunction& g,
                      const Figure2Options& options, util::Rng& rng) {
  const unsigned k = g.num_temperatures();
  util::WorkBudget budget{options.budget};

  RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = k == 0 ? 0 : 1;

  unsigned temp = 0;
  std::uint64_t kick_counter = 0;
  std::uint64_t next_invariant_check = 0;

  auto advance_temperature = [&]() -> bool {
    if (temp + 1 >= k) return false;
    ++temp;
    ++result.temperatures_visited;
    kick_counter = 0;
    return true;
  };

  auto update_best = [&](double h) {
    if (h < result.best_cost) {
      result.best_cost = h;
      problem.snapshot_into(result.best_state);
    }
  };

  bool done = false;
  while (!done && !budget.exhausted() && k > 0) {
    // Step 2: descend to a local optimum (charges the budget internally).
    const std::uint64_t before = budget.spent();
    problem.descend(budget);
    result.descent_steps += budget.spent() - before;
    const double h_i = problem.cost();

    // Periodic deep verification (descend() leaves nothing pending).
    if constexpr (util::kInvariantsEnabled) {
      if (options.invariant_check_interval != 0 &&
          budget.spent() >= next_invariant_check) {
        problem.check_invariants();
        ++result.invariants.executed;
        next_invariant_check =
            budget.spent() + options.invariant_check_interval;
      }
    }

    // Step 3.
    update_best(h_i);

    // Steps 4-5: kick until one is taken (then descend again) or the level
    // sequence / budget runs out.
    bool kicked = false;
    while (!kicked && !budget.exhausted()) {
      while (budget.spent() >= budget.slice_end(k, temp) ||
             (options.equilibrium_kicks > 0 &&
              kick_counter >= options.equilibrium_kicks)) {
        if (!advance_temperature()) {
          done = true;
          break;
        }
      }
      if (done) break;

      ++kick_counter;
      const double h_j = problem.propose(rng);
      budget.charge();
      ++result.proposals;

      if (rng.next_double() < g.probability(temp, h_i, h_j)) {
        problem.accept();
        ++result.accepts;
        if (h_j > h_i) ++result.uphill_accepts;
        update_best(h_j);
        kicked = true;  // back to Step 2
      } else {
        problem.reject();
      }
    }
  }

  result.ticks = budget.spent();
  result.final_cost = problem.cost();
  return result;
}

}  // namespace mcopt::core
