#include "core/schedule.hpp"

#include <stdexcept>

namespace mcopt::core {

std::vector<double> geometric_schedule(double y1, double ratio, unsigned k) {
  if (!(y1 > 0.0) || !(ratio > 0.0) || k == 0) {
    throw std::invalid_argument("geometric_schedule: need y1>0, ratio>0, k>=1");
  }
  std::vector<double> ys(k);
  ys[0] = y1;
  for (unsigned i = 1; i < k; ++i) ys[i] = ys[i - 1] * ratio;
  return ys;
}

std::vector<double> kirkpatrick_schedule() {
  return geometric_schedule(10.0, 0.9, 6);
}

std::vector<double> uniform_schedule(double tau, unsigned k) {
  if (!(tau > 0.0) || k == 0) {
    throw std::invalid_argument("uniform_schedule: need tau>0, k>=1");
  }
  std::vector<double> ys(k);
  for (unsigned i = 0; i < k; ++i) {
    ys[i] = tau * static_cast<double>(k - i) / static_cast<double>(k);
  }
  return ys;
}

std::vector<double> validated_schedule(std::vector<double> ys) {
  if (ys.empty()) {
    throw std::invalid_argument("schedule must be non-empty");
  }
  double prev = ys.front();
  for (const double y : ys) {
    if (!(y > 0.0)) throw std::invalid_argument("schedule values must be > 0");
    if (y > prev) {
      throw std::invalid_argument("schedule must be non-increasing");
    }
    prev = y;
  }
  return ys;
}

}  // namespace mcopt::core
