#include "core/figure1.hpp"

#include <stdexcept>

#include "util/invariant.hpp"

namespace mcopt::core {

RunResult run_figure1(Problem& problem, const GFunction& g,
                      const Figure1Options& options, util::Rng& rng) {
  if (options.gate_threshold == 0) {
    throw std::invalid_argument("figure1: gate_threshold must be >= 1");
  }
  const unsigned k = g.num_temperatures();
  util::WorkBudget budget{options.budget};

  RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = k == 0 ? 0 : 1;

  // By-value copy: gives this run a private sampling counter, so the trace
  // is a pure function of the seed regardless of which thread runs it.
  // The recorder consumes no randomness and never touches `rng`.
  obs::Recorder rec =
      options.recorder != nullptr ? *options.recorder : obs::Recorder{};
  rec.begin_run(&result.metrics, k);
  // Declare each level's Boltzmann temperature (0 for non-thermal classes)
  // so the observables layer can derive specific heat per stage.
  for (unsigned t = 0; t < k; ++t) rec.stage_temperature(t, g.temperature(t));
  obs::ProfileScope profile_scope{rec, "figure1"};
  if (k > 0) {
    rec.stage_begin(0, 0, result.initial_cost, result.best_cost,
                    obs::StageReason::kStart);
  }

  unsigned temp = 0;
  std::uint64_t reject_counter = 0;  // Step 4's `counter`
  std::uint64_t accept_counter = 0;  // the [KIRK83] equilibrium counter
  unsigned gate_counter = 0;         // the §3 gate for g == 1 levels
  double h_i = result.initial_cost;

  auto advance_temperature = [&](obs::StageReason reason) -> bool {
    // Returns false when the schedule is exhausted (temp == k in the paper).
    if (temp + 1 >= k) return false;
    ++temp;
    ++result.temperatures_visited;
    reject_counter = 0;
    accept_counter = 0;
    rec.stage_begin(temp, budget.spent(), h_i, result.best_cost, reason);
    return true;
  };

  bool schedule_exhausted = false;
  while (!budget.exhausted() && !schedule_exhausted && k > 0) {
    // Budget-slice criterion: level `temp` owns ticks up to slice_end.
    while (budget.spent() >= budget.slice_end(k, temp)) {
      if (!advance_temperature(obs::StageReason::kSlice)) {
        schedule_exhausted = true;  // unreachable with slices, kept for
        break;                      // safety against future criteria
      }
    }
    if (schedule_exhausted) break;

    // Periodic deep verification (no pending perturbation at this point).
    if constexpr (util::kInvariantsEnabled) {
      if (options.invariant_check_interval != 0 &&
          result.proposals % options.invariant_check_interval == 0) {
        if (rec.collecting_metrics()) {
          util::Stopwatch watch;
          problem.check_invariants();
          rec.invariant_check(watch.seconds());
        } else {
          problem.check_invariants();
        }
        ++result.invariants.executed;
      }
    }

    const double h_j = problem.propose(rng);
    budget.charge();
    ++result.proposals;
    result.ticks = budget.spent();
    const double delta = h_j - h_i;
    rec.proposal(temp, result.ticks, h_j, result.best_cost, delta);

    // [KIRK83] equilibrium: enough acceptances at this level.
    auto note_accept = [&]() {
      ++accept_counter;
      if (options.equilibrium_accepts > 0 &&
          accept_counter >= options.equilibrium_accepts &&
          !advance_temperature(obs::StageReason::kEquilibrium)) {
        schedule_exhausted = true;
      }
    };

    if (delta < 0.0) {
      // Step 3: strict improvement.
      problem.accept();
      ++result.accepts;
      if (reject_counter > 0) rec.patience_reset();
      h_i = h_j;
      gate_counter = 0;
      reject_counter = 0;
      rec.accept(temp, result.ticks, h_j, result.best_cost, delta);
      if (h_i < result.best_cost) {
        result.best_cost = h_i;
        problem.snapshot_into(result.best_state);
        rec.new_best(temp, result.ticks, result.best_cost);
      }
      note_accept();
      continue;
    }

    // Step 4: uphill (or sideways) proposal.
    if (options.equilibrium_rejects > 0 &&
        reject_counter >= options.equilibrium_rejects) {
      problem.reject();
      rec.reject(temp, result.ticks, h_j, result.best_cost);
      if (!advance_temperature(obs::StageReason::kPatience)) break;
      continue;
    }

    bool take = false;
    if (g.always_accepts(temp)) {
      ++gate_counter;
      if (gate_counter >= options.gate_threshold) {
        take = true;
        gate_counter = 1;  // the paper resets to 1, not 0
      }
    } else {
      take = rng.next_double() < g.probability(temp, h_i, h_j);
    }

    if (take) {
      problem.accept();
      ++result.accepts;
      if (delta > 0.0) ++result.uphill_accepts;
      h_i = h_j;
      if (reject_counter > 0) rec.patience_reset();
      reject_counter = 0;
      rec.accept(temp, result.ticks, h_j, result.best_cost, delta);
      note_accept();
    } else {
      problem.reject();
      ++reject_counter;
      rec.reject(temp, result.ticks, h_j, result.best_cost);
    }
  }

  result.final_cost = problem.cost();
  profile_scope.add_ticks(result.ticks);
  rec.end_run();
  return result;
}

}  // namespace mcopt::core
