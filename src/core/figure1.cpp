#include "core/figure1.hpp"

#include <stdexcept>

#include "util/invariant.hpp"

namespace mcopt::core {

RunResult run_figure1(Problem& problem, const GFunction& g,
                      const Figure1Options& options, util::Rng& rng) {
  if (options.gate_threshold == 0) {
    throw std::invalid_argument("figure1: gate_threshold must be >= 1");
  }
  const unsigned k = g.num_temperatures();
  util::WorkBudget budget{options.budget};

  RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = k == 0 ? 0 : 1;

  unsigned temp = 0;
  std::uint64_t reject_counter = 0;  // Step 4's `counter`
  std::uint64_t accept_counter = 0;  // the [KIRK83] equilibrium counter
  unsigned gate_counter = 0;         // the §3 gate for g == 1 levels
  double h_i = result.initial_cost;

  auto advance_temperature = [&]() -> bool {
    // Returns false when the schedule is exhausted (temp == k in the paper).
    if (temp + 1 >= k) return false;
    ++temp;
    ++result.temperatures_visited;
    reject_counter = 0;
    accept_counter = 0;
    return true;
  };

  bool schedule_exhausted = false;
  while (!budget.exhausted() && !schedule_exhausted && k > 0) {
    // Budget-slice criterion: level `temp` owns ticks up to slice_end.
    while (budget.spent() >= budget.slice_end(k, temp)) {
      if (!advance_temperature()) {  // unreachable with slices, kept for
        schedule_exhausted = true;   // safety against future criteria
        break;
      }
    }
    if (schedule_exhausted) break;

    // Periodic deep verification (no pending perturbation at this point).
    if constexpr (util::kInvariantsEnabled) {
      if (options.invariant_check_interval != 0 &&
          result.proposals % options.invariant_check_interval == 0) {
        problem.check_invariants();
        ++result.invariants.executed;
      }
    }

    const double h_j = problem.propose(rng);
    budget.charge();
    ++result.proposals;
    result.ticks = budget.spent();

    // [KIRK83] equilibrium: enough acceptances at this level.
    auto note_accept = [&]() {
      ++accept_counter;
      if (options.equilibrium_accepts > 0 &&
          accept_counter >= options.equilibrium_accepts &&
          !advance_temperature()) {
        schedule_exhausted = true;
      }
    };

    const double delta = h_j - h_i;
    if (delta < 0.0) {
      // Step 3: strict improvement.
      problem.accept();
      ++result.accepts;
      h_i = h_j;
      gate_counter = 0;
      reject_counter = 0;
      if (h_i < result.best_cost) {
        result.best_cost = h_i;
        problem.snapshot_into(result.best_state);
      }
      note_accept();
      continue;
    }

    // Step 4: uphill (or sideways) proposal.
    if (options.equilibrium_rejects > 0 &&
        reject_counter >= options.equilibrium_rejects) {
      problem.reject();
      if (!advance_temperature()) break;
      continue;
    }

    bool take = false;
    if (g.always_accepts(temp)) {
      ++gate_counter;
      if (gate_counter >= options.gate_threshold) {
        take = true;
        gate_counter = 1;  // the paper resets to 1, not 0
      }
    } else {
      take = rng.next_double() < g.probability(temp, h_i, h_j);
    }

    if (take) {
      problem.accept();
      ++result.accepts;
      if (delta > 0.0) ++result.uphill_accepts;
      h_i = h_j;
      reject_counter = 0;
      note_accept();
    } else {
      problem.reject();
      ++reject_counter;
    }
  }

  result.final_cost = problem.cost();
  return result;
}

}  // namespace mcopt::core
