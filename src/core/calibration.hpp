// Temperature-scale calibration from sampled move statistics.
//
// §2 cites White [WHIT84] ("Concepts of scale in simulated annealing") for
// "guidelines on choosing the highest and lowest temperatures in an
// annealing schedule": start hot enough that the acceptance probability of
// a typical uphill move is near one (Y_hot on the order of the cost-delta
// standard deviation) and end cold enough that it is negligible.  This
// module implements that recipe on top of the Problem interface: sample a
// short random walk, collect cost-delta statistics, and derive a geometric
// schedule between the White endpoints.  The same statistics feed
// TunerOptions::typical_cost / typical_delta, replacing hand-picked
// magnitudes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/problem.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

/// Statistics of the cost landscape around the problem's current solution,
/// gathered from an accept-everything random walk.
struct MoveStatistics {
  double mean_cost = 0.0;          ///< mean h over the walk
  double cost_stddev = 0.0;        ///< stddev of h over the walk
  double mean_uphill_delta = 0.0;  ///< mean of positive cost deltas
  double max_uphill_delta = 0.0;   ///< largest positive delta seen
  double delta_stddev = 0.0;       ///< stddev of all cost deltas
  double uphill_fraction = 0.0;    ///< share of proposals with delta > 0
  std::size_t samples = 0;
};

/// Walks `samples` random perturbations (accepting every one — the
/// infinite-temperature limit), then restores the starting solution.
/// Throws std::invalid_argument when samples == 0.
[[nodiscard]] MoveStatistics sample_move_statistics(Problem& problem,
                                                    std::size_t samples,
                                                    util::Rng& rng);

/// White's schedule: Y_1 = max(delta_stddev, mean_uphill_delta) so typical
/// uphill moves start near-certain to be accepted; Y_k chosen so the mean
/// uphill move is accepted with probability `cold_acceptance`; geometric
/// interpolation in between.  Requires k >= 1 and 0 < cold_acceptance < 1;
/// degenerate statistics (no uphill moves seen) yield a flat schedule of 1s.
[[nodiscard]] std::vector<double> white_schedule(const MoveStatistics& stats,
                                                 unsigned k,
                                                 double cold_acceptance = 0.01);

/// Measures this problem's proposal throughput (propose+reject pairs per
/// second) so callers can convert literal wall-clock budgets — the paper's
/// 6/9/12 s — into tick budgets for the deterministic runners.  Leaves the
/// current solution unchanged.  Throws std::invalid_argument when
/// samples == 0.
[[nodiscard]] double measure_tick_rate(Problem& problem, std::size_t samples,
                                       util::Rng& rng);

}  // namespace mcopt::core
