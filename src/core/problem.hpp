// The optimization-problem interface consumed by the Monte Carlo runners.
//
// The paper's framework (§1, §3) needs very little from a problem: a cost
// h(i), a random perturbation producing a neighbour j, the ability to commit
// or discard that perturbation, and — for the Figure 2 strategy — descent to
// a local optimum with respect to a systematic neighbourhood.  Problems are
// stateful: they hold the current solution i.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/budget.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

/// Opaque serialized solution, used for best-so-far bookkeeping and for
/// handing results back to callers.  Each problem documents its encoding
/// (a permutation for linear arrangement and TSP, side bits for partition).
using Snapshot = std::vector<std::uint32_t>;

/// How a problem evaluates a proposed perturbation.
///
/// Both paths expose the same propose/accept/reject contract, return
/// bit-identical costs, and consume the RNG stream identically — the
/// differential fuzz tests enforce this — so the choice is purely a
/// performance knob.
enum class EvalPath {
  /// propose() evaluates the candidate into per-move scratch without
  /// committing; accept() commits in O(touched) and reject() only clears
  /// scratch.  A rejected proposal is (nearly) free — the right choice
  /// for Metropolis loops at low acceptance rates.
  kSpeculative,
  /// propose() applies the move and reject() replays the exact inverse —
  /// the original path, kept as the semantic reference and fuzz oracle.
  kApplyUndo,
};

class Problem {
 public:
  virtual ~Problem() = default;

  /// h(i) of the current solution.
  [[nodiscard]] virtual double cost() const = 0;

  /// Applies one random perturbation (e.g. a pairwise interchange, §4.2.1)
  /// and returns h(j), the cost of the perturbed solution.  Exactly one of
  /// accept()/reject() must follow before the next propose()/descend().
  virtual double propose(util::Rng& rng) = 0;

  /// Commits the pending perturbation: j becomes the current solution.
  virtual void accept() = 0;

  /// Discards the pending perturbation: the current solution stays i.
  virtual void reject() = 0;

  /// Figure 2, Step 2: repeatedly applies improving moves from the
  /// systematic neighbourhood until none remains or `budget` is exhausted.
  /// Every candidate evaluation charges one tick.  Must leave the problem
  /// with no pending perturbation.
  virtual void descend(util::WorkBudget& budget) = 0;

  /// Replaces the current solution with a uniformly random feasible one.
  virtual void randomize(util::Rng& rng) = 0;

  /// Serializes the current solution.
  [[nodiscard]] virtual Snapshot snapshot() const = 0;

  /// Serializes the current solution into `out`, reusing its capacity.
  /// The runners call this on every best-so-far improvement — a hot path —
  /// so problems should override it to avoid the temporary the default
  /// (out = snapshot()) allocates.
  virtual void snapshot_into(Snapshot& out) const { out = snapshot(); }

  /// Restores a solution previously produced by snapshot().
  virtual void restore(const Snapshot& snap) = 0;

  /// An independent deep copy sharing only immutable inputs (the instance /
  /// netlist the problem was built on).  The parallel multistart engine
  /// gives each worker thread its own clone; a clone must never alias
  /// mutable state with its source.  Returns nullptr when the problem does
  /// not support cloning (the default), in which case the parallel engine
  /// refuses to run.
  [[nodiscard]] virtual std::unique_ptr<Problem> clone() const {
    return nullptr;
  }

  /// Deep self-verification: recompute every incrementally-maintained
  /// quantity from scratch and compare (util/invariant.hpp).  Throws
  /// util::InvariantViolation on divergence.  Must be side-effect free,
  /// must not consume randomness, and is only meaningful when no
  /// perturbation is pending.  The runners call this every
  /// `invariant_check_interval` ticks in MCOPT_CHECK_INVARIANTS builds.
  virtual void check_invariants() const {}

 protected:
  Problem() = default;
  Problem(const Problem&) = default;
  Problem& operator=(const Problem&) = default;
};

}  // namespace mcopt::core
