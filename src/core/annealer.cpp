#include "core/annealer.hpp"

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"

namespace mcopt::core {

RunResult simulated_annealing(Problem& problem, const AnnealOptions& options,
                              util::Rng& rng) {
  auto ys = options.schedule.empty() ? kirkpatrick_schedule()
                                     : validated_schedule(options.schedule);
  const auto g = make_annealing_g(std::move(ys));
  Figure1Options fig1;
  fig1.budget = options.budget;
  fig1.equilibrium_rejects = options.equilibrium_rejects;
  return run_figure1(problem, *g, fig1, rng);
}

RunResult random_descent(Problem& problem, std::uint64_t budget,
                         util::Rng& rng) {
  RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = 1;

  double h_i = result.initial_cost;
  util::WorkBudget work{budget};
  while (!work.exhausted()) {
    const double h_j = problem.propose(rng);
    work.charge();
    ++result.proposals;
    if (h_j < h_i) {
      problem.accept();
      ++result.accepts;
      h_i = h_j;
      if (h_i < result.best_cost) {
        result.best_cost = h_i;
        problem.snapshot_into(result.best_state);
      }
    } else {
      problem.reject();
    }
  }
  result.ticks = work.spent();
  result.final_cost = problem.cost();
  return result;
}

}  // namespace mcopt::core
