#include "core/annealer.hpp"

#include <utility>

#include "core/figure1.hpp"
#include "core/gfunction.hpp"
#include "core/schedule.hpp"

namespace mcopt::core {

RunResult simulated_annealing(Problem& problem, const AnnealOptions& options,
                              util::Rng& rng) {
  auto ys = options.schedule.empty() ? kirkpatrick_schedule()
                                     : validated_schedule(options.schedule);
  const auto g = make_annealing_g(std::move(ys));
  Figure1Options fig1;
  fig1.budget = options.budget;
  fig1.equilibrium_rejects = options.equilibrium_rejects;
  fig1.recorder = options.recorder;
  return run_figure1(problem, *g, fig1, rng);
}

RunResult random_descent(Problem& problem, std::uint64_t budget,
                         util::Rng& rng, const obs::Recorder* recorder) {
  RunResult result;
  result.initial_cost = problem.cost();
  result.best_cost = result.initial_cost;
  problem.snapshot_into(result.best_state);
  result.temperatures_visited = 1;

  obs::Recorder rec = recorder != nullptr ? *recorder : obs::Recorder{};
  rec.begin_run(&result.metrics, 1);
  obs::ProfileScope profile_scope{rec, "random_descent"};
  rec.stage_begin(0, 0, result.initial_cost, result.best_cost,
                  obs::StageReason::kStart);

  double h_i = result.initial_cost;
  util::WorkBudget work{budget};
  while (!work.exhausted()) {
    const double h_j = problem.propose(rng);
    work.charge();
    ++result.proposals;
    const double delta = h_j - h_i;
    rec.proposal(0, work.spent(), h_j, result.best_cost, delta);
    if (h_j < h_i) {
      problem.accept();
      ++result.accepts;
      h_i = h_j;
      rec.accept(0, work.spent(), h_j, result.best_cost, delta);
      if (h_i < result.best_cost) {
        result.best_cost = h_i;
        problem.snapshot_into(result.best_state);
        rec.new_best(0, work.spent(), result.best_cost);
      }
    } else {
      problem.reject();
      rec.reject(0, work.spent(), h_j, result.best_cost);
    }
  }
  result.ticks = work.spent();
  result.final_cost = problem.cost();
  profile_scope.add_ticks(result.ticks);
  rec.end_run();
  return result;
}

}  // namespace mcopt::core
