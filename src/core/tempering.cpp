#include "core/tempering.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "core/schedule.hpp"
#include "util/budget.hpp"
#include "util/invariant.hpp"

namespace mcopt::core {

TemperingResult parallel_tempering(
    const std::function<std::unique_ptr<Problem>(std::size_t)>& make_replica,
    const TemperingOptions& options, util::Rng& rng) {
  if (!make_replica) {
    throw std::invalid_argument("parallel_tempering: null replica factory");
  }
  if (options.sweep == 0) {
    throw std::invalid_argument("parallel_tempering: sweep must be >= 1");
  }
  const std::vector<double> ys = validated_schedule(options.temperatures);
  const std::size_t num_replicas = ys.size();

  std::vector<std::unique_ptr<Problem>> replicas(num_replicas);
  std::vector<double> h(num_replicas);
  for (std::size_t r = 0; r < num_replicas; ++r) {
    replicas[r] = make_replica(r);
    if (!replicas[r]) {
      throw std::invalid_argument("parallel_tempering: factory returned null");
    }
    h[r] = replicas[r]->cost();
  }

  TemperingResult out;
  out.aggregate.temperatures_visited = static_cast<unsigned>(num_replicas);
  std::size_t best_replica = 0;
  for (std::size_t r = 1; r < num_replicas; ++r) {
    if (h[r] < h[best_replica]) best_replica = r;
  }
  out.aggregate.initial_cost = h[best_replica];
  out.aggregate.best_cost = h[best_replica];
  out.aggregate.best_state = replicas[best_replica]->snapshot();

  // Replicas interleave on one thread, so events carry the replica index in
  // `stage` and per-stage wall time stays unsplit (see TemperingOptions).
  obs::Recorder rec =
      options.recorder != nullptr ? *options.recorder : obs::Recorder{};
  rec.begin_run(&out.aggregate.metrics, num_replicas,
                /*stage_walls=*/false);
  obs::ProfileScope profile_scope{rec, "tempering"};
  for (std::size_t r = 0; r < num_replicas; ++r) {
    // Each replica IS a temperature level; declare Y_r for specific heat.
    rec.stage_temperature(static_cast<std::uint32_t>(r), ys[r]);
    rec.stage_begin(static_cast<std::uint32_t>(r), 0, h[r],
                    out.aggregate.best_cost, obs::StageReason::kStart);
  }

  util::WorkBudget budget{options.budget};

  auto update_best = [&](std::size_t r) {
    if (h[r] < out.aggregate.best_cost) {
      out.aggregate.best_cost = h[r];
      out.aggregate.best_state = replicas[r]->snapshot();
      rec.new_best(static_cast<std::uint32_t>(r), budget.spent(),
                   out.aggregate.best_cost);
    }
  };
  std::uint64_t cycles = 0;
  std::uint64_t next_invariant_check = 0;
  while (!budget.exhausted()) {
    // One proposal per replica, hottest to coldest.
    {
      obs::ProfileScope sweep_scope{rec, "sweep"};
      for (std::size_t r = 0; r < num_replicas && !budget.exhausted(); ++r) {
        const double h_j = replicas[r]->propose(rng);
        budget.charge();
        sweep_scope.add_ticks(1);
        ++out.aggregate.proposals;
        const auto stage = static_cast<std::uint32_t>(r);
        const double delta = h_j - h[r];
        rec.proposal(stage, budget.spent(), h_j, out.aggregate.best_cost,
                     delta);
        const bool take =
            delta <= 0.0 || rng.next_double() < std::exp(-delta / ys[r]);
        if (take) {
          replicas[r]->accept();
          ++out.aggregate.accepts;
          if (delta > 0.0) ++out.aggregate.uphill_accepts;
          rec.accept(stage, budget.spent(), h_j, out.aggregate.best_cost,
                     delta);
          h[r] = h_j;
          update_best(r);
        } else {
          replicas[r]->reject();
          rec.reject(stage, budget.spent(), h_j, out.aggregate.best_cost);
        }
      }
    }

    if (++cycles % options.sweep != 0) continue;

    // Periodic deep verification of every replica (between proposals, so
    // nothing is pending and no randomness is consumed).
    if constexpr (util::kInvariantsEnabled) {
      if (options.invariant_check_interval != 0 &&
          budget.spent() >= next_invariant_check) {
        for (const auto& replica : replicas) {
          if (rec.collecting_metrics()) {
            util::Stopwatch watch;
            replica->check_invariants();
            rec.invariant_check(watch.seconds());
          } else {
            replica->check_invariants();
          }
          ++out.aggregate.invariants.executed;
        }
        next_invariant_check =
            budget.spent() + options.invariant_check_interval;
      }
    }

    // Swap phase: adjacent pairs, alternating parity per phase so every
    // boundary is exercised.
    obs::ProfileScope swap_scope{rec, "swap"};
    const std::size_t start = (cycles / options.sweep) % 2;
    for (std::size_t r = start; r + 1 < num_replicas; r += 2) {
      ++out.swap_attempts;
      const double exponent =
          (h[r] - h[r + 1]) * (1.0 / ys[r + 1] - 1.0 / ys[r]);
      if (exponent >= 0.0 || rng.next_double() < std::exp(exponent)) {
        const Snapshot cold = replicas[r + 1]->snapshot();
        replicas[r + 1]->restore(replicas[r]->snapshot());
        replicas[r]->restore(cold);
        std::swap(h[r], h[r + 1]);
        ++out.swap_accepts;
      }
    }
  }

  std::size_t final_best = 0;
  for (std::size_t r = 1; r < num_replicas; ++r) {
    if (h[r] < h[final_best]) final_best = r;
  }
  out.aggregate.final_cost = h[final_best];
  out.aggregate.ticks = budget.spent();
  profile_scope.add_ticks(out.aggregate.ticks);
  rec.end_run();
  return out;
}

}  // namespace mcopt::core
