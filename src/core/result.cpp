#include "core/result.hpp"

#include <sstream>

namespace mcopt::core {

std::string to_string(const RunResult& result) {
  std::ostringstream os;
  os << "h0=" << result.initial_cost << " best=" << result.best_cost
     << " final=" << result.final_cost << " (-" << result.reduction() << ")"
     << " proposals=" << result.proposals << " accepts=" << result.accepts
     << " uphill=" << result.uphill_accepts << " ticks=" << result.ticks
     << " temps=" << result.temperatures_visited;
  if (result.invariants.executed > 0) {
    os << " invariant_checks=" << result.invariants.executed;
  }
  if (result.metrics.collected) {
    os << " [" << result.metrics.summary() << "]";
  }
  return os.str();
}

}  // namespace mcopt::core
