// Parallel multistart: the restarts of core::multistart() executed across a
// fixed-size worker pool, bit-identical to the sequential loop.
//
// Restarts are embarrassingly parallel — each one randomizes, runs, and only
// its RunResult matters — so they are the natural unit for scaling the
// paper's equal-time protocol to multicore hardware.  Determinism is the
// hard constraint: every reproduced table is pinned to a seed, so the
// parallel engine must return *exactly* what the sequential loop returns,
// for any thread count and any OS scheduling.  Three mechanisms deliver
// that:
//
//   1. Stream-per-restart RNG.  multistart() derives one master value from
//      the caller's rng and gives restart i the stream
//      util::Rng::split(master, i) (a SplitMix-style derivation).  A
//      restart's randomness is a pure function of its index.
//   2. Clone-per-worker problems.  Each worker owns a deep copy obtained
//      from Problem::clone(); no mutable state is shared between threads.
//   3. Index-ordered reduction.  Workers speculate on restart indices from
//      a shared counter, but the caller folds the per-start RunResults into
//      the aggregate strictly in index order, replaying the sequential
//      loop's bookkeeping (best tie-breaks, counter sums, final_cost,
//      invariant stats, tick accounting) operation for operation.
//
// The one sequential dependence is the budget: how many restarts fit, and
// the size of the final remainder slice, depend on the ticks earlier
// restarts consumed.  Runners almost always consume their full slice, so
// workers speculate full-slice runs; the reducer detects the rare restart
// whose sequential slice differs (the remainder, or after a runner
// over/under-spends) and re-runs exactly that index with the correct slice
// — speculation is a throughput optimization, never a semantics change.
//
// All cross-thread state lives in one util::Mutex-guarded speculation
// queue (util/sync.hpp) whose fields carry GUARDED_BY annotations; the
// `thread-safety` CMake preset makes any unlocked access a compile error.
#pragma once

#include <cstdint>

#include "core/multistart.hpp"
#include "core/problem.hpp"
#include "obs/timeline.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

struct ParallelMultistartOptions {
  /// Budgets and restart policy, interpreted exactly as multistart() does.
  MultistartOptions multistart;
  /// Worker threads to spawn.  Must be >= 1; the result is independent of
  /// this value.  Oversubscribing the hardware is allowed (useful for
  /// determinism tests); it costs throughput, not correctness.
  unsigned num_threads = 1;
  /// Optional per-worker span export: when set (and the recorder profiles),
  /// the reducer lays each restart's profile tree on lane
  /// (timeline_pid, worker-id) — strictly in restart-index order, on the
  /// reducing thread, so the builder needs no locking.  Worker 0 is the
  /// calling thread (remainder slices); pool workers are 1-based.
  /// Timeline content is wall-clock measurement, outside the determinism
  /// contract like every other wall export.
  obs::TimelineBuilder* timeline = nullptr;
  std::uint32_t timeline_pid = 2;
};

/// Runs the restarts of multistart() on `options.num_threads` workers and
/// returns a MultistartResult bit-identical to sequential multistart()
/// with the same problem state, runner, budgets, and rng state.  On return
/// `problem` holds the final solution of the last restart and the caller's
/// rng has advanced by exactly one output — both as in the sequential loop.
///
/// Requirements beyond multistart(): Problem::clone() must return a real
/// deep copy (non-null), and the runner must be safe to call concurrently
/// on distinct Problem instances (i.e. it touches nothing shared; the
/// library runners qualify).  Throws std::invalid_argument on a null
/// runner, zero budget_per_start, budget_per_start > total_budget, zero
/// num_threads, or a problem whose clone() returns nullptr.
[[nodiscard]] MultistartResult parallel_multistart(
    Problem& problem, const Runner& runner,
    const ParallelMultistartOptions& options, util::Rng& rng);

}  // namespace mcopt::core
