// The acceptance-probability functions g_temp(h(i), h(j)) of the paper, §3.
//
// A g function decides, for an uphill perturbation from the current solution
// i (cost h(i)) to a neighbour j (cost h(j) >= h(i)), the probability of
// accepting j.  The paper enumerates twenty classes (numbered 1-20 below, in
// the paper's order) plus the Cohoon-Sahni baseline from [COHO83a]:
//
//    1 Metropolis                   k=1  e^(-(h(j)-h(i))/Y1)
//    2 Six Temperature Annealing    k=6  e^(-(h(j)-h(i))/Yt)
//    3 g = 1                        k=1  1
//    4 Two Level g                  k=2  g1=1, g2=0.5
//    5 Linear                       k=1  Y1*h(i)
//    6 Quadratic                    k=1  Y1*h(i)^2
//    7 Cubic                        k=1  Y1*h(i)^3
//    8 Exponential                  k=1  (e^(h(i)/Y1)-1)/(e-1)
//    9-12 Six Temperature {Linear, Quadratic, Cubic, Exponential}  k=6
//   13 Linear Difference            k=1  Y1/(h(j)-h(i))
//   14 Quadratic Difference         k=1  Y1/(h(j)-h(i))^2
//   15 Cubic Difference             k=1  Y1/(h(j)-h(i))^3
//   16 Exponential Difference       k=1  (e^(Y1/(h(j)-h(i)))-1)/(e-1)
//   17-20 Six Temperature {...} Difference  k=6
//   21 Cohoon-Sahni [COHO83a]       k=1  min(h(i)/(m+5), 0.9)
//
// Classes 5-12 depend on the *current* cost h(i) rather than on the cost
// difference; that is faithful to the paper.  All values are clamped into
// [0, 1]; a zero difference makes the difference classes evaluate to 1
// (the limit of Y/0+), so sideways moves are always accepted by them, as by
// Metropolis.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace mcopt::core {

class GFunction {
 public:
  virtual ~GFunction() = default;

  /// k, the number of temperature levels (1, 2 or 6 for the paper's classes).
  [[nodiscard]] virtual unsigned num_temperatures() const noexcept = 0;

  /// Acceptance probability at temperature index `t` (0-based, < k) for an
  /// uphill move h_i -> h_j.  Always in [0, 1].
  [[nodiscard]] virtual double probability(unsigned t, double h_i,
                                           double h_j) const = 0;

  /// True when g is identically 1 at level `t`.  The Figure 1 runner applies
  /// the paper's counter gate (§3: uphill accepted only after 18 consecutive
  /// failures) to such levels, since a straightforward implementation would
  /// random-walk.
  [[nodiscard]] virtual bool always_accepts(unsigned t) const noexcept;

  /// The Boltzmann temperature Y_t at level `t`, when this class's
  /// acceptance rule is of the e^(-Δ/Y_t) family (Metropolis, Six
  /// Temperature Annealing, explicit annealing schedules); 0 otherwise.
  /// Observability uses it for the specific-heat estimate C = Var(E)/Y²
  /// — 0 means "no temperature interpretation, specific heat undefined".
  [[nodiscard]] virtual double temperature(unsigned t) const noexcept;

  /// Display name matching the paper's table rows.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's class numbering.
enum class GClass : int {
  kMetropolis = 1,
  kSixTempAnnealing = 2,
  kGOne = 3,
  kTwoLevel = 4,
  kLinear = 5,
  kQuadratic = 6,
  kCubic = 7,
  kExponential = 8,
  kSixLinear = 9,
  kSixQuadratic = 10,
  kSixCubic = 11,
  kSixExponential = 12,
  kLinearDiff = 13,
  kQuadraticDiff = 14,
  kCubicDiff = 15,
  kExponentialDiff = 16,
  kSixLinearDiff = 17,
  kSixQuadraticDiff = 18,
  kSixCubicDiff = 19,
  kSixExponentialDiff = 20,
  kCohoonSahni = 21,
  /// Extension (not in the paper): threshold accepting (Dueck & Scheuer,
  /// 1990) — accept an uphill move iff h(j) - h(i) <= Y_t.  Annealing's
  /// most cited descendant; included so the framework can contrast the
  /// paper's probabilistic rules with a deterministic one.
  kThresholdAccepting = 22,
};

/// Parameters for instantiating a g class.
struct GParams {
  /// The Y scale.  For k=1 classes this is Y1; for k=6 classes the schedule
  /// is Y_t = scale * ratio^t, t = 0..5 (Kirkpatrick's Y1=10, x0.9 schedule
  /// is scale=10, ratio=0.9).  Ignored by g=1, two-level, and Cohoon-Sahni.
  double scale = 1.0;
  double ratio = 0.9;
  /// m, the instance's net count; used only by Cohoon-Sahni (§4.2.2).
  std::size_t num_nets = 0;
};

/// Instantiates a g class.  Throws std::invalid_argument on a non-positive
/// scale/ratio for a class that uses them.
[[nodiscard]] std::unique_ptr<GFunction> make_g(GClass cls,
                                                const GParams& params = {});

/// Classic annealing acceptance e^(-(h(j)-h(i))/Y_t) with an explicit,
/// validated schedule of any length (see core/schedule.hpp for builders).
[[nodiscard]] std::unique_ptr<GFunction> make_annealing_g(
    std::vector<double> ys);

/// Paper row label for a class ("Six Temperature Annealing", "g = 1", ...).
[[nodiscard]] const char* g_class_name(GClass cls) noexcept;

/// k for a class without instantiating it.
[[nodiscard]] unsigned g_class_k(GClass cls) noexcept;

/// False for g = 1, two-level, and Cohoon-Sahni, which involve no Y_i and
/// therefore skip the §4.2.1 tuning pass.
[[nodiscard]] bool g_class_uses_scale(GClass cls) noexcept;

/// The 20 classes of Table 4.1, in row order (Cohoon-Sahni and the Goto
/// heuristic rows of that table are handled by the bench harness).
[[nodiscard]] std::vector<GClass> table41_classes();

/// The 13 Monte Carlo rows of Tables 4.2(a)-(d): the NOLA experiments
/// "ignored the g function classes 5 through 12 because of their poor
/// performance on the GOLA instances" (§4.3.1).
[[nodiscard]] std::vector<GClass> table42_classes();

}  // namespace mcopt::core
