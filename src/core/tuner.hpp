// The temperature-determination pass of §4.2.1.
//
// "Since it is impractical to determine the best Y_i s for each combination
// of instance characteristics, strategy type, g function class, and amount
// of time spent at each temperature, we attempt to find the best Y_i s for
// each g using a randomly generated set of instances and the strategy of
// Figure 1."
//
// The tuner grid-searches a single scale parameter per g class (Y1 for k=1
// classes; the whole schedule is scale * ratio^t for k=6 classes), scoring
// each candidate by the total cost reduction over a training set, exactly
// the metric the paper's tables report.  Candidate grids are derived from
// the problem's typical cost magnitude and typical uphill step so the same
// tuner serves linear arrangement, TSP and partitioning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/gfunction.hpp"
#include "core/problem.hpp"

namespace mcopt::core {

/// Produces a fresh problem for training instance `index`, already holding
/// the experiment's initial solution ("Each g class used the same initial
/// arrangement", §4.2.1 — the factory must be deterministic in `index`).
using ProblemFactory =
    std::function<std::unique_ptr<Problem>(std::size_t index)>;

struct TunerOptions {
  /// Candidate scales; leave empty to use default_candidate_scales().
  std::vector<double> candidates;
  /// Training budget per instance per candidate, in ticks.
  std::uint64_t budget = 30'000;
  std::size_t num_instances = 30;
  std::uint64_t seed = 1985;
  /// Schedule decay for k=6 classes.
  double ratio = 0.9;
  /// Statistics the default grids are derived from: a typical cost h and a
  /// typical uphill move size.  Only used when `candidates` is empty.
  double typical_cost = 60.0;
  double typical_delta = 2.0;
};

struct TuneResult {
  double best_scale = 1.0;
  double best_total_reduction = 0.0;
  /// (scale, total reduction) for every candidate evaluated, in grid order.
  std::vector<std::pair<double, double>> scores;
};

/// Grid of scales making g's typical acceptance probability sweep
/// {0.02, 0.05, 0.1, 0.2, 0.4, 0.8} at the given cost magnitudes.  For
/// classes without a scale the grid is {1.0}.
[[nodiscard]] std::vector<double> default_candidate_scales(
    GClass cls, double typical_cost, double typical_delta);

/// Runs the §4.2.1 grid search for `cls` with the Figure 1 strategy.
/// For scale-free classes (g = 1, two-level) this evaluates the single
/// trivial candidate so the returned score is still meaningful.
/// Throws std::invalid_argument on an empty factory or zero instances.
[[nodiscard]] TuneResult tune_scale(GClass cls, const ProblemFactory& factory,
                                    const TunerOptions& options);

}  // namespace mcopt::core
