// Multistart: repeat a Monte Carlo run from fresh random solutions under a
// shared work budget, keeping the best result.
//
// This is the protocol §2 describes for the 2-opt baseline ("given enough
// starting random tours to make its run time comparable to that of
// simulated annealing"), generalized to any runner.  Restarts matter for
// the paper's methodology: an equal-time comparison against a cheap
// descent method is only fair if the descent gets to spend its leftover
// time on more starts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/problem.hpp"
#include "core/result.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

/// Runs one attempt from the problem's current solution with the given
/// tick budget (e.g. a lambda wrapping run_figure1 with fixed options).
/// The recorder is scoped to this restart (correct restart/worker stamps);
/// pass it to the runner's options (or ignore it — it is off when the
/// engine was given no recorder).
using Runner = std::function<RunResult(
    Problem&, std::uint64_t budget, util::Rng&, const obs::Recorder&)>;

struct MultistartOptions {
  /// Total ticks across all restarts.  A restart that terminates early is
  /// charged only what it consumed, so the leftover funds further restarts
  /// (the paper's equal-time protocol).
  std::uint64_t total_budget = 30'000;
  /// Ticks per restart; the last restart gets the (possibly smaller)
  /// remainder.  Must be >= 1.
  std::uint64_t budget_per_start = 3'000;
  /// Randomize the problem before every restart (including the first).
  /// When false the first restart continues from the current solution.
  bool randomize_first = true;
  /// Optional telemetry (src/obs).  The engine derives a restart-scoped
  /// recorder per start (emitting restart_begin and aggregate-level
  /// new_best events) and hands it to the runner; parallel_multistart()
  /// buffers each restart's events in a private shard and drains them in
  /// index order, so the trace stream is thread-count-invariant except for
  /// `worker` stamps and worker_steal events.
  const obs::Recorder* recorder = nullptr;
};

struct MultistartResult {
  /// Best cost over all restarts, with summed work counters; initial_cost
  /// is the first restart's, final_cost the last restart's.
  RunResult aggregate;
  std::uint64_t restarts = 0;
  /// best_cost of each individual restart, in restart order — the history
  /// that aggregate.best_cost is the running minimum of, so trace-level
  /// new_best events can be reconciled against the result.
  std::vector<double> restart_best_costs;
};

/// Throws std::invalid_argument on a null runner or zero budget_per_start.
///
/// RNG contract: one output of `rng` seeds a master stream, and restart i
/// draws exclusively from util::Rng::split(master, i).  The caller's rng
/// therefore advances by exactly one output regardless of how many restarts
/// run, and core::parallel_multistart() reproduces the result bit-for-bit
/// with any thread count.
[[nodiscard]] MultistartResult multistart(Problem& problem,
                                          const Runner& runner,
                                          const MultistartOptions& options,
                                          util::Rng& rng);

}  // namespace mcopt::core
