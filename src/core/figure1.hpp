// The strategy of the paper's Figure 1: Metropolis-style perturb-and-test.
//
//   Step 1  i = starting solution (the caller prepares it: random, or the
//           Goto arrangement for Tables 4.2(a)/(d)); temp = 1, counter = 0.
//   Step 2  j = random perturbation of i.
//   Step 3  if h(j) - h(i) < 0: i = j, update best, counter = 0.
//   Step 4  otherwise: if counter >= n advance temperature (stop at k);
//           else accept with probability g_temp(h(i), h(j)).
//
// Three temperature-advance criteria are supported, matching the paper and
// the experiments it describes:
//   * budget slices — each of the k levels gets floor(budget/k) ticks,
//     the paper's floor(total_seconds/k)-per-temperature rule (§4.2.1);
//     always active;
//   * the counter rule of Step 4 — optional, enabled by setting
//     equilibrium_rejects > 0;
//   * the [KIRK83] acceptance criterion (§2: "terminated when ... a
//     sufficient number of random perturbations had been accepted") —
//     optional, enabled by setting equilibrium_accepts > 0.
//
// For g levels that are identically 1 (g = 1, and level 1 of two-level g) a
// straightforward implementation random-walks, so the paper's gate (§3) is
// applied: an uphill move is taken only once `gate_threshold` consecutive
// uphill proposals have accumulated since the last improvement, after which
// the gate counter resets to 1.
#pragma once

#include <cstdint>

#include "core/gfunction.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"
#include "obs/recorder.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

struct Figure1Options {
  /// Total ticks; one tick per random perturbation.
  std::uint64_t budget = 30'000;
  /// Paper's gate for g == 1 levels (§3).  Must be >= 1.
  unsigned gate_threshold = 18;
  /// If > 0, the Step 4 counter rule also advances the temperature after
  /// this many consecutive rejected proposals.
  std::uint64_t equilibrium_rejects = 0;
  /// If > 0, the [KIRK83] equilibrium rule also advances the temperature
  /// after this many accepted perturbations at the current level.
  std::uint64_t equilibrium_accepts = 0;
  /// Every this many proposals, call Problem::check_invariants() (deep
  /// state verification; util/invariant.hpp).  Only active in builds with
  /// MCOPT_CHECK_INVARIANTS; 0 disables.  Consumes no randomness, so
  /// checked and unchecked builds produce identical streams.
  std::uint64_t invariant_check_interval = 4096;
  /// Optional telemetry (src/obs): the runner takes a by-value copy, so
  /// events and metrics are seed-pure per run.  Null = no observation.
  const obs::Recorder* recorder = nullptr;
};

/// Runs Figure 1 from the problem's current solution.  On return the
/// problem holds the last-visited solution (result.final_cost); the best
/// solution is in result.best_state.  Throws std::invalid_argument on a
/// zero gate_threshold.
[[nodiscard]] RunResult run_figure1(Problem& problem, const GFunction& g,
                                    const Figure1Options& options,
                                    util::Rng& rng);

}  // namespace mcopt::core
