// Classic simulated annealing as a convenience wrapper.
//
// "The Metropolis adaptation combined with Kirkpatrick's several temperature
// method is called simulated annealing" (§1).  This wrapper is exactly
// run_figure1 with the annealing acceptance e^(-dh/Y_t) over a caller-chosen
// schedule; it is the entry point most users of the library want, and it is
// what the extension benches call "SA".
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "core/result.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

struct AnnealOptions {
  /// Total ticks, one per proposal; split evenly across the schedule.
  std::uint64_t budget = 30'000;
  /// Y_i schedule; defaults to Kirkpatrick's Y1=10, x0.9, k=6 ([KIRK83]).
  std::vector<double> schedule;
  /// If > 0, also advance temperature after this many consecutive rejects
  /// (the equilibrium criterion of [KIRK83]).
  std::uint64_t equilibrium_rejects = 0;
  /// Optional telemetry (src/obs), forwarded to run_figure1.
  const obs::Recorder* recorder = nullptr;
};

/// Anneals from the problem's current solution and returns the run record;
/// the best solution found is in RunResult::best_state.
[[nodiscard]] RunResult simulated_annealing(Problem& problem,
                                            const AnnealOptions& options,
                                            util::Rng& rng);

/// Pure descent baseline: repeatedly proposes random perturbations and
/// accepts only strict improvements until the budget is spent (the
/// "quench" limit of annealing; used by ablation benches).  The optional
/// recorder observes the run as a single stage-0 level.
[[nodiscard]] RunResult random_descent(Problem& problem, std::uint64_t budget,
                                       util::Rng& rng,
                                       const obs::Recorder* recorder = nullptr);

}  // namespace mcopt::core
