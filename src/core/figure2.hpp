// The strategy of the paper's Figure 2: the Cohoon-Sahni [COHO83a and b]
// local-optimum-first method.
//
//   Step 1  i = starting solution; temp = 1, counter = 0.
//   Step 2  descend: perturb i until no perturbation decreases h (local
//           optimum with respect to the systematic neighbourhood).
//   Step 3  update best.
//   Step 4  if counter >= n: advance temperature (stop after level k).
//   Step 5  counter += 1; j = random perturbation of i; with probability
//           g_temp(h(i), h(j)) set i = j and go to Step 2, else go to Step 4.
//
// Uphill perturbations are considered only after a local optimum has been
// reached — the first of the paper's two §3 modifications.  No gate is
// needed for g = 1 here ("no special considerations are needed", §3).
//
// The budget covers both the descent evaluations (each candidate evaluated
// by Problem::descend charges one tick) and the kick proposals, so Figure 1
// and Figure 2 runs with equal budgets use equal work, as §4.2.4 requires.
// Temperature advance follows the same two criteria as Figure 1: budget
// slices always, the Step 4 counter optionally.
#pragma once

#include <cstdint>

#include "core/gfunction.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"
#include "obs/recorder.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

struct Figure2Options {
  /// Total ticks shared by descents and kick proposals.
  std::uint64_t budget = 900'000;
  /// If > 0, Step 4's counter advances the temperature after this many kick
  /// proposals at the current level.
  std::uint64_t equilibrium_kicks = 0;
  /// Every this many ticks, call Problem::check_invariants() (deep state
  /// verification; util/invariant.hpp).  Only active in builds with
  /// MCOPT_CHECK_INVARIANTS; 0 disables.
  std::uint64_t invariant_check_interval = 4096;
  /// Optional telemetry (src/obs): the runner takes a by-value copy, so
  /// events and metrics are seed-pure per run.  Null = no observation.
  const obs::Recorder* recorder = nullptr;
};

/// Runs Figure 2 from the problem's current solution.  On return the
/// problem holds the last-visited solution; the best (always a local
/// optimum unless the budget died mid-descent) is in result.best_state.
[[nodiscard]] RunResult run_figure2(Problem& problem, const GFunction& g,
                                    const Figure2Options& options,
                                    util::Rng& rng);

}  // namespace mcopt::core
