#include "core/parallel.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/invariant.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mcopt::core {

namespace {

/// Everything one restart produces: the run itself plus the final solution,
/// so the reducer can leave the caller's problem in the sequential loop's
/// end state, plus the restart's buffered trace events (drained into the
/// caller's sink in index order).
struct StartResult {
  RunResult run;
  Snapshot final_state;
  std::vector<obs::Event> events;
  std::uint64_t worker = 0;  // 0 = the calling/reducing thread
};

/// Executes restart `index` with `slice` ticks on `problem` — one iteration
/// of the sequential multistart() loop, including the between-restart deep
/// verification.  Deterministic given (index, slice, start state); the
/// recorder adds only the (worker, steal) stamps, which are excluded from
/// the determinism contract (obs/event.hpp).
StartResult run_start(Problem& problem, const Runner& runner,
                      const Snapshot& initial_state, bool randomize,
                      std::uint64_t master, std::uint64_t index,
                      std::uint64_t slice, const obs::Recorder& root,
                      std::uint64_t worker, bool steal) {
  util::Rng rng = util::Rng::split(master, index);
  if (randomize) {
    problem.randomize(rng);
  } else {
    problem.restore(initial_state);
  }
  StartResult out;
  // Buffer this restart's events privately; each shard has exactly one
  // writer (this thread), so no sink is ever shared across threads.
  obs::VectorSink shard;
  obs::Recorder rec =
      root.for_restart(index, worker, root.tracing() ? &shard : nullptr);
  if (rec.on()) {
    if (steal) rec.worker_steal();
    rec.restart_begin(problem.cost());
  }
  out.run = runner(problem, slice, rng, rec);
  // Scheduler observation, not simulation state: like the `worker` stamp on
  // events, worker_steals is excluded from the determinism contract.
  if (steal && out.run.metrics.collected) out.run.metrics.worker_steals = 1;
  if constexpr (util::kInvariantsEnabled) {
    problem.check_invariants();
  }
  problem.snapshot_into(out.final_state);
  out.events = shard.take();
  out.worker = worker;
  return out;
}

/// Shared speculation state.  Workers claim restart indices below `limit`
/// (and within `window` of the reducer) and deliver full-slice results;
/// the reducing thread consumes them in index order.  Every field is
/// guarded by `mu`; the thread-safety build rejects any unlocked touch.
/// The mutex, each condvar, and the guarded data sit on their own cache
/// lines so a worker spinning through wait/notify on one primitive never
/// bounces the line holding another.
struct SpeculationQueue {
  alignas(64) util::Mutex mu;
  alignas(64) util::CondVar work_cv;   // workers: more indices / shutdown
  alignas(64) util::CondVar ready_cv;  // reducer: a result arrived
  alignas(64) std::map<std::uint64_t, StartResult> ready GUARDED_BY(mu);
  std::uint64_t next_index GUARDED_BY(mu) = 0;  // next claimable index
  std::uint64_t consumed GUARDED_BY(mu) = 0;    // next index to fold
  std::uint64_t limit GUARDED_BY(mu) = 0;       // < limit: full-slice starts
  std::uint64_t window GUARDED_BY(mu) = 0;      // claim < consumed + window
  std::uint64_t peak_ready GUARDED_BY(mu) = 0;  // high-water mark of `ready`
  bool shutdown GUARDED_BY(mu) = false;

  /// Is there an index a worker may claim right now?
  [[nodiscard]] bool claimable_locked() const REQUIRES(mu) {
    return next_index < limit && next_index < consumed + window;
  }
};

/// Per-worker slot, one cache line each: a worker's hot bookkeeping never
/// false-shares with a neighbouring worker's.  `starts` is written only by
/// the owning worker while it runs and read only after join().
struct alignas(64) WorkerSlot {
  Problem* problem = nullptr;
  std::uint64_t id = 0;      // 1-based (0 = the calling/reducing thread)
  std::uint64_t starts = 0;  // restarts this worker completed
};

}  // namespace

MultistartResult parallel_multistart(Problem& problem, const Runner& runner,
                                     const ParallelMultistartOptions& options,
                                     util::Rng& rng) {
  const MultistartOptions& opts = options.multistart;
  if (!runner) throw std::invalid_argument("parallel_multistart: null runner");
  if (opts.budget_per_start == 0) {
    throw std::invalid_argument(
        "parallel_multistart: budget_per_start must be >= 1");
  }
  if (opts.budget_per_start > opts.total_budget) {
    throw std::invalid_argument(
        "parallel_multistart: budget_per_start exceeds total_budget");
  }
  if (options.num_threads == 0) {
    throw std::invalid_argument("parallel_multistart: num_threads must be >= 1");
  }

  // Clone in the calling thread, before any worker exists, so clone() never
  // races with a mutating run.
  std::vector<std::unique_ptr<Problem>> clones;
  clones.reserve(options.num_threads);
  for (unsigned t = 0; t < options.num_threads; ++t) {
    auto clone = problem.clone();
    if (!clone) {
      throw std::invalid_argument(
          "parallel_multistart: Problem::clone() returned nullptr");
    }
    clones.push_back(std::move(clone));
  }

  const std::uint64_t master = rng.next();  // same single draw as multistart()
  const Snapshot initial_state = problem.snapshot();
  const std::uint64_t per_start = opts.budget_per_start;
  const std::uint64_t total = opts.total_budget;
  const obs::Recorder root =
      opts.recorder != nullptr ? *opts.recorder : obs::Recorder{};

  SpeculationQueue queue;
  {
    // No worker exists yet, but the guarded fields are only writable with
    // the capability held — the analysis does not model "before spawn".
    util::MutexLock lock{queue.mu};
    queue.limit = total / per_start;
    queue.window = 4ULL * options.num_threads + 4;
  }

  std::vector<WorkerSlot> slots(options.num_threads);
  for (unsigned t = 0; t < options.num_threads; ++t) {
    slots[t].problem = clones[t].get();
    slots[t].id = static_cast<std::uint64_t>(t) + 1;
  }

  auto worker = [&](WorkerSlot& slot) {
    while (true) {
      std::uint64_t index;
      {
        util::MutexLock lock{queue.mu};
        while (!queue.shutdown && !queue.claimable_locked()) {
          queue.work_cv.wait(queue.mu);
        }
        if (queue.shutdown) return;
        index = queue.next_index++;
      }
      StartResult result =
          run_start(*slot.problem, runner, initial_state,
                    index > 0 || opts.randomize_first, master, index,
                    per_start, root, slot.id, /*steal=*/true);
      ++slot.starts;
      {
        util::MutexLock lock{queue.mu};
        queue.ready.emplace(index, std::move(result));
        if (queue.ready.size() > queue.peak_ready) {
          queue.peak_ready = queue.ready.size();
        }
      }
      queue.ready_cv.notify_one();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(options.num_threads);
  for (unsigned t = 0; t < options.num_threads; ++t) {
    pool.emplace_back(worker, std::ref(slots[t]));
  }

  // Index-ordered reduction: the exact bookkeeping of the sequential loop.
  // Ready results are drained in batches — one critical section pulls every
  // consecutive speculative result the workers have delivered, and the
  // folds themselves run lock-free on the local batch — so reducer/worker
  // lock traffic is O(batches), not O(restarts).
  MultistartResult out;
  Snapshot last_final_state = initial_state;
  std::uint64_t spent = 0;
  bool first = true;
  std::uint64_t index = 0;
  std::vector<std::pair<std::uint64_t, StartResult>> batch;
  std::size_t batch_cursor = 0;
  while (spent < total) {
    const std::uint64_t slice = std::min(per_start, total - spent);
    StartResult start;
    if (slice == per_start) {
      if (batch_cursor < batch.size() && batch[batch_cursor].first == index) {
        start = std::move(batch[batch_cursor].second);
        ++batch_cursor;
      } else {
        // Every full-slice index is below queue.limit (the limit is
        // re-derived from `spent` after each batch), so a worker claims it
        // eventually: wait for it, then drain every consecutive ready
        // result in the same critical section.
        batch.clear();
        batch_cursor = 0;
        util::MutexLock lock{queue.mu};
        while (queue.ready.count(index) == 0) queue.ready_cv.wait(queue.mu);
        auto it = queue.ready.find(index);
        std::uint64_t expect = index;
        while (it != queue.ready.end() && it->first == expect) {
          batch.emplace_back(expect, std::move(it->second));
          it = queue.ready.erase(it);
          ++expect;
        }
        start = std::move(batch.front().second);
        batch_cursor = 1;
      }
    } else {
      // The remainder slice: the full-slice speculation (if any) used the
      // wrong budget, so run this index here with the sequentially-correct
      // slice.  Streams are index-keyed, so this reproduces exactly what
      // the sequential loop would have done.  Any batched results are
      // stale too: once the budget enters the remainder, every later slice
      // is a (shrinking) remainder as well.
      batch.clear();
      batch_cursor = 0;
      start = run_start(problem, runner, initial_state,
                        index > 0 || opts.randomize_first, master, index,
                        slice, root, /*worker=*/0, /*steal=*/false);
    }

    // Drain the restart's shard into the caller's sink — only here, on the
    // reducing thread, strictly in index order, so the stream matches the
    // sequential loop event for event (worker stamps aside).
    if (obs::TraceSink* sink = root.sink()) {
      for (const obs::Event& event : start.events) sink->write(event);
    }
    // Per-worker timeline spans, drained in the same index order as the
    // trace: only the reducing thread touches the builder.
    if (options.timeline != nullptr && !start.run.metrics.profile.empty()) {
      const auto tid = static_cast<std::uint32_t>(start.worker);
      options.timeline->set_thread_name(
          options.timeline_pid, tid,
          tid == 0 ? "reducer" : "worker " + std::to_string(tid));
      options.timeline->add_tree(start.run.metrics.profile,
                                 options.timeline_pid, tid);
    }
    obs::Recorder fold_rec = root.for_restart(index, 0, nullptr);

    spent += std::max<std::uint64_t>(start.run.ticks, 1);
    ++out.restarts;
    out.restart_best_costs.push_back(start.run.best_cost);
    if constexpr (util::kInvariantsEnabled) {
      ++out.aggregate.invariants.executed;
    }
    if (first) {
      const util::InvariantStats checks = out.aggregate.invariants;
      out.aggregate = start.run;
      out.aggregate.invariants += checks;
      first = false;
      fold_rec.new_best(0, start.run.ticks, out.aggregate.best_cost);
    } else {
      out.aggregate.final_cost = start.run.final_cost;
      out.aggregate.proposals += start.run.proposals;
      out.aggregate.accepts += start.run.accepts;
      out.aggregate.uphill_accepts += start.run.uphill_accepts;
      out.aggregate.descent_steps += start.run.descent_steps;
      out.aggregate.ticks += start.run.ticks;
      out.aggregate.temperatures_visited += start.run.temperatures_visited;
      out.aggregate.invariants += start.run.invariants;
      out.aggregate.metrics.merge(start.run.metrics);
      if (start.run.best_cost < out.aggregate.best_cost) {
        out.aggregate.best_cost = start.run.best_cost;
        out.aggregate.best_state = start.run.best_state;
        fold_rec.new_best(0, start.run.ticks, out.aggregate.best_cost);
      }
    }
    last_final_state = std::move(start.final_state);
    ++index;

    // Underspending restarts extend the horizon of guaranteed full-slice
    // starts; let the workers speculate into it.  Published once per
    // drained batch (the mid-batch values are never observable to a
    // claim that matters: the window only throttles speculation depth).
    if (batch_cursor >= batch.size()) {
      {
        util::MutexLock lock{queue.mu};
        queue.consumed = index;
        const std::uint64_t guaranteed =
            index + (total > spent ? (total - spent) / per_start : 0);
        queue.limit = std::max(queue.limit, guaranteed);
      }
      queue.work_cv.notify_all();
    }
  }

  {
    util::MutexLock lock{queue.mu};
    queue.shutdown = true;
  }
  queue.work_cv.notify_all();
  for (auto& thread : pool) thread.join();
  std::uint64_t peak_ready = 0;
  {
    // All workers are joined; the lock is for the analysis' benefit (and
    // the acquire ordering it implies costs nothing here).
    util::MutexLock lock{queue.mu};
    peak_ready = queue.peak_ready;
  }
  if (out.aggregate.metrics.collected) {
    out.aggregate.metrics.restarts = out.restarts;
    if (peak_ready > out.aggregate.metrics.queue_peak) {
      out.aggregate.metrics.queue_peak = peak_ready;
    }
    if (!out.aggregate.metrics.profile.empty()) {
      // Same root name as the sequential multistart(), so the deterministic
      // tree export is byte-identical across engines and thread counts.
      out.aggregate.metrics.profile.nest_under("multistart", out.restarts,
                                               out.aggregate.ticks);
    }
  }

  // Leave the caller's problem where the sequential loop would have: at the
  // last restart's final solution.
  problem.restore(last_final_state);
  return out;
}

}  // namespace mcopt::core
