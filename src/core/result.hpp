// Run bookkeeping shared by the Figure 1 / Figure 2 runners.
#pragma once

#include <cstdint>
#include <string>

#include "core/problem.hpp"
#include "obs/metrics.hpp"
#include "util/invariant.hpp"

namespace mcopt::core {

/// Outcome of one Monte Carlo run on one instance.
struct RunResult {
  double initial_cost = 0.0;  ///< h of the starting solution
  double final_cost = 0.0;    ///< h of the solution held at termination
  double best_cost = 0.0;     ///< best h seen at any point of the run
  Snapshot best_state;        ///< solution achieving best_cost

  std::uint64_t proposals = 0;        ///< random perturbations generated
  std::uint64_t accepts = 0;          ///< perturbations committed
  std::uint64_t uphill_accepts = 0;   ///< committed with h(j) > h(i)
  std::uint64_t descent_steps = 0;    ///< Figure 2 systematic evaluations
  std::uint64_t ticks = 0;            ///< total budget consumed
  unsigned temperatures_visited = 0;  ///< how many Y_i levels were entered

  /// Deep invariant verifications performed during the run; always 0 when
  /// the library is built without MCOPT_CHECK_INVARIANTS.
  util::InvariantStats invariants;

  /// Telemetry summary; empty (collected == false) unless the run was
  /// driven with a metrics-collecting obs::Recorder.  The multistart folds
  /// merge these blocks in restart-index order, so aggregates are
  /// deterministic at any thread count (wall-clock fields excepted).
  obs::RunMetrics metrics;

  /// initial_cost - best_cost; the paper's tables total this over 30
  /// instances ("total reduction in density").
  [[nodiscard]] double reduction() const noexcept {
    return initial_cost - best_cost;
  }
};

/// Human-readable one-line summary, used by examples and debug logging.
[[nodiscard]] std::string to_string(const RunResult& result);

}  // namespace mcopt::core
