// Replica exchange ("parallel tempering") — a modern member of the family
// of Monte Carlo methods the paper studies.
//
// Where Kirkpatrick anneals ONE walker through a falling schedule, replica
// exchange runs R walkers, each pinned at its own Y_r, and periodically
// proposes to swap the *solutions* of adjacent temperature levels with the
// detailed-balance probability
//
//   P(swap r, r+1) = min(1, exp((h_r - h_{r+1}) * (1/Y_{r+1} - 1/Y_r))),
//
// so good solutions drift toward cold levels while hot levels keep
// exploring.  Included as an extension experiment: the paper's question
// ("does annealing's machinery beat simpler rules?") is asked today of
// tempering instead; the framework can now pose it on the same workloads.
//
// Work accounting matches the rest of the library: every walker proposal
// charges one tick, so a tempering run with budget B does as much move work
// as any other method with budget B (swap tests are bookkeeping, like g
// evaluations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/problem.hpp"
#include "core/result.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

struct TemperingOptions {
  /// One temperature per replica, hottest first, all positive,
  /// non-increasing (see core/schedule.hpp builders).
  std::vector<double> temperatures;
  /// Total move proposals across all replicas (round-robin).
  std::uint64_t budget = 30'000;
  /// After every `sweep` proposals per replica, adjacent pairs are offered
  /// a solution swap.  Must be >= 1.
  std::uint64_t sweep = 50;
  /// Every this many ticks (at swap-phase boundaries), deep-verify every
  /// replica via Problem::check_invariants() (util/invariant.hpp).  Only
  /// active in builds with MCOPT_CHECK_INVARIANTS; 0 disables.
  std::uint64_t invariant_check_interval = 4096;
  /// Optional telemetry (src/obs).  Events carry the replica index in the
  /// `stage` field; per-stage wall time is not split (replicas interleave).
  const obs::Recorder* recorder = nullptr;
};

struct TemperingResult {
  RunResult aggregate;           ///< best over all replicas; summed counters
  std::uint64_t swap_attempts = 0;
  std::uint64_t swap_accepts = 0;
};

/// Creates one replica per temperature with `make_replica(r)` (each must be
/// a fresh problem positioned at a starting solution — typically random).
/// Throws std::invalid_argument on an empty/invalid schedule, zero sweep,
/// or a null factory.
[[nodiscard]] TemperingResult parallel_tempering(
    const std::function<std::unique_ptr<Problem>(std::size_t replica)>&
        make_replica,
    const TemperingOptions& options, util::Rng& rng);

}  // namespace mcopt::core
