#include "core/tuner.hpp"

#include <cmath>
#include <cstddef>
#include <iterator>
#include <stdexcept>

#include "core/figure1.hpp"
#include "util/rng.hpp"

namespace mcopt::core {

namespace {

constexpr double kEMinusOne = 1.718281828459045;
constexpr double kTargets[] = {0.02, 0.05, 0.1, 0.2, 0.4, 0.8};

}  // namespace

std::vector<double> default_candidate_scales(GClass cls, double typical_cost,
                                             double typical_delta) {
  if (!g_class_uses_scale(cls)) return {1.0};
  const double h = typical_cost > 0.0 ? typical_cost : 1.0;
  const double d = typical_delta > 0.0 ? typical_delta : 1.0;

  std::vector<double> out;
  out.reserve(std::size(kTargets));
  for (const double p : kTargets) {
    double scale = 1.0;
    switch (cls) {
      case GClass::kMetropolis:
      case GClass::kSixTempAnnealing:
        // exp(-d/Y) = p  =>  Y = d / ln(1/p)
        scale = d / std::log(1.0 / p);
        break;
      case GClass::kLinear:
      case GClass::kSixLinear:
        scale = p / h;
        break;
      case GClass::kQuadratic:
      case GClass::kSixQuadratic:
        scale = p / (h * h);
        break;
      case GClass::kCubic:
      case GClass::kSixCubic:
        scale = p / (h * h * h);
        break;
      case GClass::kExponential:
      case GClass::kSixExponential:
        // (e^(h/Y)-1)/(e-1) = p  =>  Y = h / ln(1 + p(e-1))
        scale = h / std::log(1.0 + p * kEMinusOne);
        break;
      case GClass::kLinearDiff:
      case GClass::kSixLinearDiff:
        scale = p * d;
        break;
      case GClass::kQuadraticDiff:
      case GClass::kSixQuadraticDiff:
        scale = p * d * d;
        break;
      case GClass::kCubicDiff:
      case GClass::kSixCubicDiff:
        scale = p * d * d * d;
        break;
      case GClass::kExponentialDiff:
      case GClass::kSixExponentialDiff:
        scale = d * std::log(1.0 + p * kEMinusOne);
        break;
      case GClass::kThresholdAccepting:
        // Y is a delta threshold; sweep it across the typical-delta scale
        // so the target fraction of uphill moves clears it.
        scale = 2.0 * p * d;
        break;
      case GClass::kGOne:
      case GClass::kTwoLevel:
      case GClass::kCohoonSahni:
        scale = 1.0;  // unreachable: filtered above
        break;
    }
    out.push_back(scale);
  }
  return out;
}

TuneResult tune_scale(GClass cls, const ProblemFactory& factory,
                      const TunerOptions& options) {
  if (!factory) throw std::invalid_argument("tune_scale: null factory");
  if (options.num_instances == 0) {
    throw std::invalid_argument("tune_scale: need at least one instance");
  }

  std::vector<double> candidates =
      !options.candidates.empty()
          ? options.candidates
          : default_candidate_scales(cls, options.typical_cost,
                                     options.typical_delta);

  TuneResult result;
  bool first = true;
  for (const double scale : candidates) {
    GParams params;
    params.scale = scale;
    params.ratio = options.ratio;
    const auto g = make_g(cls, params);

    double total_reduction = 0.0;
    for (std::size_t i = 0; i < options.num_instances; ++i) {
      auto problem = factory(i);
      // Common random numbers across candidates: the move stream depends on
      // the instance only, so candidates are compared like-for-like.
      util::Rng rng{util::derive_seed(options.seed, i)};
      Figure1Options fig1;
      fig1.budget = options.budget;
      const RunResult run = run_figure1(*problem, *g, fig1, rng);
      total_reduction += run.reduction();
    }
    result.scores.emplace_back(scale, total_reduction);
    if (first || total_reduction > result.best_total_reduction) {
      result.best_scale = scale;
      result.best_total_reduction = total_reduction;
      first = false;
    }
  }
  return result;
}

}  // namespace mcopt::core
