#include "core/multistart.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/invariant.hpp"

namespace mcopt::core {

MultistartResult multistart(Problem& problem, const Runner& runner,
                            const MultistartOptions& options,
                            util::Rng& rng) {
  if (!runner) throw std::invalid_argument("multistart: null runner");
  if (options.budget_per_start == 0) {
    throw std::invalid_argument("multistart: budget_per_start must be >= 1");
  }
  if (options.budget_per_start > options.total_budget) {
    throw std::invalid_argument(
        "multistart: budget_per_start exceeds total_budget");
  }

  MultistartResult out;
  std::uint64_t spent = 0;
  bool first = true;
  while (spent < options.total_budget) {
    const std::uint64_t slice =
        std::min(options.budget_per_start, options.total_budget - spent);
    if (!first || options.randomize_first) problem.randomize(rng);
    const RunResult run = runner(problem, slice, rng);
    spent += std::max<std::uint64_t>(run.ticks, slice);
    ++out.restarts;

    // Deep-verify the problem state between restarts; the per-run interval
    // checks inside the runner are summed into the aggregate below.
    if constexpr (util::kInvariantsEnabled) {
      problem.check_invariants();
      ++out.aggregate.invariants.executed;
    }

    if (first) {
      const util::InvariantStats checks = out.aggregate.invariants;
      out.aggregate = run;
      out.aggregate.invariants += checks;
      first = false;
    } else {
      out.aggregate.final_cost = run.final_cost;
      out.aggregate.proposals += run.proposals;
      out.aggregate.accepts += run.accepts;
      out.aggregate.uphill_accepts += run.uphill_accepts;
      out.aggregate.descent_steps += run.descent_steps;
      out.aggregate.ticks += run.ticks;
      out.aggregate.temperatures_visited += run.temperatures_visited;
      out.aggregate.invariants += run.invariants;
      if (run.best_cost < out.aggregate.best_cost) {
        out.aggregate.best_cost = run.best_cost;
        out.aggregate.best_state = run.best_state;
      }
    }
  }
  return out;
}

}  // namespace mcopt::core
