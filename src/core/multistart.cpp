#include "core/multistart.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/invariant.hpp"

namespace mcopt::core {

MultistartResult multistart(Problem& problem, const Runner& runner,
                            const MultistartOptions& options,
                            util::Rng& rng) {
  if (!runner) throw std::invalid_argument("multistart: null runner");
  if (options.budget_per_start == 0) {
    throw std::invalid_argument("multistart: budget_per_start must be >= 1");
  }
  if (options.budget_per_start > options.total_budget) {
    throw std::invalid_argument(
        "multistart: budget_per_start exceeds total_budget");
  }

  // One master draw, then a SplitMix-derived stream per restart: restart i
  // sees Rng::split(master, i) no matter what earlier restarts consumed.
  // This is what lets parallel_multistart() reproduce this loop bit-for-bit
  // from worker threads (core/parallel.hpp); the caller's rng advances by
  // exactly one output either way.
  const std::uint64_t master = rng.next();

  const obs::Recorder root =
      options.recorder != nullptr ? *options.recorder : obs::Recorder{};

  MultistartResult out;
  std::uint64_t spent = 0;
  bool first = true;
  std::uint64_t index = 0;
  while (spent < options.total_budget) {
    const std::uint64_t slice =
        std::min(options.budget_per_start, options.total_budget - spent);
    util::Rng start_rng = util::Rng::split(master, index);
    if (!first || options.randomize_first) problem.randomize(start_rng);

    // Restart-scoped recorder, writing straight to the caller's sink (the
    // sequential loop IS index order); worker 0 = the calling thread.
    obs::Recorder restart_rec = root.for_restart(index, 0, nullptr);
    if (restart_rec.on()) restart_rec.restart_begin(problem.cost());

    const RunResult run = runner(problem, slice, start_rng, restart_rec);
    // Charge what the run actually consumed (an early-terminating runner
    // leaves budget for more restarts); the max(., 1) floor guarantees
    // progress against a runner that reports zero ticks.
    spent += std::max<std::uint64_t>(run.ticks, 1);
    ++out.restarts;
    ++index;
    out.restart_best_costs.push_back(run.best_cost);

    // Deep-verify the problem state between restarts; the per-run interval
    // checks inside the runner are summed into the aggregate below.
    if constexpr (util::kInvariantsEnabled) {
      problem.check_invariants();
      ++out.aggregate.invariants.executed;
    }

    if (first) {
      const util::InvariantStats checks = out.aggregate.invariants;
      out.aggregate = run;
      out.aggregate.invariants += checks;
      first = false;
      // Aggregate-level confirmation of the incumbent after each restart
      // folds (restart 0 always sets it).
      restart_rec.new_best(0, run.ticks, out.aggregate.best_cost);
    } else {
      out.aggregate.final_cost = run.final_cost;
      out.aggregate.proposals += run.proposals;
      out.aggregate.accepts += run.accepts;
      out.aggregate.uphill_accepts += run.uphill_accepts;
      out.aggregate.descent_steps += run.descent_steps;
      out.aggregate.ticks += run.ticks;
      out.aggregate.temperatures_visited += run.temperatures_visited;
      out.aggregate.invariants += run.invariants;
      out.aggregate.metrics.merge(run.metrics);
      if (run.best_cost < out.aggregate.best_cost) {
        out.aggregate.best_cost = run.best_cost;
        out.aggregate.best_state = run.best_state;
        restart_rec.new_best(0, run.ticks, out.aggregate.best_cost);
      }
    }
  }
  if (out.aggregate.metrics.collected) {
    out.aggregate.metrics.restarts = out.restarts;
    if (!out.aggregate.metrics.profile.empty()) {
      // Same root name as parallel_multistart(), so the exported tree is
      // byte-identical across engines and thread counts.
      out.aggregate.metrics.profile.nest_under("multistart", out.restarts,
                                               out.aggregate.ticks);
    }
  }
  return out;
}

}  // namespace mcopt::core
