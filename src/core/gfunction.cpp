#include "core/gfunction.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"

namespace mcopt::core {

namespace {

constexpr double kEMinusOne = 1.718281828459045;

double clamp01(double p) noexcept {
  if (std::isnan(p)) return 1.0;  // 0/0-style limits: treat as certain accept
  return std::clamp(p, 0.0, 1.0);
}

/// Shared implementation for all paper classes; behaviour switches on the
/// class id.  Cohoon-Sahni gets its own type because it carries m.
class FormG final : public GFunction {
 public:
  FormG(GClass cls, std::vector<double> ys, std::string display_name = {})
      : cls_(cls), ys_(std::move(ys)), display_name_(std::move(display_name)) {}

  [[nodiscard]] unsigned num_temperatures() const noexcept override {
    return static_cast<unsigned>(ys_.size());
  }

  [[nodiscard]] double probability(unsigned t, double h_i,
                                   double h_j) const override {
    MCOPT_CHECK(t < ys_.size(), "temperature index out of schedule range");
    const double p = raw_probability(t, h_i, h_j);
    MCOPT_DCHECK(p >= 0.0 && p <= 1.0,
                 "acceptance probability outside [0, 1]");
    return p;
  }

 private:
  [[nodiscard]] double raw_probability(unsigned t, double h_i,
                                       double h_j) const {
    const double y = ys_[t];
    const double delta = h_j - h_i;
    switch (cls_) {
      case GClass::kMetropolis:
      case GClass::kSixTempAnnealing:
        return clamp01(std::exp(-delta / y));
      case GClass::kGOne:
        return 1.0;
      case GClass::kTwoLevel:
        return t == 0 ? 1.0 : 0.5;
      case GClass::kLinear:
      case GClass::kSixLinear:
        return clamp01(y * h_i);
      case GClass::kQuadratic:
      case GClass::kSixQuadratic:
        return clamp01(y * h_i * h_i);
      case GClass::kCubic:
      case GClass::kSixCubic:
        return clamp01(y * h_i * h_i * h_i);
      case GClass::kExponential:
      case GClass::kSixExponential:
        return clamp01((std::exp(h_i / y) - 1.0) / kEMinusOne);
      case GClass::kLinearDiff:
      case GClass::kSixLinearDiff:
        return delta <= 0.0 ? 1.0 : clamp01(y / delta);
      case GClass::kQuadraticDiff:
      case GClass::kSixQuadraticDiff:
        return delta <= 0.0 ? 1.0 : clamp01(y / (delta * delta));
      case GClass::kCubicDiff:
      case GClass::kSixCubicDiff:
        return delta <= 0.0 ? 1.0 : clamp01(y / (delta * delta * delta));
      case GClass::kExponentialDiff:
      case GClass::kSixExponentialDiff:
        return delta <= 0.0
                   ? 1.0
                   : clamp01((std::exp(y / delta) - 1.0) / kEMinusOne);
      case GClass::kThresholdAccepting:
        return delta <= y ? 1.0 : 0.0;
      case GClass::kCohoonSahni:
        break;  // handled by CohoonG
    }
    throw std::logic_error("FormG: unhandled class");
  }

 public:
  [[nodiscard]] bool always_accepts(unsigned t) const noexcept override {
    if (cls_ == GClass::kGOne) return true;
    return cls_ == GClass::kTwoLevel && t == 0;
  }

  [[nodiscard]] double temperature(unsigned t) const noexcept override {
    const bool boltzmann =
        cls_ == GClass::kMetropolis || cls_ == GClass::kSixTempAnnealing;
    return boltzmann && t < ys_.size() ? ys_[t] : 0.0;
  }

  [[nodiscard]] std::string name() const override {
    return display_name_.empty() ? g_class_name(cls_) : display_name_;
  }

 private:
  GClass cls_;
  std::vector<double> ys_;
  std::string display_name_;
};

/// [COHO83a]: g(density) = min(density / (m + 5), 0.9); k = 1.
class CohoonG final : public GFunction {
 public:
  explicit CohoonG(std::size_t num_nets) : num_nets_(num_nets) {}

  [[nodiscard]] unsigned num_temperatures() const noexcept override {
    return 1;
  }

  [[nodiscard]] double probability(unsigned t, double h_i,
                                   double /*h_j*/) const override {
    MCOPT_CHECK(t < 1, "temperature index out of schedule range");
    const double p =
        clamp01(std::min(h_i / (static_cast<double>(num_nets_) + 5.0), 0.9));
    MCOPT_DCHECK(p >= 0.0 && p <= 1.0,
                 "acceptance probability outside [0, 1]");
    return p;
  }

  [[nodiscard]] std::string name() const override {
    return g_class_name(GClass::kCohoonSahni);
  }

 private:
  std::size_t num_nets_;
};

}  // namespace

bool GFunction::always_accepts(unsigned /*t*/) const noexcept { return false; }

double GFunction::temperature(unsigned /*t*/) const noexcept { return 0.0; }

std::unique_ptr<GFunction> make_g(GClass cls, const GParams& params) {
  if (cls == GClass::kCohoonSahni) {
    if (params.num_nets == 0) {
      throw std::invalid_argument(
          "Cohoon-Sahni g needs the instance's net count (GParams::num_nets)");
    }
    return std::make_unique<CohoonG>(params.num_nets);
  }
  const unsigned k = g_class_k(cls);
  if (g_class_uses_scale(cls)) {
    if (!(params.scale > 0.0)) {
      throw std::invalid_argument("g scale must be positive");
    }
    if (k > 1 && !(params.ratio > 0.0)) {
      throw std::invalid_argument("g ratio must be positive");
    }
  }
  std::vector<double> ys(k, params.scale);
  for (unsigned t = 1; t < k; ++t) ys[t] = ys[t - 1] * params.ratio;
  return std::make_unique<FormG>(cls, std::move(ys));
}

std::unique_ptr<GFunction> make_annealing_g(std::vector<double> ys) {
  if (ys.empty()) throw std::invalid_argument("annealing schedule is empty");
  for (const double y : ys) {
    if (!(y > 0.0)) {
      throw std::invalid_argument("annealing schedule values must be > 0");
    }
  }
  const auto k = ys.size();
  return std::make_unique<FormG>(GClass::kSixTempAnnealing, std::move(ys),
                                 "Annealing(k=" + std::to_string(k) + ")");
}

const char* g_class_name(GClass cls) noexcept {
  switch (cls) {
    case GClass::kMetropolis: return "Metropolis";
    case GClass::kSixTempAnnealing: return "Six Temperature Annealing";
    case GClass::kGOne: return "g = 1";
    case GClass::kTwoLevel: return "Two level g";
    case GClass::kLinear: return "Linear";
    case GClass::kQuadratic: return "Quadratic";
    case GClass::kCubic: return "Cubic";
    case GClass::kExponential: return "Exponential";
    case GClass::kSixLinear: return "6 Linear";
    case GClass::kSixQuadratic: return "6 Quadratic";
    case GClass::kSixCubic: return "6 Cubic";
    case GClass::kSixExponential: return "6 Exponential";
    case GClass::kLinearDiff: return "Linear Diff";
    case GClass::kQuadraticDiff: return "Quadratic Diff";
    case GClass::kCubicDiff: return "Cubic Diff";
    case GClass::kExponentialDiff: return "Exponential Diff";
    case GClass::kSixLinearDiff: return "6 Linear Diff";
    case GClass::kSixQuadraticDiff: return "6 Quadratic Diff";
    case GClass::kSixCubicDiff: return "6 Cubic Diff";
    case GClass::kSixExponentialDiff: return "6 Exponential Diff";
    case GClass::kCohoonSahni: return "[COHO83a]";
    case GClass::kThresholdAccepting: return "Threshold Accepting";
  }
  return "?";
}

unsigned g_class_k(GClass cls) noexcept {
  switch (cls) {
    case GClass::kSixTempAnnealing:
    case GClass::kSixLinear:
    case GClass::kSixQuadratic:
    case GClass::kSixCubic:
    case GClass::kSixExponential:
    case GClass::kSixLinearDiff:
    case GClass::kSixQuadraticDiff:
    case GClass::kSixCubicDiff:
    case GClass::kSixExponentialDiff:
    case GClass::kThresholdAccepting:
      return 6;
    case GClass::kTwoLevel:
      return 2;
    default:
      return 1;
  }
}

bool g_class_uses_scale(GClass cls) noexcept {
  switch (cls) {
    case GClass::kGOne:
    case GClass::kTwoLevel:
    case GClass::kCohoonSahni:
      return false;
    default:
      return true;
  }
}

std::vector<GClass> table41_classes() {
  std::vector<GClass> out;
  out.reserve(20);
  for (int i = 1; i <= 20; ++i) out.push_back(static_cast<GClass>(i));
  return out;
}

std::vector<GClass> table42_classes() {
  return {GClass::kCohoonSahni,     GClass::kMetropolis,
          GClass::kSixTempAnnealing, GClass::kGOne,
          GClass::kTwoLevel,         GClass::kLinearDiff,
          GClass::kQuadraticDiff,    GClass::kCubicDiff,
          GClass::kExponentialDiff,  GClass::kSixLinearDiff,
          GClass::kSixQuadraticDiff, GClass::kSixCubicDiff,
          GClass::kSixExponentialDiff};
}

}  // namespace mcopt::core
