// Deterministic pseudo-random number generation for mcopt.
//
// All stochastic components of the library draw from Rng, a xoshiro256++
// generator seeded through splitmix64.  Using our own generator (rather than
// std::mt19937 + std::uniform_int_distribution) guarantees bit-identical
// streams across standard libraries and platforms, which the reproduction
// harness relies on: every table in EXPERIMENTS.md is regenerated from fixed
// seeds.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace mcopt::util {

/// xoshiro256++ PRNG (Blackman & Vigna).  Satisfies the essentials of
/// std::uniform_random_bit_generator so it can also feed <random> adaptors.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Fills out[0..count) with the next `count` raw outputs, bit-identical
  /// to calling next() `count` times.  Hot loops draw a small block up
  /// front and stream from it, amortizing the per-call state round-trip
  /// (the generator state lives in registers for the whole block).
  void next_block(std::uint64_t* out, std::size_t count) noexcept;

  /// Uniform in [0, bound).  bound must be > 0.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  int next_int(int lo, int hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// True with probability p (p outside [0,1] saturates).
  bool next_bool(double p) noexcept;

  /// Fisher-Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// A fresh generator whose stream is statistically independent of this
  /// one's future output.  Used to give every (instance, method) pair its
  /// own stream so methods never share randomness.
  Rng split() noexcept;

  /// A generator for stream `stream` of master seed `master`, derived
  /// SplitMix-style (derive_seed): distinct (master, stream) pairs yield
  /// independent streams, and the derivation touches no generator state, so
  /// stream i is the same whether it is created first, last, or on another
  /// thread.  The parallel multistart engine keys each restart's stream off
  /// its restart index this way to stay bit-identical at any thread count.
  [[nodiscard]] static Rng split(std::uint64_t master,
                                 std::uint64_t stream) noexcept;

  /// Distinct pair (a, b), a != b, both uniform in [0, n).  n must be >= 2.
  std::pair<std::size_t, std::size_t> next_distinct_pair(std::size_t n) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// splitmix64 step; exposed for seed-derivation in tests and generators.
std::uint64_t splitmix64(std::uint64_t& x) noexcept;

/// Derives a stable sub-seed from a master seed and a stream index, so a
/// harness can name streams ("instance 7, method 12") reproducibly.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept;

}  // namespace mcopt::util
