// Streaming summary statistics used by the bench harnesses and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace mcopt::util {

/// Accumulates count/mean/variance (Welford) plus min/max and sum.
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Pools another summary into this one (parallel Welford merge).
  void merge(const Summary& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of `xs` (average of the middle two for even sizes).
/// Returns 0 for an empty input.
double median(std::vector<double> xs);

/// p-th percentile (0 <= p <= 100) by linear interpolation between closest
/// ranks.  Returns 0 for an empty input.
double percentile(std::vector<double> xs, double p);

}  // namespace mcopt::util
