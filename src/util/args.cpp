#include "util/args.hpp"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <stdexcept>

namespace mcopt::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string word = argv[i];
    if (word.rfind("--", 0) != 0 || word.size() == 2) {
      positional_.push_back(word);
      continue;
    }
    const auto eq = word.find('=');
    if (eq != std::string::npos) {
      flags_[word.substr(2, eq - 2)] = word.substr(eq + 1);
      continue;
    }
    const std::string name = word.substr(2);
    const bool next_is_value =
        i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
    if (next_is_value) {
      flags_[name] = argv[++i];
    } else {
      flags_[name] = "";
    }
  }
}

bool Args::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::optional<std::string> Args::value(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  return value(name).value_or(fallback);
}

long long Args::get_int(const std::string& name, long long fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                *v + "'");
  }
}

std::vector<std::string> Args::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace mcopt::util
