// Computation budgets.
//
// The paper compares methods under equal CPU time (6/9/12 seconds or 3
// minutes per instance on a VAX 11/780).  Wall-clock budgets are not
// reproducible across machines, so the default budget unit here is a *tick*:
// one tick per move proposal (and per descent step inside the Figure 2
// strategy).  A WorkBudget of N ticks plays the role of a T-second run; the
// mapping used by the reproduction benches is documented in DESIGN.md
// (6 s ~= 30,000 ticks).  A wall-clock budget is provided for users who want
// literal equal-time runs.
#pragma once

#include <chrono>
#include <cstdint>

namespace mcopt::util {

/// Deterministic budget counted in ticks.
class WorkBudget {
 public:
  WorkBudget() = default;
  /// A budget of `total` ticks.  total == 0 means an empty budget.
  explicit WorkBudget(std::uint64_t total) noexcept : total_(total) {}

  /// Charges `n` ticks.  Charging past exhaustion is allowed (the consumer
  /// checks exhausted() between steps); `spent` keeps counting.
  void charge(std::uint64_t n = 1) noexcept { spent_ += n; }

  [[nodiscard]] bool exhausted() const noexcept { return spent_ >= total_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t spent() const noexcept { return spent_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return spent_ >= total_ ? 0 : total_ - spent_;
  }

  /// Fraction of the budget consumed, in [0, 1]; 1 for an empty budget.
  [[nodiscard]] double progress() const noexcept {
    if (total_ == 0) return 1.0;
    const double p = static_cast<double>(spent_) / static_cast<double>(total_);
    return p > 1.0 ? 1.0 : p;
  }

  /// Carves the budget into `k` equal slices (the paper's floor(total/k)
  /// seconds-per-temperature rule) and returns the tick count at which
  /// slice `index` (0-based) ends.  The final slice absorbs the remainder.
  [[nodiscard]] std::uint64_t slice_end(unsigned k, unsigned index) const noexcept;

 private:
  std::uint64_t total_ = 0;
  std::uint64_t spent_ = 0;
};

/// Wall-clock stopwatch for the optional literal equal-time mode and for
/// reporting measured runtimes in the benches.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t nanos() const noexcept {
    const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       clock::now() - start_)
                       .count();
    return d < 0 ? 0 : static_cast<std::uint64_t>(d);
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mcopt::util
