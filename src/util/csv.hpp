// Minimal RFC-4180 CSV writer; benches optionally mirror their tables to
// CSV so plots can be regenerated outside the repo.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mcopt::util {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) noexcept : out_(&out) {}

  /// Writes one row; fields containing commas, quotes, or newlines are
  /// quoted and embedded quotes doubled.
  void row(const std::vector<std::string>& fields);

  /// Escapes a single field per RFC 4180.
  static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
};

}  // namespace mcopt::util
