#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcopt::util {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n_total = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double nt = static_cast<double>(n_total);
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n_total;
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace mcopt::util
