#include "util/budget.hpp"

namespace mcopt::util {

std::uint64_t WorkBudget::slice_end(unsigned k, unsigned index) const noexcept {
  if (k == 0) return total_;
  if (index + 1 >= k) return total_;
  const std::uint64_t slice = total_ / k;
  return slice * (index + 1);
}

}  // namespace mcopt::util
