// Runtime invariant verification.
//
// The incremental data structures this library is built on (DensityState,
// PartitionState, incremental tour lengths) buy their speed by maintaining
// derived quantities under moves instead of recomputing them.  A silently
// corrupted structure does not crash — it biases every equal-budget
// comparison the reproduction reports.  This header provides the checking
// layer that makes such corruption loud:
//
//   MCOPT_CHECK(cond, msg)   — verifies `cond` and throws InvariantViolation
//                              on failure.  Compiled in when the CMake option
//                              MCOPT_CHECK_INVARIANTS is ON (the default for
//                              Debug builds), compiled out otherwise.
//   MCOPT_DCHECK(cond, msg)  — as MCOPT_CHECK, but additionally compiled out
//                              under NDEBUG; reserved for checks too hot even
//                              for a checked release build (per-call range
//                              and domain contracts on inner loops).
//
// When compiled out, the condition is never evaluated (it is only inspected
// in an unevaluated sizeof context, so variables it names do not warn as
// unused).  Failures throw rather than abort so test harnesses can assert on
// them; an invariant failure inside a noexcept function still terminates,
// which is the intended behaviour for genuinely impossible states.
//
// Runners (figure1, figure2, multistart, tempering) additionally perform
// periodic deep verification — Problem::check_invariants() every K ticks —
// and count those verifications in InvariantStats, surfaced through
// core::RunResult so a CI run can prove the checks actually executed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mcopt::util {

/// Thrown by MCOPT_CHECK / MCOPT_DCHECK on a violated invariant.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Formats "<file>:<line>: invariant violated: <cond> (<msg>)" and throws
/// InvariantViolation.  Out-of-line so the macro expansion stays small.
[[noreturn]] void invariant_failure(const char* file, int line,
                                    const char* condition, const char* message);

/// Count of deep (full-recompute) verifications a run performed; embedded in
/// core::RunResult.  Zero in builds with MCOPT_CHECK_INVARIANTS off.
struct InvariantStats {
  std::uint64_t executed = 0;

  InvariantStats& operator+=(const InvariantStats& other) noexcept {
    executed += other.executed;
    return *this;
  }
};

#if defined(MCOPT_CHECK_INVARIANTS)
inline constexpr bool kInvariantsEnabled = true;
#else
inline constexpr bool kInvariantsEnabled = false;
#endif

}  // namespace mcopt::util

#if defined(MCOPT_CHECK_INVARIANTS)
#define MCOPT_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mcopt::util::invariant_failure(__FILE__, __LINE__, #cond, msg); \
    }                                                                   \
  } while (false)
#else
#define MCOPT_CHECK(cond, msg) static_cast<void>(sizeof(!(cond)))
#endif

#if defined(MCOPT_CHECK_INVARIANTS) && !defined(NDEBUG)
#define MCOPT_DCHECK(cond, msg) MCOPT_CHECK(cond, msg)
#else
#define MCOPT_DCHECK(cond, msg) static_cast<void>(sizeof(!(cond)))
#endif
