#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace mcopt::util {

void Table::add_column(std::string header, Align align) {
  columns_.push_back(Column{std::move(header), align});
}

std::vector<std::string> Table::headers() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& column : columns_) out.push_back(column.header);
  return out;
}

void Table::begin_row() { cells_.emplace_back(); }

void Table::cell(std::string text) {
  if (cells_.empty()) begin_row();
  if (cells_.back().size() < columns_.size()) {
    cells_.back().push_back(std::move(text));
  }
}

void Table::cell(long long value) { cell(std::to_string(value)); }
void Table::cell(unsigned long long value) { cell(std::to_string(value)); }
void Table::cell(int value) { cell(std::to_string(value)); }

void Table::cell(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  cell(os.str());
}

std::string Table::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < columns_.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::string& text, std::size_t c, bool last) {
    const auto pad = widths[c] - std::min(widths[c], text.size());
    if (columns_[c].align == Align::kRight) {
      os << std::string(pad, ' ') << text;
    } else {
      os << text;
      if (!last) os << std::string(pad, ' ');
    }
    if (!last) os << "  ";
  };

  for (std::size_t c = 0; c < columns_.size(); ++c) {
    emit(columns_[c].header, c, c + 1 == columns_.size());
  }
  os << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 != columns_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      emit(text, c, c + 1 == columns_.size());
    }
    os << '\n';
  }
  return os.str();
}

void Table::print() const {
  const std::string rendered = str();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace mcopt::util
