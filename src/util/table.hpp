// Plain-text table formatting for the bench binaries.
//
// The reproduction benches print tables shaped like the paper's Tables 4.1
// and 4.2; this renderer right-aligns numeric columns, left-aligns text, and
// draws a header rule, e.g.
//
//   g function                  6 sec   9 sec   12 sec
//   -------------------------  ------  ------  -------
//   Six Temperature Annealing     601     632      652
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcopt::util {

class Table {
 public:
  enum class Align { kLeft, kRight };

  /// Declares a column.  Numeric columns should use kRight.
  void add_column(std::string header, Align align = Align::kRight);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  void begin_row();
  void cell(std::string text);
  void cell(long long value);
  void cell(unsigned long long value);
  void cell(int value);
  /// Fixed-point with `precision` digits after the decimal point.
  void cell(double value, int precision = 2);

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

  /// Column headers, for structured export (CSV mirroring of benches).
  [[nodiscard]] std::vector<std::string> headers() const;

  /// Raw cell text by [row][column]; short rows are not padded here.
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return cells_;
  }

  /// Renders the table (trailing newline included).  Short rows are padded
  /// with empty cells; overlong rows are a logic error and are truncated.
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  struct Column {
    std::string header;
    Align align;
  };
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace mcopt::util
