// Clang Thread Safety Analysis attribute shim.
//
// These macros expand to Clang's `capability`-family attributes so the
// compiler can prove, at compile time, that every access to a shared
// field happens with its guarding mutex held (-Wthread-safety; the
// `thread-safety` CMake preset promotes violations to errors).  On
// compilers without the attributes (GCC, MSVC) every macro expands to
// nothing — the annotations are contracts, never code.
//
// Vocabulary (matching the Clang documentation, so its diagnostics read
// 1:1 against our sources):
//   CAPABILITY("mutex")    on a class: instances are lockable capabilities
//   SCOPED_CAPABILITY      on a class: RAII object acquiring/releasing one
//   GUARDED_BY(mu)         on a field: reads/writes require holding mu
//   PT_GUARDED_BY(mu)      on a pointer field: the pointee requires mu
//   REQUIRES(mu)           on a function: caller must hold mu (the
//                          signature convention for *_locked() helpers)
//   ACQUIRE(mu)/RELEASE(mu) on a function: it takes / drops mu
//   TRY_ACQUIRE(true, mu)  on a function: takes mu iff it returns true
//   EXCLUDES(mu)           on a function: caller must NOT hold mu
//                          (catches self-deadlock through public APIs)
//   ASSERT_CAPABILITY(mu)  on a function: runtime-checks mu is held
//   RETURN_CAPABILITY(mu)  on a function: returns a reference to mu
//   NO_THREAD_SAFETY_ANALYSIS  escape hatch; needs a comment justifying it
//
// Only src/util/sync.hpp should apply the ACQUIRE/RELEASE family to real
// lock implementations; everything else annotates data (GUARDED_BY) and
// call contracts (REQUIRES/EXCLUDES) against util::Mutex.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MCOPT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MCOPT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) MCOPT_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY MCOPT_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) MCOPT_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MCOPT_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) MCOPT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MCOPT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) MCOPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  MCOPT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) MCOPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  MCOPT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MCOPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  MCOPT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  MCOPT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) MCOPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MCOPT_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) MCOPT_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  MCOPT_THREAD_ANNOTATION(no_thread_safety_analysis)
