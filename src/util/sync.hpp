// The project's annotated synchronization layer.
//
// Every mutex in mcopt is a util::Mutex and every critical section a
// util::MutexLock, never the std primitives directly — the determinism
// lint (tools/mcoptlint, rule `raw-sync-primitive`) enforces
// this file as the only home of std::mutex and friends.  The point of the
// wrapper is the CAPABILITY annotation: a util::Mutex is a capability the
// Clang Thread Safety Analysis can track, so a field declared
// `GUARDED_BY(mu_)` cannot be compiled if any code path touches it
// without holding mu_ (see util/thread_annotations.hpp and the
// `thread-safety` CMake preset).  A bare std::mutex carries no such
// contract — which is exactly why this wraps rather than aliases it
// (DESIGN.md, "Concurrency contract").
//
// Determinism note: the layer offers *untimed* waits only.  Timed waits
// (wait_for / wait_until) make control flow a function of the scheduler
// and are banned alongside sleep_for by the determinism lint; code that
// wants to give up waiting must encode that as guarded state another
// thread sets.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mcopt::util {

/// A standard mutex, visible to thread-safety analysis as a capability.
/// Non-recursive, non-timed, not copyable or movable (fields annotated
/// GUARDED_BY(mu) must name a mutex with a stable identity).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::wait needs the native handle
  std::mutex mu_;
};

/// RAII critical section over a util::Mutex; the only sanctioned way to
/// hold one.  Scoped-capability-annotated, so analysis knows the guarded
/// region is exactly this object's lifetime.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex.  wait() REQUIRES the mutex,
/// so a caller that has not locked it is a compile error — the class of
/// bug std::condition_variable only reveals as UB at runtime.
///
/// The usual pattern (the predicate re-check loop is the caller's, which
/// keeps every guarded read visibly inside the MutexLock scope):
///
///   util::MutexLock lock{mu};
///   while (!ready) cv.wait(mu);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is held
  /// again on return.  Spurious wakeups happen: always wait in a loop
  /// over the guarded predicate.
  void wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back so the MutexLock destructor stays
    // the one true unlock.
    std::unique_lock<std::mutex> native{mu.mu_, std::adopt_lock};
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mcopt::util
