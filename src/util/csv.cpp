#include "util/csv.hpp"

#include <cstddef>

namespace mcopt::util {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace mcopt::util
