// Minimal command-line flag parsing for the example binaries and the CLI.
//
// Grammar: positional words and `--flag`, `--flag value`, `--flag=value`.
// A flag followed by another flag (or by nothing) is boolean.  Flags may
// appear once; repeats keep the last value.  No abbreviations, no single
// dashes — small enough to audit at a glance.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcopt::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Program name (argv[0], empty when argc == 0).
  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

  /// Words that are not flags and not flag values, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True when --name appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// The flag's value, or nullopt when absent or boolean.
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const;

  /// Typed lookups with defaults.  Throw std::invalid_argument when the
  /// flag is present but unparseable.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Flags that are not in `known`; callers reject typos with this.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;  // "" = boolean presence
};

}  // namespace mcopt::util
