#include "util/rng.hpp"

#include <cstddef>
#include <utility>

namespace mcopt::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept {
  // Mix the stream index into the master seed through two splitmix64 steps;
  // distinct (master, stream) pairs yield well-separated seeds.
  std::uint64_t x = master ^ (0x632be59bd9b4e019ULL * (stream + 1));
  (void)splitmix64(x);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : state_) word = splitmix64(x);
  // xoshiro256++ must not start from the all-zero state; splitmix64 of any
  // seed cannot produce four zero words, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Rng::next_block(std::uint64_t* out, std::size_t count) noexcept {
  // Same recurrence as next(), but the four state words stay in locals for
  // the whole block instead of round-tripping through memory per draw.
  std::uint64_t s0 = state_[0];
  std::uint64_t s1 = state_[1];
  std::uint64_t s2 = state_[2];
  std::uint64_t s3 = state_[3];
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = rotl(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::next_int(int lo, int hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo + 1);
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split(std::uint64_t master, std::uint64_t stream) noexcept {
  return Rng{derive_seed(master, stream)};
}

Rng Rng::split() noexcept {
  // Seed the child from two outputs of the parent; the parent advances, so
  // successive splits give distinct children.
  std::uint64_t s = next();
  s ^= rotl(next(), 31);
  return Rng{s};
}

std::pair<std::size_t, std::size_t> Rng::next_distinct_pair(
    std::size_t n) noexcept {
  const auto a = static_cast<std::size_t>(next_below(n));
  auto b = static_cast<std::size_t>(next_below(n - 1));
  if (b >= a) ++b;
  return {a, b};
}

}  // namespace mcopt::util
