#include "util/invariant.hpp"

namespace mcopt::util {

void invariant_failure(const char* file, int line, const char* condition,
                       const char* message) {
  std::string what{file};
  what += ':';
  what += std::to_string(line);
  what += ": invariant violated: ";
  what += condition;
  if (message != nullptr && *message != '\0') {
    what += " (";
    what += message;
    what += ')';
  }
  throw InvariantViolation{what};
}

}  // namespace mcopt::util
