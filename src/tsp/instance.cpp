#include "tsp/instance.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <utility>

namespace mcopt::tsp {

TspInstance::TspInstance(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.size() < 3) {
    throw std::invalid_argument("TspInstance: need at least three cities");
  }
  const std::size_t n = points_.size();
  dist_.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    dist_[i * n + i] = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = points_[i].x - points_[j].x;
      const double dy = points_[i].y - points_[j].y;
      const double d = std::hypot(dx, dy);
      dist_[i * n + j] = d;
      dist_[j * n + i] = d;
    }
  }
}

TspInstance TspInstance::random_euclidean(std::size_t n, util::Rng& rng,
                                          double box) {
  if (n < 3) throw std::invalid_argument("random_euclidean: n must be >= 3");
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.next_double(0.0, box);
    p.y = rng.next_double(0.0, box);
  }
  return TspInstance{std::move(pts)};
}

}  // namespace mcopt::tsp
