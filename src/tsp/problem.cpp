#include "tsp/problem.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"

namespace mcopt::tsp {

TspProblem::TspProblem(const TspInstance& instance, Order start,
                       TspMoveKind move_kind, core::EvalPath path)
    : instance_(&instance),
      order_(std::move(start)),
      move_kind_(move_kind),
      path_(path) {
  if (!is_valid_order(order_, instance.size())) {
    throw std::invalid_argument("TspProblem: start is not a valid order");
  }
  length_ = tour_length(*instance_, order_);
}

// mcopt: hot
double TspProblem::propose_two_opt(util::Rng& rng) {
  const std::size_t n = order_.size();
  // Random 2-opt: i < j, excluding the (0, n-1) pair that shares an edge.
  std::size_t i;
  std::size_t j;
  do {
    auto [a, b] = rng.next_distinct_pair(n);
    i = std::min(a, b);
    j = std::max(a, b);
  } while (i == 0 && j == n - 1);
  // The delta reads only the four changed edges of the *committed* order,
  // so computing it before (speculative) or after recording the move
  // (apply-undo) yields the same bits.
  pending_delta_ = two_opt_delta(*instance_, order_, i, j);
  if (path_ == core::EvalPath::kApplyUndo) apply_two_opt(order_, i, j);
  pending_ = Pending::kTwoOpt;
  pending_i_ = i;
  pending_j_ = j;
  return length_ + pending_delta_;
}

// mcopt: hot
double TspProblem::propose_or_opt(util::Rng& rng) {
  const std::size_t n = order_.size();
  std::size_t i;
  std::size_t len;
  std::size_t k;
  do {
    len = 1 + static_cast<std::size_t>(rng.next_below(3));
    i = static_cast<std::size_t>(rng.next_below(n - len + 1));
    k = static_cast<std::size_t>(rng.next_below(n));
  } while ((k >= i && k < i + len) || k == (i + n - 1) % n || len >= n - 1);
  pending_delta_ = or_opt_delta(*instance_, order_, i, len, k);
  if (path_ == core::EvalPath::kApplyUndo) {
    // The speculative path skips both the O(n) backup copy and the
    // rewrite: the tour is only touched on accept().
    pending_backup_ = order_;
    apply_or_opt(order_, i, len, k);
  }
  pending_ = Pending::kOrOpt;
  pending_i_ = i;
  pending_j_ = k;
  pending_len_ = len;
  return length_ + pending_delta_;
}

// mcopt: hot
double TspProblem::propose(util::Rng& rng) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("propose: a perturbation is already pending");
  }
  return move_kind_ == TspMoveKind::kTwoOpt ? propose_two_opt(rng)
                                            : propose_or_opt(rng);
}

// mcopt: hot
void TspProblem::accept() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("accept: no pending perturbation");
  }
  if (path_ == core::EvalPath::kSpeculative) {
    if (pending_ == Pending::kTwoOpt) {
      apply_two_opt(order_, pending_i_, pending_j_);
    } else {
      apply_or_opt(order_, pending_i_, pending_len_, pending_j_);
    }
  }
  length_ += pending_delta_;
  pending_ = Pending::kNone;
  if (++accepts_since_resync_ >= kResyncInterval) resync_length();
}

// mcopt: hot
void TspProblem::reject() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("reject: no pending perturbation");
  }
  if (path_ == core::EvalPath::kApplyUndo) {
    if (pending_ == Pending::kTwoOpt) {
      apply_two_opt(order_, pending_i_, pending_j_);  // self-inverse
    } else {
      order_ = pending_backup_;
    }
  }
  // Speculative path: the tour was never touched — nothing to undo.
  pending_ = Pending::kNone;
}

void TspProblem::descend(util::WorkBudget& budget) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("descend: a perturbation is pending");
  }
  two_opt_descent(*instance_, order_, budget);
  resync_length();
}

void TspProblem::randomize(util::Rng& rng) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("randomize: a perturbation is pending");
  }
  order_ = random_order(order_.size(), rng);
  resync_length();
}

core::Snapshot TspProblem::snapshot() const {
  return core::Snapshot(order_.begin(), order_.end());
}

void TspProblem::snapshot_into(core::Snapshot& out) const {
  out.assign(order_.begin(), order_.end());
}

std::unique_ptr<core::Problem> TspProblem::clone() const {
  return std::make_unique<TspProblem>(*this);
}

void TspProblem::restore(const core::Snapshot& snap) {
  if (pending_ != Pending::kNone) {
    throw std::logic_error("restore: a perturbation is pending");
  }
  Order order(snap.begin(), snap.end());
  if (!is_valid_order(order, instance_->size())) {
    throw std::invalid_argument("TspProblem::restore: invalid snapshot");
  }
  order_ = std::move(order);
  resync_length();
}

void TspProblem::check_invariants() const {
  MCOPT_CHECK(pending_ == Pending::kNone,
              "deep check with a perturbation pending");
  MCOPT_CHECK(is_valid_order(order_, instance_->size()),
              "tour is no longer a permutation of the cities");
  // The incrementally-maintained length drifts by at most rounding between
  // resyncs; anything beyond 1e-6 relative means a bad move delta.
  const double exact = tour_length(*instance_, order_);
  MCOPT_CHECK(std::abs(length_ - exact) <=
                  1e-6 * std::max(1.0, std::abs(exact)),
              "incremental tour length drifted from exact recompute");
}

void TspProblem::resync_length() {
  length_ = tour_length(*instance_, order_);
  accepts_since_resync_ = 0;
}

}  // namespace mcopt::tsp
