#include "tsp/construct.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mcopt::tsp {

Order nearest_neighbour(const TspInstance& instance, City start) {
  const std::size_t n = instance.size();
  if (start >= n) throw std::invalid_argument("nearest_neighbour: bad start");
  Order order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  City current = start;
  order.push_back(current);
  visited[current] = 1;
  for (std::size_t step = 1; step < n; ++step) {
    City best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (City c = 0; c < n; ++c) {
      if (visited[c]) continue;
      const double d = instance.dist(current, c);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    order.push_back(best);
    visited[best] = 1;
    current = best;
  }
  return order;
}

std::vector<City> convex_hull(const TspInstance& instance) {
  const auto& pts = instance.points();
  const std::size_t n = pts.size();
  std::vector<City> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<City>(i);
  std::sort(idx.begin(), idx.end(), [&](City a, City b) {
    if (pts[a].x != pts[b].x) return pts[a].x < pts[b].x;
    return pts[a].y < pts[b].y;
  });

  auto cross = [&](City o, City a, City b) {
    return (pts[a].x - pts[o].x) * (pts[b].y - pts[o].y) -
           (pts[a].y - pts[o].y) * (pts[b].x - pts[o].x);
  };

  std::vector<City> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], idx[i]) <= 0) --k;
    hull[k++] = idx[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper hull
    while (k >= t && cross(hull[k - 2], hull[k - 1], idx[i]) <= 0) --k;
    hull[k++] = idx[i];
  }
  hull.resize(k > 0 ? k - 1 : 0);  // last point == first point
  return hull;
}

Order hull_cheapest_insertion(const TspInstance& instance) {
  return hull_cheapest_insertion_counted(instance).order;
}

InsertionResult hull_cheapest_insertion_counted(const TspInstance& instance) {
  const std::size_t n = instance.size();
  InsertionResult result;

  Order skeleton = convex_hull(instance);
  if (skeleton.size() < 2) {
    // Degenerate (collinear points collapse the hull); fall back to a
    // two-city skeleton so insertion still works.
    skeleton = {0, 1};
  }

  // Successor representation for O(1) edge lookups.
  constexpr City kNone = ~City{0};
  std::vector<City> next(n, kNone);
  std::vector<City> tour_cities = skeleton;
  for (std::size_t i = 0; i < skeleton.size(); ++i) {
    next[skeleton[i]] = skeleton[(i + 1) % skeleton.size()];
  }

  auto eval = [&](City d, City a) {
    ++result.evaluations;
    const City b = next[a];
    return instance.dist(a, d) + instance.dist(d, b) - instance.dist(a, b);
  };

  struct Candidate {
    double cost = 0.0;
    City left = 0;  // insert after this city
  };
  std::vector<Candidate> best(n);
  std::vector<City> pending;
  pending.reserve(n - tour_cities.size());
  auto rescan = [&](City d) {
    Candidate cand{std::numeric_limits<double>::max(), 0};
    for (const City a : tour_cities) {
      const double cost = eval(d, a);
      if (cost < cand.cost) cand = {cost, a};
    }
    best[d] = cand;
  };
  for (City d = 0; d < n; ++d) {
    if (next[d] != kNone) continue;  // already on the skeleton
    pending.push_back(d);
    rescan(d);
  }

  while (!pending.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (best[pending[i]].cost < best[pending[pick]].cost) pick = i;
    }
    const City chosen = pending[pick];
    pending[pick] = pending.back();
    pending.pop_back();

    const City a = best[chosen].left;
    next[chosen] = next[a];
    next[a] = chosen;
    tour_cities.push_back(chosen);

    // Edge (a, old-next) is gone; edges (a, chosen) and (chosen, old-next)
    // are new.  Cached candidates referencing the destroyed edge must be
    // recomputed; everyone else just considers the two new edges.
    for (const City d : pending) {
      if (best[d].left == a) {
        rescan(d);
        continue;
      }
      const double via_a = eval(d, a);
      if (via_a < best[d].cost) best[d] = {via_a, a};
      const double via_chosen = eval(d, chosen);
      if (via_chosen < best[d].cost) best[d] = {via_chosen, chosen};
    }
  }

  result.order.reserve(n);
  City walk = tour_cities.front();
  for (std::size_t i = 0; i < n; ++i) {
    result.order.push_back(walk);
    walk = next[walk];
  }
  return result;
}

}  // namespace mcopt::tsp
