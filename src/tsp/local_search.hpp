// Local-search improvement for tours.
//
// * two_opt_descent: first-improvement 2-opt sweeps to local optimality,
//   the [LIN73]-style baseline of §2 ("the 2-opt heuristic of [LIN73] is
//   given enough starting random tours to make its run time comparable to
//   that of simulated annealing").
// * or_opt_descent: relocates segments of 1-3 cities; the polish pass of
//   the Stewart stand-in.
// * restarted_two_opt: random restarts of 2-opt under a shared tick budget
//   (one tick per move evaluation), the equal-time competitor to SA.
#pragma once

#include <cstdint>

#include "tsp/tour.hpp"
#include "util/budget.hpp"

namespace mcopt::tsp {

/// Improves `order` in place; every delta evaluation charges one tick.
/// Stops at 2-opt local optimality or budget exhaustion.
void two_opt_descent(const TspInstance& instance, Order& order,
                     util::WorkBudget& budget);

/// Or-opt (segment lengths 1..3) first-improvement descent.
void or_opt_descent(const TspInstance& instance, Order& order,
                    util::WorkBudget& budget);

struct RestartResult {
  Order best_order;
  double best_length = 0.0;
  std::uint64_t restarts = 0;
  std::uint64_t ticks = 0;
};

/// Repeats (random tour -> 2-opt descent) until the budget is spent and
/// returns the best local optimum found.
[[nodiscard]] RestartResult restarted_two_opt(const TspInstance& instance,
                                              std::uint64_t budget,
                                              util::Rng& rng);

/// True when no single 2-opt move improves the tour (used by tests).
[[nodiscard]] bool is_two_opt_optimal(const TspInstance& instance,
                                      const Order& order);

}  // namespace mcopt::tsp
