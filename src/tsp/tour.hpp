// Tours and the elementary 2-opt / Or-opt move algebra.
//
// A tour is a cyclic visiting order (order[0..n-1], implicitly returning to
// order[0]).  Moves are expressed on positions:
//   * 2-opt(i, j), i < j: replace edges (order[i], order[i+1]) and
//     (order[j], order[(j+1)%n]) by (order[i], order[j]) and
//     (order[i+1], order[(j+1)%n]) — i.e. reverse order[i+1 .. j];
//   * Or-opt(i, len, k): remove the segment of `len` cities starting at
//     position i and reinsert it after position k.
// Deltas are O(1) (2-opt) / O(len) (Or-opt) from the distance matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "tsp/instance.hpp"
#include "util/rng.hpp"

namespace mcopt::tsp {

using Order = std::vector<City>;

/// Identity order 0,1,...,n-1.
[[nodiscard]] Order identity_order(std::size_t n);

/// Uniformly random order.
[[nodiscard]] Order random_order(std::size_t n, util::Rng& rng);

/// True when `order` is a permutation of 0..n-1.
[[nodiscard]] bool is_valid_order(const Order& order, std::size_t n);

/// Total cyclic tour length.
[[nodiscard]] double tour_length(const TspInstance& instance,
                                 const Order& order);

/// Length change of 2-opt(i, j); requires 0 <= i < j < n and not
/// (i == 0 && j == n-1) (that pair shares an edge and is a no-op).
[[nodiscard]] double two_opt_delta(const TspInstance& instance,
                                   const Order& order, std::size_t i,
                                   std::size_t j);

/// Applies 2-opt(i, j) in place (reverses order[i+1..j]).
void apply_two_opt(Order& order, std::size_t i, std::size_t j);

/// Length change of moving the `len`-city segment starting at position i to
/// follow position k (positions after removal).  Requires the segment and
/// insertion point to be disjoint.
[[nodiscard]] double or_opt_delta(const TspInstance& instance,
                                  const Order& order, std::size_t i,
                                  std::size_t len, std::size_t k);

/// Applies the Or-opt move in place.
void apply_or_opt(Order& order, std::size_t i, std::size_t len,
                  std::size_t k);

}  // namespace mcopt::tsp
