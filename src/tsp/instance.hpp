// Euclidean traveling-salesperson instances.
//
// §2 of the paper discusses Golden-Skiscim's TSP experiments ([GOLD84]) and
// §5 notes the authors ran their own TSP comparison in [NAHA84]; the
// tsp_compare bench reproduces those qualitative claims on random uniform
// Euclidean instances, the standard workload of that literature.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mcopt::tsp {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

using City = std::uint32_t;

class TspInstance {
 public:
  /// Builds from explicit coordinates (>= 3 cities) and precomputes the
  /// full distance matrix (O(n^2) memory — these are heuristic-comparison
  /// instances, not TSPLIB monsters).
  explicit TspInstance(std::vector<Point> points);

  /// n cities uniform in [0, box] x [0, box].
  [[nodiscard]] static TspInstance random_euclidean(std::size_t n,
                                                    util::Rng& rng,
                                                    double box = 1000.0);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }

  [[nodiscard]] double dist(City a, City b) const noexcept {
    return dist_[static_cast<std::size_t>(a) * points_.size() + b];
  }

 private:
  std::vector<Point> points_;
  std::vector<double> dist_;
};

}  // namespace mcopt::tsp
