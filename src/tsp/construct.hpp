// Constructive tour heuristics.
//
// * nearest_neighbour: the textbook greedy start.
// * hull_cheapest_insertion: convex hull skeleton + cheapest insertion.
//   This is our stand-in for Stewart's CCAO heuristic [STEW77], which the
//   paper's §2 cites as beating simulated annealing by 20-60x in time at
//   better quality; CCAO is convex-hull-based insertion with a final
//   improvement pass, and hull + cheapest insertion (+ the Or-opt polish in
//   local_search.hpp) exercises the same design: a strong, cheap,
//   deterministic constructor.
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/tour.hpp"

namespace mcopt::tsp {

/// Greedy nearest-neighbour tour from `start` (< n).
[[nodiscard]] Order nearest_neighbour(const TspInstance& instance, City start);

/// Indices of the convex hull of the instance's points, counter-clockwise
/// (Andrew's monotone chain).  Collinear boundary points are dropped.
[[nodiscard]] std::vector<City> convex_hull(const TspInstance& instance);

/// Convex hull skeleton, then repeatedly inserts the city whose cheapest
/// insertion position increases the tour least.  Deterministic.
[[nodiscard]] Order hull_cheapest_insertion(const TspInstance& instance);

/// Same construction with work accounting: `evaluations` counts insertion-
/// delta computations, comparable to Monte Carlo ticks.  The implementation
/// caches each pending city's best position and only re-evaluates against
/// the two edges each insertion creates (full rescan only when a city's
/// cached best edge is destroyed), so the count is O(n^2) amortized rather
/// than the naive O(n^3).
struct InsertionResult {
  Order order;
  std::uint64_t evaluations = 0;
};
[[nodiscard]] InsertionResult hull_cheapest_insertion_counted(
    const TspInstance& instance);

}  // namespace mcopt::tsp
