// TSP as a core::Problem: random 2-opt (or segment-relocation / Or-opt)
// perturbations, 2-opt descent.
//
// The tour length is maintained incrementally from move deltas; a periodic
// resync against the exact length bounds floating-point drift (verified by
// tests to stay under 1e-6 relative).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/problem.hpp"
#include "tsp/local_search.hpp"
#include "tsp/tour.hpp"

namespace mcopt::tsp {

enum class TspMoveKind {
  kTwoOpt,  ///< reverse a random segment
  kOrOpt,   ///< relocate a random 1-3 city segment
};

class TspProblem final : public core::Problem {
 public:
  /// Starts from `start`; `instance` must outlive the problem.
  /// `path` picks the proposal evaluation strategy (see core::EvalPath);
  /// both paths produce bit-identical trajectories.  On the speculative
  /// path propose() only computes the move delta — the tour is rewritten
  /// on accept(), so a rejected Or-opt never copies the order at all.
  TspProblem(const TspInstance& instance, Order start,
             TspMoveKind move_kind = TspMoveKind::kTwoOpt,
             core::EvalPath path = core::EvalPath::kSpeculative);

  // core::Problem
  [[nodiscard]] double cost() const override { return length_; }
  double propose(util::Rng& rng) override;
  void accept() override;
  void reject() override;
  void descend(util::WorkBudget& budget) override;
  void randomize(util::Rng& rng) override;
  [[nodiscard]] core::Snapshot snapshot() const override;
  void snapshot_into(core::Snapshot& out) const override;
  void restore(const core::Snapshot& snap) override;
  void check_invariants() const override;
  /// Deep copy sharing only the immutable instance.
  [[nodiscard]] std::unique_ptr<core::Problem> clone() const override;

  [[nodiscard]] const Order& order() const noexcept { return order_; }
  [[nodiscard]] const TspInstance& instance() const noexcept {
    return *instance_;
  }
  [[nodiscard]] TspMoveKind move_kind() const noexcept { return move_kind_; }
  [[nodiscard]] core::EvalPath eval_path() const noexcept { return path_; }

 private:
  void resync_length();
  double propose_two_opt(util::Rng& rng);
  double propose_or_opt(util::Rng& rng);

  const TspInstance* instance_;
  Order order_;
  TspMoveKind move_kind_;
  core::EvalPath path_;
  double length_ = 0.0;

  enum class Pending { kNone, kTwoOpt, kOrOpt };
  Pending pending_ = Pending::kNone;
  std::size_t pending_i_ = 0;
  std::size_t pending_j_ = 0;
  std::size_t pending_len_ = 0;  // Or-opt segment length
  double pending_delta_ = 0.0;
  Order pending_backup_;  // Or-opt undo (apply-undo path only)

  std::uint64_t accepts_since_resync_ = 0;
  static constexpr std::uint64_t kResyncInterval = 4096;
};

}  // namespace mcopt::tsp
