#include "tsp/tour.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <stdexcept>

#include "util/invariant.hpp"

namespace mcopt::tsp {

Order identity_order(std::size_t n) {
  Order order(n);
  std::iota(order.begin(), order.end(), City{0});
  return order;
}

Order random_order(std::size_t n, util::Rng& rng) {
  Order order = identity_order(n);
  rng.shuffle(order);
  return order;
}

bool is_valid_order(const Order& order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<char> seen(n, 0);
  for (const City c : order) {
    if (c >= n || seen[c]) return false;
    seen[c] = 1;
  }
  return true;
}

double tour_length(const TspInstance& instance, const Order& order) {
  double total = 0.0;
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) {
    total += instance.dist(order[i], order[(i + 1) % n]);
  }
  return total;
}

double two_opt_delta(const TspInstance& instance, const Order& order,
                     std::size_t i, std::size_t j) {
  const std::size_t n = order.size();
  MCOPT_DCHECK(i < j && j < n && !(i == 0 && j == n - 1),
               "2-opt positions violate i < j < n / shared-edge contract");
  const City a = order[i];
  const City b = order[i + 1];
  const City c = order[j];
  const City d = order[(j + 1) % n];
  return instance.dist(a, c) + instance.dist(b, d) - instance.dist(a, b) -
         instance.dist(c, d);
}

void apply_two_opt(Order& order, std::size_t i, std::size_t j) {
  MCOPT_DCHECK(i < j && j < order.size(),
               "2-opt positions violate i < j < n contract");
  std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
               order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
}

double or_opt_delta(const TspInstance& instance, const Order& order,
                    std::size_t i, std::size_t len, std::size_t k) {
  const std::size_t n = order.size();
  if (len == 0 || i + len > n || k >= n || (k >= i && k < i + len) ||
      k == (i + n - 1) % n) {
    throw std::invalid_argument("or_opt_delta: invalid move");
  }
  const City prev = order[(i + n - 1) % n];
  const City front = order[i];
  const City back = order[i + len - 1];
  const City next = order[(i + len) % n];
  const City c = order[k];
  const City d = order[(k + 1) % n];
  return -instance.dist(prev, front) - instance.dist(back, next) -
         instance.dist(c, d) + instance.dist(prev, next) +
         instance.dist(c, front) + instance.dist(back, d);
}

void apply_or_opt(Order& order, std::size_t i, std::size_t len,
                  std::size_t k) {
  const std::size_t n = order.size();
  if (len == 0 || i + len > n || k >= n || (k >= i && k < i + len) ||
      k == (i + n - 1) % n) {
    throw std::invalid_argument("apply_or_opt: invalid move");
  }
  const City anchor = order[k];
  const Order segment(order.begin() + static_cast<std::ptrdiff_t>(i),
                      order.begin() + static_cast<std::ptrdiff_t>(i + len));
  order.erase(order.begin() + static_cast<std::ptrdiff_t>(i),
              order.begin() + static_cast<std::ptrdiff_t>(i + len));
  const auto it = std::find(order.begin(), order.end(), anchor);
  order.insert(it + 1, segment.begin(), segment.end());
}

}  // namespace mcopt::tsp
