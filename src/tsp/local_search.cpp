#include "tsp/local_search.hpp"

#include <cstddef>
#include <utility>

namespace mcopt::tsp {

namespace {

// Improvements smaller than this are noise from double rounding; accepting
// them can cycle forever between equal-length tours.
constexpr double kMinGain = 1e-9;

}  // namespace

void two_opt_descent(const TspInstance& instance, Order& order,
                     util::WorkBudget& budget) {
  const std::size_t n = order.size();
  bool improved = true;
  while (improved && !budget.exhausted()) {
    improved = false;
    for (std::size_t i = 0; i + 1 < n && !budget.exhausted(); ++i) {
      for (std::size_t j = i + 1; j < n && !budget.exhausted(); ++j) {
        if (i == 0 && j == n - 1) continue;  // shares an edge: no-op
        budget.charge();
        if (two_opt_delta(instance, order, i, j) < -kMinGain) {
          apply_two_opt(order, i, j);
          improved = true;
        }
      }
    }
  }
}

void or_opt_descent(const TspInstance& instance, Order& order,
                    util::WorkBudget& budget) {
  const std::size_t n = order.size();
  bool improved = true;
  while (improved && !budget.exhausted()) {
    improved = false;
    for (std::size_t len = 1; len <= 3 && len < n - 1; ++len) {
      for (std::size_t i = 0; i + len <= n && !budget.exhausted(); ++i) {
        for (std::size_t k = 0; k < n && !budget.exhausted(); ++k) {
          if ((k >= i && k < i + len) || k == (i + n - 1) % n) continue;
          budget.charge();
          if (or_opt_delta(instance, order, i, len, k) < -kMinGain) {
            apply_or_opt(order, i, len, k);
            improved = true;
            break;  // positions shifted; restart the i loop cleanly
          }
        }
        if (improved) break;
      }
      if (improved) break;
    }
  }
}

RestartResult restarted_two_opt(const TspInstance& instance,
                                std::uint64_t budget, util::Rng& rng) {
  util::WorkBudget work{budget};
  RestartResult result;
  bool first = true;
  while (!work.exhausted()) {
    Order order = random_order(instance.size(), rng);
    two_opt_descent(instance, order, work);
    const double length = tour_length(instance, order);
    ++result.restarts;
    if (first || length < result.best_length) {
      result.best_length = length;
      result.best_order = std::move(order);
      first = false;
    }
  }
  result.ticks = work.spent();
  return result;
}

bool is_two_opt_optimal(const TspInstance& instance, const Order& order) {
  const std::size_t n = order.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i == 0 && j == n - 1) continue;
      if (two_opt_delta(instance, order, i, j) < -kMinGain) return false;
    }
  }
  return true;
}

}  // namespace mcopt::tsp
