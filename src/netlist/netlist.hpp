// Hypergraph netlist substrate.
//
// The linear-arrangement problems of the paper (GOLA / NOLA, §4.1) operate
// on "n circuit elements (cells, boards, chips, ...) and connectivity
// information".  We model that as a hypergraph: cells 0..n-1 and nets, each
// net a set of >= 2 distinct cells (its pins).  GOLA is the special case
// where every net has exactly two pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace mcopt::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;

/// Immutable hypergraph with forward (net -> cells) and inverse
/// (cell -> nets) incidence, both in CSR form.  Construct via Builder.
class Netlist {
 public:
  class Builder;

  Netlist() = default;

  [[nodiscard]] std::size_t num_cells() const noexcept { return num_cells_; }
  [[nodiscard]] std::size_t num_nets() const noexcept {
    return net_offsets_.empty() ? 0 : net_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_pins() const noexcept { return net_pins_.size(); }

  /// Pins (cells) of net `n`, in insertion order, duplicates removed.
  [[nodiscard]] std::span<const CellId> pins(NetId n) const noexcept {
    return {net_pins_.data() + net_offsets_[n],
            net_offsets_[n + 1] - net_offsets_[n]};
  }

  /// Nets incident to cell `c`.
  [[nodiscard]] std::span<const NetId> nets_of(CellId c) const noexcept {
    return {cell_nets_.data() + cell_offsets_[c],
            cell_offsets_[c + 1] - cell_offsets_[c]};
  }

  /// Number of nets incident to cell `c` ("connectedness" in Goto's
  /// heuristic).
  [[nodiscard]] std::size_t degree(CellId c) const noexcept {
    return cell_offsets_[c + 1] - cell_offsets_[c];
  }

  /// True when every net has exactly two pins (a GOLA / graph instance).
  [[nodiscard]] bool is_graph() const noexcept;

  /// Largest pin count over all nets; 0 for a net-free list.
  [[nodiscard]] std::size_t max_net_size() const noexcept;

 private:
  std::size_t num_cells_ = 0;
  // CSR: net n occupies net_pins_[net_offsets_[n] .. net_offsets_[n+1]).
  std::vector<std::size_t> net_offsets_{0};
  std::vector<CellId> net_pins_;
  // CSR inverse: cell c is on nets cell_nets_[cell_offsets_[c] .. ...c+1]).
  std::vector<std::size_t> cell_offsets_;
  std::vector<NetId> cell_nets_;
};

/// Incremental construction with validation.  Throws std::invalid_argument
/// on out-of-range pins or nets with fewer than two distinct pins.
/// Accumulates directly into the CSR arrays the Netlist will own — no
/// vector-of-vectors mirror, so building a large netlist costs one flat
/// allocation stream instead of one heap node per net.
class Netlist::Builder {
 public:
  explicit Builder(std::size_t num_cells);

  /// Adds a net over the given cells.  Duplicate pins within a net are
  /// collapsed; a net must connect at least two distinct cells.
  /// Returns the new net's id.
  NetId add_net(std::span<const CellId> cells);
  NetId add_net(std::initializer_list<CellId> cells);

  [[nodiscard]] std::size_t num_cells() const noexcept { return num_cells_; }
  [[nodiscard]] std::size_t num_nets() const noexcept {
    return net_offsets_.size() - 1;
  }

  /// Finalizes into an immutable Netlist (builds the inverse incidence).
  [[nodiscard]] Netlist build() const;

 private:
  std::size_t num_cells_;
  // CSR under construction: net n is net_pins_[net_offsets_[n] ..
  // net_offsets_[n+1]), sorted and deduplicated at add_net time.
  std::vector<std::size_t> net_offsets_{0};
  std::vector<CellId> net_pins_;
  std::vector<CellId> scratch_;  // add_net sort/dedup buffer
};

}  // namespace mcopt::netlist
