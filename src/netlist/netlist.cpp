#include "netlist/netlist.hpp"

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <utility>

namespace mcopt::netlist {

bool Netlist::is_graph() const noexcept {
  for (std::size_t n = 0; n + 1 < net_offsets_.size(); ++n) {
    if (net_offsets_[n + 1] - net_offsets_[n] != 2) return false;
  }
  return num_nets() > 0;
}

std::size_t Netlist::max_net_size() const noexcept {
  std::size_t best = 0;
  for (std::size_t n = 0; n + 1 < net_offsets_.size(); ++n) {
    best = std::max(best, net_offsets_[n + 1] - net_offsets_[n]);
  }
  return best;
}

Netlist::Builder::Builder(std::size_t num_cells) : num_cells_(num_cells) {
  if (num_cells == 0) {
    throw std::invalid_argument("Netlist must have at least one cell");
  }
}

NetId Netlist::Builder::add_net(std::span<const CellId> cells) {
  std::vector<CellId> pins(cells.begin(), cells.end());
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  if (pins.size() < 2) {
    throw std::invalid_argument("a net must connect at least two distinct cells");
  }
  if (pins.back() >= num_cells_) {
    throw std::invalid_argument("net pin refers to a cell out of range");
  }
  nets_.push_back(std::move(pins));
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::Builder::add_net(std::initializer_list<CellId> cells) {
  return add_net(std::span<const CellId>{cells.begin(), cells.size()});
}

Netlist Netlist::Builder::build() const {
  Netlist out;
  out.num_cells_ = num_cells_;
  out.net_offsets_.reserve(nets_.size() + 1);
  for (const auto& pins : nets_) {
    out.net_pins_.insert(out.net_pins_.end(), pins.begin(), pins.end());
    out.net_offsets_.push_back(out.net_pins_.size());
  }

  // Inverse incidence via counting sort.
  std::vector<std::size_t> counts(num_cells_ + 1, 0);
  for (const CellId c : out.net_pins_) ++counts[c + 1];
  for (std::size_t c = 0; c < num_cells_; ++c) counts[c + 1] += counts[c];
  out.cell_offsets_ = counts;
  out.cell_nets_.resize(out.net_pins_.size());
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    for (const CellId c : nets_[n]) {
      out.cell_nets_[cursor[c]++] = static_cast<NetId>(n);
    }
  }
  return out;
}

}  // namespace mcopt::netlist
