#include "netlist/netlist.hpp"

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>

namespace mcopt::netlist {

bool Netlist::is_graph() const noexcept {
  for (std::size_t n = 0; n + 1 < net_offsets_.size(); ++n) {
    if (net_offsets_[n + 1] - net_offsets_[n] != 2) return false;
  }
  return num_nets() > 0;
}

std::size_t Netlist::max_net_size() const noexcept {
  std::size_t best = 0;
  for (std::size_t n = 0; n + 1 < net_offsets_.size(); ++n) {
    best = std::max(best, net_offsets_[n + 1] - net_offsets_[n]);
  }
  return best;
}

Netlist::Builder::Builder(std::size_t num_cells) : num_cells_(num_cells) {
  if (num_cells == 0) {
    throw std::invalid_argument("Netlist must have at least one cell");
  }
}

NetId Netlist::Builder::add_net(std::span<const CellId> cells) {
  scratch_.assign(cells.begin(), cells.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  if (scratch_.size() < 2) {
    throw std::invalid_argument("a net must connect at least two distinct cells");
  }
  if (scratch_.back() >= num_cells_) {
    throw std::invalid_argument("net pin refers to a cell out of range");
  }
  net_pins_.insert(net_pins_.end(), scratch_.begin(), scratch_.end());
  net_offsets_.push_back(net_pins_.size());
  return static_cast<NetId>(net_offsets_.size() - 2);
}

NetId Netlist::Builder::add_net(std::initializer_list<CellId> cells) {
  return add_net(std::span<const CellId>{cells.begin(), cells.size()});
}

Netlist Netlist::Builder::build() const {
  Netlist out;
  out.num_cells_ = num_cells_;
  out.net_offsets_ = net_offsets_;
  out.net_pins_ = net_pins_;

  // Inverse incidence via counting sort over the flat pin array.
  const std::size_t num_nets = net_offsets_.size() - 1;
  std::vector<std::size_t> counts(num_cells_ + 1, 0);
  for (const CellId c : out.net_pins_) ++counts[c + 1];
  for (std::size_t c = 0; c < num_cells_; ++c) counts[c + 1] += counts[c];
  out.cell_offsets_ = counts;
  out.cell_nets_.resize(out.net_pins_.size());
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t n = 0; n < num_nets; ++n) {
    for (std::size_t p = net_offsets_[n]; p < net_offsets_[n + 1]; ++p) {
      out.cell_nets_[cursor[net_pins_[p]]++] = static_cast<NetId>(n);
    }
  }
  return out;
}

}  // namespace mcopt::netlist
