#include "netlist/io.hpp"

#include <cstddef>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcopt::netlist {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("netlist parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

void write_netlist(std::ostream& out, const Netlist& nl) {
  out << "mcnl 1\n";
  out << "cells " << nl.num_cells() << '\n';
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    out << "net";
    for (const CellId c : nl.pins(n)) out << ' ' << c;
    out << '\n';
  }
}

Netlist read_netlist(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  std::optional<Netlist::Builder> builder;
  std::vector<CellId> pins;

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls{line};
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;

    if (!saw_magic) {
      int version = 0;
      if (keyword != "mcnl" || !(ls >> version) || version != 1) {
        fail(line_no, "expected header 'mcnl 1'");
      }
      saw_magic = true;
    } else if (keyword == "cells") {
      if (builder) fail(line_no, "duplicate 'cells' line");
      std::size_t n = 0;
      if (!(ls >> n) || n == 0) fail(line_no, "bad cell count");
      builder.emplace(n);
    } else if (keyword == "net") {
      if (!builder) fail(line_no, "'net' before 'cells'");
      pins.clear();
      unsigned long long c = 0;
      while (ls >> c) {
        if (c >= builder->num_cells()) fail(line_no, "pin out of range");
        pins.push_back(static_cast<CellId>(c));
      }
      if (!ls.eof()) fail(line_no, "non-numeric pin");
      try {
        builder->add_net(pins);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_magic) throw std::runtime_error("netlist parse error: empty input");
  if (!builder) throw std::runtime_error("netlist parse error: missing 'cells'");
  return builder->build();
}

std::string to_string(const Netlist& nl) {
  std::ostringstream os;
  write_netlist(os, nl);
  return os.str();
}

Netlist from_string(const std::string& text) {
  std::istringstream is{text};
  return read_netlist(is);
}

}  // namespace mcopt::netlist
