#include "netlist/stats.hpp"

#include <algorithm>
#include <ostream>

namespace mcopt::netlist {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.num_cells = netlist.num_cells();
  stats.num_nets = netlist.num_nets();
  stats.num_pins = netlist.num_pins();
  stats.is_graph = netlist.is_graph();

  if (stats.num_cells > 0) {
    stats.min_degree = netlist.degree(0);
    for (CellId c = 0; c < stats.num_cells; ++c) {
      const std::size_t d = netlist.degree(c);
      stats.min_degree = std::min(stats.min_degree, d);
      stats.max_degree = std::max(stats.max_degree, d);
      if (d >= stats.degree_histogram.size()) {
        stats.degree_histogram.resize(d + 1, 0);
      }
      ++stats.degree_histogram[d];
    }
    stats.mean_degree = static_cast<double>(stats.num_pins) /
                        static_cast<double>(stats.num_cells);
  }

  if (stats.num_nets > 0) {
    stats.min_net_size = netlist.pins(0).size();
    for (NetId n = 0; n < stats.num_nets; ++n) {
      const std::size_t p = netlist.pins(n).size();
      stats.min_net_size = std::min(stats.min_net_size, p);
      stats.max_net_size = std::max(stats.max_net_size, p);
      if (p >= stats.net_size_histogram.size()) {
        stats.net_size_histogram.resize(p + 1, 0);
      }
      ++stats.net_size_histogram[p];
    }
    stats.mean_net_size = static_cast<double>(stats.num_pins) /
                          static_cast<double>(stats.num_nets);
  }
  return stats;
}

void print_stats(std::ostream& out, const NetlistStats& stats) {
  out << "cells: " << stats.num_cells << "  nets: " << stats.num_nets
      << "  pins: " << stats.num_pins
      << (stats.is_graph ? "  (graph: all two-pin nets)\n" : "\n");
  out << "degree: min " << stats.min_degree << ", mean " << stats.mean_degree
      << ", max " << stats.max_degree << '\n';
  out << "net size: min " << stats.min_net_size << ", mean "
      << stats.mean_net_size << ", max " << stats.max_net_size << '\n';
  out << "net-size histogram:";
  for (std::size_t p = 0; p < stats.net_size_histogram.size(); ++p) {
    if (stats.net_size_histogram[p] > 0) {
      out << "  " << p << "-pin x" << stats.net_size_histogram[p];
    }
  }
  out << '\n';
}

}  // namespace mcopt::netlist
