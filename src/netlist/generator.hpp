// Random instance generators matching the paper's workloads (§4.2.1, §4.3.1):
// 30 random instances of 15 circuit elements and 150 nets, two-pin nets for
// GOLA and multi-pin nets for NOLA.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace mcopt::netlist {

/// Parameters for random GOLA (graph) instances: every net has exactly two
/// distinct pins chosen uniformly at random.  Parallel nets are allowed, as
/// multiple physical wires may connect the same pair of boards.
struct GolaParams {
  std::size_t num_cells = 15;
  std::size_t num_nets = 150;
};

/// Parameters for random NOLA instances: each net's pin count is uniform in
/// [min_pins, max_pins], pins chosen uniformly without replacement.
struct NolaParams {
  std::size_t num_cells = 15;
  std::size_t num_nets = 150;
  std::size_t min_pins = 2;
  std::size_t max_pins = 6;
};

[[nodiscard]] Netlist random_gola(const GolaParams& params, util::Rng& rng);
[[nodiscard]] Netlist random_nola(const NolaParams& params, util::Rng& rng);

/// The paper's GOLA test set: `count` instances drawn from `params`, with
/// per-instance seeds derived from `master_seed` so instance i is the same
/// regardless of how many instances are requested.
[[nodiscard]] std::vector<Netlist> gola_test_set(std::size_t count,
                                                 const GolaParams& params,
                                                 std::uint64_t master_seed);
[[nodiscard]] std::vector<Netlist> nola_test_set(std::size_t count,
                                                 const NolaParams& params,
                                                 std::uint64_t master_seed);

/// Random connected(ish) graph for the partition experiments: n cells,
/// m two-pin nets, no self-loops.  Parallel edges allowed.
[[nodiscard]] Netlist random_graph(std::size_t num_cells, std::size_t num_nets,
                                   util::Rng& rng);

}  // namespace mcopt::netlist
