// Plain-text netlist serialization.
//
// Format ("mcnl v1"):
//
//   mcnl 1
//   cells <n>
//   net <cell> <cell> [...]
//   ...
//
// Blank lines and lines starting with '#' are ignored.  The format is
// line-oriented so instances used in EXPERIMENTS.md can be archived and
// diffed.
#pragma once

#include <iosfwd>
#include <istream>
#include <ostream>
#include <string>

#include "netlist/netlist.hpp"

namespace mcopt::netlist {

/// Writes `nl` in mcnl v1 form.
void write_netlist(std::ostream& out, const Netlist& nl);

/// Parses mcnl v1.  Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Netlist read_netlist(std::istream& in);

/// Convenience round-trips through strings (used by tests and examples).
[[nodiscard]] std::string to_string(const Netlist& nl);
[[nodiscard]] Netlist from_string(const std::string& text);

}  // namespace mcopt::netlist
