#include "netlist/generator.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

namespace mcopt::netlist {

namespace {

/// k distinct cells sampled uniformly from [0, n) by partial Fisher-Yates.
std::vector<CellId> sample_distinct(std::size_t n, std::size_t k,
                                    util::Rng& rng,
                                    std::vector<CellId>& scratch) {
  scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = static_cast<CellId>(i);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(rng.next_below(n - i));
    std::swap(scratch[i], scratch[j]);
  }
  return {scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(k)};
}

}  // namespace

Netlist random_gola(const GolaParams& params, util::Rng& rng) {
  if (params.num_cells < 2) {
    throw std::invalid_argument("random_gola: need at least two cells");
  }
  Netlist::Builder builder{params.num_cells};
  for (std::size_t i = 0; i < params.num_nets; ++i) {
    const auto [a, b] = rng.next_distinct_pair(params.num_cells);
    builder.add_net({static_cast<CellId>(a), static_cast<CellId>(b)});
  }
  return builder.build();
}

Netlist random_nola(const NolaParams& params, util::Rng& rng) {
  if (params.num_cells < 2) {
    throw std::invalid_argument("random_nola: need at least two cells");
  }
  if (params.min_pins < 2 || params.min_pins > params.max_pins ||
      params.max_pins > params.num_cells) {
    throw std::invalid_argument("random_nola: bad pin-count range");
  }
  Netlist::Builder builder{params.num_cells};
  std::vector<CellId> scratch;
  for (std::size_t i = 0; i < params.num_nets; ++i) {
    const auto k = params.min_pins +
                   static_cast<std::size_t>(rng.next_below(
                       params.max_pins - params.min_pins + 1));
    builder.add_net(sample_distinct(params.num_cells, k, rng, scratch));
  }
  return builder.build();
}

std::vector<Netlist> gola_test_set(std::size_t count, const GolaParams& params,
                                   std::uint64_t master_seed) {
  std::vector<Netlist> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng{util::derive_seed(master_seed, i)};
    out.push_back(random_gola(params, rng));
  }
  return out;
}

std::vector<Netlist> nola_test_set(std::size_t count, const NolaParams& params,
                                   std::uint64_t master_seed) {
  std::vector<Netlist> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng{util::derive_seed(master_seed, i)};
    out.push_back(random_nola(params, rng));
  }
  return out;
}

Netlist random_graph(std::size_t num_cells, std::size_t num_nets,
                     util::Rng& rng) {
  return random_gola(GolaParams{num_cells, num_nets}, rng);
}

}  // namespace mcopt::netlist
