// Instance characterization: degree and net-size distributions.
//
// The paper describes its workloads only by (elements, nets, pins-per-net);
// these statistics let a reproduction verify that generated instances match
// the described distribution, and give downstream users a quick profile of
// their own netlists (the board_ordering example and the CLI print them).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <ostream>
#include <vector>

#include "netlist/netlist.hpp"

namespace mcopt::netlist {

struct NetlistStats {
  std::size_t num_cells = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;
  bool is_graph = false;

  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  /// degree_histogram[d] = number of cells incident to exactly d nets.
  std::vector<std::size_t> degree_histogram;

  std::size_t min_net_size = 0;
  std::size_t max_net_size = 0;
  double mean_net_size = 0.0;
  /// net_size_histogram[p] = number of nets with exactly p pins.
  std::vector<std::size_t> net_size_histogram;
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& netlist);

/// Multi-line human-readable profile.
void print_stats(std::ostream& out, const NetlistStats& stats);

}  // namespace mcopt::netlist
