#include "obs/timeline.hpp"

#include <cstddef>
#include <cstdio>

#include "obs/perfcount.hpp"

namespace mcopt::obs {

namespace {

/// Minimal JSON string escape: scope names are identifiers today, but the
/// exporter must not be the thing that breaks if one ever is not.
void append_escaped(const std::string& text, std::string& out) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::uint64_t value, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(value));
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

/// Microseconds with nanosecond precision — the ts/dur unit the Trace
/// Event Format specifies.
void append_us(std::uint64_t ns, std::string& out) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%llu.%03llu",
                              static_cast<unsigned long long>(ns / 1000),
                              static_cast<unsigned long long>(ns % 1000));
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

void append_double(double value, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.6g", value);
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

}  // namespace

void TimelineBuilder::set_process_name(std::uint32_t pid,
                                       const std::string& name) {
  if (!named_processes_.insert(pid).second) return;
  TimelineEvent event;
  event.name = "process_name";
  event.ph = 'M';
  event.pid = pid;
  event.args_json = "{\"name\": \"";
  append_escaped(name, event.args_json);
  event.args_json += "\"}";
  events_.push_back(std::move(event));
}

void TimelineBuilder::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                      const std::string& name) {
  if (!named_threads_.insert({pid, tid}).second) return;
  TimelineEvent event;
  event.name = "thread_name";
  event.ph = 'M';
  event.pid = pid;
  event.tid = tid;
  event.args_json = "{\"name\": \"";
  append_escaped(name, event.args_json);
  event.args_json += "\"}";
  events_.push_back(std::move(event));
}

void TimelineBuilder::add_span(const ProfileTree& tree, std::int32_t index,
                               std::uint32_t pid, std::uint32_t tid,
                               std::uint64_t start_ns) {
  const ProfileNode& node = tree.nodes[static_cast<std::size_t>(index)];
  TimelineEvent event;
  event.name = node.name;
  event.ph = 'X';
  event.pid = pid;
  event.tid = tid;
  event.ts_ns = start_ns;
  event.dur_ns = node.wall_ns;
  event.args_json = "{\"calls\": ";
  append_u64(node.calls, event.args_json);
  event.args_json += ", \"ticks\": ";
  append_u64(node.ticks, event.args_json);
  if (node.perf.any()) {
    const double ipc = perf_ipc(node.perf);
    if (ipc > 0.0) {
      event.args_json += ", \"ipc\": ";
      append_double(ipc, event.args_json);
    }
    if (node.perf.cache_refs > 0) {
      event.args_json += ", \"cache_miss_rate\": ";
      append_double(perf_cache_miss_rate(node.perf), event.args_json);
    }
    if (node.perf.cycles > 0) {
      event.args_json += ", \"cycles\": ";
      append_u64(node.perf.cycles, event.args_json);
    }
  }
  event.args_json += "}";
  events_.push_back(std::move(event));

  // Children pack sequentially from the parent's start; the profiler's
  // child-sums <= parent invariant keeps them inside the parent span.
  std::uint64_t child_start = start_ns;
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (tree.nodes[i].parent != index) continue;
    add_span(tree, static_cast<std::int32_t>(i), pid, tid, child_start);
    child_start += tree.nodes[i].wall_ns;
  }
}

void TimelineBuilder::add_tree(const ProfileTree& tree, std::uint32_t pid,
                               std::uint32_t tid) {
  std::uint64_t& cursor = cursors_[{pid, tid}];
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (tree.nodes[i].parent >= 0) continue;
    add_span(tree, static_cast<std::int32_t>(i), pid, tid, cursor);
    cursor += tree.nodes[i].wall_ns;
  }
}

std::string TimelineBuilder::to_json() const {
  std::string out = "{\n  \"traceEvents\": [";
  bool first = true;
  for (const TimelineEvent& event : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_escaped(event.name, out);
    out += "\", \"ph\": \"";
    out += event.ph;
    out += "\", \"pid\": ";
    append_u64(event.pid, out);
    out += ", \"tid\": ";
    append_u64(event.tid, out);
    if (event.ph == 'X') {
      out += ", \"cat\": \"profile\", \"ts\": ";
      append_us(event.ts_ns, out);
      out += ", \"dur\": ";
      append_us(event.dur_ns, out);
    }
    out += ", \"args\": ";
    out += event.args_json;
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

}  // namespace mcopt::obs
