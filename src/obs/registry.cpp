#include "obs/registry.hpp"

#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perfcount.hpp"

namespace mcopt::obs {

namespace {

/// `family{label="x"}` -> `family`; plain names pass through.
std::string base_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void append_u64(std::uint64_t value, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(value));
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

void append_double(double value, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", value);
  out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

/// Prometheus histogram sample block: family_bucket{le=...} lines plus
/// family_sum / family_count.  `labels` is the metric's own label part
/// (with braces) or empty.
void append_prom_histogram(const std::string& family,
                           const std::string& labels, const LogHistogram& h,
                           std::string& out) {
  std::size_t last = 0;
  for (std::size_t i = 0; i + 1 < LogHistogram::kNumBuckets; ++i) {
    if (h.bucket(i) != 0) last = i;
  }
  const bool extra = !labels.empty();
  for (std::size_t i = 0; i <= last && i + 1 < LogHistogram::kNumBuckets;
       ++i) {
    if (h.empty()) break;
    out += family;
    out += "_bucket{";
    if (extra) {
      // labels arrives as `{k="v"}`; splice its body before `le`.
      out.append(labels, 1, labels.size() - 2);
      out += ",";
    }
    out += "le=\"";
    append_u64(LogHistogram::bucket_bound(i), out);
    out += "\"} ";
    append_u64(h.cumulative(i), out);
    out += "\n";
  }
  out += family;
  out += "_bucket{";
  if (extra) {
    out.append(labels, 1, labels.size() - 2);
    out += ",";
  }
  out += "le=\"+Inf\"} ";
  append_u64(h.count(), out);
  out += "\n";
  out += family;
  out += "_sum";
  out += labels;
  out += " ";
  append_double(h.sum(), out);
  out += "\n";
  out += family;
  out += "_count";
  out += labels;
  out += " ";
  append_u64(h.count(), out);
  out += "\n";
}

}  // namespace

Metric& MetricsRegistry::slot_locked(const std::string& name, MetricKind kind,
                                     const char* help, bool deterministic) {
  Metric& m = metrics_[name];
  if (m.help.empty() && help != nullptr) m.help = help;
  m.kind = kind;
  m.deterministic = m.deterministic && deterministic;
  return m;
}

void MetricsRegistry::counter_add_locked(const std::string& name,
                                         const char* help, std::uint64_t v,
                                         bool deterministic) {
  slot_locked(name, MetricKind::kCounter, help, deterministic).value += v;
}

void MetricsRegistry::gauge_max_locked(const std::string& name,
                                       const char* help, double v,
                                       bool deterministic) {
  Metric& m = slot_locked(name, MetricKind::kGauge, help, deterministic);
  if (v > m.gauge) m.gauge = v;
}

void MetricsRegistry::histogram_merge_locked(const std::string& name,
                                             const char* help,
                                             const LogHistogram& h,
                                             bool deterministic) {
  slot_locked(name, MetricKind::kHistogram, help, deterministic).hist.merge(h);
}

void MetricsRegistry::counter_add(const std::string& name, const char* help,
                                  std::uint64_t v, bool deterministic) {
  util::MutexLock lock{mu_};
  counter_add_locked(name, help, v, deterministic);
}

void MetricsRegistry::gauge_max(const std::string& name, const char* help,
                                double v, bool deterministic) {
  util::MutexLock lock{mu_};
  gauge_max_locked(name, help, v, deterministic);
}

void MetricsRegistry::histogram_merge(const std::string& name,
                                      const char* help, const LogHistogram& h,
                                      bool deterministic) {
  util::MutexLock lock{mu_};
  histogram_merge_locked(name, help, h, deterministic);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Self-merge would deadlock on mu_ and is semantically a doubling the
  // callers never want; make it a no-op.
  if (&other == this) return;
  std::map<std::string, Metric> theirs;
  {
    util::MutexLock lock{other.mu_};
    theirs = other.metrics_;
  }
  util::MutexLock lock{mu_};
  for (const auto& [name, m] : theirs) {
    switch (m.kind) {
      case MetricKind::kCounter:
        counter_add_locked(name, m.help.c_str(), m.value, m.deterministic);
        break;
      case MetricKind::kGauge:
        gauge_max_locked(name, m.help.c_str(), m.gauge, m.deterministic);
        break;
      case MetricKind::kHistogram:
        histogram_merge_locked(name, m.help.c_str(), m.hist, m.deterministic);
        break;
    }
  }
}

const Metric* MetricsRegistry::find(const std::string& name) const {
  util::MutexLock lock{mu_};
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

void MetricsRegistry::populate_from_run(const RunMetrics& m) {
  util::MutexLock lock{mu_};
  counter_add_locked("mcopt_restarts_total", "Multistart restarts folded in",
                     m.restarts, /*deterministic=*/true);
  counter_add_locked("mcopt_new_bests_total", "Best-so-far improvements",
                     m.new_bests, /*deterministic=*/true);
  counter_add_locked("mcopt_patience_resets_total",
                     "Step 4 reject counters reset by an accept",
                     m.patience_resets, /*deterministic=*/true);
  counter_add_locked("mcopt_trace_events_total",
                     "Trace events emitted post-sampling", m.trace_events,
                     /*deterministic=*/true);
  counter_add_locked("mcopt_invariant_checks_total",
                     "Deep invariant verifications", m.invariant_checks,
                     /*deterministic=*/true);
  gauge_max_locked("mcopt_invariant_seconds",
                   "Wall time inside check_invariants()", m.invariant_seconds,
                   /*deterministic=*/false);
  gauge_max_locked("mcopt_wall_seconds", "Wall time of the run(s)",
                   m.wall_seconds, /*deterministic=*/false);
  counter_add_locked("mcopt_worker_steals_total",
                     "Restarts claimed by pool workers (scheduler-dependent)",
                     m.worker_steals, /*deterministic=*/false);
  gauge_max_locked("mcopt_queue_peak",
                   "Peak speculation-queue depth (scheduler-dependent)",
                   static_cast<double>(m.queue_peak), /*deterministic=*/false);
  histogram_merge_locked("mcopt_uphill_delta_proposed",
                         "Cost increase of proposed uphill moves",
                         m.uphill_delta_proposed, /*deterministic=*/true);
  histogram_merge_locked("mcopt_uphill_delta_accepted",
                         "Cost increase of accepted uphill moves",
                         m.uphill_delta_accepted, /*deterministic=*/true);
  for (std::size_t i = 0; i < m.stages.size(); ++i) {
    const StageMetrics& s = m.stages[i];
    std::string label = "{stage=\"";
    append_u64(static_cast<std::uint64_t>(i), label);
    label += "\"}";
    counter_add_locked("mcopt_stage_proposals_total" + label,
                       "Proposals per temperature level", s.proposals,
                       /*deterministic=*/true);
    counter_add_locked("mcopt_stage_accepts_total" + label,
                       "Accepted proposals per temperature level", s.accepts,
                       /*deterministic=*/true);
    counter_add_locked("mcopt_stage_uphill_accepts_total" + label,
                       "Accepted cost-increasing proposals per level",
                       s.uphill_accepts, /*deterministic=*/true);
    counter_add_locked("mcopt_stage_rejects_total" + label,
                       "Rejected proposals per temperature level", s.rejects,
                       /*deterministic=*/true);
    counter_add_locked("mcopt_stage_downhill_proposals_total" + label,
                       "Proposals with negative cost delta",
                       s.downhill_proposals, /*deterministic=*/true);
    counter_add_locked("mcopt_stage_sideways_proposals_total" + label,
                       "Proposals with zero cost delta", s.sideways_proposals,
                       /*deterministic=*/true);
    counter_add_locked("mcopt_stage_uphill_proposals_total" + label,
                       "Proposals with positive cost delta",
                       s.uphill_proposals, /*deterministic=*/true);
    counter_add_locked("mcopt_stage_new_bests_total" + label,
                       "Best-so-far improvements per level", s.new_bests,
                       /*deterministic=*/true);
    counter_add_locked("mcopt_stage_patience_fires_total" + label,
                       "Step 4 advances out of this level", s.patience_fires,
                       /*deterministic=*/true);
    counter_add_locked("mcopt_stage_ticks_total" + label,
                       "Budget ticks charged per level", s.ticks,
                       /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_wall_seconds" + label,
                     "Wall time per level (staged runners only)",
                     s.wall_seconds, /*deterministic=*/false);
    gauge_max_locked("mcopt_stage_acceptance_rate" + label,
                     "accepts / proposals per level", s.acceptance_rate(),
                     /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_uphill_rate" + label,
                     "uphill accepts / uphill proposals per level (realized g)",
                     s.uphill_rate(), /*deterministic=*/true);
  }
  // Thermodynamic observables: derived from exact integer accumulators at
  // this call, so the exported doubles are a pure function of the seed and
  // safe to keep in the deterministic_only view.
  for (std::size_t i = 0; i < m.observables.size(); ++i) {
    const StageObservables& o = m.observables[i];
    std::string label = "{stage=\"";
    append_u64(static_cast<std::uint64_t>(i), label);
    label += "\"}";
    counter_add_locked("mcopt_stage_cost_samples_total" + label,
                       "Cost samples folded into the stage observables",
                       o.samples, /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_cost_mean" + label,
                     "Mean chain cost (energy) per level", o.mean(),
                     /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_cost_variance" + label,
                     "Chain cost variance per level", o.variance(),
                     /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_temperature" + label,
                     "Boltzmann temperature Y_t (0 = non-thermal rule)",
                     o.temperature, /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_specific_heat" + label,
                     "Var(E)/Y_t^2 — peaks at the freezing transition",
                     o.specific_heat(), /*deterministic=*/true);
    gauge_max_locked("mcopt_stage_autocorr_lag1" + label,
                     "Lag-1 cost autocorrelation per level",
                     o.autocorrelation(1), /*deterministic=*/true);
    counter_add_locked("mcopt_stage_equilibrated_total" + label,
                       "Runs whose drift detector flagged this level "
                       "equilibrated",
                       o.equilibrated_runs, /*deterministic=*/true);
  }
  // Hardware-counter attribution per profile scope.  Every family is a
  // measurement of the machine, so all are nondeterministic (excluded from
  // the bit-identity exports), and all are absent when perf_event_open was
  // unavailable — the counts then stay zero and nothing registers, which
  // is the graceful-degradation contract the tests pin.
  {
    std::vector<std::string> paths(m.profile.nodes.size());
    for (std::size_t i = 0; i < m.profile.nodes.size(); ++i) {
      const ProfileNode& node = m.profile.nodes[i];
      paths[i] = node.parent < 0
                     ? node.name
                     : paths[static_cast<std::size_t>(node.parent)] + "/" +
                           node.name;
      if (!node.perf.any()) continue;
      const std::string label = "{scope=\"" + paths[i] + "\"}";
      if (node.perf.cycles > 0) {
        counter_add_locked("mcopt_perf_cycles_total" + label,
                           "CPU cycles inside the profile scope "
                           "(perf_event, user space only)",
                           node.perf.cycles, /*deterministic=*/false);
      }
      if (node.perf.instructions > 0) {
        counter_add_locked("mcopt_perf_instructions_total" + label,
                           "Retired instructions inside the profile scope",
                           node.perf.instructions, /*deterministic=*/false);
      }
      if (node.perf.cache_refs > 0) {
        counter_add_locked("mcopt_perf_cache_references_total" + label,
                           "Cache references inside the profile scope",
                           node.perf.cache_refs, /*deterministic=*/false);
      }
      if (node.perf.cache_misses > 0) {
        counter_add_locked("mcopt_perf_cache_misses_total" + label,
                           "Cache misses inside the profile scope",
                           node.perf.cache_misses, /*deterministic=*/false);
      }
      if (node.perf.branch_misses > 0) {
        counter_add_locked("mcopt_perf_branch_misses_total" + label,
                           "Branch mispredictions inside the profile scope",
                           node.perf.branch_misses, /*deterministic=*/false);
      }
      if (node.perf.task_clock_ns > 0) {
        counter_add_locked("mcopt_perf_task_clock_ns_total" + label,
                           "Task-clock nanoseconds inside the profile scope",
                           node.perf.task_clock_ns, /*deterministic=*/false);
      }
      const double ipc = perf_ipc(node.perf);
      if (ipc > 0.0) {
        gauge_max_locked("mcopt_perf_ipc" + label,
                         "Instructions per cycle inside the profile scope",
                         ipc, /*deterministic=*/false);
      }
      if (node.perf.cache_refs > 0) {
        gauge_max_locked("mcopt_perf_cache_miss_rate" + label,
                         "cache misses / cache references per profile scope",
                         perf_cache_miss_rate(node.perf),
                         /*deterministic=*/false);
      }
      if (node.perf.cycles > 0 && node.ticks > 0) {
        gauge_max_locked("mcopt_perf_cycles_per_tick" + label,
                         "CPU cycles per budget tick (proposal) inside the "
                         "profile scope",
                         static_cast<double>(node.perf.cycles) /
                             static_cast<double>(node.ticks),
                         /*deterministic=*/false);
      }
    }
  }
}

std::string MetricsRegistry::to_prometheus(bool deterministic_only) const {
  util::MutexLock lock{mu_};
  std::string out;
  std::string last_family;
  for (const auto& [name, m] : metrics_) {
    if (deterministic_only && !m.deterministic) continue;
    const std::string family = base_name(name);
    const std::size_t brace = name.find('{');
    const std::string labels =
        brace == std::string::npos ? std::string() : name.substr(brace);
    if (family != last_family) {
      out += "# HELP ";
      out += family;
      out += " ";
      out += m.help;
      out += "\n# TYPE ";
      out += family;
      out += " ";
      out += kind_name(m.kind);
      out += "\n";
      last_family = family;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += name;
        out += " ";
        append_u64(m.value, out);
        out += "\n";
        break;
      case MetricKind::kGauge:
        out += name;
        out += " ";
        append_double(m.gauge, out);
        out += "\n";
        break;
      case MetricKind::kHistogram:
        append_prom_histogram(family, labels, m.hist, out);
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::to_json(bool deterministic_only) const {
  util::MutexLock lock{mu_};
  std::string out = "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (deterministic_only && !m.deterministic) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += name;
    out += "\": {\"type\": \"";
    out += kind_name(m.kind);
    out += "\", \"deterministic\": ";
    out += m.deterministic ? "true" : "false";
    out += ", ";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "\"value\": ";
        append_u64(m.value, out);
        break;
      case MetricKind::kGauge:
        out += "\"value\": ";
        append_double(m.gauge, out);
        break;
      case MetricKind::kHistogram:
        out += "\"value\": ";
        m.hist.append_json(out);
        break;
    }
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace mcopt::obs
