// The Recorder: the single instrumentation handle the optimizers talk to.
//
// Runners receive a `const Recorder*` through their options struct and take
// a by-value copy at the top of the run (a Recorder is a few words), which
// binds the copy to that run's RunResult::metrics block and gives it a
// private sampling counter — so the emitted stream is a pure function of
// the seed no matter which thread executes the restart.
//
// Zero-overhead-when-off: a default-constructed Recorder is *off*, and
// every event method is an inlined `if (off_) return;` in front of an
// out-of-line slow path.  bench/obs_overhead.cpp holds this to <1% against
// a hand-stripped copy of the same loop.
//
// Thread-safety: a Recorder is single-writer (its sampling counter and
// metrics pointer are unsynchronized by design — each run owns its copy).
// Sinks are internally locked (obs/trace.hpp), but the parallel engine
// still never shares a *stream* across threads: each restart gets its own
// shard recorder via for_restart() pointing at a private VectorSink, and
// the reducer drains shards in restart-index order so the trace stays
// deterministic, not merely data-race-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/budget.hpp"

namespace mcopt::obs {

class PerfCounterGroup;

class Recorder {
 public:
  /// Off: every event method is a single predicted-not-taken branch.
  Recorder() = default;

  /// On.  `sink` may be null for metrics-only collection; `trace_sample`
  /// keeps every Nth proposal/accept/reject trio (<=1 keeps all); `run` is
  /// the caller-chosen run id stamped on every event.  `collect_profile`
  /// turns on the hierarchical stage profiler (implies metrics collection —
  /// the tree lives inside RunMetrics).
  explicit Recorder(TraceSink* sink, bool collect_metrics = true,
                    std::uint64_t trace_sample = 1, std::uint64_t run = 0,
                    bool collect_profile = false);

  [[nodiscard]] bool on() const noexcept { return !off_; }
  [[nodiscard]] bool tracing() const noexcept { return sink_ != nullptr; }
  [[nodiscard]] bool collecting_metrics() const noexcept {
    return metrics_enabled_;
  }
  [[nodiscard]] bool profiling() const noexcept { return profile_enabled_; }
  [[nodiscard]] std::uint64_t run_id() const noexcept { return run_; }
  [[nodiscard]] std::uint64_t restart_id() const noexcept { return restart_; }
  /// The sink events are routed to (null when not tracing).  Exposed so
  /// the parallel engine can drain per-restart shards into it in order.
  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }

  /// Arms hardware-counter sampling: every profile scope entered by this
  /// recorder brackets a read of `group` and charges the delta to its
  /// ProfileNode.  The group's descriptors count the thread that opened
  /// them, so arm the group on the thread that runs the recorder; pool
  /// shards derived via for_restart() drop the group (see there).  Pass
  /// null (the default state) to disarm.  No-op on the off path.
  void set_perf_counters(PerfCounterGroup* group) noexcept { perf_ = group; }
  [[nodiscard]] PerfCounterGroup* perf_counters() const noexcept {
    return perf_;
  }

  /// A recorder for one restart: same configuration, fresh sampling state,
  /// events stamped (restart, worker) and routed to `shard_sink` (typically
  /// a private VectorSink the engine later drains in index order; null
  /// keeps the parent's sink — only safe single-threaded).
  [[nodiscard]] Recorder for_restart(std::uint64_t restart,
                                     std::uint64_t worker,
                                     TraceSink* shard_sink) const;

  /// A copy of this recorder stamped with a different run id (the bench
  /// harness gives each table row its own run id).
  [[nodiscard]] Recorder with_run(std::uint64_t run) const {
    Recorder out = *this;
    out.run_ = run;
    return out;
  }

  /// Binds this recorder to a run: metrics flow into `*metrics` (sized to
  /// `num_stages` levels up front), wall clocks restart.  Call once per
  /// runner invocation; end_run() closes the open stage and the run clock.
  /// `stage_walls = false` skips per-stage wall attribution — for runners
  /// whose levels interleave in time (tempering) rather than run monotone.
  void begin_run(RunMetrics* metrics, std::size_t num_stages,
                 bool stage_walls = true);
  void end_run();

  // --- event methods (hot path: inlined off-test, out-of-line slow path).
  // `cost`/`best` conventions: accept/reject carry the candidate cost and
  // the best BEFORE the move; new_best follows the accept that improved it.

  void stage_begin(std::uint32_t stage, std::uint64_t tick, double cost,
                   double best, StageReason reason) {
    if (off_) return;
    stage_begin_impl(stage, tick, cost, best, reason);
  }
  /// `delta` is the candidate's cost change (candidate - current); its sign
  /// drives the proposal-mix counters and its magnitude the uphill
  /// histograms.  The trace event schema is unchanged.
  void proposal(std::uint32_t stage, std::uint64_t tick, double cost,
                double best, double delta) {
    if (off_) return;
    proposal_impl(stage, tick, cost, best, delta);
  }
  void accept(std::uint32_t stage, std::uint64_t tick, double cost,
              double best, double delta) {
    if (off_) return;
    accept_impl(stage, tick, cost, best, delta);
  }
  void reject(std::uint32_t stage, std::uint64_t tick, double cost,
              double best) {
    if (off_) return;
    reject_impl(stage, tick, cost, best);
  }
  void new_best(std::uint32_t stage, std::uint64_t tick, double best) {
    if (off_) return;
    new_best_impl(stage, tick, best);
  }
  void restart_begin(double cost) {
    if (off_) return;
    restart_begin_impl(cost);
  }
  void worker_steal() {
    if (off_) return;
    worker_steal_impl();
  }

  // --- metrics-only hooks (no trace event).

  /// The Step 4 reject counter was reset by an accept before firing.
  void patience_reset() {
    if (off_) return;
    patience_reset_impl();
  }
  /// `n` budget ticks of pure descent charged at `stage` (Figure 2).
  void descent_ticks(std::uint32_t stage, std::uint64_t n) {
    if (off_) return;
    descent_ticks_impl(stage, n);
  }
  /// One deep invariant verification took `seconds` of wall time.
  void invariant_check(double seconds) {
    if (off_) return;
    invariant_check_impl(seconds);
  }
  /// Declares the Boltzmann temperature of a stage (observables use it for
  /// the specific-heat estimate).  Pass 0 when the acceptance rule has no
  /// temperature interpretation.  Idempotent; call any time after
  /// begin_run().
  void stage_temperature(std::uint32_t stage, double y) {
    if (off_) return;
    stage_temperature_impl(stage, y);
  }
  // --- profiler hooks (used via ProfileScope / MCOPT_PROFILE_SCOPE).

  /// Opens scope `name` under the current scope.  Returns false (no-op)
  /// unless profiling is on and a run is bound.
  bool profile_enter(const char* name) {
    if (off_ || !profile_enabled_) return false;
    return profile_enter_impl(name);
  }
  void profile_exit();
  /// Charges deterministic ticks to the innermost open scope.
  void profile_add_ticks(std::uint64_t n);

 private:
  void stage_begin_impl(std::uint32_t stage, std::uint64_t tick, double cost,
                        double best, StageReason reason);
  void proposal_impl(std::uint32_t stage, std::uint64_t tick, double cost,
                     double best, double delta);
  void accept_impl(std::uint32_t stage, std::uint64_t tick, double cost,
                   double best, double delta);
  void reject_impl(std::uint32_t stage, std::uint64_t tick, double cost,
                   double best);
  void new_best_impl(std::uint32_t stage, std::uint64_t tick, double best);
  void restart_begin_impl(double cost);
  void worker_steal_impl();
  void patience_reset_impl();
  void descent_ticks_impl(std::uint32_t stage, std::uint64_t n);
  void invariant_check_impl(double seconds);
  void stage_temperature_impl(std::uint32_t stage, double y);
  bool profile_enter_impl(const char* name);

  /// stages[stage], growing the vector if a runner visits more levels than
  /// begin_run() was told about.
  StageMetrics& stage_slot(std::uint32_t stage);
  /// observables[stage], same growth rule.  Observables are fed strictly
  /// from this un-sampled metrics path — the --trace-sample stride gates
  /// trace emission only, so sampled and unsampled runs report
  /// byte-identical observables (regression-tested).
  StageObservables& observables_slot(std::uint32_t stage);
  void emit(EventKind kind, StageReason reason, std::uint32_t stage,
            std::uint64_t tick, double cost, double best);
  void close_stage_wall();

  bool off_ = true;
  bool metrics_enabled_ = false;
  bool profile_enabled_ = false;
  TraceSink* sink_ = nullptr;
  std::uint64_t sample_ = 1;
  std::uint64_t run_ = 0;
  std::uint64_t restart_ = 0;
  std::uint64_t worker_ = 0;
  PerfCounterGroup* perf_ = nullptr;  // armed hardware counters, or null

  // Per-run state, reset by begin_run().
  RunMetrics* metrics_ = nullptr;
  std::uint64_t step_ = 0;       // proposals seen, drives the sampling stride
  bool sample_live_ = true;      // does the current trio pass the stride?
  bool stage_walls_ = true;      // attribute wall time to stages?
  bool have_stage_ = false;      // has any stage_begin fired yet?
  std::uint32_t cur_stage_ = 0;  // stage whose wall clock is open
  util::Stopwatch stage_watch_;
  util::Stopwatch run_watch_;

  // Open profile scopes, innermost last; end_run() failsafe-closes.
  struct OpenScope {
    std::int32_t node;
    util::Stopwatch watch;
    PerfCounts perf_begin;   // cumulative counts at entry
    bool perf_live = false;  // did the entry read succeed?
  };
  std::vector<OpenScope> pstack_;
};

// ProfileScope's members live here, not in profiler.cpp: profiler.hpp is
// included above before Recorder exists, and keeping these inline makes a
// scope on an off/non-profiling recorder a single predicted branch with no
// call — the property bench/metrics_overhead gates.
inline ProfileScope::ProfileScope(Recorder& recorder, const char* name)
    : recorder_(recorder.profile_enter(name) ? &recorder : nullptr) {}

inline ProfileScope::~ProfileScope() {
  if (recorder_ != nullptr) recorder_->profile_exit();
}

inline void ProfileScope::add_ticks(std::uint64_t n) {
  if (recorder_ != nullptr) recorder_->profile_add_ticks(n);
}

}  // namespace mcopt::obs
