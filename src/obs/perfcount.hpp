// Hardware performance-counter telemetry via perf_event_open(2).
//
// A PerfCounterGroup opens one self-monitoring counter per requested
// PerfCounter (cycles, instructions, cache references/misses, branch
// misses, task-clock) on the calling thread and exposes cumulative scaled
// readings; the Recorder snapshots the group at profile-scope entry and
// exit, so every ProfileTree node accumulates the hardware cost of the
// code it brackets (ProfileNode::perf).  Derived gauges — IPC, cache-miss
// rate, cycles per budget tick — flow through MetricsRegistry flagged
// nondeterministic, exactly like wall_ns: measurement of the machine,
// never of the algorithm.
//
// Degradation is graceful and test-pinned.  perf_event_open is denied in
// most containers (perf_event_paranoid), absent on non-Linux, and often
// partial in VMs (software task-clock works, hardware events ENOENT).
// The group opens what it can; available() is false only when *nothing*
// opened, unavailable_reason() says why (errno name + the paranoid hint),
// all perf counts stay zero, and every driver/bench output that does not
// opt into wall-clock forms is byte-identical with or without counters.
//
// The syscall sits behind the PerfBackend seam so tests can force ENOSYS
// or feed deterministic counts without touching the kernel.  Counters are
// opened per-thread (no inherit): the parallel engine therefore only
// samples restarts executed on the thread that armed the group — see
// Recorder::for_restart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace mcopt::obs {

/// The fixed counter menu.  kTaskClock is a software event (always
/// available on Linux); the rest are hardware events that VMs may refuse.
enum class PerfCounter : std::uint8_t {
  kCycles,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kTaskClock,
};

/// Spelled name used by --perf-counters and the error messages.
[[nodiscard]] const char* perf_counter_name(PerfCounter which) noexcept;

/// Every counter in menu order — the bare --perf-counters default.
[[nodiscard]] std::vector<PerfCounter> all_perf_counters();

/// Parses a comma-separated counter list ("cycles,cache-misses").  Returns
/// nullopt and fills *error naming the offending token on an unknown or
/// empty name.
[[nodiscard]] std::optional<std::vector<PerfCounter>> parse_perf_counters(
    const std::string& list, std::string* error);

/// One cumulative counter reading with the multiplexing clock pair
/// (PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING): when the kernel rotated the
/// counter off the PMU, value is scaled by enabled/running.
struct PerfReading {
  std::uint64_t value = 0;
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
};

/// The syscall seam.  The production backend wraps perf_event_open /
/// read / close; tests substitute fakes (forced ENOSYS, scripted counts).
class PerfBackend {
 public:
  virtual ~PerfBackend() = default;
  /// Opens one self-monitoring counter for the calling thread.  Returns a
  /// file descriptor >= 0, or a negative errno on refusal.
  virtual int open_counter(PerfCounter which) = 0;
  /// Reads the cumulative count; false when the descriptor went bad.
  virtual bool read_counter(int fd, PerfReading* out) = 0;
  virtual void close_counter(int fd) = 0;
};

/// The perf_event_open-backed production backend (a stateless singleton).
/// On non-Linux builds every open returns -ENOSYS.
[[nodiscard]] PerfBackend& system_perf_backend() noexcept;

/// RAII bundle of opened counters for the constructing thread.
class PerfCounterGroup {
 public:
  /// Opens `counters` via `backend` (null = system_perf_backend()).
  /// Never throws on refusal: the group simply becomes unavailable.
  explicit PerfCounterGroup(const std::vector<PerfCounter>& counters,
                            PerfBackend* backend = nullptr);
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one counter opened.
  [[nodiscard]] bool available() const noexcept { return !fds_.empty(); }
  /// Why nothing opened (errno name + remediation hint); empty when
  /// available().
  [[nodiscard]] const std::string& unavailable_reason() const noexcept {
    return reason_;
  }
  /// The counters that actually opened, in menu order.
  [[nodiscard]] std::vector<PerfCounter> active_counters() const;

  /// Cumulative multiplex-scaled counts since construction.  Returns false
  /// (and leaves *out untouched) when unavailable or a read failed; the
  /// caller deltas two reads with perf_delta().
  [[nodiscard]] bool read(PerfCounts* out) const;

 private:
  struct OpenCounter {
    PerfCounter which;
    int fd;
  };
  PerfBackend* backend_;
  std::vector<OpenCounter> fds_;
  std::string reason_;
};

/// end - begin with saturating subtraction (a counter reset between reads
/// yields 0, never a wrapped huge delta).
[[nodiscard]] PerfCounts perf_delta(const PerfCounts& begin,
                                    const PerfCounts& end) noexcept;

/// Instructions per cycle; 0 when either count is missing.
[[nodiscard]] double perf_ipc(const PerfCounts& counts) noexcept;

/// cache_misses / cache_references; 0 when references are missing.
[[nodiscard]] double perf_cache_miss_rate(const PerfCounts& counts) noexcept;

}  // namespace mcopt::obs
