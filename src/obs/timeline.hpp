// Chrome Trace Event Format export of ProfileTrees, viewable in Perfetto.
//
// A ProfileTree is a call tree of *accumulated* scopes (calls, ticks,
// wall_ns, perf counts), not a log of individual enter/exit timestamps —
// the profiler deliberately stores O(scopes) state, not O(calls).  The
// TimelineBuilder therefore renders each tree as a synthetic timeline:
// root scopes are laid end to end on their (pid, tid) lane, each span's
// duration is the scope's accumulated wall_ns, and children start at
// their parent's start and pack sequentially inside it.  Horizontal
// extent is real measured time; horizontal *position* is layout.  That is
// exactly what Perfetto's flame-style view needs to show where the run's
// time went, and the child-sums-never-exceed-parent invariant (pinned in
// profiler_test) guarantees the nesting is renderable.
//
// The driver writes one lane per merged aggregate tree plus one lane per
// worker from the parallel row runs, appended in job-index order, so the
// file is reproducible given the same wall-clock measurements.  Spans
// carry the deterministic accounting (calls, ticks) and the perf-derived
// gauges (IPC, cache-miss rate) in their args.
//
// Format reference: the "JSON Array Format"/"traceEvents" object accepted
// by chrome://tracing and ui.perfetto.dev; "X" complete events with ts /
// dur in microseconds, "M" metadata events naming process and thread
// lanes.  tools/trace_timeline.py validates the emitted subset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"

namespace mcopt::obs {

class TimelineBuilder {
 public:
  /// Names the process lane (one "M" process_name record, deduplicated).
  void set_process_name(std::uint32_t pid, const std::string& name);
  /// Names the thread lane (one "M" thread_name record, deduplicated).
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       const std::string& name);

  /// Renders `tree` onto lane (pid, tid), appending after any spans the
  /// lane already carries.  Empty trees add nothing.
  void add_tree(const ProfileTree& tree, std::uint32_t pid,
                std::uint32_t tid);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t num_events() const noexcept {
    return events_.size();
  }

  /// The complete JSON document: {"traceEvents": [...], ...}, newline
  /// terminated.  Deterministic given the same add_* call sequence.
  [[nodiscard]] std::string to_json() const;

 private:
  struct TimelineEvent {
    std::string name;
    char ph = 'X';  // 'X' complete span | 'M' metadata
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::string args_json;  // pre-serialized {...}; never empty
  };

  void add_span(const ProfileTree& tree, std::int32_t index,
                std::uint32_t pid, std::uint32_t tid, std::uint64_t start_ns);

  std::vector<TimelineEvent> events_;
  /// Append cursor per (pid, tid) lane, in ns.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> cursors_;
  /// Lanes already named, so repeated set_*_name calls stay idempotent.
  std::set<std::uint32_t> named_processes_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> named_threads_;
};

}  // namespace mcopt::obs
